#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file exported by obs::Tracer.

Checks, in order:
  1. the file is well-formed JSON with a top-level "traceEvents" list;
  2. every event is a complete ("X") or metadata ("M") event carrying the
     fields Perfetto needs (name/ts/dur/pid/tid for X, name args for M);
  3. spans on each track (tid) are properly nested: sorted by begin time,
     every span either follows the previous one or sits fully inside an
     enclosing span -- partial overlap means begin/end pairs got crossed;
  4. optional --require NAME...: each name must appear as at least one span
     (exact match, or prefix match when NAME ends with '*').

Exit status 0 on success, 1 on any violation. Stdlib only.

Usage:
  python3 tools/check_trace.py trace.json --require request queue forward
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_event(index: int, event) -> None:
    if not isinstance(event, dict):
        fail(f"event {index} is not an object: {event!r}")
    ph = event.get("ph")
    if ph not in ("X", "M"):
        fail(f"event {index} has unsupported phase {ph!r} (want X or M)")
    if not isinstance(event.get("name"), str) or not event["name"]:
        fail(f"event {index} has no name")
    if ph == "X":
        for field in ("ts", "dur", "pid", "tid"):
            if not isinstance(event.get(field), (int, float)):
                fail(f"X event {index} ({event['name']!r}) missing numeric {field!r}")
        if event["dur"] < 0:
            fail(f"X event {index} ({event['name']!r}) has negative dur {event['dur']}")
        if event["ts"] < 0:
            fail(f"X event {index} ({event['name']!r}) has negative ts {event['ts']}")


def check_nesting(events) -> int:
    """Spans per track must nest (contain or not overlap), never cross."""
    tracks = {}
    for event in events:
        if event["ph"] == "X":
            tracks.setdefault(event["tid"], []).append(event)
    for tid, spans in tracks.items():
        # Begin ascending; at equal begins the longer span is the parent.
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # enclosing spans' end times
        for span in spans:
            begin = span["ts"]
            end = begin + span["dur"]
            while stack and stack[-1] <= begin:
                stack.pop()
            if stack and end > stack[-1]:
                fail(
                    f"track {tid}: span {span['name']!r} [{begin}, {end}] "
                    f"crosses its enclosing span's end {stack[-1]}"
                )
            stack.append(end)
    return len(tracks)


def check_required(events, required) -> None:
    names = {event["name"] for event in events if event["ph"] == "X"}
    for want in required:
        if want.endswith("*"):
            if not any(name.startswith(want[:-1]) for name in names):
                fail(f"no span name matches required prefix {want!r}")
        elif want not in names:
            fail(f"required span {want!r} not found (have: {sorted(names)[:20]})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require",
        nargs="*",
        default=[],
        help="span names that must be present (trailing * = prefix match)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.trace}: {e}")

    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        fail('top level must be an object with a "traceEvents" list')
    events = trace["traceEvents"]

    for index, event in enumerate(events):
        validate_event(index, event)

    spans = sum(1 for e in events if e["ph"] == "X")
    if spans == 0:
        fail("trace contains no X (complete) events")
    tracks = check_nesting(events)
    check_required(events, args.require)

    print(
        f"check_trace: OK: {spans} spans on {tracks} tracks, "
        f"{len(events) - spans} metadata events"
    )


if __name__ == "__main__":
    main()
