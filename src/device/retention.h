// Data-retention / thermal-relaxation model (paper §IV takeaway 4:
// in-field variation and non-ideal behaviour of the stored state).
//
// An idle MTJ flips spontaneously at the Neel-Brown rate
//   r = (1 / tau0) * exp(-Delta),
// so the probability that a stored bit has flipped after time t is
//   P_flip(t) = 0.5 * (1 - exp(-2 r t))
// (the factor 2 and the 0.5 asymptote come from the two-state telegraph
// process: at infinite time the state is uniformly random).
//
// Retention is the long-term reliability axis the bench_ablations drift
// experiment sweeps: thermally weak devices (low Delta) lose the stored
// network first, and the Bayesian models' fault tolerance decides how
// gracefully accuracy decays.
#pragma once

#include "device/mtj.h"
#include "device/units.h"

namespace neuspin::device {

/// Retention model bound to a device design point.
class RetentionModel {
 public:
  explicit RetentionModel(const MtjParams& params);

  /// Spontaneous flip rate (events per second) at thermal stability
  /// `delta`; uses the nominal Delta when omitted.
  [[nodiscard]] double flip_rate_per_second(double delta) const;
  [[nodiscard]] double flip_rate_per_second() const;

  /// Probability the stored state has flipped after `seconds` of idle
  /// storage (two-state telegraph process, asymptote 0.5).
  [[nodiscard]] double flip_probability(double seconds, double delta) const;
  [[nodiscard]] double flip_probability(double seconds) const;

  /// Storage time after which the flip probability reaches `p`
  /// (p in (0, 0.5)); the usual "10-year retention" figure of merit is
  /// retention_seconds(1e-9)-class numbers for Delta ~ 60.
  [[nodiscard]] double retention_seconds(double p) const;

  [[nodiscard]] const MtjParams& params() const { return params_; }

 private:
  MtjParams params_;
};

}  // namespace neuspin::device
