#include "device/defects.h"

#include <algorithm>
#include <stdexcept>

namespace neuspin::device {

double DefectRates::total() const {
  return stuck_at_p + stuck_at_ap + open + short_circuit;
}

void DefectRates::validate() const {
  if (stuck_at_p < 0.0 || stuck_at_ap < 0.0 || open < 0.0 || short_circuit < 0.0) {
    throw std::invalid_argument("DefectRates: rates must be non-negative");
  }
  if (total() > 1.0) {
    throw std::invalid_argument("DefectRates: total defect rate exceeds 1");
  }
}

DefectMap::DefectMap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, DefectKind::kNone) {}

DefectMap::DefectMap(std::size_t rows, std::size_t cols, const DefectRates& rates,
                     std::uint64_t seed)
    : DefectMap(rows, cols) {
  rates.validate();
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  for (auto& cell : cells_) {
    const double u = uniform(engine);
    if (u < rates.stuck_at_p) {
      cell = DefectKind::kStuckAtParallel;
    } else if (u < rates.stuck_at_p + rates.stuck_at_ap) {
      cell = DefectKind::kStuckAtAntiParallel;
    } else if (u < rates.stuck_at_p + rates.stuck_at_ap + rates.open) {
      cell = DefectKind::kOpen;
    } else if (u < rates.total()) {
      cell = DefectKind::kShort;
    }
  }
}

std::size_t DefectMap::defect_count() const {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(),
                    [](DefectKind k) { return k != DefectKind::kNone; }));
}

MicroSiemens DefectMap::effective_conductance(std::size_t row, std::size_t col,
                                              MicroSiemens healthy,
                                              MicroSiemens g_parallel,
                                              MicroSiemens g_antiparallel,
                                              MicroSiemens short_conductance) const {
  switch (at(row, col)) {
    case DefectKind::kNone:
      return healthy;
    case DefectKind::kStuckAtParallel:
      return g_parallel;
    case DefectKind::kStuckAtAntiParallel:
      return g_antiparallel;
    case DefectKind::kOpen:
      return 0.0;
    case DefectKind::kShort:
      return short_conductance;
  }
  return healthy;  // unreachable; keeps GCC's -Wreturn-type satisfied
}

}  // namespace neuspin::device
