// Multi-level SOT cell built from several MTJs sharing one heavy-metal
// track (paper §II-A: "SOT-MRAM ... allows also for the integration of
// multiple MTJs on the same layer, simulating a multi-value cell"; §III-B:
// "a multi-level device composed of multiple MTJs is implemented to
// quantitatively represent Bayesian parameters").
//
// With M parallel MTJs, each either P or AP, the cell conductance is the
// sum of the branch conductances, giving M+1 distinct levels when the MTJs
// are identical (and up to 2^M with binary-weighted sizing). Both sizing
// schemes are supported; SpinBayes uses the binary-weighted variant for
// quantized weight storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "device/mtj.h"
#include "device/units.h"

namespace neuspin::device {

/// Sizing scheme of the constituent MTJs.
enum class MultiLevelSizing : std::uint8_t {
  kUniform,        ///< identical junctions: M+1 thermometer-coded levels
  kBinaryWeighted, ///< areas scale as 2^k: 2^M binary-coded levels
};

/// A multi-value cell of `junction_count` MTJs on a shared SOT track.
class MultiLevelCell {
 public:
  MultiLevelCell(const MtjParams& params, std::size_t junction_count,
                 MultiLevelSizing sizing);

  /// Number of programmable conductance levels.
  [[nodiscard]] std::size_t level_count() const;

  /// Program the cell to level `level` (0 = all AP = minimum conductance).
  /// Throws std::out_of_range for an invalid level.
  void program(std::size_t level);

  /// Currently programmed level.
  [[nodiscard]] std::size_t level() const { return level_; }

  /// Total cell conductance at the programmed level.
  [[nodiscard]] MicroSiemens conductance() const;

  /// Conductance the cell would have at `level` (for calibration tables).
  [[nodiscard]] MicroSiemens conductance_at(std::size_t level) const;

  /// Smallest conductance step between adjacent levels; the effective
  /// "LSB" of the cell used when quantizing Bayesian parameters.
  [[nodiscard]] MicroSiemens level_step() const;

  /// Number of write pulses needed to move from the current level to
  /// `target` (one pulse per junction whose state differs).
  [[nodiscard]] std::size_t pulses_to_program(std::size_t target) const;

  [[nodiscard]] std::size_t junction_count() const { return junctions_.size(); }
  [[nodiscard]] MultiLevelSizing sizing() const { return sizing_; }

 private:
  /// Per-junction area factor (1 for uniform; 2^k for binary-weighted).
  [[nodiscard]] double area_factor(std::size_t index) const;
  /// Junction states encoding `level` under the active sizing scheme.
  [[nodiscard]] std::vector<MtjState> states_for_level(std::size_t level) const;

  std::vector<Mtj> junctions_;
  MultiLevelSizing sizing_;
  std::size_t level_ = 0;
};

}  // namespace neuspin::device
