#include "device/rng.h"

#include <cmath>
#include <stdexcept>

namespace neuspin::device {

void SpinRngConfig::validate() const {
  mtj.validate();
  if (target_probability <= 0.0 || target_probability >= 1.0) {
    throw std::invalid_argument("SpinRngConfig: target_probability must lie in (0,1)");
  }
  if (set_pulse <= 0.0 || read_pulse <= 0.0 || reset_pulse <= 0.0) {
    throw std::invalid_argument("SpinRngConfig: pulse widths must be positive");
  }
  if (reset_current <= mtj.i_c0) {
    throw std::invalid_argument(
        "SpinRngConfig: reset_current must exceed the critical current for a "
        "deterministic reset");
  }
}

SpinRng::SpinRng(const SpinRngConfig& config, std::uint64_t seed)
    : config_(config),
      model_(config.mtj),
      device_(config.mtj, MtjState::kParallel),
      realized_p_(0.0),
      bias_current_(0.0),
      engine_(seed) {
  config_.validate();
  // Calibration: choose the bias current that hits the target probability
  // with the *nominal* Delta (that is what a shared calibration DAC would
  // be trimmed against), then evaluate what this current achieves on the
  // actual device, whose Delta may be variation-shifted.
  bias_current_ = model_.current_for_probability(config_.target_probability,
                                                 config_.set_pulse);
  const double delta =
      config_.delta_override > 0.0 ? config_.delta_override : config_.mtj.delta;
  realized_p_ = model_.switching_probability(bias_current_, config_.set_pulse, delta);
  if (config_.delta_override > 0.0) {
    device_.set_delta(config_.delta_override);
  }
}

bool SpinRng::next_bit() {
  ++bits_generated_;
  // SET attempt: stochastic switch P -> AP with the realized probability.
  const bool switched = uniform_(engine_) < realized_p_;
  device_.set_state(switched ? MtjState::kAntiParallel : MtjState::kParallel);
  // Read (sense amplifier) observes the state; RESET returns it to P.
  const bool bit = device_.state() == MtjState::kAntiParallel;
  device_.set_state(MtjState::kParallel);
  return bit;
}

std::vector<bool> SpinRng::bitstream(std::size_t count) {
  std::vector<bool> bits(count);
  for (std::size_t i = 0; i < count; ++i) {
    bits[i] = next_bit();
  }
  return bits;
}

PicoJoule SpinRng::energy_per_bit() const {
  const PicoJoule set_energy =
      device_.write_energy(bias_current_, config_.set_pulse);
  const PicoJoule read_energy = device_.read_energy(config_.read_pulse);
  const PicoJoule reset_energy =
      device_.write_energy(config_.reset_current, config_.reset_pulse);
  return set_energy + read_energy + reset_energy;
}

Nanosecond SpinRng::latency_per_bit() const {
  return config_.set_pulse + config_.read_pulse + config_.reset_pulse;
}

BitstreamStats analyze_bitstream(const std::vector<bool>& bits) {
  BitstreamStats stats;
  if (bits.empty()) {
    return stats;
  }
  double sum = 0.0;
  std::size_t run = 1;
  stats.longest_run = 1;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    sum += bits[i] ? 1.0 : 0.0;
    if (i > 0) {
      if (bits[i] == bits[i - 1]) {
        ++run;
        stats.longest_run = std::max(stats.longest_run, run);
      } else {
        run = 1;
      }
    }
  }
  stats.mean = sum / static_cast<double>(bits.size());

  if (bits.size() > 1) {
    // Lag-1 autocorrelation of the centered sequence.
    const double mean = stats.mean;
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      const double x = (bits[i] ? 1.0 : 0.0) - mean;
      den += x * x;
      if (i + 1 < bits.size()) {
        const double y = (bits[i + 1] ? 1.0 : 0.0) - mean;
        num += x * y;
      }
    }
    stats.lag1_autocorr = den > 0.0 ? num / den : 0.0;
  }
  return stats;
}

}  // namespace neuspin::device
