#include "device/switching.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace neuspin::device {

namespace {

/// Attempt-rate exponent of the Neel-Brown law, clamped so exp() stays finite.
double activation_rate(double delta, double current_ratio) {
  const double exponent = -delta * (1.0 - current_ratio);
  return std::exp(std::min(exponent, 50.0));
}

}  // namespace

SwitchingModel::SwitchingModel(const MtjParams& params) : params_(params) {
  params_.validate();
}

double SwitchingModel::switching_probability(MicroAmp current, Nanosecond pulse) const {
  return switching_probability(current, pulse, params_.delta);
}

double SwitchingModel::switching_probability(MicroAmp current, Nanosecond pulse,
                                             double delta) const {
  if (current <= 0.0 || pulse <= 0.0) {
    return 0.0;
  }
  const double ratio = current / params_.i_c0;
  if (ratio < 1.0) {
    // Thermal-activation (Neel-Brown) regime.
    const double rate = activation_rate(delta, ratio) / params_.attempt_time;
    return 1.0 - std::exp(-rate * pulse);
  }
  // Precessional regime: above critical current the characteristic
  // switching time shrinks as tau0 / (I/Ic0), which matches the thermal
  // regime exactly at I == Ic0 (rate 1/tau0), keeping the model continuous.
  const Nanosecond t_sw = params_.attempt_time / ratio;
  return 1.0 - std::exp(-pulse / t_sw);
}

MicroAmp SwitchingModel::current_for_probability(double p, Nanosecond pulse) const {
  if (p <= 0.0 || p >= 1.0) {
    throw std::domain_error("SwitchingModel: probability must lie in (0,1), got " +
                            std::to_string(p));
  }
  if (pulse <= 0.0) {
    throw std::domain_error("SwitchingModel: pulse width must be positive");
  }
  // Invert the thermal-activation law first:
  //   p = 1 - exp(-(pulse/tau0) * exp(-Delta (1 - I/Ic0)))
  //   I = Ic0 * (1 + ln( -ln(1-p) * tau0 / pulse ) / Delta)
  const double log_term = std::log(-std::log(1.0 - p) * params_.attempt_time / pulse);
  const MicroAmp thermal = params_.i_c0 * (1.0 + log_term / params_.delta);
  if (thermal < params_.i_c0 && thermal > 0.0) {
    return thermal;
  }
  // Requested probability needs the precessional regime; bisect on current.
  MicroAmp lo = params_.i_c0;
  MicroAmp hi = params_.i_c0 * 64.0;
  for (int iter = 0; iter < 80; ++iter) {
    const MicroAmp mid = 0.5 * (lo + hi);
    if (switching_probability(mid, pulse) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Nanosecond SwitchingModel::mean_switching_time(MicroAmp current) const {
  if (current <= 0.0) {
    throw std::domain_error("SwitchingModel: current must be positive");
  }
  const double ratio = current / params_.i_c0;
  if (ratio >= 1.0) {
    return params_.attempt_time / ratio;
  }
  return params_.attempt_time * std::exp(params_.delta * (1.0 - ratio));
}

}  // namespace neuspin::device
