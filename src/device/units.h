// Unit conventions used throughout the NeuSpin device and architecture
// models. All quantities are plain doubles; the suffix in the name states
// the unit. Keeping a single convention avoids a heavyweight units library
// while still making interfaces self-describing.
#pragma once

namespace neuspin::device {

/// Resistance is expressed in kilo-ohms (kOhm).
using KiloOhm = double;
/// Conductance is expressed in micro-siemens (uS). 1/kOhm == 1000 uS / 1000;
/// conversion helpers below keep the factors in one place.
using MicroSiemens = double;
/// Current in micro-amperes (uA).
using MicroAmp = double;
/// Voltage in volts (V).
using Volt = double;
/// Time in nanoseconds (ns).
using Nanosecond = double;
/// Energy in picojoules (pJ).
using PicoJoule = double;
/// Temperature in kelvin (K).
using Kelvin = double;

/// Convert a resistance in kOhm to a conductance in uS.
[[nodiscard]] constexpr MicroSiemens conductance_from_kohm(KiloOhm r) {
  return 1000.0 / r;
}

/// Convert a conductance in uS to a resistance in kOhm.
[[nodiscard]] constexpr KiloOhm kohm_from_conductance(MicroSiemens g) {
  return 1000.0 / g;
}

/// Joule heating energy of a read/write event: E = V * I * t.
/// With V in volts, I in uA and t in ns the product is in femtojoules;
/// divide by 1000 to express it in pJ.
[[nodiscard]] constexpr PicoJoule joule_energy(Volt v, MicroAmp i, Nanosecond t) {
  return v * i * t / 1000.0;
}

}  // namespace neuspin::device
