#include "device/retention.h"

#include <cmath>
#include <stdexcept>

namespace neuspin::device {

RetentionModel::RetentionModel(const MtjParams& params) : params_(params) {
  params_.validate();
}

double RetentionModel::flip_rate_per_second(double delta) const {
  if (delta <= 0.0) {
    throw std::invalid_argument("RetentionModel: delta must be positive");
  }
  // attempt_time is in ns; convert the attempt frequency to per-second.
  const double attempt_rate = 1.0e9 / params_.attempt_time;
  return attempt_rate * std::exp(-delta);
}

double RetentionModel::flip_rate_per_second() const {
  return flip_rate_per_second(params_.delta);
}

double RetentionModel::flip_probability(double seconds, double delta) const {
  if (seconds < 0.0) {
    throw std::invalid_argument("RetentionModel: time must be non-negative");
  }
  const double r = flip_rate_per_second(delta);
  return 0.5 * (1.0 - std::exp(-2.0 * r * seconds));
}

double RetentionModel::flip_probability(double seconds) const {
  return flip_probability(seconds, params_.delta);
}

double RetentionModel::retention_seconds(double p) const {
  if (p <= 0.0 || p >= 0.5) {
    throw std::invalid_argument("RetentionModel: p must lie in (0, 0.5)");
  }
  const double r = flip_rate_per_second();
  return -std::log(1.0 - 2.0 * p) / (2.0 * r);
}

}  // namespace neuspin::device
