// Stochastic switching model for STT/SOT MTJs (paper §II-A).
//
// Both STT and SOT devices switch probabilistically: a current pulse of a
// given amplitude and duration flips the free layer with a probability that
// grows with both. NeuSpin exploits this as a tunable-probability random
// number source ("stochasticity as a feature rather than a foe").
//
// Two regimes are modeled:
//  * thermal activation (I < Ic0): Neel-Brown law,
//      P_sw(t) = 1 - exp( -(t / tau0) * exp( -Delta * (1 - I/Ic0) ) )
//  * precessional (I >= Ic0): switching time shrinks as 1/(I - Ic0);
//      modeled as an exponential ramp that saturates at 1.
//
// The inverse problem — which bias current yields a requested switching
// probability for a fixed pulse width — is what the SpinDrop module's
// current-mode DAC solves; `current_for_probability` provides it in closed
// form for the thermal regime and by bisection above it.
#pragma once

#include "device/mtj.h"
#include "device/units.h"

namespace neuspin::device {

/// Stochastic switching model bound to a set of MTJ parameters.
class SwitchingModel {
 public:
  explicit SwitchingModel(const MtjParams& params);

  /// Probability that a pulse of `current` lasting `pulse` flips the device.
  /// Monotonically increasing in both arguments; clamped to [0, 1].
  [[nodiscard]] double switching_probability(MicroAmp current, Nanosecond pulse) const;

  /// Probability using a device-specific thermal stability `delta`
  /// (manufacturing variation shifts delta device-to-device).
  [[nodiscard]] double switching_probability(MicroAmp current, Nanosecond pulse,
                                             double delta) const;

  /// Bias current that achieves switching probability `p` for a fixed
  /// `pulse` width. Requires p in (0, 1); throws std::domain_error outside.
  [[nodiscard]] MicroAmp current_for_probability(double p, Nanosecond pulse) const;

  /// Mean switching time at a given overdrive current (thermal regime),
  /// tau = tau0 * exp(Delta * (1 - I/Ic0)).
  [[nodiscard]] Nanosecond mean_switching_time(MicroAmp current) const;

  [[nodiscard]] const MtjParams& params() const { return params_; }

 private:
  MtjParams params_;
};

}  // namespace neuspin::device
