#include "device/mtj.h"

#include <string>

namespace neuspin::device {

void MtjParams::validate() const {
  if (r_parallel <= 0.0) {
    throw std::invalid_argument("MtjParams: r_parallel must be positive, got " +
                                std::to_string(r_parallel));
  }
  if (tmr <= 0.0) {
    throw std::invalid_argument("MtjParams: tmr must be positive, got " +
                                std::to_string(tmr));
  }
  if (delta <= 0.0) {
    throw std::invalid_argument("MtjParams: delta must be positive, got " +
                                std::to_string(delta));
  }
  if (i_c0 <= 0.0) {
    throw std::invalid_argument("MtjParams: i_c0 must be positive, got " +
                                std::to_string(i_c0));
  }
  if (attempt_time <= 0.0) {
    throw std::invalid_argument("MtjParams: attempt_time must be positive");
  }
  if (read_voltage <= 0.0) {
    throw std::invalid_argument("MtjParams: read_voltage must be positive");
  }
}

Mtj::Mtj(const MtjParams& params, MtjState initial)
    : params_(params),
      r_p_(params.r_parallel),
      r_ap_(params.r_antiparallel()),
      delta_(params.delta),
      state_(initial) {
  params_.validate();
}

void Mtj::apply_resistance_variation(double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("Mtj: resistance variation factor must be positive");
  }
  r_p_ *= factor;
  r_ap_ *= factor;
}

void Mtj::set_delta(double delta) {
  if (delta <= 0.0) {
    throw std::invalid_argument("Mtj: delta must be positive");
  }
  delta_ = delta;
}

PicoJoule Mtj::read_energy(Nanosecond read_pulse) const {
  const Volt v = params_.read_voltage;
  const MicroAmp i = v / resistance() * 1000.0;  // V/kOhm = mA -> uA
  return joule_energy(v, i, read_pulse);
}

PicoJoule Mtj::write_energy(MicroAmp current, Nanosecond pulse) const {
  // I^2 * R: uA^2 * kOhm = (1e-6)^2 * 1e3 W = 1e-9 W; times ns (1e-9 s)
  // gives 1e-18 J = aJ; convert to pJ by dividing by 1e6.
  return current * current * resistance() * pulse / 1.0e6;
}

}  // namespace neuspin::device
