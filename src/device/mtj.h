// Magnetic Tunnel Junction (MTJ) device model.
//
// The MTJ is the fundamental storage/stochasticity element of the NeuSpin
// system (paper §II-A): two ferromagnetic layers (free + reference)
// separated by a tunnel barrier. The relative magnetization — Parallel (P)
// or Anti-Parallel (AP) — sets the device resistance through the tunnel
// magnetoresistance (TMR) effect.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "device/units.h"

namespace neuspin::device {

/// Magnetization state of the free layer relative to the reference layer.
enum class MtjState : std::uint8_t {
  kParallel,      ///< low-resistance state, encodes logic 0 / weight +1
  kAntiParallel,  ///< high-resistance state, encodes logic 1 / weight -1
};

/// Switching mechanism of the magnetic memory cell (paper §II-A).
enum class SwitchMechanism : std::uint8_t {
  kSpinTransferTorque,  ///< STT-MRAM: two-terminal, shared read/write path
  kSpinOrbitTorque,     ///< SOT-MRAM: three-terminal, separate read/write path
};

/// Nominal (design-time) parameters of an MTJ device.
///
/// Defaults follow published perpendicular STT/SOT-MRAM figures in the
/// 28nm-class node the paper's SPINTEC devices target: R_P of tens of kOhm,
/// TMR around 100-200%, thermal stability factor Delta around 40-60.
struct MtjParams {
  KiloOhm r_parallel = 6.0;      ///< resistance in the P state
  double tmr = 1.5;              ///< (R_AP - R_P) / R_P; R_AP = R_P * (1 + TMR)
  double delta = 45.0;           ///< thermal stability factor E_b / (k_B T)
  MicroAmp i_c0 = 40.0;          ///< critical switching current at 0 K
  Nanosecond attempt_time = 1.0; ///< inverse attempt frequency tau_0
  Volt read_voltage = 0.1;       ///< sense voltage used during reads
  SwitchMechanism mechanism = SwitchMechanism::kSpinOrbitTorque;

  /// Resistance in the AP state implied by R_P and TMR.
  [[nodiscard]] KiloOhm r_antiparallel() const { return r_parallel * (1.0 + tmr); }

  /// Throws std::invalid_argument when physically meaningless.
  void validate() const;
};

/// A single MTJ instance with its (possibly variation-shifted) resistances.
///
/// The class is deliberately cheap to copy: crossbars hold millions of
/// them. All stochastic behaviour (switching, variation) is injected from
/// outside so the device itself stays deterministic and testable.
class Mtj {
 public:
  Mtj() : Mtj(MtjParams{}) {}
  explicit Mtj(const MtjParams& params, MtjState initial = MtjState::kParallel);

  /// Device resistance in its current state.
  [[nodiscard]] KiloOhm resistance() const {
    return state_ == MtjState::kParallel ? r_p_ : r_ap_;
  }
  /// Device conductance in its current state.
  [[nodiscard]] MicroSiemens conductance() const {
    return conductance_from_kohm(resistance());
  }

  [[nodiscard]] MtjState state() const { return state_; }
  void set_state(MtjState s) { state_ = s; }

  /// Resistances of the two states (after any variation shift).
  [[nodiscard]] KiloOhm r_parallel() const { return r_p_; }
  [[nodiscard]] KiloOhm r_antiparallel() const { return r_ap_; }

  /// Scale both state resistances by `factor` (manufacturing variation).
  /// TMR is preserved; factor must be positive.
  void apply_resistance_variation(double factor);

  /// Thermal stability factor (possibly shifted by variation).
  [[nodiscard]] double delta() const { return delta_; }
  void set_delta(double delta);

  /// Nominal parameters this device was built from.
  [[nodiscard]] const MtjParams& params() const { return params_; }

  /// Energy dissipated by one read at the configured sense voltage:
  /// E = V^2 / R * t.
  [[nodiscard]] PicoJoule read_energy(Nanosecond read_pulse) const;

  /// Energy dissipated by one write pulse of amplitude `current`:
  /// E = I^2 * R * t (for STT; SOT uses the heavy-metal line resistance,
  /// see SotCell, but the same order of magnitude applies).
  [[nodiscard]] PicoJoule write_energy(MicroAmp current, Nanosecond pulse) const;

 private:
  MtjParams params_;
  KiloOhm r_p_;
  KiloOhm r_ap_;
  double delta_;
  MtjState state_;
};

}  // namespace neuspin::device
