#include "device/sot_cell.h"

#include <stdexcept>

namespace neuspin::device {

void SotCellParams::validate() const {
  mtj.validate();
  if (heavy_metal_resistance <= 0.0) {
    throw std::invalid_argument("SotCellParams: heavy_metal_resistance must be positive");
  }
  if (write_current <= 0.0 || write_pulse <= 0.0) {
    throw std::invalid_argument("SotCellParams: write current and pulse must be positive");
  }
}

SotCell::SotCell(const SotCellParams& params, MtjState initial)
    : params_(params), mtj_(params.mtj, initial) {
  params_.validate();
}

void SotCell::write(MtjState target) { mtj_.set_state(target); }

PicoJoule SotCell::write_energy() const {
  // uA^2 * kOhm * ns = aJ; 1e6 aJ per pJ.
  return params_.write_current * params_.write_current *
         params_.heavy_metal_resistance * params_.write_pulse / 1.0e6;
}

}  // namespace neuspin::device
