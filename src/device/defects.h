// Manufacturing defect models for MTJ arrays (paper §IV takeaway 4).
//
// Four defect classes are modeled, following the standard memory fault
// taxonomy adapted to resistive arrays:
//   * stuck-at-P  — pinhole in the barrier keeps the device low-resistive
//   * stuck-at-AP — blocked free layer keeps the device high-resistive
//   * open        — broken via; the cell contributes no conductance
//   * short       — bit-line short; the cell is a near-zero resistance
//
// A DefectMap is generated once per fabricated array from per-class rates
// and is then consulted by the crossbar on every read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "device/units.h"

namespace neuspin::device {

/// Kind of manufacturing defect affecting one cell.
enum class DefectKind : std::uint8_t {
  kNone,
  kStuckAtParallel,
  kStuckAtAntiParallel,
  kOpen,
  kShort,
};

/// Per-class defect rates (probability that any given cell has the defect).
struct DefectRates {
  double stuck_at_p = 0.0;
  double stuck_at_ap = 0.0;
  double open = 0.0;
  double short_circuit = 0.0;

  /// Total defect probability; throws std::invalid_argument if rates are
  /// negative or sum above 1.
  [[nodiscard]] double total() const;
  void validate() const;
};

/// Dense map of defects for a rows x cols array.
class DefectMap {
 public:
  /// Defect-free map.
  DefectMap(std::size_t rows, std::size_t cols);

  /// Randomly generated map with the given per-class rates.
  DefectMap(std::size_t rows, std::size_t cols, const DefectRates& rates,
            std::uint64_t seed);

  [[nodiscard]] DefectKind at(std::size_t row, std::size_t col) const {
    return cells_[row * cols_ + col];
  }
  void set(std::size_t row, std::size_t col, DefectKind kind) {
    cells_[row * cols_ + col] = kind;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Number of cells whose defect kind is not kNone.
  [[nodiscard]] std::size_t defect_count() const;

  /// Effective conductance of a cell given its healthy conductances.
  /// Healthy cells return `healthy`; stuck-at cells return the state-forced
  /// conductance; opens return 0; shorts return `short_conductance`.
  [[nodiscard]] MicroSiemens effective_conductance(std::size_t row, std::size_t col,
                                                   MicroSiemens healthy,
                                                   MicroSiemens g_parallel,
                                                   MicroSiemens g_antiparallel,
                                                   MicroSiemens short_conductance) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<DefectKind> cells_;
};

}  // namespace neuspin::device
