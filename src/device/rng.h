// Spintronic true-random-number generation (paper §III-A.1, SpinDrop).
//
// The generator runs the SET -> read -> RESET loop the paper describes:
//  1. a calibrated sub-critical SET pulse flips the MTJ with probability p,
//  2. a sense-amplifier read detects whether the switch occurred — this bit
//     *is* the dropout signal,
//  3. a deterministic over-critical RESET pulse returns the device to P.
//
// The bias current for a requested p comes from SwitchingModel's inverse.
// Device-to-device variation makes the *realized* probability of each
// physical module deviate from the target — exactly the effect the
// SpinScaleDrop Gaussian-fitted dropout probability models — so the module
// optionally accepts a variation-shifted Delta.
//
// Energy accounting: every generated bit costs one SET pulse, one read and
// one RESET pulse; `energy_per_bit()` exposes the total so architecture
// models can charge RNG energy truthfully.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <random>
#include <vector>

#include "device/mtj.h"
#include "device/switching.h"
#include "device/units.h"

namespace neuspin::device {

/// Configuration of one stochastic MTJ RNG module.
struct SpinRngConfig {
  MtjParams mtj;                  ///< device the module is built around
  double target_probability = 0.5;///< requested P(bit == 1)
  Nanosecond set_pulse = 2.0;     ///< width of the stochastic SET pulse
  Nanosecond read_pulse = 1.0;    ///< width of the verification read
  Nanosecond reset_pulse = 3.0;   ///< width of the deterministic RESET
  MicroAmp reset_current = 120.0; ///< over-critical reset amplitude
  /// Optional variation-shifted thermal stability factor; 0 keeps nominal.
  double delta_override = 0.0;

  void validate() const;
};

/// One SET/read/RESET stochastic bitstream generator.
class SpinRng {
 public:
  SpinRng(const SpinRngConfig& config, std::uint64_t seed);

  /// Generate one random bit (true == "switched" == dropout asserted).
  [[nodiscard]] bool next_bit();

  /// Generate `count` bits as a packed vector.
  [[nodiscard]] std::vector<bool> bitstream(std::size_t count);

  /// Probability the physical module actually realizes, after accounting
  /// for the (possibly variation-shifted) thermal stability factor.
  [[nodiscard]] double realized_probability() const { return realized_p_; }

  /// Bias current the calibration chose for the target probability.
  [[nodiscard]] MicroAmp bias_current() const { return bias_current_; }

  /// Energy of one full SET + read + RESET bit-generation cycle.
  [[nodiscard]] PicoJoule energy_per_bit() const;

  /// Latency of one bit-generation cycle.
  [[nodiscard]] Nanosecond latency_per_bit() const;

  /// Total bits generated so far (for energy ledgers).
  [[nodiscard]] std::uint64_t bits_generated() const { return bits_generated_; }

  /// Reset the module's entropy stream (per-pass reproducibility of the
  /// Monte-Carlo evaluator). Calibration and bit counters are untouched.
  void reseed(std::uint64_t seed) { engine_.seed(seed); }

  /// Serialize / restore the module's entropy stream mid-run (engine,
  /// distribution carry state, bit counter) as text, so a checkpointed
  /// training run resumes the stream bitwise. Calibration (realized
  /// probability, bias current) is derived from config and not stored.
  void save_stream(std::ostream& out) const {
    out << engine_ << '\n' << uniform_ << '\n' << bits_generated_ << '\n';
  }
  void load_stream(std::istream& in) {
    in >> engine_ >> uniform_ >> bits_generated_;
  }

  [[nodiscard]] const SpinRngConfig& config() const { return config_; }

 private:
  SpinRngConfig config_;
  SwitchingModel model_;
  Mtj device_;
  double realized_p_;
  MicroAmp bias_current_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::uint64_t bits_generated_ = 0;
};

/// Statistical quality summary of a bitstream (used by tests and the
/// substrate benchmark to show the module behaves as a Bernoulli source).
struct BitstreamStats {
  double mean = 0.0;            ///< fraction of ones
  double lag1_autocorr = 0.0;   ///< lag-1 autocorrelation
  std::size_t longest_run = 0;  ///< longest run of identical bits
};

/// Compute quality statistics over a bitstream.
[[nodiscard]] BitstreamStats analyze_bitstream(const std::vector<bool>& bits);

}  // namespace neuspin::device
