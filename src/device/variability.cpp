#include "device/variability.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuspin::device {

void VariabilityParams::validate() const {
  if (resistance_sigma < 0.0 || delta_sigma < 0.0 || read_noise_sigma < 0.0) {
    throw std::invalid_argument("VariabilityParams: sigmas must be non-negative");
  }
}

VariabilityModel::VariabilityModel(const VariabilityParams& params, std::uint64_t seed)
    : params_(params), engine_(seed) {
  params_.validate();
}

double VariabilityModel::sample_resistance_factor() {
  if (params_.resistance_sigma == 0.0) {
    return 1.0;
  }
  return std::exp(params_.resistance_sigma * unit_normal_(engine_));
}

double VariabilityModel::sample_delta(double nominal_delta) {
  const double delta = nominal_delta + params_.delta_sigma * unit_normal_(engine_);
  return std::max(delta, 1.0);
}

double VariabilityModel::sample_read_noise() {
  if (params_.read_noise_sigma == 0.0) {
    return 1.0;
  }
  // Clamp at a small positive floor so conductance never flips sign.
  return std::max(1.0 + params_.read_noise_sigma * unit_normal_(engine_), 0.01);
}

void VariabilityModel::perturb(Mtj& mtj) {
  mtj.apply_resistance_variation(sample_resistance_factor());
  mtj.set_delta(sample_delta(mtj.params().delta));
}

}  // namespace neuspin::device
