// Three-terminal SOT-MRAM cell (paper §II-A).
//
// Unlike the two-terminal STT device, the SOT cell writes by passing a
// current through the heavy-metal track *under* the MTJ and reads through
// the junction itself. The separation matters architecturally:
//   * reads never disturb the stored state (no read-disturb),
//   * the junction resistance can be engineered to several MOhm, which is
//     what makes analog matrix-vector multiplication in crossbars practical
//     (small read currents, large dynamic range).
#pragma once

#include "device/mtj.h"
#include "device/units.h"

namespace neuspin::device {

/// Parameters specific to the three-terminal SOT structure.
struct SotCellParams {
  MtjParams mtj;                     ///< junction on top of the track
  KiloOhm heavy_metal_resistance = 1.0;  ///< write-path track resistance
  MicroAmp write_current = 150.0;    ///< amplitude for deterministic writes
  Nanosecond write_pulse = 1.0;      ///< sub-ns..ns switching, SOT is fast

  void validate() const;
};

/// A single SOT bit cell with separated read and write paths.
class SotCell {
 public:
  explicit SotCell(const SotCellParams& params,
                   MtjState initial = MtjState::kParallel);

  /// Deterministic write through the heavy-metal track. The junction is
  /// untouched electrically; only its free layer flips.
  void write(MtjState target);

  /// Read the cell conductance through the junction path.
  [[nodiscard]] MicroSiemens read_conductance() const { return mtj_.conductance(); }

  [[nodiscard]] MtjState state() const { return mtj_.state(); }

  /// Energy of one deterministic write: I^2 * R_track * t. Note the track
  /// resistance, not the junction resistance, sets the write energy — this
  /// is why SOT writes are cheap even for MOhm-class junctions.
  [[nodiscard]] PicoJoule write_energy() const;

  /// Energy of one read through the junction at the sense voltage.
  [[nodiscard]] PicoJoule read_energy(Nanosecond read_pulse) const {
    return mtj_.read_energy(read_pulse);
  }

  /// Mutable access for variation/defect injection.
  [[nodiscard]] Mtj& junction() { return mtj_; }
  [[nodiscard]] const Mtj& junction() const { return mtj_; }

  [[nodiscard]] const SotCellParams& params() const { return params_; }

 private:
  SotCellParams params_;
  Mtj mtj_;
};

}  // namespace neuspin::device
