#include "device/multilevel.h"

#include <limits>
#include <stdexcept>
#include <string>

namespace neuspin::device {

MultiLevelCell::MultiLevelCell(const MtjParams& params, std::size_t junction_count,
                               MultiLevelSizing sizing)
    : sizing_(sizing) {
  if (junction_count == 0) {
    throw std::invalid_argument("MultiLevelCell: junction_count must be >= 1");
  }
  if (sizing == MultiLevelSizing::kBinaryWeighted && junction_count > 16) {
    throw std::invalid_argument(
        "MultiLevelCell: binary-weighted cells beyond 16 junctions are not practical");
  }
  junctions_.reserve(junction_count);
  for (std::size_t i = 0; i < junction_count; ++i) {
    junctions_.emplace_back(params, MtjState::kAntiParallel);
  }
  program(0);
}

std::size_t MultiLevelCell::level_count() const {
  if (sizing_ == MultiLevelSizing::kUniform) {
    return junctions_.size() + 1;
  }
  return std::size_t{1} << junctions_.size();
}

double MultiLevelCell::area_factor(std::size_t index) const {
  if (sizing_ == MultiLevelSizing::kUniform) {
    return 1.0;
  }
  return static_cast<double>(std::size_t{1} << index);
}

std::vector<MtjState> MultiLevelCell::states_for_level(std::size_t level) const {
  if (level >= level_count()) {
    throw std::out_of_range("MultiLevelCell: level " + std::to_string(level) +
                            " out of range (cell has " +
                            std::to_string(level_count()) + " levels)");
  }
  std::vector<MtjState> states(junctions_.size(), MtjState::kAntiParallel);
  if (sizing_ == MultiLevelSizing::kUniform) {
    // Thermometer code: the first `level` junctions are parallel.
    for (std::size_t i = 0; i < level; ++i) {
      states[i] = MtjState::kParallel;
    }
  } else {
    // Binary code: bit k of `level` selects junction k's state.
    for (std::size_t i = 0; i < junctions_.size(); ++i) {
      if ((level >> i) & 1u) {
        states[i] = MtjState::kParallel;
      }
    }
  }
  return states;
}

void MultiLevelCell::program(std::size_t level) {
  const auto states = states_for_level(level);
  for (std::size_t i = 0; i < junctions_.size(); ++i) {
    junctions_[i].set_state(states[i]);
  }
  level_ = level;
}

MicroSiemens MultiLevelCell::conductance() const {
  MicroSiemens total = 0.0;
  for (std::size_t i = 0; i < junctions_.size(); ++i) {
    // A larger-area junction has proportionally lower resistance, i.e.
    // proportionally higher conductance.
    total += junctions_[i].conductance() * area_factor(i);
  }
  return total;
}

MicroSiemens MultiLevelCell::conductance_at(std::size_t level) const {
  const auto states = states_for_level(level);
  MicroSiemens total = 0.0;
  for (std::size_t i = 0; i < junctions_.size(); ++i) {
    const Mtj& j = junctions_[i];
    const KiloOhm r =
        states[i] == MtjState::kParallel ? j.r_parallel() : j.r_antiparallel();
    total += conductance_from_kohm(r) * area_factor(i);
  }
  return total;
}

MicroSiemens MultiLevelCell::level_step() const {
  MicroSiemens step = std::numeric_limits<double>::infinity();
  for (std::size_t level = 1; level < level_count(); ++level) {
    const MicroSiemens gap = conductance_at(level) - conductance_at(level - 1);
    if (gap > 0.0 && gap < step) {
      step = gap;
    }
  }
  return step;
}

std::size_t MultiLevelCell::pulses_to_program(std::size_t target) const {
  const auto current = states_for_level(level_);
  const auto wanted = states_for_level(target);
  std::size_t pulses = 0;
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i] != wanted[i]) {
      ++pulses;
    }
  }
  return pulses;
}

}  // namespace neuspin::device
