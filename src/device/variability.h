// Manufacturing and in-field variability models (paper §II, §IV takeaway 4:
// "Modeling defects in Devices").
//
// Device-to-device variation: tunnel-barrier thickness variation makes the
// resistance log-normally distributed around its design value; the thermal
// stability factor Delta is approximately Gaussian. Cycle-to-cycle variation
// perturbs each read with a small Gaussian conductance noise.
//
// All draws flow through a caller-supplied engine so that experiments are
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

#include "device/mtj.h"
#include "device/units.h"

namespace neuspin::device {

/// Parameters of the device-to-device / cycle-to-cycle variation model.
struct VariabilityParams {
  /// Sigma of ln(R) for device-to-device resistance variation. A value of
  /// 0.05 corresponds to ~5% resistance spread, typical of mature MRAM.
  double resistance_sigma = 0.05;
  /// Absolute Gaussian sigma on the thermal stability factor Delta.
  double delta_sigma = 2.0;
  /// Relative Gaussian sigma applied per read (cycle-to-cycle noise).
  double read_noise_sigma = 0.01;

  void validate() const;
};

/// Draws per-device and per-cycle perturbations.
class VariabilityModel {
 public:
  explicit VariabilityModel(const VariabilityParams& params, std::uint64_t seed);

  /// Multiplicative log-normal factor for a device's resistances.
  [[nodiscard]] double sample_resistance_factor();

  /// A device's thermal stability factor, Gaussian around the nominal value
  /// and clamped to stay physical (>= 1).
  [[nodiscard]] double sample_delta(double nominal_delta);

  /// Multiplicative per-read conductance noise factor (mean 1).
  [[nodiscard]] double sample_read_noise();

  /// Apply device-to-device variation to an MTJ in place.
  void perturb(Mtj& mtj);

  [[nodiscard]] const VariabilityParams& params() const { return params_; }

 private:
  VariabilityParams params_;
  std::mt19937_64 engine_;
  std::normal_distribution<double> unit_normal_{0.0, 1.0};
};

}  // namespace neuspin::device
