#include "nn/optim.h"

#include <cmath>
#include <stdexcept>

namespace neuspin::nn {

Optimizer::Optimizer(std::vector<ParamRef> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    if (p.value == nullptr || p.grad == nullptr) {
      throw std::invalid_argument("Optimizer: null parameter reference");
    }
    if (p.value->shape() != p.grad->shape()) {
      throw std::invalid_argument("Optimizer: value/grad shape mismatch");
    }
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) {
    p.grad->fill(0.0f);
  }
}

std::size_t Optimizer::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : params_) {
    n += p.value->numel();
  }
  return n;
}

Sgd::Sgd(std::vector<ParamRef> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p.value->shape());
  }
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& value = *params_[k].value;
    Tensor& grad = *params_[k].grad;
    Tensor& vel = velocity_[k];
    for (std::size_t i = 0; i < value.numel(); ++i) {
      const float g = grad[i] + weight_decay_ * value[i];
      vel[i] = momentum_ * vel[i] + g;
      value[i] -= lr_ * vel[i];
    }
    grad.fill(0.0f);
  }
}

Adam::Adam(std::vector<ParamRef> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& value = *params_[k].value;
    Tensor& grad = *params_[k].grad;
    for (std::size_t i = 0; i < value.numel(); ++i) {
      const float g = grad[i];
      m_[k][i] = beta1_ * m_[k][i] + (1.0f - beta1_) * g;
      v_[k][i] = beta2_ * v_[k][i] + (1.0f - beta2_) * g * g;
      const float mhat = m_[k][i] / bc1;
      const float vhat = v_[k][i] / bc2;
      // Decoupled decay (AdamW) pulls on the PRE-update parameter, per
      // Loshchilov & Hutter: theta -= lr * (adam_update + wd * theta).
      const float decay = weight_decay_ != 0.0f ? lr_ * weight_decay_ * value[i] : 0.0f;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ != 0.0f) {
        value[i] -= decay;
      }
    }
    grad.fill(0.0f);
  }
}

float global_grad_norm(const std::vector<ParamRef>& params) {
  double sum = 0.0;
  for (const auto& p : params) {
    const Tensor& grad = *p.grad;
    for (std::size_t i = 0; i < grad.numel(); ++i) {
      sum += static_cast<double>(grad[i]) * static_cast<double>(grad[i]);
    }
  }
  return static_cast<float>(std::sqrt(sum));
}

float clip_grad_norm(const std::vector<ParamRef>& params, float max_norm) {
  const float norm = global_grad_norm(params);
  if (max_norm <= 0.0f || norm <= max_norm || norm == 0.0f) {
    return norm;
  }
  const float scale = max_norm / norm;
  for (const auto& p : params) {
    *p.grad *= scale;
  }
  return norm;
}

StepDecay::StepDecay(float initial_lr, float factor, std::size_t period)
    : initial_lr_(initial_lr), factor_(factor), period_(period) {
  if (initial_lr <= 0.0f || factor <= 0.0f || period == 0) {
    throw std::invalid_argument("StepDecay: invalid schedule parameters");
  }
}

float StepDecay::lr_for_epoch(std::size_t epoch) const {
  return initial_lr_ * std::pow(factor_, static_cast<float>(epoch / period_));
}

}  // namespace neuspin::nn
