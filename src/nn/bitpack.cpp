#include "nn/bitpack.h"

#include <atomic>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "nn/simd.h"
#include "obs/metrics.h"

namespace neuspin::nn {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      lanes_((cols + 63) / 64),
      bits_(rows * lanes_, 0),
      mask_(rows * lanes_, 0),
      nvalid_(rows, 0) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("BitMatrix: rows and cols must be positive");
  }
}

void BitMatrix::finalize_row_counts() {
  dense_ = true;
  for (std::size_t i = 0; i < rows_; ++i) {
    std::uint32_t n = 0;
    for (std::size_t l = 0; l < lanes_; ++l) {
      n += static_cast<std::uint32_t>(std::popcount(mask_[i * lanes_ + l]));
    }
    nvalid_[i] = n;
    dense_ = dense_ && n == cols_;
  }
}

BitMatrix BitMatrix::pack_rows_sign(const Tensor& t) {
  if (t.rank() != 2) {
    throw std::invalid_argument("BitMatrix::pack_rows_sign: expected rank-2, got " +
                                shape_to_string(t.shape()));
  }
  BitMatrix out(t.dim(0), t.dim(1));
  // Packing runs on every inference forward, so it goes through the
  // dispatched (branchless, vectorizable) kernels like the GEMMs do.
  simd::kernels().pack_sign(t.data().data(), out.rows_, out.cols_, out.lanes_,
                            out.bits_.data(), out.mask_.data());
  out.finalize_row_counts();
  return out;
}

std::optional<BitMatrix> BitMatrix::try_pack_rows(const Tensor& t) {
  if (t.rank() != 2) {
    throw std::invalid_argument("BitMatrix::try_pack_rows: expected rank-2, got " +
                                shape_to_string(t.shape()));
  }
  BitMatrix out(t.dim(0), t.dim(1));
  if (simd::kernels().pack_ternary(t.data().data(), out.rows_, out.cols_,
                                   out.lanes_, out.bits_.data(),
                                   out.mask_.data()) != 0) {
    return std::nullopt;  // a non-ternary element: kAuto falls back to float
  }
  out.finalize_row_counts();
  return out;
}

Tensor BitMatrix::unpack() const {
  Tensor out({rows_, cols_});
  float* dst = out.data().data();
  for (std::size_t i = 0; i < rows_; ++i) {
    const std::uint64_t* vrow = bits_.data() + i * lanes_;
    const std::uint64_t* mrow = mask_.data() + i * lanes_;
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::uint64_t bit = std::uint64_t{1} << (j % 64);
      if ((mrow[j / 64] & bit) == 0) {
        dst[i * cols_ + j] = 0.0f;
      } else {
        dst[i * cols_ + j] = (vrow[j / 64] & bit) != 0 ? 1.0f : -1.0f;
      }
    }
  }
  return out;
}

Tensor bgemm(const BitMatrix& x, const BitMatrix& w_cols, const Tensor* alpha,
             const Tensor* bias) {
  if (x.cols() != w_cols.cols()) {
    throw std::invalid_argument("bgemm: K mismatch, x has " +
                                std::to_string(x.cols()) + " cols, w has " +
                                std::to_string(w_cols.cols()));
  }
  if (!w_cols.dense()) {
    throw std::invalid_argument(
        "bgemm: the weight operand must be dense ±1 (sign-packed)");
  }
  const std::size_t m = x.rows();
  const std::size_t n = w_cols.rows();
  if ((alpha == nullptr) != (bias == nullptr)) {
    throw std::invalid_argument("bgemm: alpha and bias must be given together");
  }
  if (alpha != nullptr && (alpha->numel() != n || bias->numel() != n)) {
    throw std::invalid_argument("bgemm: alpha/bias must have one entry per "
                                "output column");
  }
  static obs::Counter& calls = obs::Registry::global().counter("nn.bgemm.calls");
  calls.inc();
  Tensor out({m, n});
  simd::kernels().bgemm(x.value_bits(), x.dense() ? nullptr : x.mask_bits(),
                        x.row_nvalid(), w_cols.value_bits(), out.data().data(),
                        m, n, x.lanes(),
                        alpha != nullptr ? alpha->data().data() : nullptr,
                        bias != nullptr ? bias->data().data() : nullptr);
  return out;
}

std::uint64_t tensor_fingerprint(const Tensor& t) {
  // Eight interleaved FNV-1a 64 streams over 8-byte words (memcpy keeps
  // the loads alias-safe), folded together with one more FNV pass at the
  // end. A single stream's multiply chain is latency-bound at ~5 cycles
  // per word — too slow for a check that runs on every inference forward;
  // eight independent chains keep the multiplier port saturated instead.
  // Shape participates so a reshape with identical bytes still repacks.
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t word) {
    h ^= word;
    h *= kPrime;
  };
  for (std::size_t d : t.shape()) {
    mix(static_cast<std::uint64_t>(d));
  }
  const float* data = t.data().data();
  const std::size_t n = t.numel();
  std::uint64_t s[8] = {kOffset ^ 1, kOffset ^ 2, kOffset ^ 3, kOffset ^ 4,
                        kOffset ^ 5, kOffset ^ 6, kOffset ^ 7, kOffset ^ 8};
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (std::size_t k = 0; k < 8; ++k) {
      std::uint64_t word;
      std::memcpy(&word, data + i + 2 * k, sizeof(word));
      s[k] = (s[k] ^ word) * kPrime;
    }
  }
  for (; i + 2 <= n; i += 2) {
    std::uint64_t word;
    std::memcpy(&word, data + i, sizeof(word));
    s[0] = (s[0] ^ word) * kPrime;
  }
  if (i < n) {
    std::uint32_t word;
    std::memcpy(&word, data + i, sizeof(word));
    s[1] = (s[1] ^ word) * kPrime;
  }
  for (std::uint64_t stream : s) {
    mix(stream);
  }
  return h;
}

namespace {
std::atomic<bool> g_patch_cache{true};
}  // namespace

bool patch_cache_enabled() {
  return g_patch_cache.load(std::memory_order_relaxed);
}

void set_patch_cache_enabled(bool enabled) {
  g_patch_cache.store(enabled, std::memory_order_relaxed);
}

}  // namespace neuspin::nn
