// Bit-packed operands and the XNOR/popcount GEMM of the binary layers.
//
// A BinaryDense/BinaryConv2d forward multiplies activations in
// {-1, 0, +1} (sign activations, SpinDrop zeros, im2col padding zeros)
// against sign(W) in {-1, +1}. BitMatrix packs such a matrix into two
// bit planes of 64 columns per u64 lane:
//
//   value bit = 1  <=>  element == +1
//   mask  bit = 1  <=>  element != 0
//
// so a signed dot product against a dense ±1 row collapses to
//
//   dot = nvalid - 2 * popcount((xv ^ wv) & xm)
//
// with nvalid = popcount(mask row): matching masked bits contribute +1,
// differing ones -1, masked-out positions exactly 0. Pad bits beyond
// `cols` are zero in BOTH planes, so ragged K can never leak into a
// popcount. The integer dot is exact; converting it to float and applying
// the XNOR-Net epilogue out = dot * alpha + bias rounds exactly once per
// step — the same expression, in the same order, as the float-materialized
// path, whose ascending-k ±1 accumulation also keeps every partial sum an
// exact small integer (requires K < 2^24; the paper's layers are ≤ 512).
// That is why bgemm is pinned BITWISE equal to the float oracle rather
// than merely close.
//
// bgemm executes through the runtime-dispatched kernel tier (nn/simd.h).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/tensor.h"

namespace neuspin::nn {

/// Two-plane bit-packed matrix: `rows` x `cols` values in {-1, 0, +1},
/// 64 columns per u64 lane, row-major lanes.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Pack sign bits of a rank-2 tensor row-wise: bit = (v >= 0), mask
  /// full — the paper's sign quantization (sign_of maps 0 to +1).
  [[nodiscard]] static BitMatrix pack_rows_sign(const Tensor& t);

  /// Pack a rank-2 tensor row-wise ONLY if every element is exactly
  /// -1.0f, 0.0f (either sign) or +1.0f; nullopt otherwise. This is the
  /// kAuto gate: real-valued activations fall back to the float path
  /// instead of being silently quantized.
  [[nodiscard]] static std::optional<BitMatrix> try_pack_rows(const Tensor& t);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  /// True when every element is ±1 (mask planes all-ones): the kernels
  /// then skip the mask AND entirely.
  [[nodiscard]] bool dense() const { return dense_; }

  [[nodiscard]] const std::uint64_t* value_bits() const { return bits_.data(); }
  [[nodiscard]] const std::uint64_t* mask_bits() const { return mask_.data(); }
  /// Per-row nonzero count (popcount of the row's mask plane).
  [[nodiscard]] const std::uint32_t* row_nvalid() const { return nvalid_.data(); }

  /// Unpack back to floats (+1 / -1 / 0) — test/debug helper.
  [[nodiscard]] Tensor unpack() const;

 private:
  BitMatrix(std::size_t rows, std::size_t cols);
  void finalize_row_counts();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t lanes_ = 0;
  bool dense_ = false;
  std::vector<std::uint64_t> bits_;
  std::vector<std::uint64_t> mask_;
  std::vector<std::uint32_t> nvalid_;
};

/// out(i, j) = sum_k x(i, k) * w_col_j(k), with the RHS supplied as one
/// packed DENSE ±1 row per output column (`w_cols.rows()` = output
/// columns, `w_cols.cols()` = K) — i.e. the packed transpose of the
/// (K x n) weight operand, or equivalently the packed rows of an (n x K)
/// one. When `alpha` is non-null the XNOR-Net epilogue
/// out = dot * alpha[j] + bias[j] folds in (alpha/bias length n).
/// Increments the obs counter `nn.bgemm.calls`.
[[nodiscard]] Tensor bgemm(const BitMatrix& x, const BitMatrix& w_cols,
                           const Tensor* alpha, const Tensor* bias);

/// 64-bit FNV-1a over a tensor's raw float bytes. Used to key packed
/// weight caches: repack-on-mutate without write hooks (latent_weight()
/// hands out a mutable reference, so mutations cannot be observed
/// directly). A collision would serve stale weights; at 2^-64 per
/// comparison that is far below any hardware-error rate this simulator
/// models.
[[nodiscard]] std::uint64_t tensor_fingerprint(const Tensor& t);

/// Process-wide switch for the consecutive-duplicate inference cache of
/// the binary layers (the fused Monte-Carlo path stacks each request T
/// times in a row; the layers compute unique rows/images once and copy
/// the results). On by default; the off position exists for the
/// patch-cache bench leg and the cache-on-vs-off equivalence tests.
/// Deterministic layers make the copied rows bitwise identical to
/// recomputation, so this toggle can never change a result.
[[nodiscard]] bool patch_cache_enabled();
void set_patch_cache_enabled(bool enabled);

}  // namespace neuspin::nn
