// Model checkpointing: save/load all learnable parameters and persistent
// state (batch-norm running statistics) of a Sequential to a simple
// versioned binary format. Loading validates every tensor's shape against
// the receiving model, so architecture mismatches fail loudly instead of
// silently corrupting weights.
#pragma once

#include <string>

#include "nn/model.h"

namespace neuspin::nn {

/// Serialize parameters + state of `model` to `path`.
/// Throws std::runtime_error on I/O failure.
void save_checkpoint(Sequential& model, const std::string& path);

/// Restore parameters + state from `path` into `model`.
/// Throws std::runtime_error on I/O failure or shape/count mismatch.
void load_checkpoint(Sequential& model, const std::string& path);

}  // namespace neuspin::nn
