// Model checkpointing: save/load all learnable parameters and persistent
// state (batch-norm running statistics) of a Sequential to a simple
// versioned binary format ("NSP1", unchanged since it was introduced).
//
// Loading is hardened against hostile or damaged files: every header
// field, shape and payload is validated BEFORE the model is touched, and
// the whole file is staged into scratch tensors first — a truncated,
// corrupt or wrong-architecture checkpoint throws a typed CheckpointError
// and leaves the model exactly as it was (no silent partial load).
//
// The stream-level primitives (write_u64/read_u64, write_tensor/
// read_tensor, write_string/read_string) are exposed so other subsystems
// can embed tensors in their own checkpoint formats with the same
// validation — train::Trainer's full-training-state checkpoints are built
// on them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "nn/model.h"

namespace neuspin::nn {

/// What went wrong with a checkpoint file.
enum class CheckpointFault : std::uint8_t {
  kIo,             ///< cannot open / OS write failure
  kBadMagic,       ///< not a checkpoint of the expected kind
  kTruncated,      ///< file ends before the format says it should
  kCountMismatch,  ///< tensor count differs from the receiving model
  kShapeMismatch,  ///< a tensor's rank/dims differ from the receiving model
  kBadHeader,      ///< header field out of range / config fingerprint mismatch
};

[[nodiscard]] std::string checkpoint_fault_name(CheckpointFault fault);

/// Typed checkpoint error. Derives from std::runtime_error so callers that
/// only catch the old bare error keep working; new callers branch on
/// fault() instead of parsing the message.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointFault fault, const std::string& detail);

  [[nodiscard]] CheckpointFault fault() const { return fault_; }

 private:
  CheckpointFault fault_;
};

/// Serialize parameters + state of `model` to `path`.
/// Throws CheckpointError (kIo) on I/O failure.
void save_checkpoint(Sequential& model, const std::string& path);

/// Restore parameters + state from `path` into `model`. All-or-nothing:
/// throws CheckpointError on any fault (I/O, bad magic, truncation,
/// count/shape mismatch) with the model left untouched.
void load_checkpoint(Sequential& model, const std::string& path);

// ---- stream primitives (shared by the trainer's checkpoint format) ----

void write_u64(std::ostream& out, std::uint64_t v);
/// Read one u64; throws CheckpointError(kTruncated) naming `what` when the
/// stream ends first.
[[nodiscard]] std::uint64_t read_u64(std::istream& in, const std::string& what);

/// Tensor blob: u64 rank, u64 dims, raw float payload (the NSP1 per-tensor
/// layout).
void write_tensor(std::ostream& out, const Tensor& tensor);
/// Read one tensor blob into `into`: rank/dims are validated against the
/// receiving tensor BEFORE any payload is read, and the payload is staged
/// so a truncated file never leaves `into` half-written. `what` names the
/// tensor in error messages.
void read_tensor(std::istream& in, Tensor& into, const std::string& what);

/// Length-prefixed byte string (u64 length + raw bytes).
void write_string(std::ostream& out, const std::string& s);
/// Read one length-prefixed string; `max_bytes` bounds the declared length
/// so a corrupt header cannot demand an absurd allocation.
[[nodiscard]] std::string read_string(std::istream& in, std::uint64_t max_bytes,
                                      const std::string& what);

}  // namespace neuspin::nn
