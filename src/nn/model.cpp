#include "nn/model.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "train/trainer.h"

namespace neuspin::nn {

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t salt) {
  // splitmix64 (Steele et al.) over base + salt * odd constant: full-period
  // scrambling, so nearby (base, salt) pairs give unrelated streams.
  std::uint64_t z = base + salt * 0x9e3779b97f4a7c15ull + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::pair<Tensor, std::vector<std::size_t>> Dataset::batch(std::size_t begin,
                                                           std::size_t end) const {
  if (begin >= end || end > size()) {
    throw std::out_of_range("Dataset::batch: invalid range");
  }
  const std::size_t per_sample = inputs.numel() / size();
  Shape batch_shape = inputs.shape();
  batch_shape[0] = end - begin;
  Tensor out(batch_shape);
  std::copy(inputs.data().begin() + static_cast<std::ptrdiff_t>(begin * per_sample),
            inputs.data().begin() + static_cast<std::ptrdiff_t>(end * per_sample),
            out.data().begin());
  std::vector<std::size_t> batch_labels(labels.begin() + static_cast<std::ptrdiff_t>(begin),
                                        labels.begin() + static_cast<std::ptrdiff_t>(end));
  return {std::move(out), std::move(batch_labels)};
}

std::pair<Tensor, std::vector<std::size_t>> Dataset::batch(
    std::span<const std::size_t> order, std::size_t begin, std::size_t end) const {
  if (begin >= end || end > order.size()) {
    throw std::out_of_range("Dataset::batch: invalid order range");
  }
  const std::size_t per_sample = inputs.numel() / size();
  Shape batch_shape = inputs.shape();
  batch_shape[0] = end - begin;
  Tensor out(batch_shape);
  std::vector<std::size_t> batch_labels(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t src = order[i];
    if (src >= size()) {
      throw std::out_of_range("Dataset::batch: order index out of range");
    }
    std::copy(
        inputs.data().begin() + static_cast<std::ptrdiff_t>(src * per_sample),
        inputs.data().begin() + static_cast<std::ptrdiff_t>((src + 1) * per_sample),
        out.data().begin() + static_cast<std::ptrdiff_t>((i - begin) * per_sample));
    batch_labels[i - begin] = labels[src];
  }
  return {std::move(out), std::move(batch_labels)};
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->forward(x, training);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) {
    auto cloned = layer->clone();
    if (cloned == nullptr) {
      throw std::logic_error("Sequential::clone: layer '" + layer->name() +
                             "' does not implement clone()");
    }
    copy.add(std::move(cloned));
  }
  return copy;
}

void Sequential::reseed(std::uint64_t seed) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->reseed(mix_seed(seed, i));
  }
}

void Sequential::reseed_rows(std::span<const std::uint64_t> row_seeds) {
  std::vector<std::uint64_t> mixed(row_seeds.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (std::size_t r = 0; r < row_seeds.size(); ++r) {
      mixed[r] = mix_seed(row_seeds[r], i);
    }
    layers_[i]->reseed_rows(mixed);
  }
}

void Sequential::save_rng_state(std::ostream& out) const {
  for (const auto& layer : layers_) {
    layer->save_rng_state(out);
  }
}

void Sequential::load_rng_state(std::istream& in) {
  for (auto& layer : layers_) {
    layer->load_rng_state(in);
  }
}

std::vector<ParamRef> Sequential::parameters() {
  std::vector<ParamRef> all;
  for (auto& layer : layers_) {
    auto p = layer->parameters();
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

std::vector<Tensor*> Sequential::state_tensors() {
  std::vector<Tensor*> all;
  for (auto& layer : layers_) {
    auto s = layer->state_tensors();
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

void Sequential::zero_grad() {
  for (auto& p : parameters()) {
    p.grad->fill(0.0f);
  }
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (const auto& p : parameters()) {
    n += p.value->numel();
  }
  return n;
}

std::vector<EpochStats> train_classifier(Sequential& model, const Dataset& train,
                                         const TrainConfig& config) {
  // Thin compatibility shim: the loop that used to live here moved to
  // train::Trainer. One shard + one worker selects the trainer's serial
  // path, which replays the historical loop bit for bit.
  neuspin::train::TrainerConfig tc;
  tc.epochs = config.epochs;
  tc.batch_size = config.batch_size;
  tc.lr = config.lr;
  tc.lr_decay = config.lr_decay;
  tc.lr_decay_period = config.lr_decay_period;
  tc.shuffle_seed = config.shuffle_seed;
  tc.verbose = config.verbose;
  tc.label_smoothing = config.label_smoothing;
  tc.regularizer = config.regularizer;
  tc.shards = 1;
  tc.workers = 1;
  neuspin::train::Trainer trainer(model, std::move(tc));
  return trainer.fit(train);
}

float evaluate_accuracy(Sequential& model, const Dataset& test) {
  if (test.size() == 0) {
    throw std::invalid_argument("evaluate_accuracy: empty dataset");
  }
  std::size_t correct = 0;
  const std::size_t batch_size = 64;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, test.size());
    auto [inputs, labels] = test.batch(begin, end);
    const Tensor logits = model.forward(inputs, /*training=*/false);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (argmax_row(logits, i) == labels[i]) {
        ++correct;
      }
    }
  }
  return static_cast<float>(correct) / static_cast<float>(test.size());
}

}  // namespace neuspin::nn
