#include "nn/model.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace neuspin::nn {

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t salt) {
  // splitmix64 (Steele et al.) over base + salt * odd constant: full-period
  // scrambling, so nearby (base, salt) pairs give unrelated streams.
  std::uint64_t z = base + salt * 0x9e3779b97f4a7c15ull + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::pair<Tensor, std::vector<std::size_t>> Dataset::batch(std::size_t begin,
                                                           std::size_t end) const {
  if (begin >= end || end > size()) {
    throw std::out_of_range("Dataset::batch: invalid range");
  }
  const std::size_t per_sample = inputs.numel() / size();
  Shape batch_shape = inputs.shape();
  batch_shape[0] = end - begin;
  Tensor out(batch_shape);
  std::copy(inputs.data().begin() + static_cast<std::ptrdiff_t>(begin * per_sample),
            inputs.data().begin() + static_cast<std::ptrdiff_t>(end * per_sample),
            out.data().begin());
  std::vector<std::size_t> batch_labels(labels.begin() + static_cast<std::ptrdiff_t>(begin),
                                        labels.begin() + static_cast<std::ptrdiff_t>(end));
  return {std::move(out), std::move(batch_labels)};
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->forward(x, training);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) {
    auto cloned = layer->clone();
    if (cloned == nullptr) {
      throw std::logic_error("Sequential::clone: layer '" + layer->name() +
                             "' does not implement clone()");
    }
    copy.add(std::move(cloned));
  }
  return copy;
}

void Sequential::reseed(std::uint64_t seed) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->reseed(mix_seed(seed, i));
  }
}

void Sequential::reseed_rows(std::span<const std::uint64_t> row_seeds) {
  std::vector<std::uint64_t> mixed(row_seeds.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (std::size_t r = 0; r < row_seeds.size(); ++r) {
      mixed[r] = mix_seed(row_seeds[r], i);
    }
    layers_[i]->reseed_rows(mixed);
  }
}

std::vector<ParamRef> Sequential::parameters() {
  std::vector<ParamRef> all;
  for (auto& layer : layers_) {
    auto p = layer->parameters();
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (const auto& p : parameters()) {
    n += p.value->numel();
  }
  return n;
}

namespace {

/// Reorder a dataset along the batch axis by `order`.
Dataset shuffled(const Dataset& data, const std::vector<std::size_t>& order) {
  const std::size_t per_sample = data.inputs.numel() / data.size();
  Dataset out;
  out.inputs = Tensor(data.inputs.shape());
  out.labels.resize(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t src = order[i];
    std::copy(
        data.inputs.data().begin() + static_cast<std::ptrdiff_t>(src * per_sample),
        data.inputs.data().begin() + static_cast<std::ptrdiff_t>((src + 1) * per_sample),
        out.inputs.data().begin() + static_cast<std::ptrdiff_t>(i * per_sample));
    out.labels[i] = data.labels[src];
  }
  return out;
}

}  // namespace

std::vector<EpochStats> train_classifier(Sequential& model, const Dataset& train,
                                         const TrainConfig& config) {
  if (train.size() == 0) {
    throw std::invalid_argument("train_classifier: empty dataset");
  }
  Adam optimizer(model.parameters(), config.lr);
  std::mt19937_64 shuffle_engine(config.shuffle_seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochStats> history;
  history.reserve(config.epochs);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.set_lr(config.lr *
                     std::pow(config.lr_decay,
                              static_cast<float>(epoch / std::max<std::size_t>(
                                                             config.lr_decay_period, 1))));
    std::shuffle(order.begin(), order.end(), shuffle_engine);
    const Dataset data = shuffled(train, order);

    EpochStats stats;
    std::size_t correct = 0;
    std::size_t steps = 0;
    for (std::size_t begin = 0; begin < data.size(); begin += config.batch_size) {
      const std::size_t end = std::min(begin + config.batch_size, data.size());
      auto [inputs, labels] = data.batch(begin, end);
      Tensor logits = model.forward(inputs, /*training=*/true);
      LossResult loss = softmax_cross_entropy(logits, labels, config.label_smoothing);
      if (config.regularizer) {
        loss.value += config.regularizer();
      }
      (void)model.backward(loss.grad);
      optimizer.step();

      stats.train_loss += loss.value;
      ++steps;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        std::size_t best = 0;
        for (std::size_t j = 1; j < logits.dim(1); ++j) {
          if (logits.at(i, j) > logits.at(i, best)) {
            best = j;
          }
        }
        if (best == labels[i]) {
          ++correct;
        }
      }
    }
    stats.train_loss /= static_cast<float>(std::max<std::size_t>(steps, 1));
    stats.train_accuracy = static_cast<float>(correct) / static_cast<float>(data.size());
    history.push_back(stats);
    if (config.verbose) {
      std::printf("epoch %zu: loss=%.4f acc=%.4f\n", epoch, stats.train_loss,
                  static_cast<double>(stats.train_accuracy));
    }
  }
  return history;
}

float evaluate_accuracy(Sequential& model, const Dataset& test) {
  if (test.size() == 0) {
    throw std::invalid_argument("evaluate_accuracy: empty dataset");
  }
  std::size_t correct = 0;
  const std::size_t batch_size = 64;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, test.size());
    auto [inputs, labels] = test.batch(begin, end);
    const Tensor logits = model.forward(inputs, /*training=*/false);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::size_t best = 0;
      for (std::size_t j = 1; j < logits.dim(1); ++j) {
        if (logits.at(i, j) > logits.at(i, best)) {
          best = j;
        }
      }
      if (best == labels[i]) {
        ++correct;
      }
    }
  }
  return static_cast<float>(correct) / static_cast<float>(test.size());
}

}  // namespace neuspin::nn
