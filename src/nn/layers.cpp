#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "nn/conv_lowering.h"

namespace neuspin::nn {

// ---------------------------------------------------------------- Dense ----

Dense::Dense(std::size_t in_features, std::size_t out_features, std::mt19937_64& engine)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::randn({in_features, out_features},
                            std::sqrt(2.0f / static_cast<float>(in_features)), engine)),
      bias_({out_features}),
      weight_grad_({in_features, out_features}),
      bias_grad_({out_features}) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense: expected (batch x " + std::to_string(in_) +
                                "), got " + shape_to_string(input.shape()));
  }
  input_cache_ = input;
  Tensor out = matmul(input, weight_);
  const std::size_t batch = out.dim(0);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      out.at(i, j) += bias_[j];
    }
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  // dW += x^T g ; db += sum_rows(g) ; dx = g W^T
  Tensor wg = matmul_a_transposed(input_cache_, grad_output);
  weight_grad_ += wg;
  const std::size_t batch = grad_output.dim(0);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      bias_grad_[j] += grad_output.at(i, j);
    }
  }
  return matmul_transposed(grad_output, weight_);
}

std::vector<ParamRef> Dense::parameters() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

// --------------------------------------------------------------- Conv2d ----

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t padding, std::mt19937_64& engine)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      padding_(padding),
      weight_(Tensor::randn(
          {out_channels, in_channels, kernel, kernel},
          std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel)), engine)),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels, kernel, kernel}),
      bias_grad_({out_channels}) {
  if (kernel == 0 || in_channels == 0 || out_channels == 0) {
    throw std::invalid_argument("Conv2d: channels and kernel must be positive");
  }
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2d: expected NCHW with C=" + std::to_string(in_ch_) +
                                ", got " + shape_to_string(input.shape()));
  }
  // Backward state is kept for training-mode forwards only: inference
  // (the serving hot path) would otherwise keep an O(N*OH*OW x C*k*k)
  // patch matrix resident per model clone between requests.
  input_shape_ = training ? input.shape() : Shape{};
  input_cache_ = Tensor();
  cols_cache_ = Tensor();
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);

  if (algo_ == Algo::kIm2col) {
    // Lowered path: one patch-matrix build, then the cache-blocked GEMM.
    // C is seeded with the bias so every output element accumulates
    // (bias, then ascending (ic, ky, kx) taps) — the direct loop's exact
    // term order; the kernel's zero-skip drops only the padding taps the
    // direct loop's bounds checks never visited.
    Tensor cols = im2col(input, kernel_, padding_);
    const std::size_t oh = h + 2 * padding_ - kernel_ + 1;
    const std::size_t ow = w + 2 * padding_ - kernel_ + 1;
    const Tensor wmat = detail::kernel_as_gemm_operand(weight_);
    Tensor out_rows({n * oh * ow, out_ch_});
    const auto bias = bias_.data();
    for (std::size_t p = 0; p < n * oh * ow; ++p) {
      std::copy(bias.begin(), bias.end(),
                out_rows.data().begin() + static_cast<std::ptrdiff_t>(p * out_ch_));
    }
    matmul_accumulate(cols, wmat, out_rows);
    if (training) {
      cols_cache_ = std::move(cols);  // the patch matrix replaces the input cache
    }
    return detail::rows_to_nchw(out_rows, n, out_ch_, oh, ow);
  }

  if (training) {
    input_cache_ = input;
  }
  const std::size_t oh = h + 2 * padding_ - kernel_ + 1;
  const std::size_t ow = w + 2 * padding_ - kernel_ + 1;
  Tensor out({n, out_ch_, oh, ow});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          float acc = bias_[oc];
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y + ky) - static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
                continue;
              }
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x + kx) - static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                  continue;
                }
                acc += input.at4(b, ic, static_cast<std::size_t>(iy),
                                 static_cast<std::size_t>(ix)) *
                       weight_.at4(oc, ic, ky, kx);
              }
            }
          }
          out.at4(b, oc, y, x) = acc;
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (input_shape_.size() != 4) {
    throw std::logic_error("Conv2d: backward before a training-mode forward");
  }
  const std::size_t n = input_shape_[0];
  const std::size_t h = input_shape_[2];
  const std::size_t w = input_shape_[3];
  const std::size_t oh = grad_output.dim(2);
  const std::size_t ow = grad_output.dim(3);
  const std::size_t taps = in_ch_ * kernel_ * kernel_;

  if (algo_ == Algo::kIm2col) {
    // dW = cols^T g ; db = column sums of g ; dx = col2im(g W).
    const Tensor g_rows = detail::nchw_to_rows(grad_output);
    const std::size_t rows = g_rows.dim(0);
    for (std::size_t p = 0; p < rows; ++p) {
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        const float g = g_rows.at(p, oc);
        if (g != 0.0f) {  // mirror the direct loop's zero-gradient skip
          bias_grad_[oc] += g;
        }
      }
    }
    const Tensor wg = matmul_a_transposed(cols_cache_, g_rows);  // (taps x oc)
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t r = 0; r < taps; ++r) {
        weight_grad_[oc * taps + r] += wg.at(r, oc);
      }
    }
    const Tensor dcols = matmul(g_rows, weight_.reshaped({out_ch_, taps}));
    return col2im(dcols, input_shape_, kernel_, padding_);
  }

  const Tensor& input = input_cache_;
  Tensor grad_input(input_shape_);
  // Pass 1: bias and weight gradients. Per (oc, tap) the terms arrive in
  // ascending (b, y, x) order — the row order of the lowered
  // matmul_a_transposed, so both algorithms accumulate identically.
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          const float g = grad_output.at4(b, oc, y, x);
          if (g == 0.0f) {
            continue;
          }
          bias_grad_[oc] += g;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y + ky) - static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
                continue;
              }
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x + kx) - static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                  continue;
                }
                weight_grad_.at4(oc, ic, ky, kx) +=
                    g * input.at4(b, ic, static_cast<std::size_t>(iy),
                                  static_cast<std::size_t>(ix));
              }
            }
          }
        }
      }
    }
  }
  // Pass 2: input gradient, gathered per patch tap with the output
  // channels reduced innermost — term for term the lowered matmul(g, W)
  // followed by col2im, so the two algorithms stay bitwise equal.
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        for (std::size_t ic = 0; ic < in_ch_; ++ic) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(y + ky) - static_cast<std::ptrdiff_t>(padding_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
              continue;
            }
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(x + kx) - static_cast<std::ptrdiff_t>(padding_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                continue;
              }
              float acc = 0.0f;
              for (std::size_t oc = 0; oc < out_ch_; ++oc) {
                const float g = grad_output.at4(b, oc, y, x);
                if (g == 0.0f) {
                  continue;
                }
                acc += g * weight_.at4(oc, ic, ky, kx);
              }
              grad_input.at4(b, ic, static_cast<std::size_t>(iy),
                             static_cast<std::size_t>(ix)) += acc;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> Conv2d::parameters() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

// ------------------------------------------------------------ MaxPool2d ----

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 4) {
    throw std::invalid_argument("MaxPool2d: expected NCHW, got " +
                                shape_to_string(input.shape()));
  }
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  const std::size_t c = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = h / 2;
  const std::size_t ow = w / 2;
  Tensor out({n, c, oh, ow});
  argmax_.assign(out.numel(), 0);
  std::size_t flat = 0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++flat) {
          float best = input.at4(b, ch, 2 * y, 2 * x);
          std::size_t best_idx = ((b * c + ch) * h + 2 * y) * w + 2 * x;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const float v = input.at4(b, ch, 2 * y + dy, 2 * x + dx);
              if (v > best) {
                best = v;
                best_idx = ((b * c + ch) * h + 2 * y + dy) * w + 2 * x + dx;
              }
            }
          }
          out.at4(b, ch, y, x) = best;
          argmax_[flat] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

// -------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

// ----------------------------------------------------------------- ReLU ----

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  input_cache_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = std::max(out[i], 0.0f);
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (input_cache_[i] <= 0.0f) {
      grad[i] = 0.0f;
    }
  }
  return grad;
}

// ------------------------------------------------------------- HardTanh ----

Tensor HardTanh::forward(const Tensor& input, bool /*training*/) {
  input_cache_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = std::clamp(out[i], -1.0f, 1.0f);
  }
  return out;
}

Tensor HardTanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (input_cache_[i] < -1.0f || input_cache_[i] > 1.0f) {
      grad[i] = 0.0f;
    }
  }
  return grad;
}

// ------------------------------------------------------- SignActivation ----

Tensor SignActivation::forward(const Tensor& input, bool /*training*/) {
  input_cache_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = out[i] >= 0.0f ? 1.0f : -1.0f;
  }
  return out;
}

Tensor SignActivation::backward(const Tensor& grad_output) {
  // Straight-through estimator with the |x| <= 1 window (Hubara et al.).
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (std::abs(input_cache_[i]) > 1.0f) {
      grad[i] = 0.0f;
    }
  }
  return grad;
}

// ------------------------------------------------------------ BatchNorm ----

BatchNorm::BatchNorm(std::size_t features, float momentum, float eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      gamma_({features}, 1.0f),
      beta_({features}),
      gamma_grad_({features}),
      beta_grad_({features}),
      running_mean_({features}),
      running_var_({features}, 1.0f),
      batch_std_({features}) {
  if (features == 0) {
    throw std::invalid_argument("BatchNorm: features must be positive");
  }
}

void BatchNorm::resolve_geometry(const Shape& shape, std::size_t& outer,
                                 std::size_t& inner) const {
  if (shape.size() == 2 && shape[1] == features_) {
    outer = shape[0];
    inner = 1;
    return;
  }
  if (shape.size() == 4 && shape[1] == features_) {
    outer = shape[0];
    inner = shape[2] * shape[3];
    return;
  }
  throw std::invalid_argument("BatchNorm(" + std::to_string(features_) +
                              "): unsupported input shape " + shape_to_string(shape));
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  std::size_t outer = 0;
  std::size_t inner = 0;
  resolve_geometry(input.shape(), outer, inner);
  input_shape_ = input.shape();
  const std::size_t count = outer * inner;

  Tensor out(input.shape());
  normalized_cache_ = Tensor(input.shape());

  for (std::size_t f = 0; f < features_; ++f) {
    float mean = 0.0f;
    float var = 0.0f;
    if (training) {
      for (std::size_t o = 0; o < outer; ++o) {
        for (std::size_t i = 0; i < inner; ++i) {
          mean += input[(o * features_ + f) * inner + i];
        }
      }
      mean /= static_cast<float>(count);
      for (std::size_t o = 0; o < outer; ++o) {
        for (std::size_t i = 0; i < inner; ++i) {
          const float d = input[(o * features_ + f) * inner + i] - mean;
          var += d * d;
        }
      }
      var /= static_cast<float>(count);
      running_mean_[f] = (1.0f - momentum_) * running_mean_[f] + momentum_ * mean;
      running_var_[f] = (1.0f - momentum_) * running_var_[f] + momentum_ * var;
    } else {
      mean = running_mean_[f];
      var = running_var_[f];
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    batch_std_[f] = std::sqrt(var + eps_);
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (o * features_ + f) * inner + i;
        const float norm = (input[idx] - mean) * inv_std;
        normalized_cache_[idx] = norm;
        out[idx] = gamma_[f] * norm + beta_[f];
      }
    }
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  std::size_t outer = 0;
  std::size_t inner = 0;
  resolve_geometry(input_shape_, outer, inner);
  const float count = static_cast<float>(outer * inner);

  Tensor grad_input(input_shape_);
  for (std::size_t f = 0; f < features_; ++f) {
    float sum_g = 0.0f;
    float sum_gx = 0.0f;
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (o * features_ + f) * inner + i;
        sum_g += grad_output[idx];
        sum_gx += grad_output[idx] * normalized_cache_[idx];
      }
    }
    gamma_grad_[f] += sum_gx;
    beta_grad_[f] += sum_g;
    const float scale = gamma_[f] / batch_std_[f];
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (o * features_ + f) * inner + i;
        grad_input[idx] = scale * (grad_output[idx] - sum_g / count -
                                   normalized_cache_[idx] * sum_gx / count);
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> BatchNorm::parameters() {
  return {{&gamma_, &gamma_grad_}, {&beta_, &beta_grad_}};
}

// -------------------------------------------------------------- Dropout ----

Dropout::Dropout(float probability, std::uint64_t seed)
    : p_(probability), engine_(seed) {
  if (probability < 0.0f || probability >= 1.0f) {
    throw std::invalid_argument("Dropout: probability must lie in [0,1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  const bool active = training || mc_mode_;
  if (!active || p_ == 0.0f) {
    mask_ = Tensor(input.shape(), 1.0f);
    return input;
  }
  const float scale = 1.0f / (1.0f - p_);
  mask_ = Tensor(input.shape());
  Tensor out = input;
  if (!row_seeds_.empty()) {
    // Row mode: each row draws from its own freshly seeded stream, exactly
    // like a batch-of-one forward after reseed(row_seeds_[r]).
    const std::size_t batch = input.dim(0);
    if (batch != row_seeds_.size()) {
      throw std::invalid_argument("Dropout: row-seed count does not match batch");
    }
    const std::size_t per_row = input.numel() / batch;
    for (std::size_t r = 0; r < batch; ++r) {
      engine_.seed(row_seeds_[r]);
      std::bernoulli_distribution keep(1.0 - p_);
      for (std::size_t i = r * per_row; i < (r + 1) * per_row; ++i) {
        const float m = keep(engine_) ? scale : 0.0f;
        mask_[i] = m;
        out[i] *= m;
      }
    }
    return out;
  }
  std::bernoulli_distribution keep(1.0 - p_);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    const float m = keep(engine_) ? scale : 0.0f;
    mask_[i] = m;
    out[i] *= m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    grad[i] *= mask_[i];
  }
  return grad;
}

void Dropout::save_rng_state(std::ostream& out) const { out << engine_ << '\n'; }

void Dropout::load_rng_state(std::istream& in) { in >> engine_; }

}  // namespace neuspin::nn
