#include "nn/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace neuspin::nn::simd {

namespace {

const KernelTable* table_for(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return detail::scalar_table();
    case Tier::kAvx2:
      return detail::avx2_table();
    case Tier::kNeon:
      return detail::neon_table();
  }
  return nullptr;
}

/// CPU supports `tier` at runtime (independent of whether its TU was
/// compiled in).
bool cpu_supports(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
             __builtin_cpu_supports("popcnt");
#else
      return false;
#endif
    case Tier::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is architecturally mandatory on aarch64
#else
      return false;
#endif
  }
  return false;
}

/// Best tier the probe can justify: the highest available vector tier,
/// else scalar.
Tier probe_tier() {
  if (tier_available(Tier::kAvx2)) {
    return Tier::kAvx2;
  }
  if (tier_available(Tier::kNeon)) {
    return Tier::kNeon;
  }
  return Tier::kScalar;
}

/// NEUSPIN_SIMD env override + probe, evaluated once per process (or
/// again after reset_tier). A requested tier that is unavailable —
/// including an unrecognized name — warns on stderr and degrades to
/// scalar, never to a different vector tier: a CI leg that asked for a
/// specific ISA should not silently measure another one.
Tier resolve_tier() {
  const char* env = std::getenv("NEUSPIN_SIMD");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    Tier requested = Tier::kScalar;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      requested = Tier::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = Tier::kAvx2;
    } else if (std::strcmp(env, "neon") == 0) {
      requested = Tier::kNeon;
    } else {
      known = false;
    }
    if (!known) {
      std::fprintf(stderr,
                   "neuspin: NEUSPIN_SIMD=%s not recognized "
                   "(scalar|avx2|neon|auto); using scalar kernels\n",
                   env);
      return Tier::kScalar;
    }
    if (!tier_available(requested)) {
      std::fprintf(stderr,
                   "neuspin: NEUSPIN_SIMD=%s unavailable on this host/build; "
                   "using scalar kernels\n",
                   env);
      return Tier::kScalar;
    }
    return requested;
  }
  return probe_tier();
}

/// Active table, published with release so readers see a fully-formed
/// KernelTable; null until first resolve (kernels() resolves lazily).
std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<Tier> g_active_tier{Tier::kScalar};

void publish(Tier tier) {
  const KernelTable* table = table_for(tier);
  if (table == nullptr) {
    throw std::invalid_argument(std::string("simd: tier ") + tier_name(tier) +
                                " is not available in this build");
  }
  g_active_tier.store(tier, std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  // Observability only — never feeds back into any computation.
  obs::Registry::global().gauge("nn.simd.tier").set(static_cast<double>(tier));
}

const KernelTable* resolve_and_publish() {
  // Serialize first-use resolution; later calls take the lock-free load.
  static std::mutex mu;
  std::scoped_lock lock(mu);
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    publish(resolve_tier());
    table = g_active.load(std::memory_order_acquire);
  }
  return table;
}

}  // namespace

const KernelTable& kernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = resolve_and_publish();
  }
  return *table;
}

Tier active_tier() {
  (void)kernels();  // ensure resolved
  return g_active_tier.load(std::memory_order_relaxed);
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
  }
  return "unknown";
}

bool tier_available(Tier tier) {
  return table_for(tier) != nullptr && cpu_supports(tier);
}

void force_tier(Tier tier) {
  if (!tier_available(tier)) {
    throw std::invalid_argument(std::string("simd: tier ") + tier_name(tier) +
                                " is not available on this host/build");
  }
  publish(tier);
}

void reset_tier() { publish(resolve_tier()); }

}  // namespace neuspin::nn::simd
