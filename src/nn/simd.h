// Runtime CPU-feature dispatch for the hot inner kernels.
//
// The float GEMMs (nn/tensor.cpp) and the bit-packed XNOR/popcount GEMM
// (nn/bitpack.cpp) route through one process-wide KernelTable picked at
// first use: AVX2+FMA on x86-64 hosts that report it, NEON on aarch64,
// and a baseline-ISA fallback everywhere else. Every tier compiles the
// SAME kernel source (nn/simd_kernels.inc) — only the per-file compiler
// flags differ — and the whole library builds with -ffp-contract=off, so
// no tier can fuse a*b+c into an FMA or reassociate a reduction. The
// tiers are therefore bitwise identical by construction: dispatch is a
// pure throughput knob, never a numerics knob, and the repo's
// determinism contract (ascending-k accumulation, row independence,
// thread-count invariance) holds on every host.
//
// CI determinism: the environment variable NEUSPIN_SIMD overrides the
// probe ("scalar", "avx2", "neon", or "auto"; unknown values warn on
// stderr and fall back to scalar). A tier that was not compiled in or is
// not supported by the running CPU silently degrades to scalar, so a
// binary built with the AVX2 TU still runs on baseline hardware.
#pragma once

#include <cstddef>
#include <cstdint>

namespace neuspin::nn::simd {

/// Kernel tiers in probe order. Values are stable: the obs gauge
/// `nn.simd.tier` exports the numeric value.
enum class Tier : int {
  kScalar = 0,  ///< baseline ISA of the build (x86-64: SSE2)
  kAvx2 = 1,    ///< x86-64 AVX2 + FMA + POPCNT translation unit
  kNeon = 2,    ///< aarch64 NEON translation unit
};

/// One tier's kernel entry points. All kernels share the semantics of the
/// nn/tensor.h contracts; see nn/simd_kernels.inc for the single source.
struct KernelTable {
  const char* name;
  /// C(m x n) += A(m x k) * B(k x n), blocked, ascending-k accumulation.
  void (*gemm)(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);
  /// C(m x n) += A^T * B with A stored (k x m); same blocked kernel.
  void (*gemm_at)(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n);
  /// C(m x n) = A(m x k) * B^T with B stored (n x k): 8-lane dot kernel
  /// with the fixed pairwise combine.
  void (*gemm_nt)(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n);
  /// Masked XNOR/popcount GEMM over bit-packed operands: for every LHS
  /// row i (value plane xv, mask plane xm — null when the row set is
  /// dense ±1 — and per-row nonzero count xn) and every dense ±1 RHS row
  /// j (value plane wv, one packed row per output column), the signed dot
  /// product is xn[i] - 2 * popcount((xv_i ^ wv_j) & xm_i); the float
  /// result then takes the XNOR-Net epilogue out = dot * alpha[j] +
  /// bias[j] (alpha null skips the epilogue). `lanes` u64 words per row.
  void (*bgemm)(const std::uint64_t* xv, const std::uint64_t* xm,
                const std::uint32_t* xn, const std::uint64_t* wv, float* out,
                std::size_t m, std::size_t n, std::size_t lanes,
                const float* alpha, const float* bias);
  /// Row-wise sign packing into (rows x lanes) value/mask planes: value
  /// bit = (v >= 0.0f), mask full with pad bits zero. Pure integer bit
  /// manipulation — identical output on every tier.
  void (*pack_sign)(const float* src, std::size_t rows, std::size_t cols,
                    std::size_t lanes, std::uint64_t* bits,
                    std::uint64_t* mask);
  /// Row-wise exact {-1, 0, +1} packing; returns nonzero (planes partially
  /// written, caller discards) when any element is not exactly ternary.
  int (*pack_ternary)(const float* src, std::size_t rows, std::size_t cols,
                      std::size_t lanes, std::uint64_t* bits,
                      std::uint64_t* mask);
};

/// The table serving this process (probe + env override, resolved once,
/// lock-free afterwards).
[[nodiscard]] const KernelTable& kernels();

/// Tier behind kernels().
[[nodiscard]] Tier active_tier();

/// Human-readable tier name ("scalar", "avx2", "neon").
[[nodiscard]] const char* tier_name(Tier tier);

/// True when `tier`'s translation unit was compiled in AND the running
/// CPU supports it (kScalar is always available).
[[nodiscard]] bool tier_available(Tier tier);

/// Force a tier (tests / benches). Throws std::invalid_argument when the
/// tier is unavailable. Not for use while other threads are inside
/// kernels-calling code.
void force_tier(Tier tier);

/// Drop any forced tier and re-resolve (env override + probe).
void reset_tier();

/// RAII tier override for tests: forces on construction, restores the
/// resolved tier on destruction.
class ScopedTier {
 public:
  explicit ScopedTier(Tier tier) { force_tier(tier); }
  ~ScopedTier() { reset_tier(); }
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;
};

namespace detail {
/// Per-TU tables; null when the TU was compiled without its ISA.
[[nodiscard]] const KernelTable* scalar_table();
[[nodiscard]] const KernelTable* avx2_table();
[[nodiscard]] const KernelTable* neon_table();
}  // namespace detail

}  // namespace neuspin::nn::simd
