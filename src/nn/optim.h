// Optimizers operating on ParamRef views exposed by layers.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layers.h"

namespace neuspin::nn {

/// Abstract first-order optimizer.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamRef> params);
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then clear them.
  virtual void step() = 0;

  /// Zero all gradient accumulators.
  void zero_grad();

  [[nodiscard]] std::size_t parameter_count() const;

 protected:
  std::vector<ParamRef> params_;
};

/// Stochastic gradient descent with classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamRef> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Step-decay learning-rate schedule: lr *= factor every `period` epochs.
class StepDecay {
 public:
  StepDecay(float initial_lr, float factor, std::size_t period);

  /// Learning rate to use for `epoch` (0-based).
  [[nodiscard]] float lr_for_epoch(std::size_t epoch) const;

 private:
  float initial_lr_;
  float factor_;
  std::size_t period_;
};

}  // namespace neuspin::nn
