// Optimizers operating on ParamRef views exposed by layers.
//
// Gradient production and the update step are decoupled: layers accumulate
// (`+=`) into the grad tensors behind ParamRef — over multiple backward
// passes or over the data-parallel trainer's shard reduction — and step()
// consumes whatever accumulated, then clears it. zero_grad() starts a
// fresh accumulation window without stepping.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layers.h"

namespace neuspin::nn {

/// Abstract first-order optimizer.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamRef> params);
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then clear them.
  virtual void step() = 0;

  /// Zero all gradient accumulators.
  void zero_grad();

  [[nodiscard]] std::size_t parameter_count() const;

 protected:
  std::vector<ParamRef> params_;
};

/// Stochastic gradient descent with classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamRef> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction. `weight_decay` is DECOUPLED
/// (AdamW, Loshchilov & Hutter): applied directly to the parameter as
/// value -= lr * weight_decay * value, never entering the moment
/// estimates; 0 reproduces classic Adam bit for bit.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }
  [[nodiscard]] float weight_decay() const { return weight_decay_; }

  /// Optimizer-state access for training checkpoint/restore
  /// (train::Trainer::save/restore): the bias-correction step count and
  /// the first/second moment accumulators, one tensor per parameter in
  /// parameter order. Restoring mismatched shapes is the caller's bug —
  /// shapes are fixed at construction from the parameter list.
  [[nodiscard]] std::size_t step_count() const { return t_; }
  void set_step_count(std::size_t t) { t_ = t; }
  [[nodiscard]] std::vector<Tensor>& first_moments() { return m_; }
  [[nodiscard]] std::vector<Tensor>& second_moments() { return v_; }
  [[nodiscard]] const std::vector<Tensor>& first_moments() const { return m_; }
  [[nodiscard]] const std::vector<Tensor>& second_moments() const { return v_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// L2 norm of all accumulated gradients, in fixed (param, element) order
/// (double accumulator — deterministic for a given param list).
[[nodiscard]] float global_grad_norm(const std::vector<ParamRef>& params);

/// Global-norm gradient clipping: if the gradient norm exceeds `max_norm`,
/// every gradient is scaled by max_norm / norm. Returns the pre-clip norm.
/// `max_norm` <= 0 is a no-op (clipping disabled).
float clip_grad_norm(const std::vector<ParamRef>& params, float max_norm);

/// Step-decay learning-rate schedule: lr *= factor every `period` epochs.
class StepDecay {
 public:
  StepDecay(float initial_lr, float factor, std::size_t period);

  /// Learning rate to use for `epoch` (0-based).
  [[nodiscard]] float lr_for_epoch(std::size_t epoch) const;

 private:
  float initial_lr_;
  float factor_;
  std::size_t period_;
};

}  // namespace neuspin::nn
