// AVX2 kernel tier. CMake compiles this one TU — never the whole library —
// with -mavx2 -mfma -mpopcnt -ffp-contract=off and defines
// NEUSPIN_SIMD_AVX2_TU when the compiler supports those flags on an
// x86-64 target; the binary still runs on baseline hardware because
// dispatch only selects this table after __builtin_cpu_supports says the
// running CPU has AVX2+FMA. -ffp-contract=off is what keeps -mfma from
// fusing the GEMM's mul+add into an FMA and silently changing bits vs.
// the scalar tier; the throughput win comes from 8-wide vectorization of
// the independent j-panel/dot lanes and from hardware POPCNT in bgemm.
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "nn/simd.h"

#if defined(NEUSPIN_SIMD_AVX2_TU)
#include <immintrin.h>  // movemask packing fast paths in the .inc

namespace neuspin::nn::simd::detail {
namespace avx2_tier {
#define NEUSPIN_SIMD_TIER_NAME "avx2"
#include "nn/simd_kernels.inc"
#undef NEUSPIN_SIMD_TIER_NAME
}  // namespace avx2_tier

const KernelTable* avx2_table() { return &avx2_tier::kLocalTable; }

}  // namespace neuspin::nn::simd::detail

#else  // flags unavailable or non-x86 target: tier not compiled in

namespace neuspin::nn::simd::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace neuspin::nn::simd::detail

#endif
