// Layer zoo of the from-scratch NN framework.
//
// Every layer implements forward/backward with explicit caches, exposes its
// learnable parameters through ParamRef so optimizers can update them, and
// keeps all randomness behind injected engines for reproducibility.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace neuspin::nn {

/// A view of one learnable parameter and its gradient accumulator.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Abstract differentiable layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute the layer output. `training` toggles batch statistics,
  /// dropout sampling, and other train-only behaviour.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Back-propagate: given dL/d(output), return dL/d(input) and accumulate
  /// parameter gradients. Must be called after a forward pass.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> parameters() { return {}; }

  /// Non-learnable persistent state (e.g. batch-norm running statistics),
  /// exposed so checkpoints can round-trip a trained model exactly.
  virtual std::vector<Tensor*> state_tensors() { return {}; }

  /// Deep copy of the layer: parameters, persistent state and RNG streams.
  /// Parallel Monte-Carlo evaluation replicates a model once per worker
  /// thread through this hook. Layers that cannot be cloned return
  /// nullptr; Sequential::clone reports which layer blocked the copy.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const { return nullptr; }

  /// Reset the layer's stochastic streams. Deterministic layers ignore the
  /// call; stochastic layers must reset every internal engine so that a
  /// forward pass after reseed(s) depends only on (parameters, input, s) —
  /// the property that makes threaded MC evaluation bitwise reproducible.
  virtual void reseed(std::uint64_t seed) { (void)seed; }

  /// Per-row seeding contract: switch the layer's stochastic streams to
  /// row mode, where row r of the next forward's batch draws its
  /// masks/noise/samples from a stream seeded by row_seeds[r] — bit for
  /// bit what a batch-of-one forward after reseed(row_seeds[r]) would
  /// compute for that row. Two callers rely on it:
  ///
  ///  * the fused Monte-Carlo path (inference): stacking T passes x B
  ///    requests into one (T*B x F) forward reproduces the T*B individual
  ///    passes exactly;
  ///  * the data-parallel trainer (training): layers with per-SAMPLE
  ///    training masks (nn::Dropout, core::SpinDropLayer) key each
  ///    sample's mask to its row seed, making the masks independent of
  ///    how a minibatch is sharded, and their backward consumes the
  ///    cached masks as usual. Layers whose row mode replays the
  ///    batch-of-one EVAL pass (running-stat normalization, quantized
  ///    posterior samples) ignore row seeds while `training` is true and
  ///    keep their per-pass draws — backward after an eval-replay
  ///    row-mode forward remains unsupported.
  ///
  /// Deterministic layers ignore the call (their forward is already
  /// row-independent); stochastic layers must override it, and a later
  /// reseed() returns them to shared-stream mode.
  ///
  /// WARNING for custom layers: the default is a silent no-op, which is
  /// only correct for layers whose forward is row-independent. A custom
  /// STOCHASTIC layer that overrides reseed() but not reseed_rows() will
  /// draw one shared stream across the whole stacked batch and silently
  /// break the fused path's batch-invariance guarantee — override both,
  /// or serve such models with serve::RuntimeConfig::fused_batching set
  /// to false.
  virtual void reseed_rows(std::span<const std::uint64_t> row_seeds) {
    (void)row_seeds;
  }

  /// Serialize the layer's persistent RNG stream state (engines, counter
  /// streams) as text, so a checkpointed training run can resume bitwise
  /// (train::Trainer::save/restore). Parameters and state_tensors are NOT
  /// included — only entropy state. Deterministic layers write nothing.
  /// A custom stochastic layer that skips these hooks still trains and
  /// serves correctly, but a kill-and-resume of a SERIAL (shards == 1)
  /// training run is no longer bitwise identical through it — the sharded
  /// path reseeds every stream per step and does not depend on them.
  virtual void save_rng_state(std::ostream& out) const { (void)out; }
  /// Restore exactly what save_rng_state wrote (same layer type/geometry).
  virtual void load_rng_state(std::istream& in) { (void)in; }

  /// Human-readable identifier for diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Fully connected layer: y = x W + b, x is (batch x in), W is (in x out).
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, std::mt19937_64& engine);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "Dense"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }
  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_cache_;
};

/// 2D convolution over NCHW tensors, stride 1, symmetric zero padding.
///
/// Two algorithms compute the same convolution, selected by set_algo():
///
///  * kIm2col (default): lower the input into its patch matrix (im2col)
///    and run forward, weight-grad and input-grad as calls into the
///    cache-blocked GEMM kernels (matmul_accumulate / matmul_a_transposed
///    / matmul + col2im). This inherits the kernels' throughput and their
///    fixed ascending-k accumulation order, so results stay row-
///    independent and batch-invariant like the dense layers.
///  * kDirect: the original per-element loop nest, kept as the bitwise
///    reference — both paths accumulate every output/gradient element's
///    terms in the same ascending (c, ky, kx) / ascending output-channel
///    order, so they agree bit for bit (pinned by layers_test).
///
/// Backward state (the input / patch-matrix cache) is kept only for
/// training-mode forwards; backward() after an inference-mode forward —
/// or before any forward — throws instead of computing from stale state.
class Conv2d : public Layer {
 public:
  /// Convolution algorithm; see the class comment.
  enum class Algo : std::uint8_t { kDirect, kIm2col };

  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t padding, std::mt19937_64& engine);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "Conv2d"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }

  [[nodiscard]] std::size_t in_channels() const { return in_ch_; }
  [[nodiscard]] std::size_t out_channels() const { return out_ch_; }
  [[nodiscard]] std::size_t kernel() const { return kernel_; }
  [[nodiscard]] Tensor& weight() { return weight_; }
  void set_algo(Algo algo) { algo_ = algo; }
  [[nodiscard]] Algo algo() const { return algo_; }

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t padding_;
  Algo algo_ = Algo::kIm2col;
  Tensor weight_;  ///< (out_ch, in_ch, k, k)
  Tensor bias_;    ///< (out_ch)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_cache_;  ///< NCHW input (direct backward; training only)
  Tensor cols_cache_;   ///< im2col patch matrix (im2col backward; training only)
  Shape input_shape_;   ///< empty unless the last forward was training-mode
};

/// 2x2 max pooling with stride 2 over NCHW tensors.
class MaxPool2d : public Layer {
 public:
  MaxPool2d() = default;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(*this);
  }

 private:
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  ///< flat input index of each pooled max
};

/// Collapse all non-batch axes: (N, ...) -> (N, features).
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }

 private:
  Shape input_shape_;
};

/// Rectified linear activation.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }

 private:
  Tensor input_cache_;
};

/// Hard tanh used as the binary activation's latent clamp.
class HardTanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "HardTanh"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<HardTanh>(*this);
  }

 private:
  Tensor input_cache_;
};

/// Sign activation with straight-through estimator (BNN activation;
/// paper §III-A.1: "standard matrix-vector multiplications are replaced
/// with XNOR operations", which requires +-1 activations).
class SignActivation : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Sign"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<SignActivation>(*this);
  }

 private:
  Tensor input_cache_;
};

/// Batch normalization over features (rank-2) or channels (rank-4).
/// Standard order: normalize first, then the optional affine transform —
/// the paper's InvertedNorm (src/core/affinedrop.h) flips this order.
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::size_t features, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "BatchNorm"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<BatchNorm>(*this);
  }

  std::vector<Tensor*> state_tensors() override {
    return {&running_mean_, &running_var_};
  }

  [[nodiscard]] std::size_t features() const { return features_; }
  [[nodiscard]] Tensor& gamma() { return gamma_; }
  [[nodiscard]] Tensor& beta() { return beta_; }
  [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const { return running_var_; }

 private:
  /// Iterate input as (outer, features, inner): rank-2 has inner == 1;
  /// rank-4 NCHW has inner == H*W.
  void resolve_geometry(const Shape& shape, std::size_t& outer,
                        std::size_t& inner) const;

  std::size_t features_;
  float momentum_;
  float eps_;
  Tensor gamma_;
  Tensor beta_;
  Tensor gamma_grad_;
  Tensor beta_grad_;
  Tensor running_mean_;
  Tensor running_var_;
  // Caches for backward.
  Tensor normalized_cache_;
  Tensor batch_std_;
  Shape input_shape_;
};

/// Conventional element-wise dropout (baseline MC-Dropout). Keeps the
/// activation scale by inverted-dropout (divide kept units by 1-p).
/// In NeuSpin, hardware variants replace the mask source with SpinRng.
class Dropout : public Layer {
 public:
  Dropout(float probability, std::uint64_t seed);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dropout>(*this);
  }
  void reseed(std::uint64_t seed) override {
    engine_.seed(seed);
    row_seeds_.clear();
  }
  void reseed_rows(std::span<const std::uint64_t> row_seeds) override {
    row_seeds_.assign(row_seeds.begin(), row_seeds.end());
  }
  void save_rng_state(std::ostream& out) const override;
  void load_rng_state(std::istream& in) override;

  [[nodiscard]] float probability() const { return p_; }
  /// MC-Dropout keeps sampling at inference; enable_at_inference(true)
  /// makes `training == false` forward passes stochastic too.
  void enable_at_inference(bool on) { mc_mode_ = on; }

 private:
  float p_;
  bool mc_mode_ = false;
  std::mt19937_64 engine_;
  std::vector<std::uint64_t> row_seeds_;  ///< non-empty = row mode
  Tensor mask_;
};

}  // namespace neuspin::nn
