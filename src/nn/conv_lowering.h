// Layout shuffles shared by the im2col (lowered) convolution paths of
// Conv2d and BinaryConv2d.
//
// The lowered convolution runs on (rows x channels) matrices whose row
// index flattens (sample, y, x); these helpers move kernels and NCHW
// activations into and out of that layout. They are pure permutations —
// every float is copied, never combined — so they cannot perturb the
// bitwise equivalence between the lowered GEMMs and the direct loops.
#pragma once

#include "nn/tensor.h"

namespace neuspin::nn::detail {

/// Repack an (out_ch, in_ch, k, k) kernel tensor into the (taps x out_ch)
/// right-hand GEMM operand of the lowered forward: wmat[r][oc] =
/// weight[oc][r], with r flattening (in_ch, ky, kx) — the column order
/// im2col emits and the direct loop accumulates in.
[[nodiscard]] inline Tensor kernel_as_gemm_operand(const Tensor& weight) {
  const std::size_t out_ch = weight.dim(0);
  const std::size_t taps = weight.numel() / out_ch;
  Tensor wmat({taps, out_ch});
  for (std::size_t oc = 0; oc < out_ch; ++oc) {
    const auto src = weight.data().subspan(oc * taps, taps);
    for (std::size_t r = 0; r < taps; ++r) {
      wmat.at(r, oc) = src[r];
    }
  }
  return wmat;
}

/// Permute an NCHW tensor into the (N*H*W x C) row layout of the lowered
/// GEMMs: row p = (n * H + y) * W + x, column = channel.
[[nodiscard]] inline Tensor nchw_to_rows(const Tensor& t) {
  const std::size_t n = t.dim(0);
  const std::size_t c = t.dim(1);
  const std::size_t h = t.dim(2);
  const std::size_t w = t.dim(3);
  Tensor rows({n * h * w, c});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = t.data().data() + ((b * c) + ch) * h * w;
      float* out = rows.data().data() + b * h * w * c + ch;
      for (std::size_t i = 0; i < h * w; ++i) {
        out[i * c] = plane[i];
      }
    }
  }
  return rows;
}

/// Inverse of nchw_to_rows: scatter (N*H*W x C) rows back into NCHW.
[[nodiscard]] inline Tensor rows_to_nchw(const Tensor& rows, std::size_t n,
                                         std::size_t c, std::size_t h,
                                         std::size_t w) {
  Tensor t({n, c, h, w});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* in = rows.data().data() + b * h * w * c + ch;
      float* plane = t.data().data() + ((b * c) + ch) * h * w;
      for (std::size_t i = 0; i < h * w; ++i) {
        plane[i] = in[i * c];
      }
    }
  }
  return t;
}

}  // namespace neuspin::nn::detail
