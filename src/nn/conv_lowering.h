// Layout shuffles shared by the im2col (lowered) convolution paths of
// Conv2d and BinaryConv2d.
//
// The lowered convolution runs on (rows x channels) matrices whose row
// index flattens (sample, y, x); these helpers move kernels and NCHW
// activations into and out of that layout. They are pure permutations —
// every float is copied, never combined — so they cannot perturb the
// bitwise equivalence between the lowered GEMMs and the direct loops.
#pragma once

#include <cstring>
#include <vector>

#include "nn/tensor.h"

namespace neuspin::nn::detail {

/// Consecutive-duplicate structure of the leading axis of a tensor: block
/// b (a row for rank-2 inputs, a CHW image for NCHW) maps to unique slot
/// slot[b]; a block equal to its predecessor shares the predecessor's
/// slot. This is the shape the fused Monte-Carlo path produces — each
/// request's input stacked T times in a row — so "consecutive" captures
/// all the duplication that exists there while costing one memcmp per
/// block to detect.
struct DupMap {
  std::vector<std::size_t> slot;  ///< block index -> unique slot
  std::size_t unique = 0;         ///< number of distinct slots

  [[nodiscard]] bool has_duplicates() const { return unique < slot.size(); }
};

/// Build the DupMap of `blocks` contiguous blocks of `block_floats` floats.
[[nodiscard]] inline DupMap consecutive_dup_map(const float* data,
                                                std::size_t blocks,
                                                std::size_t block_floats) {
  DupMap map;
  map.slot.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    if (b > 0 && std::memcmp(data + (b - 1) * block_floats,
                             data + b * block_floats,
                             block_floats * sizeof(float)) == 0) {
      map.slot[b] = map.slot[b - 1];
    } else {
      map.slot[b] = map.unique++;
    }
  }
  return map;
}

/// Copy the first block of every unique slot into a tensor whose leading
/// dimension is map.unique (the remaining dimensions are kept).
[[nodiscard]] inline Tensor gather_unique_blocks(const Tensor& t,
                                                 const DupMap& map) {
  Shape shape = t.shape();
  const std::size_t block_floats = t.numel() / shape[0];
  shape[0] = map.unique;
  Tensor out(shape);
  const float* src = t.data().data();
  float* dst = out.data().data();
  std::size_t next = 0;
  for (std::size_t b = 0; b < map.slot.size(); ++b) {
    if (map.slot[b] == next) {
      std::memcpy(dst + next * block_floats, src + b * block_floats,
                  block_floats * sizeof(float));
      ++next;
    }
  }
  return out;
}

/// Inverse of gather_unique_blocks on the OUTPUT side: expand a tensor
/// computed per unique slot back to one block per original index. Because
/// the computation per block is deterministic and block-independent, the
/// copied blocks are bitwise the blocks a full computation would produce.
[[nodiscard]] inline Tensor scatter_unique_blocks(const Tensor& unique_out,
                                                  const DupMap& map) {
  Shape shape = unique_out.shape();
  const std::size_t block_floats = unique_out.numel() / shape[0];
  shape[0] = map.slot.size();
  Tensor out(shape);
  const float* src = unique_out.data().data();
  float* dst = out.data().data();
  for (std::size_t b = 0; b < map.slot.size(); ++b) {
    std::memcpy(dst + b * block_floats, src + map.slot[b] * block_floats,
                block_floats * sizeof(float));
  }
  return out;
}

/// Repack an (out_ch, in_ch, k, k) kernel tensor into the (taps x out_ch)
/// right-hand GEMM operand of the lowered forward: wmat[r][oc] =
/// weight[oc][r], with r flattening (in_ch, ky, kx) — the column order
/// im2col emits and the direct loop accumulates in.
[[nodiscard]] inline Tensor kernel_as_gemm_operand(const Tensor& weight) {
  const std::size_t out_ch = weight.dim(0);
  const std::size_t taps = weight.numel() / out_ch;
  Tensor wmat({taps, out_ch});
  for (std::size_t oc = 0; oc < out_ch; ++oc) {
    const auto src = weight.data().subspan(oc * taps, taps);
    for (std::size_t r = 0; r < taps; ++r) {
      wmat.at(r, oc) = src[r];
    }
  }
  return wmat;
}

/// Permute an NCHW tensor into the (N*H*W x C) row layout of the lowered
/// GEMMs: row p = (n * H + y) * W + x, column = channel.
[[nodiscard]] inline Tensor nchw_to_rows(const Tensor& t) {
  const std::size_t n = t.dim(0);
  const std::size_t c = t.dim(1);
  const std::size_t h = t.dim(2);
  const std::size_t w = t.dim(3);
  Tensor rows({n * h * w, c});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = t.data().data() + ((b * c) + ch) * h * w;
      float* out = rows.data().data() + b * h * w * c + ch;
      for (std::size_t i = 0; i < h * w; ++i) {
        out[i * c] = plane[i];
      }
    }
  }
  return rows;
}

/// Inverse of nchw_to_rows: scatter (N*H*W x C) rows back into NCHW.
[[nodiscard]] inline Tensor rows_to_nchw(const Tensor& rows, std::size_t n,
                                         std::size_t c, std::size_t h,
                                         std::size_t w) {
  Tensor t({n, c, h, w});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* in = rows.data().data() + b * h * w * c + ch;
      float* plane = t.data().data() + ((b * c) + ch) * h * w;
      for (std::size_t i = 0; i < h * w; ++i) {
        plane[i] = in[i * c];
      }
    }
  }
  return t;
}

}  // namespace neuspin::nn::detail
