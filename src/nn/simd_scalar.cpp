// Baseline-ISA kernel tier. Compiled with no extra target flags, so this
// TU runs on any machine the build targets (x86-64: SSE2 baseline) and is
// the reference the vectorized tiers must match bit for bit. Always
// present — dispatch falls back here when nothing better is available or
// when NEUSPIN_SIMD=scalar pins it for CI determinism checks.
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "nn/simd.h"

namespace neuspin::nn::simd::detail {
namespace scalar_tier {
#define NEUSPIN_SIMD_TIER_NAME "scalar"
#include "nn/simd_kernels.inc"
#undef NEUSPIN_SIMD_TIER_NAME
}  // namespace scalar_tier

const KernelTable* scalar_table() { return &scalar_tier::kLocalTable; }

}  // namespace neuspin::nn::simd::detail
