// Sequential model container plus training/evaluation loops.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <span>
#include <utility>
#include <vector>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "nn/tensor.h"

namespace neuspin::nn {

/// Derive an independent RNG stream seed from (base, salt): splitmix64 of
/// base + salt * odd-constant. Per-pass and per-layer streams of the
/// Monte-Carlo evaluator are all spawned through this mix so no two
/// streams coincide and results stay reproducible across thread counts.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t base, std::uint64_t salt);

/// Supervised classification dataset: inputs (N x ...) with one label each.
struct Dataset {
  Tensor inputs;
  std::vector<std::size_t> labels;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
  /// Extract rows [begin, end) as a batch (copies).
  [[nodiscard]] std::pair<Tensor, std::vector<std::size_t>> batch(std::size_t begin,
                                                                  std::size_t end) const;
  /// Gather rows order[begin..end) as a batch — the shuffled-epoch batching
  /// of the training loop. Bitwise identical to materializing the whole
  /// dataset in `order` and slicing [begin, end), but O(batch) instead of
  /// the former per-epoch O(dataset) copy.
  [[nodiscard]] std::pair<Tensor, std::vector<std::size_t>> batch(
      std::span<const std::size_t> order, std::size_t begin, std::size_t end) const;
};

/// Linear stack of layers; owns them.
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Construct a layer in place and return a typed reference to it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  /// Replace the layer at index `i` (used e.g. to swap a trained
  /// variational layer for its in-memory SpinBayes approximation).
  void replace(std::size_t i, std::unique_ptr<Layer> layer) {
    layers_.at(i) = std::move(layer);
  }

  [[nodiscard]] Tensor forward(const Tensor& input, bool training);
  /// Back-propagate through the whole stack; returns dL/d(input).
  [[nodiscard]] Tensor backward(const Tensor& grad_output);

  /// Deep copy of the whole stack (parameters, state and RNG streams).
  /// Throws std::logic_error naming the first layer whose clone() is
  /// unimplemented. Used to replicate a trained model per worker thread.
  [[nodiscard]] Sequential clone() const;

  /// Forward `seed` to every layer's reseed() hook, mixing in the layer
  /// index so sibling layers never share a stream.
  void reseed(std::uint64_t seed);

  /// Per-row counterpart for the fused Monte-Carlo path: layer i receives
  /// row seeds mix_seed(row_seeds[r], i), the exact per-layer derivation
  /// reseed(row_seeds[r]) would perform — so row r of the next stacked
  /// forward reproduces a batch-of-one forward under that seed bit for
  /// bit (see Layer::reseed_rows).
  void reseed_rows(std::span<const std::uint64_t> row_seeds);

  /// Serialize / restore every layer's persistent RNG stream state (see
  /// Layer::save_rng_state). Text format; concatenated in layer order, so
  /// load must run on a Sequential of the same architecture.
  void save_rng_state(std::ostream& out) const;
  void load_rng_state(std::istream& in);

  [[nodiscard]] std::vector<ParamRef> parameters();

  /// Non-learnable persistent state of every layer (batch-norm running
  /// statistics and the like), in layer order. The data-parallel trainer
  /// uses this to sync shard clones and to fold their state updates back.
  [[nodiscard]] std::vector<Tensor*> state_tensors();

  /// Zero every parameter's gradient accumulator. backward() accumulates
  /// (`+=`) into the grads exposed on ParamRef, so multi-pass gradient
  /// accumulation works out of the box; call this to start a fresh
  /// accumulation window when no Optimizer::step() (which also clears) ran.
  void zero_grad();

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Total learnable scalar count.
  [[nodiscard]] std::size_t parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Configuration of the classification training loop.
struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  float lr = 0.01f;
  float lr_decay = 0.5f;          ///< multiplied in every `lr_decay_period`
  std::size_t lr_decay_period = 5;
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Label smoothing of the cross-entropy target (0 disables).
  float label_smoothing = 0.0f;
  /// Extra loss hook evaluated once per step (regularizers: KL, scale reg).
  /// Returns the additional loss value; gradients must be accumulated into
  /// the parameters' own grad tensors by the hook.
  std::function<float()> regularizer;
};

/// Per-epoch training record.
struct EpochStats {
  float train_loss = 0.0f;
  float train_accuracy = 0.0f;
  double seconds = 0.0;           ///< wall-clock time of the epoch
  double examples_per_sec = 0.0;  ///< training throughput of the epoch
};

/// Train `model` on `train` with softmax cross-entropy and Adam.
/// Compatibility wrapper over train::Trainer (serial semantics: one
/// gradient shard, results bitwise identical to the historical in-place
/// loop). New call sites that want the data-parallel path should use
/// train::Trainer directly. Returns per-epoch statistics.
std::vector<EpochStats> train_classifier(Sequential& model, const Dataset& train,
                                         const TrainConfig& config);

/// Fraction of correctly classified samples (single deterministic pass).
[[nodiscard]] float evaluate_accuracy(Sequential& model, const Dataset& test);

}  // namespace neuspin::nn
