#include "nn/loss.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace neuspin::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels,
                                 float label_smoothing, std::size_t normalizer) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: expected rank-2 logits");
  }
  if (label_smoothing < 0.0f || label_smoothing >= 1.0f) {
    throw std::invalid_argument("softmax_cross_entropy: label_smoothing must lie in [0,1)");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  if (labels.size() != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count " +
                                std::to_string(labels.size()) + " != batch " +
                                std::to_string(batch));
  }
  Tensor probs = softmax_rows(logits);
  LossResult result;
  result.grad = probs;
  float loss = 0.0f;
  const float inv_batch =
      1.0f / static_cast<float>(normalizer == 0 ? batch : normalizer);
  const float off_target = label_smoothing / static_cast<float>(classes);
  const float on_target = 1.0f - label_smoothing + off_target;
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t y = labels[i];
    if (y >= classes) {
      throw std::out_of_range("softmax_cross_entropy: label " + std::to_string(y) +
                              " out of range for " + std::to_string(classes) +
                              " classes");
    }
    // Cross-entropy against the smoothed target distribution.
    for (std::size_t j = 0; j < classes; ++j) {
      const float target = j == y ? on_target : off_target;
      if (target > 0.0f) {
        loss -= target * std::log(std::max(probs.at(i, j), 1e-12f));
      }
      result.grad.at(i, j) -= target;
    }
  }
  result.grad *= inv_batch;
  result.value = loss * inv_batch;
  return result;
}

LossResult mean_squared_error(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape()) {
    throw std::invalid_argument("mean_squared_error: shape mismatch " +
                                shape_to_string(prediction.shape()) + " vs " +
                                shape_to_string(target.shape()));
  }
  LossResult result;
  result.grad = Tensor(prediction.shape());
  const float inv_n = 1.0f / static_cast<float>(prediction.numel());
  float loss = 0.0f;
  for (std::size_t i = 0; i < prediction.numel(); ++i) {
    const float d = prediction[i] - target[i];
    loss += d * d;
    result.grad[i] = 2.0f * d * inv_n;
  }
  result.value = loss * inv_n;
  return result;
}

float scale_regularizer(const Tensor& scale, float lambda, Tensor& grad) {
  if (grad.shape() != scale.shape()) {
    throw std::invalid_argument("scale_regularizer: grad shape mismatch");
  }
  const float inv_n = 1.0f / static_cast<float>(scale.numel());
  float value = 0.0f;
  for (std::size_t i = 0; i < scale.numel(); ++i) {
    const float d = scale[i] - 1.0f;
    value += d * d;
    grad[i] += lambda * 2.0f * d * inv_n;
  }
  return lambda * value * inv_n;
}

float softplus(float x) {
  if (x > 20.0f) {
    return x;
  }
  return std::log1p(std::exp(x));
}

float softplus_grad(float x) { return 1.0f / (1.0f + std::exp(-x)); }

float gaussian_scale_kl(const Tensor& mu, const Tensor& rho, float prior_sigma,
                        float weight, Tensor& mu_grad, Tensor& rho_grad) {
  if (mu.shape() != rho.shape() || mu_grad.shape() != mu.shape() ||
      rho_grad.shape() != rho.shape()) {
    throw std::invalid_argument("gaussian_scale_kl: shape mismatch");
  }
  if (prior_sigma <= 0.0f) {
    throw std::invalid_argument("gaussian_scale_kl: prior_sigma must be positive");
  }
  // KL(N(mu, s^2) || N(1, p^2)) =
  //   log(p/s) + (s^2 + (mu-1)^2) / (2 p^2) - 1/2, summed over entries.
  const float p2 = prior_sigma * prior_sigma;
  float kl = 0.0f;
  for (std::size_t i = 0; i < mu.numel(); ++i) {
    const float s = softplus(rho[i]) + 1e-8f;
    const float d = mu[i] - 1.0f;
    kl += std::log(prior_sigma / s) + (s * s + d * d) / (2.0f * p2) - 0.5f;
    mu_grad[i] += weight * d / p2;
    // dKL/ds = -1/s + s/p^2, chain through softplus.
    rho_grad[i] += weight * (-1.0f / s + s / p2) * softplus_grad(rho[i]);
  }
  return weight * kl;
}

}  // namespace neuspin::nn
