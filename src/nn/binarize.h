// Binary (XNOR-style) layers with latent full-precision weights and
// straight-through-estimator training (paper §III-A.1 BinBayNN and
// §IV takeaway 6 "Quantized BayNNs").
//
// Weights are binarized as sign(w) scaled by a per-output-column factor
// alpha = mean(|w_col|) (XNOR-Net style). With +-1 weights and +-1
// activations, the dense product is exactly the XNOR/popcount operation the
// 2x(1T-1MTJ) bit-cell computes, so the crossbar mapping in src/xbar is a
// faithful hardware realization of these layers.
//
// Inference compute path (training is untouched — float STE throughout):
// the latent weights are sign-packed once per weight version (repack on a
// fingerprint mismatch) and, when the incoming activations are exactly
// {-1, 0, +1} — sign activations, SpinDrop zeros, im2col padding — the
// forward runs on the bit-packed XNOR/popcount GEMM (nn/bitpack.h), which
// is pinned bitwise equal to the float-materialized product. BinaryAlgo
// selects the path the way Conv2d::Algo pins direct-vs-im2col: kFloat is
// the always-float reference oracle, kAuto packs when exact, kBitpacked
// additionally applies the paper's sign quantization to real-valued
// activations (changes results; never on by default).
#pragma once

#include <memory>
#include <random>

#include "nn/bitpack.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace neuspin::nn {

/// Binarize a tensor element-wise to +-1.
[[nodiscard]] Tensor sign_of(const Tensor& t);

/// Per-column scale alpha_j = mean_i |W_ij| of an (in x out) weight matrix.
[[nodiscard]] Tensor column_abs_mean(const Tensor& weight);

/// Inference compute path of the binary layers.
enum class BinaryAlgo : std::uint8_t {
  kAuto,       ///< bgemm when the inputs pack exactly, float otherwise
  kBitpacked,  ///< always bgemm; sign-quantizes real-valued inputs
  kFloat,      ///< always the float-materialized path (reference oracle)
};

namespace detail {

/// kAuto only takes the bit-packed kernel when the reduction is at least
/// this deep: below it the per-forward packing cost exceeds what the
/// XNOR/popcount dot saves (a 3x3 single-channel conv has K = 9 — one
/// ragged 9-bit lane — and measures slower packed than the float GEMM).
/// kBitpacked ignores the floor: it is the explicit opt-in. Every path is
/// bitwise identical, so this is a throughput knob only.
inline constexpr std::size_t kMinPackedK = 16;

/// Sign-packed weights cached across inference forwards, keyed by a
/// fingerprint of the latent weight bytes (repack-on-mutate; the layers
/// hand out mutable weight references, so mutation is detected by value,
/// not by hook). Cloned by value with the layer.
struct PackedBinaryWeights {
  std::uint64_t fingerprint = 0;
  bool filled = false;
  BitMatrix bits;       ///< one dense ±1 row per output column
  Tensor sign_float;    ///< sign(W) in the layer's own weight layout
  Tensor gemm_operand;  ///< conv only: (taps x out_ch) lowered RHS
  Tensor alpha;         ///< per-output-column / per-channel scales
};

}  // namespace detail

/// Fully connected layer computing y = (x · sign(W)) * alpha + b.
///
/// The latent weight is full precision and receives STE gradients clipped
/// to the [-1, 1] window; at inference only sign(W) and alpha survive,
/// which is what gets programmed into the MTJ crossbar.
class BinaryDense : public Layer {
 public:
  BinaryDense(std::size_t in_features, std::size_t out_features,
              std::mt19937_64& engine);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "BinaryDense"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<BinaryDense>(*this);
  }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

  /// Binarized weights (+-1) as deployed on hardware.
  [[nodiscard]] Tensor binary_weight() const { return sign_of(latent_weight_); }
  /// Per-column scale factors as deployed on hardware.
  [[nodiscard]] Tensor scales() const { return column_abs_mean(latent_weight_); }
  [[nodiscard]] Tensor& latent_weight() { return latent_weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }
  void set_binary_algo(BinaryAlgo algo) { binary_algo_ = algo; }
  [[nodiscard]] BinaryAlgo binary_algo() const { return binary_algo_; }

 private:
  [[nodiscard]] const detail::PackedBinaryWeights& packed();
  [[nodiscard]] Tensor infer_rows(const Tensor& x);

  std::size_t in_;
  std::size_t out_;
  BinaryAlgo binary_algo_ = BinaryAlgo::kAuto;
  Tensor latent_weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_cache_;
  Tensor binary_cache_;
  Tensor alpha_cache_;
  detail::PackedBinaryWeights pack_;
};

/// Binary convolution: kernels binarized to sign(W) with one alpha per
/// output channel. NCHW, stride 1, symmetric zero padding.
///
/// Like Conv2d it computes through either the direct per-element loop or
/// the im2col lowering onto the blocked GEMM kernels (the default); the
/// two algorithms are bitwise equal — see the Conv2d class comment. On
/// top of that, BinaryAlgo routes the lowered inference GEMM onto the
/// bit-packed kernels when the im2col patches pack exactly.
class BinaryConv2d : public Layer {
 public:
  BinaryConv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t padding, std::mt19937_64& engine);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "BinaryConv2d"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<BinaryConv2d>(*this);
  }

  [[nodiscard]] std::size_t in_channels() const { return in_ch_; }
  [[nodiscard]] std::size_t out_channels() const { return out_ch_; }
  [[nodiscard]] std::size_t kernel() const { return kernel_; }
  [[nodiscard]] std::size_t padding() const { return padding_; }

  [[nodiscard]] Tensor binary_weight() const { return sign_of(latent_weight_); }
  /// One alpha per output channel: mean |W| over (in_ch x k x k).
  [[nodiscard]] Tensor channel_scales() const;
  [[nodiscard]] Tensor& latent_weight() { return latent_weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }
  void set_algo(Conv2d::Algo algo) { algo_ = algo; }
  [[nodiscard]] Conv2d::Algo algo() const { return algo_; }
  void set_binary_algo(BinaryAlgo algo) { binary_algo_ = algo; }
  [[nodiscard]] BinaryAlgo binary_algo() const { return binary_algo_; }

 private:
  [[nodiscard]] const detail::PackedBinaryWeights& packed();
  [[nodiscard]] Tensor infer_images(const Tensor& x);

  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t padding_;
  Conv2d::Algo algo_ = Conv2d::Algo::kIm2col;
  BinaryAlgo binary_algo_ = BinaryAlgo::kAuto;
  Tensor latent_weight_;  ///< (out_ch, in_ch, k, k)
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_cache_;  ///< NCHW input (direct backward)
  Tensor cols_cache_;   ///< im2col patch matrix (im2col backward)
  Tensor binary_cache_;
  Tensor alpha_cache_;
  Shape input_shape_;
  detail::PackedBinaryWeights pack_;
};

}  // namespace neuspin::nn
