// LSTM layer for the time-series experiment (paper §III-A.4: "in specific
// models such as LSTM-based time series prediction, the RMSE score is
// reduced by up to 46.7%").
//
// Sequence-to-one: the layer consumes (batch x time x input_dim) and emits
// the final hidden state (batch x hidden_dim). Backward runs full BPTT from
// a gradient on that final state.
#pragma once

#include <memory>
#include <random>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace neuspin::nn {

/// Single-layer LSTM, sequence-to-one.
class Lstm : public Layer {
 public:
  Lstm(std::size_t input_dim, std::size_t hidden_dim, std::mt19937_64& engine);

  /// input: (batch x time x input_dim) rank-3 tensor.
  Tensor forward(const Tensor& input, bool training) override;
  /// grad_output: (batch x hidden_dim) gradient on the final hidden state.
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "Lstm"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Lstm>(*this);
  }

  [[nodiscard]] std::size_t input_dim() const { return input_dim_; }
  [[nodiscard]] std::size_t hidden_dim() const { return hidden_dim_; }

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  // Gate order within the 4H axis: input, forget, cell(g), output.
  Tensor wx_;  ///< (input_dim x 4H)
  Tensor wh_;  ///< (hidden_dim x 4H)
  Tensor b_;   ///< (4H)
  Tensor wx_grad_;
  Tensor wh_grad_;
  Tensor b_grad_;

  // Per-timestep caches for BPTT.
  Tensor input_cache_;             ///< (N x T x D)
  std::vector<Tensor> gates_;      ///< T entries of (N x 4H), post-activation
  std::vector<Tensor> cells_;      ///< T entries of (N x H), cell state c_t
  std::vector<Tensor> hiddens_;    ///< T entries of (N x H), hidden state h_t
};

}  // namespace neuspin::nn
