#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "nn/simd.h"

namespace neuspin::nn {

namespace {

std::size_t shape_numel(const Shape& shape) {
  if (shape.empty()) {
    return 0;
  }
  std::size_t n = 1;
  for (std::size_t d : shape) {
    n *= d;
  }
  return n;
}

}  // namespace

std::string shape_to_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(shape[i]);
  }
  return out + "]";
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::randn(Shape shape, float stddev, std::mt19937_64& engine) {
  Tensor t(std::move(shape));
  std::normal_distribution<float> dist(0.0f, stddev);
  for (auto& v : t.data_) {
    v = dist(engine);
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, float lo, float hi, std::mt19937_64& engine) {
  Tensor t(std::move(shape));
  std::uniform_real_distribution<float> dist(lo, hi);
  for (auto& v : t.data_) {
    v = dist(engine);
  }
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) {
    throw std::out_of_range("Tensor: axis " + std::to_string(axis) +
                            " out of range for shape " + shape_to_string(shape_));
  }
  return shape_[axis];
}

Tensor Tensor::reshaped(Shape shape) const {
  if (shape_numel(shape) != data_.size()) {
    throw std::invalid_argument("Tensor: cannot reshape " + shape_to_string(shape_) +
                                " to " + shape_to_string(shape));
  }
  Tensor out;
  out.shape_ = std::move(shape);
  out.data_ = data_;
  return out;
}

float& Tensor::at(std::size_t i, std::size_t j) {
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return data_[i * shape_[1] + j];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string("Tensor: shape mismatch in ") + op + ": " +
                                shape_to_string(shape_) + " vs " +
                                shape_to_string(other.shape_));
  }
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(other, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(other, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) {
    v *= scalar;
  }
  return *this;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

float Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::mean() const {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::abs_mean() const {
  if (data_.empty()) {
    return 0.0f;
  }
  float s = 0.0f;
  for (float v : data_) {
    s += std::abs(v);
  }
  return s / static_cast<float>(data_.size());
}

float Tensor::max() const {
  if (data_.empty()) {
    throw std::logic_error("Tensor: max() of empty tensor");
  }
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax() const {
  if (data_.empty()) {
    throw std::logic_error("Tensor: argmax() of empty tensor");
  }
  return static_cast<std::size_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

// The blocked GEMM / dot kernels behind matmul and friends moved to
// nn/simd_kernels.inc: one kernel source compiled per ISA tier and picked
// at runtime (nn/simd.h). Every tier preserves the ascending-k
// accumulation and fixed pairwise-combine contracts documented in the
// header, and the tiers are bitwise identical to each other — dispatch
// changes throughput, never results.

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  simd::kernels().gemm(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  return c;
}

Tensor matmul_transposed(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_transposed: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()) + "^T");
  }
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(0);
  Tensor c({m, n});
  simd::kernels().gemm_nt(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  return c;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul_accumulate: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  if (c.rank() != 2 || c.dim(0) != a.dim(0) || c.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_accumulate: accumulator shape " +
                                shape_to_string(c.shape()) + " does not match " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  simd::kernels().gemm(a.data().data(), b.data().data(), c.data().data(), a.dim(0),
                       a.dim(1), b.dim(1));
}

namespace {

/// Shared geometry of the im2col pair: output spatial extent of a square
/// stride-1 kernel with symmetric zero padding.
std::size_t conv_output_extent(std::size_t in, std::size_t kernel,
                               std::size_t padding, const char* who) {
  if (in + 2 * padding < kernel) {
    throw std::invalid_argument(std::string(who) + ": kernel " +
                                std::to_string(kernel) + " exceeds padded extent " +
                                std::to_string(in + 2 * padding));
  }
  return in + 2 * padding - kernel + 1;
}

}  // namespace

Tensor im2col(const Tensor& input, std::size_t kernel, std::size_t padding) {
  if (input.rank() != 4 || kernel == 0) {
    throw std::invalid_argument("im2col: expected NCHW input and kernel >= 1, got " +
                                shape_to_string(input.shape()) + " kernel " +
                                std::to_string(kernel));
  }
  const std::size_t n = input.dim(0);
  const std::size_t c = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = conv_output_extent(h, kernel, padding, "im2col");
  const std::size_t ow = conv_output_extent(w, kernel, padding, "im2col");
  const std::size_t taps = c * kernel * kernel;
  Tensor cols({n * oh * ow, taps});
  const float* src = input.data().data();
  float* dst = cols.data().data();
  // Per (channel, ky, kx) tap: the output columns whose input pixel is in
  // bounds form one contiguous ox range reading one contiguous source
  // line, so the hot loop is branch-free — a contiguous read scattered at
  // stride `taps`. Padding taps are never written (cols zero-initializes),
  // which is the packing cost that makes the lowered GEMM pay off even on
  // the CNN's tiny 9-tap first layer.
  const std::size_t image_floats = c * h * w;
  const std::size_t block_floats = oh * ow * taps;
  for (std::size_t b = 0; b < n; ++b) {
    // Consecutive-duplicate cache: the fused Monte-Carlo path stacks each
    // request image T times in a row ((B*T) x features), so after the
    // first lowering the remaining T-1 copies reduce to one memcpy of the
    // finished patch block. Bitwise identity is free — the copied block IS
    // the block the loop would have produced.
    if (b > 0 && std::memcmp(src + (b - 1) * image_floats, src + b * image_floats,
                             image_floats * sizeof(float)) == 0) {
      std::memcpy(dst + b * block_floats, dst + (b - 1) * block_floats,
                  block_floats * sizeof(float));
      continue;
    }
    for (std::size_t ic = 0; ic < c; ++ic) {
      const float* plane = src + (b * c + ic) * h * w;
      for (std::size_t ky = 0; ky < kernel; ++ky) {
        for (std::size_t kx = 0; kx < kernel; ++kx) {
          const std::size_t tap = (ic * kernel + ky) * kernel + kx;
          // Valid ox: 0 <= ox + kx - padding < w.
          const std::size_t ox_lo = padding > kx ? padding - kx : 0;
          const std::size_t ox_hi =
              std::min(ow, w + padding > kx ? w + padding - kx : 0);
          if (ox_lo >= ox_hi) {
            continue;
          }
          for (std::size_t oy = 0; oy < oh; ++oy) {
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                      static_cast<std::ptrdiff_t>(padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
              continue;
            }
            const float* line = plane + static_cast<std::size_t>(iy) * w +
                                (ox_lo + kx - padding);
            float* out = dst + ((b * oh + oy) * ow + ox_lo) * taps + tap;
            for (std::size_t i = 0; i < ox_hi - ox_lo; ++i) {
              out[i * taps] = line[i];
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& input_shape, std::size_t kernel,
              std::size_t padding) {
  if (input_shape.size() != 4 || kernel == 0) {
    throw std::invalid_argument("col2im: expected an NCHW target shape, got " +
                                shape_to_string(input_shape));
  }
  const std::size_t n = input_shape[0];
  const std::size_t c = input_shape[1];
  const std::size_t h = input_shape[2];
  const std::size_t w = input_shape[3];
  const std::size_t oh = conv_output_extent(h, kernel, padding, "col2im");
  const std::size_t ow = conv_output_extent(w, kernel, padding, "col2im");
  const std::size_t taps = c * kernel * kernel;
  if (cols.rank() != 2 || cols.dim(0) != n * oh * ow || cols.dim(1) != taps) {
    throw std::invalid_argument("col2im: patch matrix " +
                                shape_to_string(cols.shape()) +
                                " does not match target " +
                                shape_to_string(input_shape));
  }
  Tensor grad(input_shape);
  const float* src = cols.data().data();
  float* dst = grad.data().data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* row = src + ((b * oh + oy) * ow + ox) * taps;
        for (std::size_t ic = 0; ic < c; ++ic) {
          float* plane = dst + (b * c + ic) * h * w;
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                      static_cast<std::ptrdiff_t>(padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
              continue;
            }
            const float* tap = row + (ic * kernel + ky) * kernel;
            float* line = plane + static_cast<std::size_t>(iy) * w;
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox + kx) -
                                        static_cast<std::ptrdiff_t>(padding);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                continue;
              }
              line[static_cast<std::size_t>(ix)] += tap[kx];
            }
          }
        }
      }
    }
  }
  return grad;
}

Tensor matmul_a_transposed(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_a_transposed: incompatible shapes " +
                                shape_to_string(a.shape()) + "^T x " +
                                shape_to_string(b.shape()));
  }
  const std::size_t k = a.dim(0);
  const std::size_t m = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  simd::kernels().gemm_at(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  return c;
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_rows: expected rank-2 tensor, got " +
                                shape_to_string(logits.shape()));
  }
  const std::size_t rows = logits.dim(0);
  const std::size_t cols = logits.dim(1);
  Tensor out(logits.shape());
  for (std::size_t i = 0; i < rows; ++i) {
    float row_max = logits.at(i, 0);
    for (std::size_t j = 1; j < cols; ++j) {
      row_max = std::max(row_max, logits.at(i, j));
    }
    float denom = 0.0f;
    for (std::size_t j = 0; j < cols; ++j) {
      const float e = std::exp(logits.at(i, j) - row_max);
      out.at(i, j) = e;
      denom += e;
    }
    for (std::size_t j = 0; j < cols; ++j) {
      out.at(i, j) /= denom;
    }
  }
  return out;
}

std::size_t argmax_row(const Tensor& t, std::size_t row) {
  if (t.rank() != 2 || row >= t.dim(0)) {
    throw std::invalid_argument("argmax_row: need a rank-2 tensor and a valid row");
  }
  std::size_t best = 0;
  for (std::size_t j = 1; j < t.dim(1); ++j) {
    if (t.at(row, j) > t.at(row, best)) {
      best = j;
    }
  }
  return best;
}

}  // namespace neuspin::nn
