#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace neuspin::nn {

namespace {

std::size_t shape_numel(const Shape& shape) {
  if (shape.empty()) {
    return 0;
  }
  std::size_t n = 1;
  for (std::size_t d : shape) {
    n *= d;
  }
  return n;
}

}  // namespace

std::string shape_to_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(shape[i]);
  }
  return out + "]";
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::randn(Shape shape, float stddev, std::mt19937_64& engine) {
  Tensor t(std::move(shape));
  std::normal_distribution<float> dist(0.0f, stddev);
  for (auto& v : t.data_) {
    v = dist(engine);
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, float lo, float hi, std::mt19937_64& engine) {
  Tensor t(std::move(shape));
  std::uniform_real_distribution<float> dist(lo, hi);
  for (auto& v : t.data_) {
    v = dist(engine);
  }
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) {
    throw std::out_of_range("Tensor: axis " + std::to_string(axis) +
                            " out of range for shape " + shape_to_string(shape_));
  }
  return shape_[axis];
}

Tensor Tensor::reshaped(Shape shape) const {
  if (shape_numel(shape) != data_.size()) {
    throw std::invalid_argument("Tensor: cannot reshape " + shape_to_string(shape_) +
                                " to " + shape_to_string(shape));
  }
  Tensor out;
  out.shape_ = std::move(shape);
  out.data_ = data_;
  return out;
}

float& Tensor::at(std::size_t i, std::size_t j) {
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return data_[i * shape_[1] + j];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string("Tensor: shape mismatch in ") + op + ": " +
                                shape_to_string(shape_) + " vs " +
                                shape_to_string(other.shape_));
  }
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(other, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(other, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) {
    v *= scalar;
  }
  return *this;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

float Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::mean() const {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::abs_mean() const {
  if (data_.empty()) {
    return 0.0f;
  }
  float s = 0.0f;
  for (float v : data_) {
    s += std::abs(v);
  }
  return s / static_cast<float>(data_.size());
}

float Tensor::max() const {
  if (data_.empty()) {
    throw std::logic_error("Tensor: max() of empty tensor");
  }
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax() const {
  if (data_.empty()) {
    throw std::logic_error("Tensor: argmax() of empty tensor");
  }
  return static_cast<std::size_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a.at(i, p);
      if (av == 0.0f) {
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += av * b.at(p, j);
      }
    }
  }
  return c;
}

Tensor matmul_transposed(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_transposed: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()) + "^T");
  }
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(0);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc += a.at(i, p) * b.at(j, p);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

Tensor matmul_a_transposed(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_a_transposed: incompatible shapes " +
                                shape_to_string(a.shape()) + "^T x " +
                                shape_to_string(b.shape()));
  }
  const std::size_t k = a.dim(0);
  const std::size_t m = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a.at(p, i);
      if (av == 0.0f) {
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += av * b.at(p, j);
      }
    }
  }
  return c;
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_rows: expected rank-2 tensor, got " +
                                shape_to_string(logits.shape()));
  }
  const std::size_t rows = logits.dim(0);
  const std::size_t cols = logits.dim(1);
  Tensor out(logits.shape());
  for (std::size_t i = 0; i < rows; ++i) {
    float row_max = logits.at(i, 0);
    for (std::size_t j = 1; j < cols; ++j) {
      row_max = std::max(row_max, logits.at(i, j));
    }
    float denom = 0.0f;
    for (std::size_t j = 0; j < cols; ++j) {
      const float e = std::exp(logits.at(i, j) - row_max);
      out.at(i, j) = e;
      denom += e;
    }
    for (std::size_t j = 0; j < cols; ++j) {
      out.at(i, j) /= denom;
    }
  }
  return out;
}

}  // namespace neuspin::nn
