#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

namespace neuspin::nn {

namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim, std::mt19937_64& engine)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(Tensor::randn({input_dim, 4 * hidden_dim},
                        1.0f / std::sqrt(static_cast<float>(input_dim)), engine)),
      wh_(Tensor::randn({hidden_dim, 4 * hidden_dim},
                        1.0f / std::sqrt(static_cast<float>(hidden_dim)), engine)),
      b_({4 * hidden_dim}),
      wx_grad_({input_dim, 4 * hidden_dim}),
      wh_grad_({hidden_dim, 4 * hidden_dim}),
      b_grad_({4 * hidden_dim}) {
  if (input_dim == 0 || hidden_dim == 0) {
    throw std::invalid_argument("Lstm: dimensions must be positive");
  }
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (std::size_t j = 0; j < hidden_dim_; ++j) {
    b_[hidden_dim_ + j] = 1.0f;
  }
}

Tensor Lstm::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 3 || input.dim(2) != input_dim_) {
    throw std::invalid_argument("Lstm: expected (batch x time x " +
                                std::to_string(input_dim_) + "), got " +
                                shape_to_string(input.shape()));
  }
  input_cache_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t t_len = input.dim(1);
  const std::size_t h = hidden_dim_;

  gates_.assign(t_len, Tensor({n, 4 * h}));
  cells_.assign(t_len, Tensor({n, h}));
  hiddens_.assign(t_len, Tensor({n, h}));

  Tensor h_prev({n, h});
  Tensor c_prev({n, h});
  for (std::size_t t = 0; t < t_len; ++t) {
    Tensor& gates = gates_[t];
    // pre-activations: x_t Wx + h_{t-1} Wh + b
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < 4 * h; ++j) {
        float acc = b_[j];
        for (std::size_t d = 0; d < input_dim_; ++d) {
          acc += input[(i * t_len + t) * input_dim_ + d] * wx_.at(d, j);
        }
        for (std::size_t d = 0; d < h; ++d) {
          acc += h_prev.at(i, d) * wh_.at(d, j);
        }
        gates.at(i, j) = acc;
      }
    }
    // activations and state update
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < h; ++j) {
        const float ig = sigmoid(gates.at(i, j));
        const float fg = sigmoid(gates.at(i, h + j));
        const float gg = std::tanh(gates.at(i, 2 * h + j));
        const float og = sigmoid(gates.at(i, 3 * h + j));
        gates.at(i, j) = ig;
        gates.at(i, h + j) = fg;
        gates.at(i, 2 * h + j) = gg;
        gates.at(i, 3 * h + j) = og;
        const float c = fg * c_prev.at(i, j) + ig * gg;
        cells_[t].at(i, j) = c;
        hiddens_[t].at(i, j) = og * std::tanh(c);
      }
    }
    h_prev = hiddens_[t];
    c_prev = cells_[t];
  }
  return hiddens_.back();
}

Tensor Lstm::backward(const Tensor& grad_output) {
  const std::size_t n = input_cache_.dim(0);
  const std::size_t t_len = input_cache_.dim(1);
  const std::size_t h = hidden_dim_;
  if (grad_output.rank() != 2 || grad_output.dim(0) != n || grad_output.dim(1) != h) {
    throw std::invalid_argument("Lstm::backward: expected (batch x hidden) gradient");
  }

  Tensor grad_input(input_cache_.shape());
  Tensor dh = grad_output;
  Tensor dc({n, h});
  for (std::size_t t = t_len; t-- > 0;) {
    const Tensor& gates = gates_[t];
    Tensor dgates({n, 4 * h});  // gradient on pre-activations
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < h; ++j) {
        const float ig = gates.at(i, j);
        const float fg = gates.at(i, h + j);
        const float gg = gates.at(i, 2 * h + j);
        const float og = gates.at(i, 3 * h + j);
        const float c = cells_[t].at(i, j);
        const float tanh_c = std::tanh(c);
        const float c_prev = t > 0 ? cells_[t - 1].at(i, j) : 0.0f;

        const float dht = dh.at(i, j);
        float dct = dc.at(i, j) + dht * og * (1.0f - tanh_c * tanh_c);

        dgates.at(i, 3 * h + j) = dht * tanh_c * og * (1.0f - og);
        dgates.at(i, j) = dct * gg * ig * (1.0f - ig);
        dgates.at(i, h + j) = dct * c_prev * fg * (1.0f - fg);
        dgates.at(i, 2 * h + j) = dct * ig * (1.0f - gg * gg);
        dc.at(i, j) = dct * fg;
      }
    }
    // Parameter gradients and propagated gradients.
    Tensor dh_next({n, h});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < 4 * h; ++j) {
        const float dg = dgates.at(i, j);
        if (dg == 0.0f) {
          continue;
        }
        b_grad_[j] += dg;
        for (std::size_t d = 0; d < input_dim_; ++d) {
          const float x = input_cache_[(i * t_len + t) * input_dim_ + d];
          wx_grad_.at(d, j) += dg * x;
          grad_input[(i * t_len + t) * input_dim_ + d] += dg * wx_.at(d, j);
        }
        if (t > 0) {
          for (std::size_t d = 0; d < h; ++d) {
            wh_grad_.at(d, j) += dg * hiddens_[t - 1].at(i, d);
            dh_next.at(i, d) += dg * wh_.at(d, j);
          }
        }
      }
    }
    dh = dh_next;
  }
  return grad_input;
}

std::vector<ParamRef> Lstm::parameters() {
  return {{&wx_, &wx_grad_}, {&wh_, &wh_grad_}, {&b_, &b_grad_}};
}

}  // namespace neuspin::nn
