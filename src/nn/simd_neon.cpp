// NEON kernel tier. NEON is baseline on aarch64, so no extra -m flags are
// needed; CMake defines NEUSPIN_SIMD_NEON_TU on aarch64/arm64 targets and
// adds -ffp-contract=off (GCC on aarch64 contracts a*b+c into fmla by
// default, which would split this tier's bits from the scalar tier's).
// The scalar tier on aarch64 compiles the same source with the same
// flags, so the two tables coincide bitwise — kept as distinct tiers so
// NEUSPIN_SIMD=scalar means the same thing on every platform.
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "nn/simd.h"

#if defined(NEUSPIN_SIMD_NEON_TU)

namespace neuspin::nn::simd::detail {
namespace neon_tier {
#define NEUSPIN_SIMD_TIER_NAME "neon"
#include "nn/simd_kernels.inc"
#undef NEUSPIN_SIMD_TIER_NAME
}  // namespace neon_tier

const KernelTable* neon_table() { return &neon_tier::kLocalTable; }

}  // namespace neuspin::nn::simd::detail

#else  // not an aarch64 target: tier not compiled in

namespace neuspin::nn::simd::detail {
const KernelTable* neon_table() { return nullptr; }
}  // namespace neuspin::nn::simd::detail

#endif
