// Minimal dense tensor used by the from-scratch NN framework.
//
// Row-major, float storage, shapes up to rank 4 (N, C, H, W). The class is
// intentionally small: NeuSpin's models are edge-scale (the paper targets
// IoT/wearable inference), so clarity and determinism beat BLAS-grade
// performance. All randomness is injected through seeded engines.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace neuspin::nn {

/// Shape of a tensor; element order is row-major with the last axis fastest.
using Shape = std::vector<std::size_t>;

/// Render a shape as "[2, 3, 4]" for error messages.
[[nodiscard]] std::string shape_to_string(const Shape& shape);

/// Dense row-major float tensor.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  /// Factory helpers -------------------------------------------------------
  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// Gaussian init, N(0, stddev^2).
  [[nodiscard]] static Tensor randn(Shape shape, float stddev, std::mt19937_64& engine);
  /// Uniform init over [lo, hi).
  [[nodiscard]] static Tensor uniform(Shape shape, float lo, float hi,
                                      std::mt19937_64& engine);

  /// Structure --------------------------------------------------------------
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const;
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Reshape to a compatible shape (same numel). Returns a copy sharing no
  /// storage; tensors are value types here.
  [[nodiscard]] Tensor reshaped(Shape shape) const;

  /// Element access ---------------------------------------------------------
  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] float& at(std::size_t i, std::size_t j);
  [[nodiscard]] float at(std::size_t i, std::size_t j) const;
  [[nodiscard]] float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const;

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  /// In-place arithmetic ----------------------------------------------------
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);
  void fill(float value);

  /// Reductions -------------------------------------------------------------
  [[nodiscard]] float sum() const;
  [[nodiscard]] float mean() const;
  [[nodiscard]] float abs_mean() const;
  [[nodiscard]] float max() const;
  [[nodiscard]] std::size_t argmax() const;

 private:
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

/// C = A(mxk) * B(kxn). Cache-blocked row-major kernel: k is strip-mined so
/// the active rows of B stay L1-resident, the inner j-loop is contiguous
/// over one row of B and one row of C (vectorizable, no index arithmetic),
/// and every C element accumulates its k-terms in ascending-k order — so
/// row i of the result depends only on row i of A and on B, never on the
/// batch size. That row independence is what lets the fused Monte-Carlo
/// path stack T passes x B requests into one call and still reproduce the
/// batch-of-one results bit for bit.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(mxk) * B^T where B is (n x k). Used by dense backward passes.
/// Dot-product kernel over contiguous rows with a fixed 8-lane partial-sum
/// split (combined pairwise in a fixed order): vectorizable and
/// deterministic for a given k, independent of m and n.
[[nodiscard]] Tensor matmul_transposed(const Tensor& a, const Tensor& b);

/// C = A^T(kxm) * B(kxn). Used for weight gradients. Same blocked
/// ascending-k accumulation contract as matmul.
[[nodiscard]] Tensor matmul_a_transposed(const Tensor& a, const Tensor& b);

/// C += A(mxk) * B(kxn): the blocked matmul kernel accumulating into an
/// existing C instead of a fresh zero tensor. Every C element still
/// receives its k-terms in ascending-k order on top of whatever C held, so
/// a caller that pre-fills C with a bias gets bias-first accumulation —
/// exactly the term order of a scalar loop that starts from the bias. The
/// im2col convolution path seeds C with the per-channel bias this way.
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c);

/// Lower an NCHW tensor into its im2col patch matrix for a square
/// stride-1 convolution with symmetric zero padding: output row
/// p = (n * OH + oy) * OW + ox holds the receptive field of output pixel
/// (oy, ox) of sample n, flattened in (c, ky, kx) order — the same
/// ascending order the direct convolution loop accumulates in, which is
/// what keeps the lowered GEMM bitwise equal to the per-element loop.
/// Out-of-bounds (padding) taps are exact zeros; the blocked kernels skip
/// them, mirroring the direct loop's bounds checks. OH = H + 2*padding -
/// kernel + 1 (and likewise OW) must be positive.
/// Consecutive duplicate images (bitwise-equal NCHW blocks, e.g. the T
/// stacked copies of one request in the fused Monte-Carlo path) are
/// lowered once and then block-copied — same bits, T-1 packings saved.
[[nodiscard]] Tensor im2col(const Tensor& input, std::size_t kernel,
                            std::size_t padding);

/// Adjoint of im2col: scatter-add a patch-matrix gradient (shaped like the
/// im2col output for `input_shape`) back onto the NCHW input gradient.
/// Rows are consumed in ascending order and each row's taps in ascending
/// (c, ky, kx) order — the fixed accumulation order that makes the im2col
/// backward pass bitwise reproducible. Padding taps are discarded.
[[nodiscard]] Tensor col2im(const Tensor& cols, const Shape& input_shape,
                            std::size_t kernel, std::size_t padding);

/// Row-wise softmax of a (batch x classes) tensor.
[[nodiscard]] Tensor softmax_rows(const Tensor& logits);

/// Column index of the largest entry in row `row` of a rank-2 tensor; ties
/// break toward the lower index (strict `>` scan). The one argmax every
/// classification accuracy loop in the repo shares.
[[nodiscard]] std::size_t argmax_row(const Tensor& t, std::size_t row);

}  // namespace neuspin::nn
