#include "nn/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace neuspin::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4e535031;  // "NSP1"

/// Collect every persisted tensor of the model, in a stable order.
std::vector<Tensor*> persisted_tensors(Sequential& model) {
  std::vector<Tensor*> tensors;
  for (std::size_t i = 0; i < model.size(); ++i) {
    for (const auto& p : model.layer(i).parameters()) {
      tensors.push_back(p.value);
    }
    for (Tensor* s : model.layer(i).state_tensors()) {
      tensors.push_back(s);
    }
  }
  return tensors;
}

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

}  // namespace

void save_checkpoint(Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_checkpoint: cannot open " + path);
  }
  const auto tensors = persisted_tensors(model);
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  write_u64(out, tensors.size());
  for (const Tensor* t : tensors) {
    write_u64(out, t->rank());
    for (std::size_t a = 0; a < t->rank(); ++a) {
      write_u64(out, t->dim(a));
    }
    out.write(reinterpret_cast<const char*>(t->data().data()),
              static_cast<std::streamsize>(t->numel() * sizeof(float)));
  }
  if (!out) {
    throw std::runtime_error("save_checkpoint: write failed for " + path);
  }
}

void load_checkpoint(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint: cannot open " + path);
  }
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) {
    throw std::runtime_error("load_checkpoint: " + path + " is not a NeuSpin checkpoint");
  }
  const auto tensors = persisted_tensors(model);
  const std::uint64_t count = read_u64(in);
  if (count != tensors.size()) {
    throw std::runtime_error("load_checkpoint: checkpoint holds " +
                             std::to_string(count) + " tensors, model expects " +
                             std::to_string(tensors.size()));
  }
  for (Tensor* t : tensors) {
    const std::uint64_t rank = read_u64(in);
    if (rank != t->rank()) {
      throw std::runtime_error("load_checkpoint: tensor rank mismatch");
    }
    for (std::size_t a = 0; a < rank; ++a) {
      const std::uint64_t dim = read_u64(in);
      if (dim != t->dim(a)) {
        throw std::runtime_error("load_checkpoint: tensor shape mismatch at axis " +
                                 std::to_string(a));
      }
    }
    in.read(reinterpret_cast<char*>(t->data().data()),
            static_cast<std::streamsize>(t->numel() * sizeof(float)));
    if (!in) {
      throw std::runtime_error("load_checkpoint: truncated checkpoint " + path);
    }
  }
}

}  // namespace neuspin::nn
