#include "nn/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

namespace neuspin::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4e535031;  // "NSP1"

/// Collect every persisted tensor of the model, in a stable order.
std::vector<Tensor*> persisted_tensors(Sequential& model) {
  std::vector<Tensor*> tensors;
  for (std::size_t i = 0; i < model.size(); ++i) {
    for (const auto& p : model.layer(i).parameters()) {
      tensors.push_back(p.value);
    }
    for (Tensor* s : model.layer(i).state_tensors()) {
      tensors.push_back(s);
    }
  }
  return tensors;
}

}  // namespace

std::string checkpoint_fault_name(CheckpointFault fault) {
  switch (fault) {
    case CheckpointFault::kIo: return "io";
    case CheckpointFault::kBadMagic: return "bad-magic";
    case CheckpointFault::kTruncated: return "truncated";
    case CheckpointFault::kCountMismatch: return "count-mismatch";
    case CheckpointFault::kShapeMismatch: return "shape-mismatch";
    case CheckpointFault::kBadHeader: return "bad-header";
  }
  return "unknown";
}

CheckpointError::CheckpointError(CheckpointFault fault, const std::string& detail)
    : std::runtime_error("checkpoint [" + checkpoint_fault_name(fault) + "]: " + detail),
      fault_(fault) {}

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in, const std::string& what) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) {
    throw CheckpointError(CheckpointFault::kTruncated, "stream ended reading " + what);
  }
  return v;
}

void write_tensor(std::ostream& out, const Tensor& tensor) {
  write_u64(out, tensor.rank());
  for (std::size_t a = 0; a < tensor.rank(); ++a) {
    write_u64(out, tensor.dim(a));
  }
  out.write(reinterpret_cast<const char*>(tensor.data().data()),
            static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
}

void read_tensor(std::istream& in, Tensor& into, const std::string& what) {
  const std::uint64_t rank = read_u64(in, what + " rank");
  if (rank != into.rank()) {
    throw CheckpointError(CheckpointFault::kShapeMismatch,
                          what + ": rank " + std::to_string(rank) + " in file, " +
                              std::to_string(into.rank()) + " expected");
  }
  for (std::size_t a = 0; a < rank; ++a) {
    const std::uint64_t dim = read_u64(in, what + " dims");
    if (dim != into.dim(a)) {
      throw CheckpointError(CheckpointFault::kShapeMismatch,
                            what + ": axis " + std::to_string(a) + " is " +
                                std::to_string(dim) + " in file, " +
                                std::to_string(into.dim(a)) + " expected");
    }
  }
  // Stage the payload so a short read never leaves `into` half-written.
  std::vector<float> staged(into.numel());
  in.read(reinterpret_cast<char*>(staged.data()),
          static_cast<std::streamsize>(staged.size() * sizeof(float)));
  if (!in) {
    throw CheckpointError(CheckpointFault::kTruncated, "stream ended reading " + what);
  }
  std::copy(staged.begin(), staged.end(), into.data().begin());
}

void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in, std::uint64_t max_bytes, const std::string& what) {
  const std::uint64_t len = read_u64(in, what + " length");
  if (len > max_bytes) {
    throw CheckpointError(CheckpointFault::kBadHeader,
                          what + ": declared length " + std::to_string(len) +
                              " exceeds limit " + std::to_string(max_bytes));
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) {
    throw CheckpointError(CheckpointFault::kTruncated, "stream ended reading " + what);
  }
  return s;
}

void save_checkpoint(Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw CheckpointError(CheckpointFault::kIo, "cannot open " + path + " for writing");
  }
  const auto tensors = persisted_tensors(model);
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  write_u64(out, tensors.size());
  for (const Tensor* t : tensors) {
    write_tensor(out, *t);
  }
  if (!out) {
    throw CheckpointError(CheckpointFault::kIo, "write failed for " + path);
  }
}

void load_checkpoint(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(CheckpointFault::kIo, "cannot open " + path);
  }
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    throw CheckpointError(CheckpointFault::kBadMagic,
                          path + " is not a NeuSpin checkpoint");
  }
  const auto tensors = persisted_tensors(model);
  const std::uint64_t count = read_u64(in, "tensor count");
  if (count != tensors.size()) {
    throw CheckpointError(CheckpointFault::kCountMismatch,
                          path + " holds " + std::to_string(count) +
                              " tensors, model expects " + std::to_string(tensors.size()));
  }
  // Stage the whole file before committing anything: a fault on tensor k
  // must not leave tensors 0..k-1 already overwritten.
  std::vector<Tensor> staged;
  staged.reserve(tensors.size());
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    Tensor scratch(tensors[i]->shape());
    read_tensor(in, scratch, path + " tensor " + std::to_string(i));
    staged.push_back(std::move(scratch));
  }
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    std::copy(staged[i].data().begin(), staged[i].data().end(),
              tensors[i]->data().begin());
  }
}

}  // namespace neuspin::nn
