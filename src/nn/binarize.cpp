#include "nn/binarize.h"

#include <cmath>
#include <utility>

#include "nn/conv_lowering.h"
#include "obs/metrics.h"

namespace neuspin::nn {

namespace {

/// Rows/images the consecutive-duplicate inference cache skipped
/// recomputing (the fused Monte-Carlo path stacks each request T times).
obs::Counter& patch_cache_hit_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("nn.patch_cache.hits");
  return counter;
}

/// Run `compute` (a deterministic, block-independent map over the leading
/// axis) on the unique consecutive blocks of `input` only, then expand the
/// results back — the cross-pass patch/row cache of the binary layers.
/// Bitwise neutral: per-block independence means the gathered computation
/// produces the exact bits of the full one, and the scatter only copies.
template <typename Fn>
Tensor dedup_leading_blocks(const Tensor& input, const Fn& compute) {
  const std::size_t blocks = input.dim(0);
  if (!patch_cache_enabled() || blocks <= 1) {
    return compute(input);
  }
  const detail::DupMap map = detail::consecutive_dup_map(
      input.data().data(), blocks, input.numel() / blocks);
  if (!map.has_duplicates()) {
    return compute(input);
  }
  patch_cache_hit_counter().inc(blocks - map.unique);
  return detail::scatter_unique_blocks(
      compute(detail::gather_unique_blocks(input, map)), map);
}

}  // namespace

Tensor sign_of(const Tensor& t) {
  Tensor out = t;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = out[i] >= 0.0f ? 1.0f : -1.0f;
  }
  return out;
}

Tensor column_abs_mean(const Tensor& weight) {
  const std::size_t rows = weight.dim(0);
  const std::size_t cols = weight.dim(1);
  Tensor alpha({cols});
  for (std::size_t j = 0; j < cols; ++j) {
    float s = 0.0f;
    for (std::size_t i = 0; i < rows; ++i) {
      s += std::abs(weight.at(i, j));
    }
    alpha[j] = s / static_cast<float>(rows);
  }
  return alpha;
}

// ---------------------------------------------------------- BinaryDense ----

BinaryDense::BinaryDense(std::size_t in_features, std::size_t out_features,
                         std::mt19937_64& engine)
    : in_(in_features),
      out_(out_features),
      latent_weight_(Tensor::randn({in_features, out_features},
                                   std::sqrt(2.0f / static_cast<float>(in_features)),
                                   engine)),
      bias_({out_features}),
      weight_grad_({in_features, out_features}),
      bias_grad_({out_features}) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("BinaryDense: feature counts must be positive");
  }
}

const detail::PackedBinaryWeights& BinaryDense::packed() {
  const std::uint64_t fp = tensor_fingerprint(latent_weight_);
  if (!pack_.filled || pack_.fingerprint != fp) {
    pack_.fingerprint = fp;
    pack_.sign_float = sign_of(latent_weight_);
    pack_.alpha = column_abs_mean(latent_weight_);
    // One dense ±1 row per output column: transpose sign(W) so column j's
    // K sign bits are contiguous for the popcount kernel.
    Tensor cols({out_, in_});
    for (std::size_t i = 0; i < in_; ++i) {
      for (std::size_t j = 0; j < out_; ++j) {
        cols.at(j, i) = pack_.sign_float.at(i, j);
      }
    }
    pack_.bits = BitMatrix::pack_rows_sign(cols);
    pack_.filled = true;
  }
  return pack_;
}

/// Inference product for one (already deduplicated) row block. The float
/// fallback uses the cached sign(W)/alpha — the same values the training
/// path materializes per forward — and the identical epilogue expression,
/// so every path here is bitwise the pre-pack forward.
Tensor BinaryDense::infer_rows(const Tensor& x) {
  if (binary_algo_ == BinaryAlgo::kBitpacked ||
      (binary_algo_ == BinaryAlgo::kAuto && in_ >= detail::kMinPackedK)) {
    std::optional<BitMatrix> packed_x;
    if (binary_algo_ == BinaryAlgo::kBitpacked) {
      packed_x = BitMatrix::pack_rows_sign(x);  // paper's sign quantization
    } else {
      packed_x = BitMatrix::try_pack_rows(x);  // kAuto: only when exact
    }
    if (packed_x.has_value()) {
      return bgemm(*packed_x, pack_.bits, &pack_.alpha, &bias_);
    }
  }
  Tensor out = matmul(x, pack_.sign_float);
  const std::size_t batch = out.dim(0);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      out.at(i, j) = out.at(i, j) * pack_.alpha[j] + bias_[j];
    }
  }
  return out;
}

Tensor BinaryDense::forward(const Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("BinaryDense: expected (batch x " + std::to_string(in_) +
                                "), got " + shape_to_string(input.shape()));
  }
  if (training) {
    // Training path: float STE forward, kept bit-for-bit as it always was
    // (the bit-packed kernels are inference-only).
    input_cache_ = input;
    binary_cache_ = sign_of(latent_weight_);
    alpha_cache_ = column_abs_mean(latent_weight_);
    Tensor out = matmul(input, binary_cache_);
    const std::size_t batch = out.dim(0);
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t j = 0; j < out_; ++j) {
        out.at(i, j) = out.at(i, j) * alpha_cache_[j] + bias_[j];
      }
    }
    return out;
  }
  // Inference: no backward state (mirror BinaryConv2d's contract), cached
  // sign-packed weights, duplicate-row cache, bit-packed product when the
  // activations allow it.
  input_cache_ = Tensor();
  binary_cache_ = Tensor();
  alpha_cache_ = Tensor();
  (void)packed();
  return dedup_leading_blocks(input,
                              [this](const Tensor& x) { return infer_rows(x); });
}

Tensor BinaryDense::backward(const Tensor& grad_output) {
  if (input_cache_.empty()) {
    throw std::logic_error("BinaryDense: backward before a training-mode forward");
  }
  const std::size_t batch = grad_output.dim(0);
  // Scale gradients back through alpha (treated as constant per step, the
  // standard XNOR-Net simplification), then apply the STE window.
  Tensor g_scaled = grad_output;
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      g_scaled.at(i, j) *= alpha_cache_[j];
      bias_grad_[j] += grad_output.at(i, j);
    }
  }
  Tensor wg = matmul_a_transposed(input_cache_, g_scaled);
  for (std::size_t i = 0; i < wg.numel(); ++i) {
    // STE: zero the gradient where the latent weight left the clip window.
    if (std::abs(latent_weight_[i]) > 1.0f) {
      wg[i] = 0.0f;
    }
  }
  weight_grad_ += wg;
  return matmul_transposed(g_scaled, binary_cache_);
}

std::vector<ParamRef> BinaryDense::parameters() {
  return {{&latent_weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

// --------------------------------------------------------- BinaryConv2d ----

BinaryConv2d::BinaryConv2d(std::size_t in_channels, std::size_t out_channels,
                           std::size_t kernel, std::size_t padding,
                           std::mt19937_64& engine)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      padding_(padding),
      latent_weight_(Tensor::randn(
          {out_channels, in_channels, kernel, kernel},
          std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel)), engine)),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels, kernel, kernel}),
      bias_grad_({out_channels}) {
  if (kernel == 0 || in_channels == 0 || out_channels == 0) {
    throw std::invalid_argument("BinaryConv2d: channels and kernel must be positive");
  }
}

Tensor BinaryConv2d::channel_scales() const {
  const std::size_t per_channel = in_ch_ * kernel_ * kernel_;
  Tensor alpha({out_ch_});
  for (std::size_t oc = 0; oc < out_ch_; ++oc) {
    float s = 0.0f;
    for (std::size_t i = 0; i < per_channel; ++i) {
      s += std::abs(latent_weight_[oc * per_channel + i]);
    }
    alpha[oc] = s / static_cast<float>(per_channel);
  }
  return alpha;
}

const detail::PackedBinaryWeights& BinaryConv2d::packed() {
  const std::uint64_t fp = tensor_fingerprint(latent_weight_);
  if (!pack_.filled || pack_.fingerprint != fp) {
    const std::size_t taps = in_ch_ * kernel_ * kernel_;
    pack_.fingerprint = fp;
    pack_.sign_float = sign_of(latent_weight_);
    pack_.alpha = channel_scales();
    pack_.gemm_operand = detail::kernel_as_gemm_operand(pack_.sign_float);
    // Row oc = kernel oc flattened in (ic, ky, kx) order — the contiguous
    // latent layout, and exactly column oc of the lowered GEMM operand.
    pack_.bits =
        BitMatrix::pack_rows_sign(pack_.sign_float.reshaped({out_ch_, taps}));
    pack_.filled = true;
  }
  return pack_;
}

/// Inference forward for one (already deduplicated) NCHW block.
Tensor BinaryConv2d::infer_images(const Tensor& x) {
  const std::size_t n = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = h + 2 * padding_ - kernel_ + 1;
  const std::size_t ow = w + 2 * padding_ - kernel_ + 1;

  if (algo_ == Conv2d::Algo::kIm2col) {
    Tensor cols = im2col(x, kernel_, padding_);
    const std::size_t taps = in_ch_ * kernel_ * kernel_;
    if (binary_algo_ == BinaryAlgo::kBitpacked ||
        (binary_algo_ == BinaryAlgo::kAuto && taps >= detail::kMinPackedK)) {
      // Patches are sign-packed once per batch and reused across every
      // output channel; padding zeros land in the mask plane, so the
      // popcount dot is exact — see nn/bitpack.h.
      std::optional<BitMatrix> packed_cols;
      if (binary_algo_ == BinaryAlgo::kBitpacked) {
        packed_cols = BitMatrix::pack_rows_sign(cols);
      } else {
        packed_cols = BitMatrix::try_pack_rows(cols);
      }
      if (packed_cols.has_value()) {
        const Tensor out_rows =
            bgemm(*packed_cols, pack_.bits, &pack_.alpha, &bias_);
        return detail::rows_to_nchw(out_rows, n, out_ch_, oh, ow);
      }
    }
    // Float fallback: the lowered path with cached sign(W)/alpha, epilogue
    // expression and order identical to the training forward's.
    Tensor out_rows = matmul(cols, pack_.gemm_operand);
    const std::size_t rows = out_rows.dim(0);
    const float* alpha = pack_.alpha.data().data();
    const float* bias = bias_.data().data();
    float* row = out_rows.data().data();
    for (std::size_t p = 0; p < rows; ++p, row += out_ch_) {
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        row[oc] = row[oc] * alpha[oc] + bias[oc];
      }
    }
    return detail::rows_to_nchw(out_rows, n, out_ch_, oh, ow);
  }

  // Direct loop (reference oracle), reading the cached sign(W)/alpha.
  Tensor out({n, out_ch_, oh, ow});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float alpha = pack_.alpha[oc];
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x_ = 0; x_ < ow; ++x_) {
          float acc = 0.0f;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y + ky) - static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
                continue;
              }
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x_ + kx) - static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                  continue;
                }
                acc += x.at4(b, ic, static_cast<std::size_t>(iy),
                             static_cast<std::size_t>(ix)) *
                       pack_.sign_float.at4(oc, ic, ky, kx);
              }
            }
          }
          out.at4(b, oc, y, x_) = acc * alpha + bias_[oc];
        }
      }
    }
  }
  return out;
}

Tensor BinaryConv2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != in_ch_) {
    throw std::invalid_argument("BinaryConv2d: expected NCHW with C=" +
                                std::to_string(in_ch_) + ", got " +
                                shape_to_string(input.shape()));
  }
  if (!training) {
    // Inference: no backward state (see Conv2d::forward), cached
    // sign-packed weights, duplicate-image cache, bit-packed GEMM when the
    // im2col patches pack exactly.
    input_shape_ = Shape{};
    input_cache_ = Tensor();
    cols_cache_ = Tensor();
    binary_cache_ = Tensor();
    alpha_cache_ = Tensor();
    (void)packed();
    return dedup_leading_blocks(
        input, [this](const Tensor& x) { return infer_images(x); });
  }

  // Training path: float STE forward, kept bit-for-bit as it always was.
  input_shape_ = input.shape();
  input_cache_ = Tensor();
  cols_cache_ = Tensor();
  binary_cache_ = sign_of(latent_weight_);
  alpha_cache_ = channel_scales();

  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);

  if (algo_ == Conv2d::Algo::kIm2col) {
    // Lowered path (see Conv2d): im2col + blocked GEMM, then the XNOR-Net
    // epilogue out = acc * alpha + bias applied per output channel —
    // the direct loop's exact expression and term order.
    Tensor cols = im2col(input, kernel_, padding_);
    const std::size_t oh = h + 2 * padding_ - kernel_ + 1;
    const std::size_t ow = w + 2 * padding_ - kernel_ + 1;
    const Tensor wmat = detail::kernel_as_gemm_operand(binary_cache_);
    Tensor out_rows = matmul(cols, wmat);
    const std::size_t rows = out_rows.dim(0);
    const float* alpha = alpha_cache_.data().data();
    const float* bias = bias_.data().data();
    float* row = out_rows.data().data();
    for (std::size_t p = 0; p < rows; ++p, row += out_ch_) {
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        row[oc] = row[oc] * alpha[oc] + bias[oc];
      }
    }
    cols_cache_ = std::move(cols);
    return detail::rows_to_nchw(out_rows, n, out_ch_, oh, ow);
  }

  input_cache_ = input;
  const std::size_t oh = h + 2 * padding_ - kernel_ + 1;
  const std::size_t ow = w + 2 * padding_ - kernel_ + 1;
  Tensor out({n, out_ch_, oh, ow});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float alpha = alpha_cache_[oc];
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          float acc = 0.0f;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y + ky) - static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
                continue;
              }
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x + kx) - static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                  continue;
                }
                acc += input.at4(b, ic, static_cast<std::size_t>(iy),
                                 static_cast<std::size_t>(ix)) *
                       binary_cache_.at4(oc, ic, ky, kx);
              }
            }
          }
          out.at4(b, oc, y, x) = acc * alpha + bias_[oc];
        }
      }
    }
  }
  return out;
}

Tensor BinaryConv2d::backward(const Tensor& grad_output) {
  if (input_shape_.size() != 4) {
    throw std::logic_error(
        "BinaryConv2d: backward before a training-mode forward");
  }
  const std::size_t n = input_shape_[0];
  const std::size_t h = input_shape_[2];
  const std::size_t w = input_shape_[3];
  const std::size_t oh = grad_output.dim(2);
  const std::size_t ow = grad_output.dim(3);
  const std::size_t taps = in_ch_ * kernel_ * kernel_;

  if (algo_ == Conv2d::Algo::kIm2col) {
    // Alpha folds into the gradient rows once (the standard XNOR-Net
    // constant-alpha simplification); the rest is the Conv2d lowered
    // backward against the binarized kernels, with the STE window applied
    // when folding the weight gradient back into the latent layout.
    const Tensor g_rows = detail::nchw_to_rows(grad_output);
    const std::size_t rows = g_rows.dim(0);
    Tensor g_scaled = g_rows;
    for (std::size_t p = 0; p < rows; ++p) {
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        const float g = g_rows.at(p, oc);
        if (g != 0.0f) {  // mirror the direct loop's zero-gradient skip
          bias_grad_[oc] += g;
        }
        g_scaled.at(p, oc) = g * alpha_cache_[oc];
      }
    }
    const Tensor wg = matmul_a_transposed(cols_cache_, g_scaled);  // (taps x oc)
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t r = 0; r < taps; ++r) {
        if (std::abs(latent_weight_[oc * taps + r]) <= 1.0f) {
          weight_grad_[oc * taps + r] += wg.at(r, oc);
        }
      }
    }
    const Tensor dcols = matmul(g_scaled, binary_cache_.reshaped({out_ch_, taps}));
    return col2im(dcols, input_shape_, kernel_, padding_);
  }

  const Tensor& input = input_cache_;
  Tensor grad_input(input_shape_);
  // Pass 1: bias and (STE-windowed) weight gradients; per (oc, tap) the
  // terms arrive in ascending (b, y, x) order, matching the lowered
  // matmul_a_transposed row order.
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float alpha = alpha_cache_[oc];
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          const float g_raw = grad_output.at4(b, oc, y, x);
          if (g_raw == 0.0f) {
            continue;
          }
          bias_grad_[oc] += g_raw;
          const float g = g_raw * alpha;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y + ky) - static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
                continue;
              }
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x + kx) - static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                  continue;
                }
                if (std::abs(latent_weight_.at4(oc, ic, ky, kx)) <= 1.0f) {
                  weight_grad_.at4(oc, ic, ky, kx) +=
                      g * input.at4(b, ic, static_cast<std::size_t>(iy),
                                    static_cast<std::size_t>(ix));
                }
              }
            }
          }
        }
      }
    }
  }
  // Pass 2: input gradient gathered with output channels innermost —
  // term for term the lowered matmul(g*alpha, sign(W)) + col2im.
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        for (std::size_t ic = 0; ic < in_ch_; ++ic) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(y + ky) -
                                      static_cast<std::ptrdiff_t>(padding_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
              continue;
            }
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(x + kx) -
                                        static_cast<std::ptrdiff_t>(padding_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                continue;
              }
              float acc = 0.0f;
              for (std::size_t oc = 0; oc < out_ch_; ++oc) {
                const float g = grad_output.at4(b, oc, y, x) * alpha_cache_[oc];
                if (g == 0.0f) {
                  continue;
                }
                acc += g * binary_cache_.at4(oc, ic, ky, kx);
              }
              grad_input.at4(b, ic, static_cast<std::size_t>(iy),
                             static_cast<std::size_t>(ix)) += acc;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> BinaryConv2d::parameters() {
  return {{&latent_weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

}  // namespace neuspin::nn
