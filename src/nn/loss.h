// Loss functions and regularizers.
//
// Besides the standard classification/regression losses, this module hosts
// the paper-specific regularizers: the scale regularizer of SpinScaleDrop
// (§III-A.3: "encourage it to be positive and centered around one") and the
// KL term of the Gaussian variational posterior used by the VI methods.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.h"

namespace neuspin::nn {

/// Result of a loss evaluation: scalar value + gradient wrt predictions.
struct LossResult {
  float value = 0.0f;
  Tensor grad;  ///< dL/d(prediction), already averaged over the batch
};

/// Softmax cross-entropy over (batch x classes) logits with integer labels.
/// `label_smoothing` in [0,1) mixes the one-hot target with the uniform
/// distribution — the calibration-friendly objective the SpinDrop paper's
/// "specifically designed learning objective" calls for (it keeps logits
/// small so predictive entropy remains informative on unfamiliar inputs).
/// `normalizer` divides both value and gradient; 0 (the default) means the
/// batch row count. The data-parallel trainer passes the full minibatch
/// size here when evaluating one shard, so the shard losses/gradients are
/// partial terms of the whole minibatch mean.
[[nodiscard]] LossResult softmax_cross_entropy(const Tensor& logits,
                                               const std::vector<std::size_t>& labels,
                                               float label_smoothing = 0.0f,
                                               std::size_t normalizer = 0);

/// Mean squared error for (batch x dims) predictions.
[[nodiscard]] LossResult mean_squared_error(const Tensor& prediction,
                                            const Tensor& target);

/// SpinScaleDrop scale regularizer: lambda * mean((s - 1)^2), penalizing
/// scale entries that drift from one (the natural "identity" for binary
/// weights). Returns value and accumulates gradient into `grad`.
[[nodiscard]] float scale_regularizer(const Tensor& scale, float lambda, Tensor& grad);

/// KL divergence of a diagonal Gaussian q = N(mu, sigma^2) from the unit
/// Gaussian prior N(1, prior_sigma^2) — the prior is centered at one, not
/// zero, because the Bayesian subset parameters are *scales*.
/// sigma is parameterized as softplus(rho).
/// Gradients are accumulated into mu_grad / rho_grad.
[[nodiscard]] float gaussian_scale_kl(const Tensor& mu, const Tensor& rho,
                                      float prior_sigma, float weight, Tensor& mu_grad,
                                      Tensor& rho_grad);

/// Numerically stable softplus.
[[nodiscard]] float softplus(float x);
/// Derivative of softplus (the logistic sigmoid).
[[nodiscard]] float softplus_grad(float x);

}  // namespace neuspin::nn
