#include "serve/backend.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace neuspin::serve {

namespace {

/// Top-1/top-2 probability margin of row b of a (batch x classes) tensor.
double top2_margin(const nn::Tensor& probs, std::size_t b) {
  const std::size_t classes = probs.dim(1);
  double top1 = -1.0;
  double top2 = -1.0;
  for (std::size_t c = 0; c < classes; ++c) {
    const double p = probs.at(b, c);
    if (p > top1) {
      top2 = top1;
      top1 = p;
    } else if (p > top2) {
      top2 = p;
    }
  }
  return classes < 2 ? top1 : top1 - top2;
}

}  // namespace

BreakerCore::BreakerCore(const BreakerConfig& config) : config_(config) {
  if (config.failure_threshold == 0) {
    throw std::invalid_argument("BreakerCore: failure_threshold must be >= 1");
  }
  if (config.half_open_probes == 0) {
    throw std::invalid_argument("BreakerCore: half_open_probes must be >= 1");
  }
  if (config.latency_ceiling_us < 0.0) {
    throw std::invalid_argument("BreakerCore: latency ceiling must be >= 0");
  }
}

void BreakerCore::open_locked() {
  state_ = State::kOpen;
  cooldown_remaining_ = config_.open_cooldown;
  probe_successes_ = 0;
  ++times_opened_;
  if (ctr_opened_ != nullptr) {
    ctr_opened_->inc();
  }
  publish_state_locked();
}

void BreakerCore::publish_state_locked() {
  if (gauge_state_ != nullptr) {
    gauge_state_->set(static_cast<double>(static_cast<std::uint8_t>(state_)));
  }
}

bool BreakerCore::allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (cooldown_remaining_ > 0) {
        --cooldown_remaining_;
      }
      if (cooldown_remaining_ > 0) {
        return false;
      }
      // Cooldown elapsed: THIS forward is the half-open probe.
      state_ = State::kHalfOpen;
      probe_successes_ = 0;
      publish_state_locked();
      [[fallthrough]];
    case State::kHalfOpen:
      if (ctr_probes_ != nullptr) {
        ctr_probes_->inc();
      }
      return true;
  }
  return true;
}

void BreakerCore::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++probe_successes_ >= config_.half_open_probes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        publish_state_locked();
      }
      break;
    case State::kOpen:
      // A straggler that was allowed before the trip: its success says
      // nothing about current health — the cooldown stands.
      break;
  }
}

void BreakerCore::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        open_locked();
      }
      break;
    case State::kHalfOpen:
      open_locked();  // the probe failed: back to a full cooldown
      break;
    case State::kOpen:
      break;
  }
}

void BreakerCore::quarantine() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kOpen) {
    open_locked();
  }
}

BreakerCore::State BreakerCore::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::uint64_t BreakerCore::times_opened() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return times_opened_;
}

void BreakerCore::bind_metrics(obs::Registry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    gauge_state_ = nullptr;
    ctr_opened_ = nullptr;
    ctr_probes_ = nullptr;
    return;
  }
  gauge_state_ = &registry->gauge("serve.breaker.state");
  ctr_opened_ = &registry->counter("serve.breaker.opened");
  ctr_probes_ = &registry->counter("serve.breaker.probes");
  publish_state_locked();
}

bool should_escalate(const CascadeConfig& config, double entropy, double margin) {
  if (entropy >= config.entropy_threshold) {
    return true;
  }
  return config.margin_threshold > 0.0 && margin <= config.margin_threshold;
}

CascadeBackend::CascadeBackend(std::unique_ptr<core::FidelityBackend> cheap,
                               std::unique_ptr<core::FidelityBackend> expensive,
                               const CascadeConfig& config)
    : config_(config), cheap_(std::move(cheap)), expensive_(std::move(expensive)) {
  if (cheap_ == nullptr || expensive_ == nullptr) {
    throw std::invalid_argument("CascadeBackend: need two rungs");
  }
  if (config.entropy_threshold < 0.0 || config.margin_threshold < 0.0) {
    throw std::invalid_argument("CascadeBackend: thresholds must be non-negative");
  }
  if (cheap_->cost_hint() > expensive_->cost_hint()) {
    throw std::invalid_argument(
        "CascadeBackend: cheap rung costs more than the expensive one");
  }
  if (config.breaker.enabled) {
    breaker_ = std::make_shared<BreakerCore>(config.breaker);
  }
}

CascadeBackend::CascadeBackend(const CascadeBackend& other)
    : config_(other.config_),
      cheap_(other.cheap_->clone()),
      expensive_(other.expensive_->clone()),
      breaker_(other.breaker_) {}  // SHARED: one rung outage trips all clones

void CascadeBackend::reseed(std::uint64_t seed) {
  cheap_->reseed(seed);
  expensive_->reseed(seed);
}

std::string CascadeBackend::name() const {
  return "cascade(" + cheap_->name() + "->" + expensive_->name() + ")";
}

void CascadeBackend::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  cheap_->set_tracer(tracer);
  expensive_->set_tracer(tracer);
}

void CascadeBackend::inject_defects(const device::DefectRates& rates,
                                    std::uint64_t seed) {
  cheap_->inject_defects(rates, seed);
  expensive_->inject_defects(rates, seed);
}

void CascadeBackend::inject_defects_at(std::size_t tile_index,
                                       const device::DefectRates& rates,
                                       std::uint64_t seed) {
  cheap_->inject_defects_at(tile_index, rates, seed);
  expensive_->inject_defects_at(tile_index, rates, seed);
}

void CascadeBackend::apply_drift(double magnitude, std::uint64_t seed) {
  cheap_->apply_drift(magnitude, seed);
  expensive_->apply_drift(magnitude, seed);
}

xbar::HealthReport CascadeBackend::check_health(
    const xbar::ProbeConfig& config) const {
  xbar::HealthReport report = cheap_->check_health(config);
  const xbar::HealthReport upper = expensive_->check_health(config);
  report.tiles += upper.tiles;
  report.tiles_faulty += upper.tiles_faulty;
  report.cells_checked += upper.cells_checked;
  report.cells_faulty += upper.cells_faulty;
  report.drift_suspected = report.drift_suspected || upper.drift_suspected;
  report.min_tile_score = std::min(report.min_tile_score, upper.min_tile_score);
  return report;
}

xbar::HealSummary CascadeBackend::heal(const xbar::ProbeConfig& config) {
  xbar::HealSummary summary = cheap_->heal(config);
  summary.fold(expensive_->heal(config));
  return summary;
}

std::size_t CascadeBackend::recalibrate() {
  return cheap_->recalibrate() + expensive_->recalibrate();
}

void CascadeBackend::quarantine_expensive() {
  if (breaker_ != nullptr) {
    breaker_->quarantine();
  }
}

void CascadeBackend::bind_metrics(obs::Registry* registry) {
  if (breaker_ != nullptr) {
    breaker_->bind_metrics(registry);
  }
  cheap_->bind_metrics(registry);
  expensive_->bind_metrics(registry);
}

xbar::DeltaStats CascadeBackend::delta_stats() const {
  xbar::DeltaStats stats = cheap_->delta_stats();
  stats += expensive_->delta_stats();
  return stats;
}

void CascadeBackend::degrade_rows(core::BackendBatch& out,
                                  const std::vector<std::size_t>& rows) {
  if (out.degraded.empty()) {
    out.degraded.assign(out.predictions.size(), 0);
  }
  for (const std::size_t b : rows) {
    out.degraded[b] = 1;
  }
}

core::BackendBatch CascadeBackend::forward(
    const nn::Tensor& inputs, std::span<const std::uint64_t> request_seeds,
    energy::EnergyLedger* ledger) {
  obs::ScopedSpan span(tracer_, "cascade", "backend");
  // Rung 1: every request answers on the cheap backend.
  core::BackendBatch out = cheap_->forward(inputs, request_seeds, ledger);
  const std::size_t batch = out.predictions.size();

  // Gate: escalate the rows whose cheap answer is uncertain. The decision
  // reads only row-local values of the cheap prediction, so it is fixed by
  // (model, features, request seed) — batch companions cannot change it.
  std::vector<std::size_t> escalate;
  for (std::size_t b = 0; b < batch; ++b) {
    const core::Prediction& p = out.predictions[b];
    if (should_escalate(config_, p.entropy.front(), top2_margin(p.mean_probs, 0))) {
      escalate.push_back(b);
    }
  }
  counters_.requests += batch;
  span.arg("rows", static_cast<double>(batch));
  span.arg("escalated", static_cast<double>(escalate.size()));
  if (escalate.empty()) {
    return out;
  }

  // Breaker open: the expensive rung is presumed down — serve the rows
  // that wanted it with the cheap bits, flagged degraded, and spend
  // nothing on a rung we expect to fail. allow() also meters the
  // half-open probes through.
  if (breaker_ != nullptr && !breaker_->allow()) {
    degrade_rows(out, escalate);
    counters_.degraded += escalate.size();
    span.arg("degraded", static_cast<double>(escalate.size()));
    return out;
  }

  // Rung 2: the escalated subset re-answers on the expensive backend under
  // the SAME request seeds — exactly the bits a pure-expensive runtime
  // would have served. The cheap pass's energy stays attributed (it was
  // spent), with the expensive pass's added on top.
  const std::size_t features = inputs.dim(1);
  nn::Tensor sub({escalate.size(), features});
  std::vector<std::uint64_t> sub_seeds(escalate.size());
  for (std::size_t j = 0; j < escalate.size(); ++j) {
    const std::size_t b = escalate[j];
    std::copy(inputs.data().begin() + static_cast<std::ptrdiff_t>(b * features),
              inputs.data().begin() + static_cast<std::ptrdiff_t>((b + 1) * features),
              sub.data().begin() + static_cast<std::ptrdiff_t>(j * features));
    sub_seeds[j] = request_seeds[b];
  }
  core::BackendBatch upper;
  const auto rung_begin = std::chrono::steady_clock::now();
  try {
    upper = expensive_->forward(sub, sub_seeds, ledger);
  } catch (...) {
    if (breaker_ == nullptr) {
      throw;  // no breaker: a rung failure propagates exactly as before
    }
    // Rung failure with a breaker mounted NEVER fails the request: feed
    // the breaker and fall back to the cheap bits, degraded.
    breaker_->record_failure();
    degrade_rows(out, escalate);
    counters_.degraded += escalate.size();
    span.arg("degraded", static_cast<double>(escalate.size()));
    return out;
  }
  if (breaker_ != nullptr) {
    // A successful-but-slow rung counts as a failure signal (brown-out);
    // its bits are still the better answer and are served below.
    const double rung_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - rung_begin)
                               .count();
    if (config_.breaker.latency_ceiling_us > 0.0 &&
        rung_us > config_.breaker.latency_ceiling_us) {
      breaker_->record_failure();
    } else {
      breaker_->record_success();
    }
  }
  counters_.escalated += escalate.size();
  for (std::size_t j = 0; j < escalate.size(); ++j) {
    const std::size_t b = escalate[j];
    out.predictions[b] = std::move(upper.predictions[j]);
    out.energy_pj[b] += upper.energy_pj[j];
    out.escalated[b] = 1;
  }
  return out;
}

}  // namespace neuspin::serve
