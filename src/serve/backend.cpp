#include "serve/backend.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace neuspin::serve {

namespace {

/// Top-1/top-2 probability margin of row b of a (batch x classes) tensor.
double top2_margin(const nn::Tensor& probs, std::size_t b) {
  const std::size_t classes = probs.dim(1);
  double top1 = -1.0;
  double top2 = -1.0;
  for (std::size_t c = 0; c < classes; ++c) {
    const double p = probs.at(b, c);
    if (p > top1) {
      top2 = top1;
      top1 = p;
    } else if (p > top2) {
      top2 = p;
    }
  }
  return classes < 2 ? top1 : top1 - top2;
}

}  // namespace

bool should_escalate(const CascadeConfig& config, double entropy, double margin) {
  if (entropy >= config.entropy_threshold) {
    return true;
  }
  return config.margin_threshold > 0.0 && margin <= config.margin_threshold;
}

CascadeBackend::CascadeBackend(std::unique_ptr<core::FidelityBackend> cheap,
                               std::unique_ptr<core::FidelityBackend> expensive,
                               const CascadeConfig& config)
    : config_(config), cheap_(std::move(cheap)), expensive_(std::move(expensive)) {
  if (cheap_ == nullptr || expensive_ == nullptr) {
    throw std::invalid_argument("CascadeBackend: need two rungs");
  }
  if (config.entropy_threshold < 0.0 || config.margin_threshold < 0.0) {
    throw std::invalid_argument("CascadeBackend: thresholds must be non-negative");
  }
  if (cheap_->cost_hint() > expensive_->cost_hint()) {
    throw std::invalid_argument(
        "CascadeBackend: cheap rung costs more than the expensive one");
  }
}

CascadeBackend::CascadeBackend(const CascadeBackend& other)
    : config_(other.config_),
      cheap_(other.cheap_->clone()),
      expensive_(other.expensive_->clone()) {}

void CascadeBackend::reseed(std::uint64_t seed) {
  cheap_->reseed(seed);
  expensive_->reseed(seed);
}

std::string CascadeBackend::name() const {
  return "cascade(" + cheap_->name() + "->" + expensive_->name() + ")";
}

void CascadeBackend::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  cheap_->set_tracer(tracer);
  expensive_->set_tracer(tracer);
}

xbar::DeltaStats CascadeBackend::delta_stats() const {
  xbar::DeltaStats stats = cheap_->delta_stats();
  stats += expensive_->delta_stats();
  return stats;
}

core::BackendBatch CascadeBackend::forward(
    const nn::Tensor& inputs, std::span<const std::uint64_t> request_seeds,
    energy::EnergyLedger* ledger) {
  obs::ScopedSpan span(tracer_, "cascade", "backend");
  // Rung 1: every request answers on the cheap backend.
  core::BackendBatch out = cheap_->forward(inputs, request_seeds, ledger);
  const std::size_t batch = out.predictions.size();

  // Gate: escalate the rows whose cheap answer is uncertain. The decision
  // reads only row-local values of the cheap prediction, so it is fixed by
  // (model, features, request seed) — batch companions cannot change it.
  std::vector<std::size_t> escalate;
  for (std::size_t b = 0; b < batch; ++b) {
    const core::Prediction& p = out.predictions[b];
    if (should_escalate(config_, p.entropy.front(), top2_margin(p.mean_probs, 0))) {
      escalate.push_back(b);
    }
  }
  counters_.requests += batch;
  counters_.escalated += escalate.size();
  span.arg("rows", static_cast<double>(batch));
  span.arg("escalated", static_cast<double>(escalate.size()));
  if (escalate.empty()) {
    return out;
  }

  // Rung 2: the escalated subset re-answers on the expensive backend under
  // the SAME request seeds — exactly the bits a pure-expensive runtime
  // would have served. The cheap pass's energy stays attributed (it was
  // spent), with the expensive pass's added on top.
  const std::size_t features = inputs.dim(1);
  nn::Tensor sub({escalate.size(), features});
  std::vector<std::uint64_t> sub_seeds(escalate.size());
  for (std::size_t j = 0; j < escalate.size(); ++j) {
    const std::size_t b = escalate[j];
    std::copy(inputs.data().begin() + static_cast<std::ptrdiff_t>(b * features),
              inputs.data().begin() + static_cast<std::ptrdiff_t>((b + 1) * features),
              sub.data().begin() + static_cast<std::ptrdiff_t>(j * features));
    sub_seeds[j] = request_seeds[b];
  }
  core::BackendBatch upper = expensive_->forward(sub, sub_seeds, ledger);
  for (std::size_t j = 0; j < escalate.size(); ++j) {
    const std::size_t b = escalate[j];
    out.predictions[b] = std::move(upper.predictions[j]);
    out.energy_pj[b] += upper.energy_pj[j];
    out.escalated[b] = 1;
  }
  return out;
}

}  // namespace neuspin::serve
