// Batched uncertainty-aware inference runtime.
//
// The request path the offline pipeline never had: clients submit single
// samples, a dynamic batcher coalesces them (serve/batcher.h), and a pool
// of replicated model workers runs the T-pass Monte-Carlo predictive loop
// per request, returning class probabilities, predictive entropy / mutual
// information, a selective-prediction decision (serve/policy.h) and
// per-request latency + energy attribution.
//
//   client ──submit──▶ Batcher ──pop_batch──▶ worker[i] (replica clone)
//                                                │  fused (batch x T)
//                                                │  stacked MC forward
//   future ◀──ServedPrediction── policy+ledger ◀─┘
//
// Workers answer through the core::FidelityBackend seam (core/fidelity.h):
// each worker owns one backend clone and serves every popped batch with
// one batched forward(inputs, request_seeds) call. Three backends plug in:
//  * kBehavioral — core::BehavioralBackend (BuiltModel clones on the fast
//    tensor path, fused (requests x T) stacked forwards by default, with
//    any behavioural HwNoiseConfig non-idealities the model was built
//    with); energy is census-derived per request (core::inference_census).
//  * kTiled — core::TiledBackend (a TiledMlp replica: crossbar currents,
//    ADC quantization, defects, event-driven delta evaluation); energy is
//    measured event by event into a per-request EnergyLedger.
//  * kCascade — serve::CascadeBackend (serve/backend.h): every request
//    answers on the behavioural rung, and escalates to the tiled rung
//    when the cheap answer is uncertain (entropy/margin gate). Escalated
//    requests carry the tiled bits, the rest the behavioural bits.
//
// Reproducibility contract: a request's prediction is a pure function of
// (model, features, mc_samples, request seed) — the i-th auto-seeded
// request computes EXACTLY what the offline core::evaluate path computes
// for sample i at batch_size 1 (same per-batch seed derivation
// mix_seed(seed, i), same McPredictor loop). Worker count, batch
// composition and linger tuning never change a result, only when it
// arrives.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/census.h"
#include "core/fidelity.h"
#include "core/models.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/backend.h"
#include "serve/batcher.h"
#include "serve/fault.h"
#include "serve/policy.h"
#include "xbar/health.h"
#include "xbar/tile.h"

namespace neuspin::serve {

/// Which fidelity level answers requests.
enum class Backend : std::uint8_t {
  kBehavioral,  ///< BuiltModel clones (fast tensor ops + behavioural noise)
  kTiled,       ///< TiledMlp replicas (full electrical simulation)
  kCascade,     ///< behavioural rung + uncertainty-gated tiled escalation
};

[[nodiscard]] std::string backend_name(Backend backend);

/// Why a submission was rejected instead of queued.
enum class ShedReason : std::uint8_t {
  kQueueFull,  ///< admission control: queue depth at max_queue_depth
  kShutdown,   ///< submitted after shutdown() — never retry
};

[[nodiscard]] std::string shed_reason_name(ShedReason reason);

/// Machine-readable overload rejection: carried by the shed future (and
/// thrown to post-shutdown submitters) so clients can back off
/// programmatically instead of parsing an error string. Derives from
/// std::runtime_error, so callers that only catch the old bare error keep
/// working.
class OverloadError : public std::runtime_error {
 public:
  OverloadError(ShedReason reason, double retry_after_us, std::size_t queue_depth);

  [[nodiscard]] ShedReason reason() const { return reason_; }
  /// Suggested back-off before retrying, microseconds: the p50 end-to-end
  /// latency read off the runtime's latency histogram at shed time — the
  /// best estimate of when a queue slot frees — floored at
  /// max(max_linger, 100us) so a client never busy-retries off a cold or
  /// unrealistically fast window. 0 when the reason is kShutdown and
  /// retrying is pointless.
  [[nodiscard]] double retry_after_us() const { return retry_after_us_; }
  /// Pending requests observed when the submission was shed.
  [[nodiscard]] std::size_t queue_depth() const { return queue_depth_; }

 private:
  ShedReason reason_;
  double retry_after_us_;
  std::size_t queue_depth_;
};

/// A request's completion deadline passed before a worker could serve it.
/// Thrown through the request's future; the Monte-Carlo forward is never
/// spent on an already-late request.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded(std::uint64_t request_id, double overrun_us);

  [[nodiscard]] std::uint64_t request_id() const { return request_id_; }
  /// How far past the deadline the request was when a worker picked it up.
  [[nodiscard]] double overrun_us() const { return overrun_us_; }

 private:
  std::uint64_t request_id_;
  double overrun_us_;
};

/// Worker supervision: a heartbeat thread that detects workers stuck in a
/// forward (a stall fault, a pathological input) and re-queues their
/// in-flight requests onto healthy workers.
struct SupervisionConfig {
  bool enabled = false;
  /// Health-check cadence of the supervisor thread.
  std::chrono::microseconds heartbeat{1000};
  /// A busy worker whose current batch has been running longer than this
  /// is declared stalled: its unanswered requests move back to the queue
  /// (once per request — a request stranded twice fails to the client)
  /// and the worker's backend is re-cloned when it eventually returns.
  /// Must comfortably exceed the honest worst-case batch time, or the
  /// supervisor will "rescue" requests from workers that were merely slow.
  std::chrono::microseconds stall_timeout{50000};
};

/// Online substrate health monitoring: scheduled canary probes of the
/// tiled substrate between batches, automatic spare-line healing, and
/// preventive drift recalibration (ROADMAP: robustness; off by default).
///
/// Scheduling is deterministic the same way the fault schedule is: every
/// served batch takes one global health ticket, and whether ticket n
/// probes (n % probe_every == 0) or recalibrates is a pure function of
/// the ticket — which worker draws it is a scheduling accident. Probes
/// run on the worker's own thread BETWEEN batches, so queued requests
/// simply wait: monitoring and healing never drop a request. A failed
/// probe quarantines the cascade's expensive rung (escalations degrade to
/// the cheap rung, flagged `degraded`) while healing runs; a heal that
/// cannot restore spec falls back to the worker-restart path (re-clone
/// from the pristine prototype — the same path crash recovery uses).
struct HealthConfig {
  bool enabled = false;
  /// Probe cadence in global batch tickets (0 = never probe; preventive
  /// recalibration may still run on its own cadence).
  std::uint64_t probe_every = 64;
  /// Tolerances forwarded to xbar::probe_tile / xbar::heal_tile.
  xbar::ProbeConfig probe{};
  /// Heal (remap + recalibrate) when a probe fails. When false the
  /// monitor only quarantines and counts — useful for measuring raw
  /// degradation in benchmarks.
  bool auto_heal = true;
  /// Preventive recalibration cadence in global batch tickets (0 = only
  /// recalibrate as part of healing). Cheap insurance against slow drift
  /// that stays under the probe's detection tolerance.
  std::uint64_t recal_every = 0;
};

struct RuntimeConfig {
  Backend backend = Backend::kBehavioral;
  /// Model workers (one replica clone each): 0 = one per hardware thread.
  std::size_t workers = 0;
  std::size_t mc_samples = 20;  ///< T stochastic passes per request
  /// Base seed: auto-seeded request i draws its RNG stream from
  /// mix_seed(seed, i), mirroring core::evaluate's per-batch derivation.
  std::uint64_t seed = 0x6e6575737276ull;  // "neusrv"
  BatcherConfig batcher{};
  PolicyConfig policy{};
  /// Tiled backend: crossbar design point, tile construction seed (same
  /// seed on every replica = identical programmed hardware) and the
  /// SpinDrop probability of the hardware dropout modules.
  xbar::TileConfig tile{};
  std::uint64_t tile_seed = 42;
  double spindrop_p = 0.0;
  /// Cascade backend: when does a behavioural answer escalate to the
  /// tiled rung (ignored by the single-fidelity backends).
  CascadeConfig cascade{};
  /// Per-request energy attribution. Tiled: measured event-by-event.
  /// Behavioral: priced from the model's architecture census under
  /// `census` (mc_passes is overridden with `mc_samples`).
  bool account_energy = true;
  core::CensusConfig census{};
  /// Behavioural backend: serve each popped batch through the fused
  /// (requests x T) stacked forward (core::predict_fused_batch) instead of
  /// per-request Monte-Carlo loops. Per-row streams keep results bitwise
  /// identical either way — provided every stochastic layer in the model
  /// implements nn::Layer::reseed_rows (all built-in method layers do).
  /// Set to false for A-B benchmarking or when serving a model containing
  /// a custom stochastic layer that predates the per-row contract.
  /// Ignored by the tiled backend.
  bool fused_batching = true;
  /// Fused-path intra-batch parallelism: each popped batch's stacked
  /// (requests x T) forward is split into this many deterministic
  /// contiguous row partitions served concurrently on the shared
  /// core::ThreadPool, each partition on its own replica clone (so a
  /// single large request batch scales past one core even at workers=1).
  /// 1 (the default) runs the stack inline on the worker; 0 means one
  /// partition per hardware thread. Results are bitwise identical for any
  /// value — the per-row streams make the partition invisible. Memory
  /// cost: (fused_workers - 1) extra model clones per worker.
  std::size_t fused_workers = 1;
  /// Admission control: when > 0 and the batcher already holds this many
  /// pending requests, new submissions are shed — their future fails with
  /// an OverloadError (machine-readable reason + retry-after hint)
  /// instead of joining the queue — so overload degrades into fast,
  /// actionable rejections rather than unbounded tail latency.
  /// 0 disables shedding. The depth check races benignly with the workers
  /// (the bound is approximate by at most the in-flight pops).
  std::size_t max_queue_depth = 0;
  /// Retained for API compatibility (must stay >= 1). Latency percentiles
  /// now come from a log-bucketed histogram (obs/metrics.h) instead of a
  /// sorted ring-buffer copy, so they no longer truncate to a window; use
  /// Registry snapshots and HistogramSnapshot::operator-= for windowed
  /// quantiles.
  std::size_t latency_window = 1024;
  /// Per-request span tracing (off by default). When enabled the runtime
  /// records queue/forward/policy/request spans per sampled request, batch
  /// spans per pop, rung spans per backend forward and per-tile spans on
  /// the electrical path; export with tracer().write_chrome_trace().
  /// Observability only: results are bitwise identical on/off.
  obs::TraceConfig trace{};
  /// Default completion deadline applied to every submission (0 = none;
  /// per-submit deadlines override). A worker picking up an expired
  /// request fails it with DeadlineExceeded BEFORE spending any forward
  /// work on it.
  std::chrono::microseconds default_deadline{0};
  /// Deterministic fault injection (chaos testing; off by default). The
  /// plan's seed fixes the whole fault schedule — see serve/fault.h.
  FaultPlan fault{};
  /// Where the fault decorator mounts: the whole worker backend, or just
  /// the cascade's expensive rung (requires Backend::kCascade).
  FaultSite fault_site = FaultSite::kWorker;
  /// Worker stall detection + rescue (off by default).
  SupervisionConfig supervision{};
  /// Substrate health monitoring + self-healing (off by default).
  HealthConfig health{};
};

/// Aggregate counters since construction, plus a rolling latency window.
struct RuntimeStats {
  std::uint64_t requests = 0;   ///< requests completed (including abstained)
  std::uint64_t batches = 0;    ///< batches popped by workers
  std::uint64_t accepted = 0;
  std::uint64_t abstained = 0;
  std::uint64_t shed = 0;       ///< submissions rejected, any reason
  std::uint64_t shed_queue_full = 0;  ///< rejected by admission control
  std::uint64_t shed_shutdown = 0;    ///< rejected after shutdown()
  /// Requests the cascade escalated to its expensive rung (0 on the
  /// single-fidelity backends).
  std::uint64_t escalated = 0;
  /// Requests served the cheap rung's bits with degraded=true because the
  /// expensive rung was circuit-broken or failing.
  std::uint64_t degraded = 0;
  /// Requests failed with DeadlineExceeded before any forward work.
  std::uint64_t deadline_expired = 0;
  /// Requests re-queued after a worker crash or stall (each at most once).
  std::uint64_t requeued = 0;
  /// Worker backends re-cloned after a crash or a deposed stall.
  std::uint64_t worker_restarts = 0;
  /// Stall rescues performed by the supervisor.
  std::uint64_t worker_stalls = 0;
  /// Substrate health probes run (canary, plus sweep when the canary
  /// failed or force_sweep is on).
  std::uint64_t health_probes = 0;
  /// Probes that found a substrate out of spec.
  std::uint64_t health_failures = 0;
  /// Heal cycles (remap + recalibrate) triggered by failed probes.
  std::uint64_t heals = 0;
  /// Expensive-rung quarantines forced by failed probes.
  std::uint64_t quarantines = 0;
  /// Worst-tile substrate health score at the last probe (1 = pristine;
  /// 1 when health monitoring is off or no probe has run yet).
  double health_score = 1.0;
  double mean_batch_size = 0.0;
  double total_energy_pj = 0.0;
  double total_compute_us = 0.0;  ///< summed per-request MC compute time
  std::size_t queue_depth = 0;    ///< pending requests at sampling time
  /// End-to-end latency percentiles read off the "serve.latency.total_us"
  /// histogram (0 until the first completion). Estimates carry <= 3.125%
  /// relative error and are clamped to the observed [min, max].
  double window_p50_us = 0.0;
  double window_p99_us = 0.0;
};

/// Replicated-worker serving runtime over one trained model.
class Runtime {
 public:
  /// Clones `model` once per worker (behavioural) or programs one TiledMlp
  /// replica per worker from it (tiled), then starts the worker threads.
  /// The caller's model is never mutated and may be discarded afterwards.
  Runtime(const core::BuiltModel& model, const RuntimeConfig& config);
  ~Runtime();  ///< shutdown(): drains pending requests, joins workers

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Enqueue one sample; the future resolves once a worker served it (or
  /// carries the exception that prevented that). Auto-seeded: submission
  /// index i gets stream seed mix_seed(config.seed, i). Throws
  /// OverloadError (reason kShutdown) after shutdown().
  [[nodiscard]] std::future<ServedPrediction> submit(std::vector<float> features);
  /// Same, under a caller-chosen stream seed (replay / A-B testing).
  [[nodiscard]] std::future<ServedPrediction> submit(std::vector<float> features,
                                                     std::uint64_t request_seed);
  /// Same, with a per-request completion deadline (overrides
  /// RuntimeConfig::default_deadline; 0 = no deadline). A request still
  /// queued when its deadline passes fails with DeadlineExceeded.
  [[nodiscard]] std::future<ServedPrediction> submit(
      std::vector<float> features, std::uint64_t request_seed,
      std::chrono::microseconds deadline);

  /// Blocking convenience: submit + wait.
  [[nodiscard]] ServedPrediction predict(const std::vector<float>& features);

  /// How shutdown treats requests still queued.
  struct ShutdownOptions {
    /// true: serve everything already admitted before joining (the
    /// default, and the destructor's behaviour). false: shed the whole
    /// backlog immediately — every queued request fails with
    /// OverloadError (kShutdown); only batches already on workers finish.
    bool drain = true;
    /// Drain escape hatch: with drain=true and a positive timeout, wait at
    /// most this long for the queue to empty, then shed the leftovers
    /// typed. 0 = wait indefinitely.
    std::chrono::microseconds drain_timeout{0};
  };

  /// Stop accepting requests, serve everything still queued (no request is
  /// lost or answered twice), join the workers. Idempotent.
  void shutdown();
  /// Shutdown with explicit drain semantics (see ShutdownOptions).
  void shutdown(const ShutdownOptions& options);

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  /// Aggregate counters assembled from the metrics registry (API-stable
  /// view; the registry itself is the richer source).
  [[nodiscard]] RuntimeStats stats() const;

  /// The runtime's metrics registry: serve.* counters/gauges/histograms,
  /// the batcher's batch-size histogram and queue-depth gauge, and (when
  /// energy accounting is on and the backend has electrical events) the
  /// per-component energy.* series. Render with obs::render_prometheus /
  /// obs::render_json, or watch with obs::PeriodicReporter.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

  /// The runtime's span tracer (enabled via RuntimeConfig::trace). Export
  /// a Perfetto-loadable file with tracer().write_chrome_trace(path).
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }

  /// The stream seed the runtime assigns to the i-th auto-seeded request —
  /// exposed so offline replays can reproduce served results bit for bit.
  [[nodiscard]] static std::uint64_t request_stream_seed(std::uint64_t base_seed,
                                                         std::uint64_t request_index);

  /// Event-engine work census summed over every worker backend's tiles
  /// (empty on the behavioural backend). For bench reporting; do not call
  /// while requests are in flight.
  [[nodiscard]] xbar::DeltaStats delta_stats() const;

 private:
  /// One worker's in-flight batch, visible to the supervisor. The slot
  /// lock serializes the worker's publish phase against the supervisor's
  /// rescue; `done[i]` is the single source of truth for "request i is
  /// settled" — whoever sets it owns the promise transition, so a rescued
  /// request can never be answered twice.
  struct InFlight {
    std::mutex mutex;
    std::vector<Request> requests;   ///< the popped batch (slots may be moved-from once done)
    std::vector<std::uint8_t> done;  ///< parallel: promise settled or stolen
    std::chrono::steady_clock::time_point started{};
    bool busy = false;
    /// The supervisor declared this worker stalled and rescued its batch;
    /// the worker re-clones its backend when it eventually returns.
    bool deposed = false;
  };

  [[nodiscard]] std::future<ServedPrediction> submit_with_id(
      std::uint64_t id, std::vector<float> features, std::uint64_t request_seed,
      std::chrono::microseconds deadline);
  /// Build the configured fidelity backend for worker 0 (the others are
  /// clone()s of it), with the fault decorator mounted per fault_site.
  [[nodiscard]] std::unique_ptr<core::FidelityBackend> make_backend(
      const core::BuiltModel& model) const;
  void worker_loop(std::size_t worker_index);
  /// Serve one popped batch through the worker's backend: one batched
  /// forward per feature-count group (so a malformed submission fails its
  /// own group, never its companions), in arrival order within the group.
  /// Returns false when the worker's backend faulted and must be
  /// re-cloned before the next batch.
  [[nodiscard]] bool serve_batch(std::size_t worker_index,
                                 std::vector<Request> batch);
  /// Replace a faulted worker's backend with a fresh clone of the pristine
  /// prototype (no-op when no prototype was kept).
  void restart_backend(std::size_t worker_index);
  /// Health-monitor hook, run by each worker after every served batch:
  /// takes one global health ticket and — when the ticket is due — canary
  /// probes the worker's own backend, quarantines + heals on failure, and
  /// runs preventive recalibration on its own cadence. Requests queued
  /// meanwhile just wait; nothing is dropped.
  void maybe_probe(std::size_t worker_index);
  /// Supervisor heartbeat loop: rescue batches off stalled workers.
  void supervisor_loop();
  /// Fail every request still queued with OverloadError (kShutdown).
  void shed_queue();
  /// Shared tail of the serving path: assemble the ServedPrediction,
  /// apply the policy, record metrics + per-request spans, and fulfill
  /// the request's promise.
  void publish_prediction(Request& request, const core::Prediction& prediction,
                          std::chrono::steady_clock::time_point popped,
                          std::chrono::steady_clock::time_point compute_begin,
                          std::chrono::steady_clock::time_point compute_end,
                          double compute_share_us, double energy_pj,
                          bool escalated, bool degraded, std::size_t batch_size,
                          std::size_t worker_index);
  /// Fold one batch ledger's per-component event counts and priced energy
  /// into the registry's energy.* series.
  void fold_energy(const energy::EnergyLedger& ledger);

  /// Shed retry-after hint: latency-histogram p50 floored at
  /// max(max_linger, 100us).
  [[nodiscard]] double retry_after_hint() const;

  RuntimeConfig config_;
  SelectivePolicy policy_;
  /// Metrics + tracer are declared before the batcher/workers so every
  /// instrument outlives everything that records into it.
  obs::Registry metrics_;
  obs::Tracer tracer_;
  Batcher batcher_;
  /// One fidelity backend per worker: backends_[w] answers everything
  /// worker w pops. All are clone()s of one programmed instance, so every
  /// worker serves identical bits.
  std::vector<std::unique_ptr<core::FidelityBackend>> backends_;
  /// Pristine clone kept for worker restarts (only when fault injection
  /// or supervision is on — it costs a full replica of memory).
  std::unique_ptr<core::FidelityBackend> prototype_;
  /// Shared fault schedule (null unless config.fault.enabled).
  std::shared_ptr<FaultInjector> injector_;
  /// Per-worker in-flight slots (stable addresses; one per worker).
  std::vector<std::unique_ptr<InFlight>> inflight_;
  /// Census-priced energy of one behavioural request (constant per config).
  double census_energy_pj_ = 0.0;
  std::vector<std::thread> threads_;
  std::thread supervisor_;
  std::mutex supervisor_mutex_;
  std::condition_variable supervisor_cv_;
  bool supervisor_stop_ = false;
  std::atomic<std::uint64_t> next_request_ = 0;
  /// Global health-schedule ticket: one per served batch, across workers.
  std::atomic<std::uint64_t> health_ticket_ = 0;
  std::mutex shutdown_mutex_;
  bool stopped_ = false;

  /// Hot-path instruments, looked up once (stable addresses for the
  /// registry's lifetime) so steady-state recording is lock-free.
  obs::Counter* ctr_requests_ = nullptr;
  obs::Counter* ctr_batches_ = nullptr;
  obs::Counter* ctr_accepted_ = nullptr;
  obs::Counter* ctr_abstained_ = nullptr;
  obs::Counter* ctr_shed_ = nullptr;
  obs::Counter* ctr_shed_queue_full_ = nullptr;
  obs::Counter* ctr_shed_shutdown_ = nullptr;
  obs::Counter* ctr_escalated_ = nullptr;
  obs::Counter* ctr_degraded_ = nullptr;
  obs::Counter* ctr_deadline_ = nullptr;
  obs::Counter* ctr_requeued_ = nullptr;
  obs::Counter* ctr_restarts_ = nullptr;
  obs::Counter* ctr_worker_stalls_ = nullptr;
  obs::Counter* ctr_drain_shed_ = nullptr;
  obs::Counter* ctr_health_probes_ = nullptr;
  obs::Counter* ctr_health_failures_ = nullptr;
  obs::Counter* ctr_health_sweeps_ = nullptr;
  obs::Counter* ctr_health_cells_faulty_ = nullptr;
  obs::Counter* ctr_remap_rows_ = nullptr;
  obs::Counter* ctr_remap_cols_ = nullptr;
  obs::Counter* ctr_remap_exhausted_ = nullptr;
  obs::Counter* ctr_recal_runs_ = nullptr;
  obs::Counter* ctr_recal_cells_ = nullptr;
  obs::Counter* ctr_heals_ = nullptr;
  obs::Counter* ctr_quarantines_ = nullptr;
  obs::Gauge* gauge_health_score_ = nullptr;
  obs::Gauge* gauge_energy_total_ = nullptr;
  obs::Histogram* hist_latency_total_ = nullptr;
  obs::Histogram* hist_latency_queue_ = nullptr;
  obs::Histogram* hist_latency_compute_ = nullptr;
};

}  // namespace neuspin::serve
