#include "serve/policy.h"

#include <stdexcept>

namespace neuspin::serve {

std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAcceptAll:
      return "accept-all";
    case PolicyKind::kMaxEntropy:
      return "max-entropy";
    case PolicyKind::kMaxMutualInfo:
      return "max-mutual-info";
    case PolicyKind::kMinConfidence:
      return "min-confidence";
  }
  return "unknown";
}

SelectivePolicy::SelectivePolicy(const PolicyConfig& config) : config_(config) {
  switch (config.kind) {
    case PolicyKind::kAcceptAll:
      break;
    case PolicyKind::kMaxEntropy:
    case PolicyKind::kMaxMutualInfo:
      if (config.threshold < 0.0f) {
        throw std::invalid_argument(
            "SelectivePolicy: uncertainty ceiling must be non-negative");
      }
      break;
    case PolicyKind::kMinConfidence:
      if (config.threshold < 0.0f || config.threshold > 1.0f) {
        throw std::invalid_argument(
            "SelectivePolicy: confidence floor must lie in [0, 1]");
      }
      break;
  }
}

SelectivePolicy::Decision SelectivePolicy::decide(float confidence, float entropy,
                                                  float mutual_info) const {
  Decision d;
  switch (config_.kind) {
    case PolicyKind::kAcceptAll:
      d.score = confidence;
      d.accepted = true;
      break;
    case PolicyKind::kMaxEntropy:
      d.score = entropy;
      d.accepted = entropy <= config_.threshold;
      break;
    case PolicyKind::kMaxMutualInfo:
      d.score = mutual_info;
      d.accepted = mutual_info <= config_.threshold;
      break;
    case PolicyKind::kMinConfidence:
      d.score = confidence;
      d.accepted = confidence >= config_.threshold;
      break;
  }
  return d;
}

}  // namespace neuspin::serve
