// Serving-side fidelity backends: the cascade.
//
// The electrical path (core::TiledBackend) answers a request with the full
// crossbar/ADC/defect simulation — three orders of magnitude more work
// than the behavioural tensor path, for a prediction that differs only on
// inputs where the hardware non-idealities actually matter. The paper's
// selective-prediction story (§IV) already computes the signal that tells
// the two cases apart: predictive uncertainty.
//
// CascadeBackend exploits that. Every request is first answered on a
// cheap backend; when the cheap answer is *uncertain* — predictive
// entropy above a ceiling, or top-1/top-2 probability margin below a
// floor — the request escalates to the expensive backend and that answer
// wins. Confident requests (the bulk of an in-distribution workload)
// never touch the electrical simulation, so cascade throughput approaches
// the cheap backend's while uncertain/OOD requests still get the
// high-fidelity treatment the selective policy will scrutinize.
//
// Determinism contract: the escalation decision is a pure function of the
// cheap prediction, which is itself a pure function of (model, features,
// request seed) — so whether a request escalates, and the bits of its
// final answer, are fixed by its seed alone. Escalated requests return
// exactly the expensive backend's bits, non-escalated requests exactly
// the cheap backend's, for any batch composition and worker count.
// Failure handling (ROADMAP: robustness): the expensive rung is also the
// fragile one — it is the full electrical simulation, the piece a fault
// plan crashes and a defect burst corrupts. A circuit breaker turns rung
// failure from "escalated requests error out" into graceful degradation:
// while the breaker is open, would-escalate requests are answered with the
// cheap rung's bits and flagged `degraded`, and the breaker periodically
// lets a probe through (half-open) to detect recovery. Breaker state is
// SHARED across clones — one rung meltdown trips every worker at once,
// like a real dependency outage.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fidelity.h"

namespace neuspin::obs {
class Counter;  // obs/metrics.h
class Gauge;    // obs/metrics.h
}  // namespace neuspin::obs

namespace neuspin::serve {

/// Circuit breaker over the cascade's expensive rung.
struct BreakerConfig {
  bool enabled = false;
  /// Consecutive expensive-rung failures that trip the breaker open.
  std::uint64_t failure_threshold = 5;
  /// Treat a SUCCESSFUL expensive forward slower than this (microseconds)
  /// as a failure signal (brown-out detection). The slow answer's bits are
  /// still served. 0 disables the latency signal, keeping the breaker's
  /// decisions a pure function of the failure sequence (deterministic).
  double latency_ceiling_us = 0.0;
  /// Denied escalations the open breaker sits out before letting a probe
  /// through (half-open). Counted in forwards, not wall time, so an open
  /// window is reproducible under a seeded workload.
  std::uint64_t open_cooldown = 32;
  /// Successful probes required to close again; one probe failure reopens.
  std::uint64_t half_open_probes = 1;
};

/// Escalation gate: when does a cheap answer not suffice?
struct CascadeConfig {
  /// Escalate when the cheap rung's predictive entropy (nats) reaches
  /// this ceiling. ln(classes) is the maximum; 0.5 nats is a practical
  /// "no longer confident" default for 10-class heads.
  double entropy_threshold = 0.5;
  /// Escalate when the cheap rung's top-1/top-2 probability margin falls
  /// to or below this floor (a near-tie means the argmax is fragile even
  /// at low entropy). 0 disables the margin gate.
  double margin_threshold = 0.0;
  /// Expensive-rung circuit breaker (disabled by default: a rung failure
  /// then propagates to the caller exactly as before).
  BreakerConfig breaker{};
};

/// The breaker's thread-safe state machine, shared (shared_ptr) by a
/// cascade and all its clones so every worker sees one rung health.
/// Closed -> (failure_threshold consecutive failures) -> Open ->
/// (open_cooldown denied escalations) -> HalfOpen -> probes succeed ->
/// Closed, or a probe fails -> Open again.
class BreakerCore {
 public:
  explicit BreakerCore(const BreakerConfig& config);

  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// May this forward try the expensive rung? Open: counts down the
  /// cooldown and answers no — except the transition call itself, which
  /// becomes the half-open probe and answers yes.
  [[nodiscard]] bool allow();
  /// Expensive forward completed healthily.
  void record_success();
  /// Expensive forward threw, or completed over the latency ceiling.
  void record_failure();
  /// Force the breaker open immediately: the health monitor found the
  /// rung's substrate out of spec (failed canary). Escalations degrade
  /// until the normal half-open probing observes the healed rung.
  void quarantine();

  [[nodiscard]] State state() const;
  [[nodiscard]] std::uint64_t times_opened() const;

  /// Record instruments (idempotent; nullptr detaches): the
  /// serve.breaker.state gauge (0 closed / 1 open / 2 half-open) and the
  /// serve.breaker.opened / serve.breaker.probes counters.
  void bind_metrics(obs::Registry* registry);

 private:
  void open_locked();
  void publish_state_locked();

  BreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t cooldown_remaining_ = 0;
  std::uint64_t probe_successes_ = 0;
  std::uint64_t times_opened_ = 0;
  obs::Gauge* gauge_state_ = nullptr;     ///< optional, not owned
  obs::Counter* ctr_opened_ = nullptr;    ///< optional, not owned
  obs::Counter* ctr_probes_ = nullptr;    ///< optional, not owned
};

/// Two-rung escalation chain over any pair of fidelity backends.
class CascadeBackend : public core::FidelityBackend {
 public:
  /// Takes ownership of both rungs. `cheap` answers every request;
  /// `expensive` answers the escalated subset under the same request
  /// seeds. Throws if either rung is null or the hint ordering is
  /// inverted (the cascade would then escalate downward).
  CascadeBackend(std::unique_ptr<core::FidelityBackend> cheap,
                 std::unique_ptr<core::FidelityBackend> expensive,
                 const CascadeConfig& config);
  /// Clones both rungs; the escalation counters start at zero (they count
  /// per-instance traffic, not shared history).
  CascadeBackend(const CascadeBackend& other);

  [[nodiscard]] core::BackendBatch forward(
      const nn::Tensor& inputs, std::span<const std::uint64_t> request_seeds,
      energy::EnergyLedger* ledger) override;
  [[nodiscard]] std::unique_ptr<core::FidelityBackend> clone() const override {
    return std::make_unique<CascadeBackend>(*this);
  }
  void reseed(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override;
  /// The cheap rung's hint: a floor, exact when nothing escalates. The
  /// true per-request cost depends on the workload's escalation rate.
  [[nodiscard]] double cost_hint() const override { return cheap_->cost_hint(); }
  [[nodiscard]] xbar::DeltaStats delta_stats() const override;
  /// Propagates to both rungs, so rung-level spans carry the cascade's
  /// escalation decisions alongside the rungs' own timing.
  void set_tracer(obs::Tracer* tracer) override;
  /// Propagates to both rungs (the cheap rung ignores it unless it has a
  /// substrate of its own).
  void inject_defects(const device::DefectRates& rates,
                      std::uint64_t seed) override;
  void inject_defects_at(std::size_t tile_index, const device::DefectRates& rates,
                         std::uint64_t seed) override;
  void apply_drift(double magnitude, std::uint64_t seed) override;
  /// Substrate health of both rungs folded (in practice: the expensive
  /// rung — the cheap rung has no tiles and reports vacuously healthy).
  [[nodiscard]] xbar::HealthReport check_health(
      const xbar::ProbeConfig& config) const override;
  xbar::HealSummary heal(const xbar::ProbeConfig& config) override;
  std::size_t recalibrate() override;
  /// Trip the (shared) breaker open because a health probe failed — every
  /// clone degrades escalations at once. No-op when the breaker is
  /// disabled.
  void quarantine_expensive();
  /// Binds the (shared) breaker core's instruments and propagates to both
  /// rungs. Safe to call once per clone — binding is idempotent.
  void bind_metrics(obs::Registry* registry) override;

  /// Escalation traffic answered by this instance since construction.
  struct Counters {
    std::uint64_t requests = 0;   ///< rows answered
    std::uint64_t escalated = 0;  ///< rows the expensive rung answered
    /// Rows that should have escalated but got the cheap bits because the
    /// breaker was open or the expensive rung failed.
    std::uint64_t degraded = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  [[nodiscard]] const CascadeConfig& config() const { return config_; }
  /// The shared breaker core (null when the breaker is disabled).
  [[nodiscard]] const BreakerCore* breaker() const { return breaker_.get(); }

 private:
  /// Flag `rows` of `out` degraded (cheap bits, should-have-escalated).
  static void degrade_rows(core::BackendBatch& out,
                           const std::vector<std::size_t>& rows);

  CascadeConfig config_;
  std::unique_ptr<core::FidelityBackend> cheap_;
  std::unique_ptr<core::FidelityBackend> expensive_;
  /// Shared across clones: one rung outage trips every worker.
  std::shared_ptr<BreakerCore> breaker_;
  Counters counters_;
};

/// Should a cheap answer with this (entropy, top-1/top-2 margin) escalate
/// under `config`? Exposed for threshold calibration: sweep a validation
/// set's cheap-rung uncertainties through this to pick thresholds hitting
/// a target escalation rate.
[[nodiscard]] bool should_escalate(const CascadeConfig& config, double entropy,
                                   double margin);

}  // namespace neuspin::serve
