// Serving-side fidelity backends: the cascade.
//
// The electrical path (core::TiledBackend) answers a request with the full
// crossbar/ADC/defect simulation — three orders of magnitude more work
// than the behavioural tensor path, for a prediction that differs only on
// inputs where the hardware non-idealities actually matter. The paper's
// selective-prediction story (§IV) already computes the signal that tells
// the two cases apart: predictive uncertainty.
//
// CascadeBackend exploits that. Every request is first answered on a
// cheap backend; when the cheap answer is *uncertain* — predictive
// entropy above a ceiling, or top-1/top-2 probability margin below a
// floor — the request escalates to the expensive backend and that answer
// wins. Confident requests (the bulk of an in-distribution workload)
// never touch the electrical simulation, so cascade throughput approaches
// the cheap backend's while uncertain/OOD requests still get the
// high-fidelity treatment the selective policy will scrutinize.
//
// Determinism contract: the escalation decision is a pure function of the
// cheap prediction, which is itself a pure function of (model, features,
// request seed) — so whether a request escalates, and the bits of its
// final answer, are fixed by its seed alone. Escalated requests return
// exactly the expensive backend's bits, non-escalated requests exactly
// the cheap backend's, for any batch composition and worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/fidelity.h"

namespace neuspin::serve {

/// Escalation gate: when does a cheap answer not suffice?
struct CascadeConfig {
  /// Escalate when the cheap rung's predictive entropy (nats) reaches
  /// this ceiling. ln(classes) is the maximum; 0.5 nats is a practical
  /// "no longer confident" default for 10-class heads.
  double entropy_threshold = 0.5;
  /// Escalate when the cheap rung's top-1/top-2 probability margin falls
  /// to or below this floor (a near-tie means the argmax is fragile even
  /// at low entropy). 0 disables the margin gate.
  double margin_threshold = 0.0;
};

/// Two-rung escalation chain over any pair of fidelity backends.
class CascadeBackend : public core::FidelityBackend {
 public:
  /// Takes ownership of both rungs. `cheap` answers every request;
  /// `expensive` answers the escalated subset under the same request
  /// seeds. Throws if either rung is null or the hint ordering is
  /// inverted (the cascade would then escalate downward).
  CascadeBackend(std::unique_ptr<core::FidelityBackend> cheap,
                 std::unique_ptr<core::FidelityBackend> expensive,
                 const CascadeConfig& config);
  /// Clones both rungs; the escalation counters start at zero (they count
  /// per-instance traffic, not shared history).
  CascadeBackend(const CascadeBackend& other);

  [[nodiscard]] core::BackendBatch forward(
      const nn::Tensor& inputs, std::span<const std::uint64_t> request_seeds,
      energy::EnergyLedger* ledger) override;
  [[nodiscard]] std::unique_ptr<core::FidelityBackend> clone() const override {
    return std::make_unique<CascadeBackend>(*this);
  }
  void reseed(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override;
  /// The cheap rung's hint: a floor, exact when nothing escalates. The
  /// true per-request cost depends on the workload's escalation rate.
  [[nodiscard]] double cost_hint() const override { return cheap_->cost_hint(); }
  [[nodiscard]] xbar::DeltaStats delta_stats() const override;
  /// Propagates to both rungs, so rung-level spans carry the cascade's
  /// escalation decisions alongside the rungs' own timing.
  void set_tracer(obs::Tracer* tracer) override;

  /// Escalation traffic answered by this instance since construction.
  struct Counters {
    std::uint64_t requests = 0;   ///< rows answered
    std::uint64_t escalated = 0;  ///< rows the expensive rung answered
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  [[nodiscard]] const CascadeConfig& config() const { return config_; }

 private:
  CascadeConfig config_;
  std::unique_ptr<core::FidelityBackend> cheap_;
  std::unique_ptr<core::FidelityBackend> expensive_;
  Counters counters_;
};

/// Should a cheap answer with this (entropy, top-1/top-2 margin) escalate
/// under `config`? Exposed for threshold calibration: sweep a validation
/// set's cheap-rung uncertainties through this to pick thresholds hitting
/// a target escalation rate.
[[nodiscard]] bool should_escalate(const CascadeConfig& config, double entropy,
                                   double margin);

}  // namespace neuspin::serve
