// Dynamic request batcher of the serving runtime.
//
// Single-sample requests arrive at arbitrary times; model workers want
// batches. The batcher coalesces pending requests into batches under two
// knobs: `max_batch` (never hand a worker more than this many requests)
// and `max_linger` (never make the *oldest* pending request wait longer
// than this for companions before a partial batch is flushed). Once a
// flush triggers, the whole pending backlog is dispatchable and is dealt
// out in fair shares across `consumers` workers, so a burst does not pile
// onto the first worker while the rest idle.
//
// Batch composition is a pure scheduling concern: every request carries
// its own RNG seed, so whichever batch a request lands in, its prediction
// is bitwise identical (see serve/runtime.h). That is what lets the
// linger/batch knobs be tuned freely for latency/throughput without
// touching reproducibility.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serve/policy.h"

namespace neuspin::obs {
class Gauge;      // obs/metrics.h
class Histogram;  // obs/metrics.h
}  // namespace neuspin::obs

namespace neuspin::serve {

struct BatcherConfig {
  /// Largest batch handed to one worker in one pop.
  std::size_t max_batch = 16;
  /// Longest time the oldest pending request may wait for companions
  /// before a partial batch is flushed. 0 flushes immediately (every pop
  /// takes whatever is queued, degrading to per-request dispatch under
  /// light load).
  std::chrono::microseconds max_linger{200};
  /// Consumer-count hint (the runtime sets it to its worker count): a
  /// burst backlog is split into ceil(pending / consumers) pops instead of
  /// handing max_batch to the first worker while the others idle —
  /// requests compute one at a time per worker, so spreading them cuts
  /// tail latency without changing any result.
  std::size_t consumers = 1;
};

/// One in-flight inference request.
struct Request {
  std::uint64_t id = 0;
  std::vector<float> features;  ///< one flattened input sample
  std::uint64_t seed = 0;       ///< base of this request's RNG streams
  std::chrono::steady_clock::time_point enqueued{};
  /// Absolute completion deadline; the default-constructed time_point
  /// means "none". Expired requests are failed with DeadlineExceeded by
  /// the worker BEFORE any forward work is spent on them.
  std::chrono::steady_clock::time_point deadline{};
  /// Times this request has been re-queued after a worker fault (at most
  /// one retry — a request that faults twice is failed to the client).
  std::uint8_t retries = 0;
  std::promise<ServedPrediction> promise;
};

/// Thread-safe FIFO that groups requests into batches. Multiple producers
/// (client threads calling push) and multiple consumers (model workers
/// calling pop_batch) are supported.
class Batcher {
 public:
  explicit Batcher(const BatcherConfig& config);

  /// Enqueue one request. After close() the request is rejected: its
  /// promise is failed with a std::runtime_error (so any future already
  /// taken from it resolves with that error, not broken_promise) and the
  /// same error is thrown to the pusher.
  void push(Request request);

  /// Block until a batch is ready and return it. A batch is ready when
  /// `max_batch` requests are pending, or at least one request has been
  /// pending for `max_linger`, or the batcher was closed (remaining
  /// requests drain in FIFO order, still chunked by `max_batch`). Returns
  /// an empty vector only when closed *and* fully drained — the consumer's
  /// signal to exit.
  [[nodiscard]] std::vector<Request> pop_batch();

  /// Put already-admitted requests back at the FRONT of the queue in their
  /// original order (worker-fault recovery: the supervisor or a crashed
  /// worker returns its in-flight batch so another worker retries it).
  /// Unlike push, this works after close() — the requests were admitted
  /// before the shutdown and still drain. Requeued requests are
  /// immediately dispatchable (no second linger wait).
  void requeue(std::vector<Request> requests);

  /// Remove and return every pending request (fast-shutdown path: the
  /// caller fails them typed instead of serving them). Queue is empty on
  /// return; blocked consumers are woken.
  [[nodiscard]] std::vector<Request> shed_pending();

  /// Stop accepting pushes and wake every blocked consumer. Pending
  /// requests remain poppable so workers can drain them.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t pending() const;

  /// Attach observability instruments (either may be null): every
  /// non-empty pop records its size into `batch_size`, and `queue_depth`
  /// tracks the pending count after each push/pop. Recording is lock-free
  /// on the instruments; the queue lock is already held at both sites.
  void bind_metrics(obs::Histogram* batch_size, obs::Gauge* queue_depth);

 private:
  /// A flush trigger fired: mark every pending request dispatchable and
  /// fix the per-consumer share. Caller holds the lock.
  void release_pending_locked();
  /// Take up to min(max_batch, fair share) released requests off the
  /// front. Caller holds the lock.
  [[nodiscard]] std::vector<Request> take_locked();
  /// take_locked, then release the lock and wake another consumer if
  /// released requests remain.
  [[nodiscard]] std::vector<Request> take_and_signal(
      std::unique_lock<std::mutex>& lock);

  BatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Request> queue_;
  /// Requests already released for dispatch by a flush trigger (always
  /// <= queue_.size()), and the per-pop share fixed at release time.
  std::size_t releasable_ = 0;
  std::size_t release_share_ = 1;
  bool closed_ = false;
  obs::Histogram* batch_size_hist_ = nullptr;  ///< optional, not owned
  obs::Gauge* queue_depth_gauge_ = nullptr;    ///< optional, not owned
};

}  // namespace neuspin::serve
