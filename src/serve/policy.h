// Selective-prediction policy for the serving runtime.
//
// The paper's deployment story (§I, §IV) is that every hardware prediction
// ships with an uncertainty estimate so downstream logic can *abstain* on
// inputs the model does not understand — corrupted sensors, OOD scenes,
// adversarial drift. The policy is the piece that turns the Monte-Carlo
// uncertainty numbers into that accept/abstain decision, per request.
//
// Policies are pure functions of one request's prediction summary, so the
// decision never depends on batching, worker count or arrival order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neuspin::serve {

/// Everything the runtime reports back for one request.
struct ServedPrediction {
  std::uint64_t request_id = 0;
  std::vector<float> probs;          ///< predictive mean over classes
  std::size_t predicted_class = 0;   ///< argmax of `probs`
  float confidence = 0.0f;           ///< probs[predicted_class]
  float entropy = 0.0f;              ///< total predictive uncertainty (nats)
  float mutual_info = 0.0f;          ///< epistemic part (nats)
  bool accepted = true;              ///< selective-prediction decision
  float policy_score = 0.0f;         ///< the score the policy thresholded
  std::size_t mc_samples = 0;        ///< T used for this prediction
  /// Latency attribution (microseconds): time spent queued in the batcher
  /// waiting for companions, time spent in the Monte-Carlo passes, and the
  /// end-to-end submit->done figure clients actually observe.
  double queue_latency_us = 0.0;
  double compute_latency_us = 0.0;
  double total_latency_us = 0.0;
  /// Energy attributed to this request (picojoules): measured event-by-
  /// event on the tiled backend, census-derived on the behavioural one,
  /// both summed on an escalated cascade request.
  double energy_pj = 0.0;
  std::size_t batch_size = 0;        ///< companions in the request's batch
  std::size_t worker = 0;            ///< replica that served it
  /// Cascade serving: the request escalated to the expensive rung (its
  /// answer carries the expensive backend's bits). Always false on the
  /// single-fidelity backends.
  bool escalated = false;
  /// Cascade serving under failure: the request SHOULD have escalated but
  /// the expensive rung was circuit-broken (or threw), so the answer
  /// carries the cheap rung's bits. Clients treating escalated answers as
  /// higher-fidelity must check this flag. Always false outside a cascade.
  bool degraded = false;
};

/// How the policy scores a request before thresholding.
enum class PolicyKind : std::uint8_t {
  kAcceptAll,      ///< never abstain (threshold ignored)
  kMaxEntropy,     ///< abstain when predictive entropy exceeds threshold
  kMaxMutualInfo,  ///< abstain when epistemic uncertainty exceeds threshold
  kMinConfidence,  ///< abstain when top-class probability falls below threshold
};

[[nodiscard]] std::string policy_name(PolicyKind kind);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kAcceptAll;
  /// Meaning depends on `kind`: an entropy / mutual-information ceiling in
  /// nats, or a confidence floor in [0, 1].
  float threshold = 0.0f;
};

/// Thresholds one prediction summary into an accept/abstain decision.
class SelectivePolicy {
 public:
  /// Validates the (kind, threshold) pair; throws std::invalid_argument on
  /// a negative uncertainty ceiling or a confidence floor outside [0, 1].
  explicit SelectivePolicy(const PolicyConfig& config);

  struct Decision {
    bool accepted = true;
    float score = 0.0f;  ///< the value compared against the threshold
  };

  [[nodiscard]] Decision decide(float confidence, float entropy,
                                float mutual_info) const;

  [[nodiscard]] const PolicyConfig& config() const { return config_; }

 private:
  PolicyConfig config_;
};

}  // namespace neuspin::serve
