#include "serve/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "nn/model.h"
#include "obs/metrics.h"
#include "serve/runtime.h"

namespace neuspin::serve {

namespace {

/// Uniform in [0, 1) from one mixed 64-bit draw (53 mantissa bits).
double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

InjectedFault::InjectedFault(std::uint64_t ticket)
    : std::runtime_error("InjectedFault: seeded crash at forward ticket " +
                         std::to_string(ticket)),
      ticket_(ticket) {}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  if (plan.crash_p < 0.0 || plan.stall_p < 0.0 || plan.defect_p < 0.0 ||
      plan.drift_p < 0.0 ||
      plan.crash_p + plan.stall_p + plan.defect_p + plan.drift_p > 1.0) {
    throw std::invalid_argument(
        "FaultInjector: fault probabilities must be non-negative and sum to "
        "at most 1");
  }
  if (plan.drift_magnitude < 0.0) {
    throw std::invalid_argument("FaultInjector: drift_magnitude must be non-negative");
  }
  if (plan.stall.count() < 0) {
    throw std::invalid_argument("FaultInjector: stall must be non-negative");
  }
  plan.defect_rates.validate();
}

FaultInjector::Decision FaultInjector::next() {
  Decision decision;
  decision.ticket = next_ticket_.fetch_add(1);
  if (!plan_.enabled || decision.ticket < plan_.warmup ||
      decision.ticket >= plan_.stop_after) {
    return decision;
  }
  const std::uint64_t mixed = nn::mix_seed(plan_.seed, decision.ticket);
  const double u = to_unit(mixed);
  if (u < plan_.crash_p) {
    decision.action = Action::kCrash;
    crashes_.fetch_add(1);
    if (auto* c = ctr_crashes_.load()) {
      c->inc();
    }
  } else if (u < plan_.crash_p + plan_.stall_p) {
    decision.action = Action::kStall;
    stalls_.fetch_add(1);
    if (auto* c = ctr_stalls_.load()) {
      c->inc();
    }
  } else if (u < plan_.crash_p + plan_.stall_p + plan_.defect_p) {
    decision.action = Action::kDefectBurst;
    // An independent derivation (not the band draw itself) so the burst's
    // defect placement does not correlate with the fault selection.
    decision.burst_seed = nn::mix_seed(mixed, 0x6275727374ull);  // "burst"
    bursts_.fetch_add(1);
    if (auto* c = ctr_bursts_.load()) {
      c->inc();
    }
  } else if (u < plan_.crash_p + plan_.stall_p + plan_.defect_p + plan_.drift_p) {
    decision.action = Action::kDrift;
    decision.burst_seed = nn::mix_seed(mixed, 0x6472696674ull);  // "drift"
    drifts_.fetch_add(1);
    if (auto* c = ctr_drifts_.load()) {
      c->inc();
    }
  }
  return decision;
}

void FaultInjector::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    ctr_crashes_.store(nullptr);
    ctr_stalls_.store(nullptr);
    ctr_bursts_.store(nullptr);
    ctr_drifts_.store(nullptr);
    return;
  }
  ctr_crashes_.store(&registry->counter("serve.fault.crashes"));
  ctr_stalls_.store(&registry->counter("serve.fault.stalls"));
  ctr_bursts_.store(&registry->counter("serve.fault.defect_bursts"));
  ctr_drifts_.store(&registry->counter("serve.fault.drifts"));
}

FaultyBackend::FaultyBackend(std::unique_ptr<core::FidelityBackend> inner,
                             std::shared_ptr<FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {
  if (inner_ == nullptr || injector_ == nullptr) {
    throw std::invalid_argument(
        "FaultyBackend: inner backend and injector are required");
  }
}

core::BackendBatch FaultyBackend::forward(
    const nn::Tensor& inputs, std::span<const std::uint64_t> request_seeds,
    energy::EnergyLedger* ledger) {
  const FaultInjector::Decision decision = injector_->next();
  switch (decision.action) {
    case FaultInjector::Action::kCrash:
      throw InjectedFault(decision.ticket);
    case FaultInjector::Action::kStall:
      std::this_thread::sleep_for(injector_->plan().stall);
      break;
    case FaultInjector::Action::kDefectBurst:
      if (injector_->plan().defect_tile >= 0) {
        inner_->inject_defects_at(
            static_cast<std::size_t>(injector_->plan().defect_tile),
            injector_->plan().defect_rates, decision.burst_seed);
      } else {
        inner_->inject_defects(injector_->plan().defect_rates,
                               decision.burst_seed);
      }
      break;
    case FaultInjector::Action::kDrift:
      inner_->apply_drift(injector_->plan().drift_magnitude, decision.burst_seed);
      break;
    case FaultInjector::Action::kNone:
      break;
  }
  return inner_->forward(inputs, request_seeds, ledger);
}

std::unique_ptr<core::FidelityBackend> FaultyBackend::clone() const {
  // Clone the substrate, SHARE the injector: the fault schedule is one
  // global ticket stream across every worker replica.
  return std::make_unique<FaultyBackend>(inner_->clone(), injector_);
}

std::string FaultyBackend::name() const {
  return "faulty(" + inner_->name() + ")";
}

void FaultyBackend::set_tracer(obs::Tracer* tracer) {
  core::FidelityBackend::set_tracer(tracer);
  inner_->set_tracer(tracer);
}

void FaultyBackend::bind_metrics(obs::Registry* registry) {
  injector_->bind_metrics(registry);
  inner_->bind_metrics(registry);
}

ServedPrediction predict_with_retry(Runtime& runtime,
                                    const std::vector<float>& features,
                                    std::uint64_t request_seed,
                                    const RetryPolicy& policy) {
  if (policy.max_attempts == 0) {
    throw std::invalid_argument("predict_with_retry: need at least one attempt");
  }
  obs::Counter& attempts_ctr = runtime.metrics().counter("serve.retry.attempts");
  double backoff_us =
      std::chrono::duration<double, std::micro>(policy.base_backoff).count();
  const double ceiling_us =
      std::chrono::duration<double, std::micro>(policy.max_backoff).count();
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      // Same request seed on every attempt: the eventual answer carries
      // the exact bits the un-shed submission would have.
      return runtime.submit(features, request_seed).get();
    } catch (const OverloadError& error) {
      if (error.reason() != ShedReason::kQueueFull ||
          attempt + 1 >= policy.max_attempts) {
        throw;  // kShutdown never retries; attempts exhausted rethrows
      }
      attempts_ctr.inc();
      // Honor the server's hint when it asks for more than our schedule,
      // then jitter deterministically so a retry storm from many clients
      // with distinct seeds decorrelates yet each client replays exactly.
      double wait_us = std::min(ceiling_us, std::max(backoff_us, error.retry_after_us()));
      const double u =
          to_unit(nn::mix_seed(policy.seed, attempt)) * 2.0 - 1.0;  // [-1, 1)
      wait_us = std::max(0.0, wait_us * (1.0 + policy.jitter * u));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(wait_us));
      backoff_us = std::min(ceiling_us, backoff_us * policy.multiplier);
    }
  }
}

}  // namespace neuspin::serve
