#include "serve/batcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace neuspin::serve {

Batcher::Batcher(const BatcherConfig& config) : config_(config) {
  if (config.max_batch == 0) {
    throw std::invalid_argument("Batcher: max_batch must be at least 1");
  }
  if (config.max_linger.count() < 0) {
    throw std::invalid_argument("Batcher: max_linger must be non-negative");
  }
}

void Batcher::push(Request request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!closed_) {
      queue_.push_back(std::move(request));
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->set(static_cast<double>(queue_.size()));
      }
      ready_.notify_one();
      return;
    }
  }
  // Rejected: fail the request's promise (outside the lock) so a future
  // already taken from it resolves with the error, then tell the pusher.
  const auto error =
      std::make_exception_ptr(std::runtime_error("Batcher: push after close"));
  request.promise.set_exception(error);
  std::rethrow_exception(error);
}

void Batcher::release_pending_locked() {
  releasable_ = queue_.size();
  release_share_ = std::max<std::size_t>(
      1, (releasable_ + config_.consumers - 1) /
             std::max<std::size_t>(1, config_.consumers));
}

std::vector<Request> Batcher::take_locked() {
  // Cap at this consumer's fair share of the released backlog so idle
  // workers get their cut instead of the first pop swallowing max_batch.
  const std::size_t n =
      std::min({config_.max_batch, releasable_, release_share_});
  std::vector<Request> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  releasable_ -= n;
  if (n > 0 && batch_size_hist_ != nullptr) {
    batch_size_hist_->record(static_cast<double>(n));
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set(static_cast<double>(queue_.size()));
  }
  return batch;
}

std::vector<Request> Batcher::pop_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // A flush trigger (full batch, linger expiry, close) releases the
    // whole pending backlog; it is then consumed in fair-share pops.
    if (releasable_ == 0 &&
        (queue_.size() >= config_.max_batch || closed_)) {
      release_pending_locked();
    }
    if (releasable_ > 0) {
      return take_and_signal(lock);
    }
    if (closed_) {
      return {};  // closed and drained: the worker's signal to exit
    }
    if (!queue_.empty()) {
      // Partial batch: flush once the oldest request has lingered long
      // enough; a fill-up or close wakes us earlier through notify. A
      // request deadline tighter than the linger caps the wait, so an
      // expiring request is flushed (and failed typed) promptly instead
      // of rotting out its linger first.
      auto deadline = queue_.front().enqueued + config_.max_linger;
      if (queue_.front().deadline != std::chrono::steady_clock::time_point{}) {
        deadline = std::min(deadline, queue_.front().deadline);
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        release_pending_locked();
        return take_and_signal(lock);
      }
      ready_.wait_until(lock, deadline);
    } else {
      ready_.wait(lock);
    }
  }
}

std::vector<Request> Batcher::take_and_signal(std::unique_lock<std::mutex>& lock) {
  std::vector<Request> batch = take_locked();
  const bool leftovers = releasable_ > 0;
  lock.unlock();
  if (leftovers) {
    // A fair-share pop leaves released requests behind; hand them to the
    // next idle worker right away instead of waiting out a linger.
    ready_.notify_one();
  }
  return batch;
}

void Batcher::requeue(std::vector<Request> requests) {
  if (requests.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // push_front in reverse keeps the batch's original order at the head
    // of the queue, ahead of everything enqueued since. Deliberately no
    // closed_ check: these requests were admitted before any shutdown and
    // keep their right to drain.
    for (auto it = requests.rbegin(); it != requests.rend(); ++it) {
      queue_.push_front(std::move(*it));
    }
    // Immediately dispatchable — they already served their linger wait.
    release_pending_locked();
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    }
  }
  ready_.notify_all();
}

std::vector<Request> Batcher::shed_pending() {
  std::vector<Request> shed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shed.reserve(queue_.size());
    while (!queue_.empty()) {
      shed.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    releasable_ = 0;
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->set(0.0);
    }
  }
  ready_.notify_all();
  return shed;
}

void Batcher::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool Batcher::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t Batcher::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Batcher::bind_metrics(obs::Histogram* batch_size, obs::Gauge* queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  batch_size_hist_ = batch_size;
  queue_depth_gauge_ = queue_depth;
}

}  // namespace neuspin::serve
