#include "serve/runtime.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/bayesian.h"
#include "core/thread_pool.h"
#include "nn/model.h"

namespace neuspin::serve {

namespace {

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kBehavioral:
      return "behavioral";
    case Backend::kTiled:
      return "tiled";
  }
  return "unknown";
}

std::uint64_t Runtime::request_stream_seed(std::uint64_t base_seed,
                                           std::uint64_t request_index) {
  return nn::mix_seed(base_seed, request_index);
}

namespace {

/// Resolve every derived knob once, before the member initializers run:
/// the worker count (0 -> hardware) and the batcher's consumer count
/// (always the worker count, whatever the caller set). config() then
/// reports exactly what the runtime is doing.
RuntimeConfig normalized(RuntimeConfig config) {
  config.workers = core::resolve_worker_count(config.workers);
  config.batcher.consumers = config.workers;
  return config;
}

}  // namespace

Runtime::Runtime(const core::BuiltModel& model, const RuntimeConfig& config)
    : config_(normalized(config)),
      policy_(config_.policy),
      batcher_(config_.batcher) {
  if (config_.mc_samples == 0) {
    throw std::invalid_argument("Runtime: need at least one MC sample");
  }
  const std::size_t workers = config_.workers;
  if (config.backend == Backend::kBehavioral) {
    behavioral_replicas_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      behavioral_replicas_.push_back(model.clone());
      behavioral_replicas_.back().enable_mc(true);
    }
    if (config.account_energy && !model.arch.layers.empty()) {
      core::CensusConfig census = config.census;
      census.mc_passes = config.mc_samples;
      const energy::EnergyLedger ledger =
          core::inference_census(model.arch, model.method, census);
      census_energy_pj_ = ledger.total_energy(energy::default_energy_params());
    }
  } else {
    // One mutable staging clone feeds every replica build; the TiledMlp
    // constructor only reads the weights and keeps no reference, and
    // rebuilding from the same (weights, config, seed) programs
    // bit-identical hardware on every replica.
    core::BuiltModel staging = model.clone();
    tiled_replicas_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      tiled_replicas_.emplace_back(staging.net, config.tile, config.tile_seed);
    }
  }
  threads_.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // Thread spawn failed partway: release the already-started workers
    // (they would otherwise block in pop_batch forever) and join them, so
    // the exception propagates instead of ~thread calling std::terminate.
    batcher_.close();
    for (auto& thread : threads_) {
      if (thread.joinable()) {
        thread.join();
      }
    }
    throw;
  }
}

Runtime::~Runtime() { shutdown(); }

void Runtime::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  batcher_.close();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features) {
  const std::uint64_t id = next_request_.fetch_add(1);
  return submit_with_id(id, std::move(features),
                        request_stream_seed(config_.seed, id));
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features,
                                              std::uint64_t request_seed) {
  return submit_with_id(next_request_.fetch_add(1), std::move(features),
                        request_seed);
}

std::future<ServedPrediction> Runtime::submit_with_id(std::uint64_t id,
                                                      std::vector<float> features,
                                                      std::uint64_t request_seed) {
  Request request;
  request.id = id;
  request.features = std::move(features);
  request.seed = request_seed;
  request.enqueued = std::chrono::steady_clock::now();
  std::future<ServedPrediction> future = request.promise.get_future();
  batcher_.push(std::move(request));  // throws after shutdown()
  return future;
}

ServedPrediction Runtime::predict(const std::vector<float>& features) {
  return submit(features).get();
}

RuntimeStats Runtime::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  RuntimeStats out = stats_;
  out.mean_batch_size =
      out.batches == 0 ? 0.0
                       : static_cast<double>(out.requests) /
                             static_cast<double>(out.batches);
  return out;
}

void Runtime::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::vector<Request> batch = batcher_.pop_batch();
    if (batch.empty()) {
      return;  // closed and drained
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
    }
    for (Request& request : batch) {
      serve_one(worker_index, request, batch.size());
    }
  }
}

void Runtime::serve_one(std::size_t worker_index, Request& request,
                        std::size_t batch_size) {
  const auto popped = std::chrono::steady_clock::now();
  try {
    const nn::Tensor input(nn::Shape{1, request.features.size()}, request.features);
    const core::McPredictor predictor(config_.mc_samples, request.seed);
    energy::EnergyLedger ledger(config_.tile.adc_bits);
    core::Prediction prediction;
    const auto compute_begin = std::chrono::steady_clock::now();
    if (config_.backend == Backend::kBehavioral) {
      core::BuiltModel& replica = behavioral_replicas_[worker_index];
      prediction = predictor.predict(
          input, core::McPredictor::SeededForward(
                     [&replica](const nn::Tensor& x, std::uint64_t pass_seed) {
                       replica.reseed_stochastic(pass_seed);
                       return replica.stochastic_logits(x);
                     }));
    } else {
      core::TiledMlp& replica = tiled_replicas_[worker_index];
      energy::EnergyLedger* lp = config_.account_energy ? &ledger : nullptr;
      prediction = predictor.predict(
          input, core::McPredictor::SeededForward(
                     [this, &replica, lp](const nn::Tensor& x, std::uint64_t pass_seed) {
                       replica.reseed(pass_seed);
                       return replica.forward_spindrop(x, config_.spindrop_p, lp);
                     }));
    }
    const auto compute_end = std::chrono::steady_clock::now();

    ServedPrediction served;
    served.request_id = request.id;
    served.probs.assign(prediction.mean_probs.data().begin(),
                        prediction.mean_probs.data().end());
    served.predicted_class = prediction.predicted_class().front();
    served.confidence = served.probs[served.predicted_class];
    served.entropy = prediction.entropy.front();
    served.mutual_info = prediction.mutual_info.front();
    const SelectivePolicy::Decision decision =
        policy_.decide(served.confidence, served.entropy, served.mutual_info);
    served.accepted = decision.accepted;
    served.policy_score = decision.score;
    served.mc_samples = config_.mc_samples;
    served.queue_latency_us = to_us(popped - request.enqueued);
    served.compute_latency_us = to_us(compute_end - compute_begin);
    served.total_latency_us = to_us(compute_end - request.enqueued);
    if (config_.account_energy) {
      served.energy_pj = config_.backend == Backend::kBehavioral
                             ? census_energy_pj_
                             : ledger.total_energy(energy::default_energy_params());
    }
    served.batch_size = batch_size;
    served.worker = worker_index;

    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests;
      if (served.accepted) {
        ++stats_.accepted;
      } else {
        ++stats_.abstained;
      }
      stats_.total_energy_pj += served.energy_pj;
      stats_.total_compute_us += served.compute_latency_us;
    }
    request.promise.set_value(std::move(served));
  } catch (...) {
    request.promise.set_exception(std::current_exception());
  }
}

}  // namespace neuspin::serve
