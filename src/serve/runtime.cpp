#include "serve/runtime.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/bayesian.h"
#include "core/thread_pool.h"
#include "nn/model.h"

namespace neuspin::serve {

namespace {

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Floor of the shed retry-after hint: never advise a client to retry
/// faster than this, even off a cold latency histogram.
constexpr double kRetryAfterFloorUs = 100.0;

}  // namespace

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kBehavioral:
      return "behavioral";
    case Backend::kTiled:
      return "tiled";
    case Backend::kCascade:
      return "cascade";
  }
  return "unknown";
}

std::string shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

OverloadError::OverloadError(ShedReason reason, double retry_after_us,
                             std::size_t queue_depth)
    : std::runtime_error("Runtime: request shed (" + shed_reason_name(reason) +
                         "), queue depth " + std::to_string(queue_depth) +
                         ", retry after ~" +
                         std::to_string(static_cast<long long>(retry_after_us)) +
                         "us"),
      reason_(reason),
      retry_after_us_(retry_after_us),
      queue_depth_(queue_depth) {}

std::uint64_t Runtime::request_stream_seed(std::uint64_t base_seed,
                                           std::uint64_t request_index) {
  return nn::mix_seed(base_seed, request_index);
}

namespace {

/// Resolve every derived knob once, before the member initializers run:
/// the worker count (0 -> hardware) and the batcher's consumer count
/// (always the worker count, whatever the caller set). config() then
/// reports exactly what the runtime is doing.
RuntimeConfig normalized(RuntimeConfig config) {
  config.workers = core::resolve_worker_count(config.workers);
  config.batcher.consumers = config.workers;
  config.fused_workers = core::resolve_worker_count(config.fused_workers);
  return config;
}

}  // namespace

std::unique_ptr<core::FidelityBackend> Runtime::make_backend(
    const core::BuiltModel& model) const {
  const auto behavioral = [&] {
    core::BehavioralBackendConfig backend;
    backend.mc_samples = config_.mc_samples;
    backend.fused = config_.fused_batching;
    backend.team_size = config_.fused_workers;
    backend.energy_pj_per_request = census_energy_pj_;
    return std::make_unique<core::BehavioralBackend>(model, backend);
  };
  const auto tiled = [&] {
    core::TiledBackendConfig backend;
    backend.tile = config_.tile;
    backend.tile_seed = config_.tile_seed;
    backend.mc_samples = config_.mc_samples;
    backend.spindrop_p = config_.spindrop_p;
    backend.measure_energy = config_.account_energy;
    // One mutable staging clone feeds the replica build (the TiledMlp
    // constructor only reads the weights and keeps no reference).
    core::BuiltModel staging = model.clone();
    return std::make_unique<core::TiledBackend>(staging.net, backend);
  };
  switch (config_.backend) {
    case Backend::kBehavioral:
      return behavioral();
    case Backend::kTiled:
      return tiled();
    case Backend::kCascade:
      return std::make_unique<CascadeBackend>(behavioral(), tiled(),
                                              config_.cascade);
  }
  throw std::invalid_argument("Runtime: unknown backend");
}

Runtime::Runtime(const core::BuiltModel& model, const RuntimeConfig& config)
    : config_(normalized(config)),
      policy_(config_.policy),
      tracer_(config_.trace),
      batcher_(config_.batcher) {
  if (config_.mc_samples == 0) {
    throw std::invalid_argument("Runtime: need at least one MC sample");
  }
  if (config_.latency_window == 0) {
    throw std::invalid_argument("Runtime: latency_window must be at least 1");
  }
  // Hot-path instruments, resolved once: recording is then a relaxed
  // atomic op per event, no registry lock and no stats mutex.
  ctr_requests_ = &metrics_.counter("serve.requests");
  ctr_batches_ = &metrics_.counter("serve.batches");
  ctr_accepted_ = &metrics_.counter("serve.accepted");
  ctr_abstained_ = &metrics_.counter("serve.abstained");
  ctr_shed_ = &metrics_.counter("serve.shed");
  ctr_shed_queue_full_ = &metrics_.counter("serve.shed.queue_full");
  ctr_shed_shutdown_ = &metrics_.counter("serve.shed.shutdown");
  ctr_escalated_ = &metrics_.counter("serve.escalated");
  gauge_energy_total_ = &metrics_.gauge("serve.energy_pj.total");
  hist_latency_total_ = &metrics_.histogram("serve.latency.total_us");
  hist_latency_queue_ = &metrics_.histogram("serve.latency.queue_us");
  hist_latency_compute_ = &metrics_.histogram("serve.latency.compute_us");
  batcher_.bind_metrics(&metrics_.histogram("serve.batch_size"),
                        &metrics_.gauge("serve.queue_depth"));
  const std::size_t workers = config_.workers;
  // Census-price one behavioural request (the behavioural path has no
  // electrical events to measure; the tiled rungs measure instead).
  if (config_.backend != Backend::kTiled && config_.account_energy &&
      !model.arch.layers.empty()) {
    core::CensusConfig census = config_.census;
    census.mc_passes = config_.mc_samples;
    const energy::EnergyLedger ledger =
        core::inference_census(model.arch, model.method, census);
    census_energy_pj_ = ledger.total_energy(energy::default_energy_params());
  }
  // Worker 0's backend is built from the model; the rest are clone()s of
  // its programmed state — identical bits without re-running programming.
  backends_.reserve(workers);
  backends_.push_back(make_backend(model));
  for (std::size_t w = 1; w < workers; ++w) {
    backends_.push_back(backends_.front()->clone());
  }
  if (tracer_.enabled()) {
    // clone() does not propagate the tracer; attach it per replica so
    // every worker's rung/tile spans land in one trace.
    for (auto& backend : backends_) {
      backend->set_tracer(&tracer_);
    }
  }
  threads_.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // Thread spawn failed partway: release the already-started workers
    // (they would otherwise block in pop_batch forever) and join them, so
    // the exception propagates instead of ~thread calling std::terminate.
    batcher_.close();
    for (auto& thread : threads_) {
      if (thread.joinable()) {
        thread.join();
      }
    }
    throw;
  }
}

Runtime::~Runtime() { shutdown(); }

void Runtime::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  batcher_.close();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features) {
  const std::uint64_t id = next_request_.fetch_add(1);
  return submit_with_id(id, std::move(features),
                        request_stream_seed(config_.seed, id));
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features,
                                              std::uint64_t request_seed) {
  return submit_with_id(next_request_.fetch_add(1), std::move(features),
                        request_seed);
}

std::future<ServedPrediction> Runtime::submit_with_id(std::uint64_t id,
                                                      std::vector<float> features,
                                                      std::uint64_t request_seed) {
  Request request;
  request.id = id;
  request.features = std::move(features);
  request.seed = request_seed;
  request.enqueued = std::chrono::steady_clock::now();
  std::future<ServedPrediction> future = request.promise.get_future();
  const std::size_t depth = batcher_.pending();
  if (config_.max_queue_depth > 0 && depth >= config_.max_queue_depth) {
    // Admission control: shed instead of queueing — the future resolves
    // immediately with a machine-readable OverloadError (reason + a
    // retry-after hint from the latency histogram) and the caller can
    // back off programmatically.
    ctr_shed_->inc();
    ctr_shed_queue_full_->inc();
    request.promise.set_exception(std::make_exception_ptr(
        OverloadError(ShedReason::kQueueFull, retry_after_hint(), depth)));
    return future;
  }
  try {
    batcher_.push(std::move(request));  // rejects after shutdown()
  } catch (const std::runtime_error&) {
    // Post-shutdown submission: classify as a shed (reason kShutdown, no
    // point retrying) and rethrow the typed error to the submitter. The
    // batcher already failed the request's promise.
    ctr_shed_->inc();
    ctr_shed_shutdown_->inc();
    throw OverloadError(ShedReason::kShutdown, 0.0, depth);
  }
  return future;
}

ServedPrediction Runtime::predict(const std::vector<float>& features) {
  return submit(features).get();
}

double Runtime::retry_after_hint() const {
  // A client retrying before the oldest queued request could possibly
  // complete is wasted work: floor the hint at the linger budget (and an
  // absolute 100us) so a cold histogram (or one that has only seen
  // sub-floor latencies) still yields a sane back-off.
  const double floor_us = std::max(
      kRetryAfterFloorUs,
      std::chrono::duration<double, std::micro>(config_.batcher.max_linger).count());
  return std::max(floor_us, hist_latency_total_->quantile(0.50));
}

RuntimeStats Runtime::stats() const {
  RuntimeStats out;
  out.requests = ctr_requests_->value();
  out.batches = ctr_batches_->value();
  out.accepted = ctr_accepted_->value();
  out.abstained = ctr_abstained_->value();
  out.shed = ctr_shed_->value();
  out.shed_queue_full = ctr_shed_queue_full_->value();
  out.shed_shutdown = ctr_shed_shutdown_->value();
  out.escalated = ctr_escalated_->value();
  out.mean_batch_size =
      out.batches == 0 ? 0.0
                       : static_cast<double>(out.requests) /
                             static_cast<double>(out.batches);
  out.total_energy_pj = gauge_energy_total_->value();
  const obs::HistogramSnapshot compute = hist_latency_compute_->snapshot();
  out.total_compute_us = compute.sum;
  out.queue_depth = batcher_.pending();
  const obs::HistogramSnapshot latency = hist_latency_total_->snapshot();
  out.window_p50_us = latency.quantile(0.50);
  out.window_p99_us = latency.quantile(0.99);
  return out;
}

xbar::DeltaStats Runtime::delta_stats() const {
  xbar::DeltaStats stats;
  for (const auto& backend : backends_) {
    stats += backend->delta_stats();
  }
  return stats;
}

void Runtime::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::vector<Request> batch = batcher_.pop_batch();
    if (batch.empty()) {
      return;  // closed and drained
    }
    ctr_batches_->inc();
    serve_batch(worker_index, batch);
  }
}

void Runtime::publish_prediction(Request& request,
                                 const core::Prediction& prediction,
                                 std::chrono::steady_clock::time_point popped,
                                 std::chrono::steady_clock::time_point compute_begin,
                                 std::chrono::steady_clock::time_point compute_end,
                                 double compute_share_us, double energy_pj,
                                 bool escalated, std::size_t batch_size,
                                 std::size_t worker_index) {
  const double queue_us = to_us(popped - request.enqueued);
  const double total_us = to_us(compute_end - request.enqueued);
  ServedPrediction served;
  served.request_id = request.id;
  served.escalated = escalated;
  served.probs.assign(prediction.mean_probs.data().begin(),
                      prediction.mean_probs.data().end());
  served.predicted_class = prediction.predicted_class().front();
  served.confidence = served.probs[served.predicted_class];
  served.entropy = prediction.entropy.front();
  served.mutual_info = prediction.mutual_info.front();
  // Per-request spans land on a synthetic per-request track so one
  // request's queue/forward/policy intervals nest cleanly even when its
  // batch companions interleave on the worker thread.
  const bool sampled = tracer_.sampled(request.id);
  const std::uint64_t track = obs::Tracer::kRequestTrackBase + request.id;
  const double policy_begin_us = sampled ? tracer_.now_us() : 0.0;
  const SelectivePolicy::Decision decision =
      policy_.decide(served.confidence, served.entropy, served.mutual_info);
  if (sampled) {
    tracer_.record({"policy", "serve", policy_begin_us, tracer_.now_us(), track,
                    {{"accepted", decision.accepted ? 1.0 : 0.0},
                     {"score", decision.score}},
                    {}});
  }
  served.accepted = decision.accepted;
  served.policy_score = decision.score;
  served.mc_samples = config_.mc_samples;
  served.queue_latency_us = queue_us;
  served.compute_latency_us = compute_share_us;
  served.total_latency_us = total_us;
  served.energy_pj = energy_pj;
  served.batch_size = batch_size;
  served.worker = worker_index;
  ctr_requests_->inc();
  (served.accepted ? ctr_accepted_ : ctr_abstained_)->inc();
  if (escalated) {
    ctr_escalated_->inc();
  }
  gauge_energy_total_->add(served.energy_pj);
  hist_latency_total_->record(total_us);
  hist_latency_queue_->record(queue_us);
  hist_latency_compute_->record(compute_share_us);
  if (sampled) {
    tracer_.record({"queue", "serve", tracer_.to_us(request.enqueued),
                    tracer_.to_us(popped), track, {}, {}});
    tracer_.record({"forward", "serve", tracer_.to_us(compute_begin),
                    tracer_.to_us(compute_end), track,
                    {{"escalated", escalated ? 1.0 : 0.0},
                     {"batch_size", static_cast<double>(batch_size)},
                     {"worker", static_cast<double>(worker_index)}},
                    {}});
    // The request span closes at fulfillment time (just below), covering
    // enqueue -> reply end to end.
    tracer_.record({"request", "serve", tracer_.to_us(request.enqueued),
                    tracer_.now_us(), track,
                    {{"id", static_cast<double>(request.id)}},
                    {{"backend", backends_[worker_index]->name()}}});
  }
  request.promise.set_value(std::move(served));
}

void Runtime::fold_energy(const energy::EnergyLedger& ledger) {
  const energy::EnergyParams& params = energy::default_energy_params();
  for (std::size_t c = 0; c < static_cast<std::size_t>(energy::Component::kCount_);
       ++c) {
    const auto component = static_cast<energy::Component>(c);
    const std::uint64_t events = ledger.count(component);
    if (events == 0) {
      continue;
    }
    const std::string name = energy::component_name(component);
    metrics_.counter("energy.events." + name).inc(events);
    metrics_.gauge("energy.pj." + name)
        .add(ledger.component_energy(component, params));
  }
}

void Runtime::serve_batch(std::size_t worker_index, std::vector<Request>& batch) {
  const auto popped = std::chrono::steady_clock::now();
  core::FidelityBackend& backend = *backends_[worker_index];
  // Worker-track span covering the whole pop (rung spans from the backend
  // nest inside it on the same thread track).
  obs::ScopedSpan batch_span(&tracer_, "batch", "serve");
  batch_span.arg("rows", static_cast<double>(batch.size()));
  batch_span.arg("worker", static_cast<double>(worker_index));
  // Group by feature count, preserving arrival order inside each group: a
  // wrong-sized submission then fails with its own shape error without
  // poisoning well-formed companions in the same pop.
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> groups;
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const std::size_t f = batch[r].features.size();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [f](const auto& g) { return g.first == f; });
    if (it == groups.end()) {
      groups.push_back({f, {r}});
    } else {
      it->second.push_back(r);
    }
  }

  for (auto& [features, members] : groups) {
    // Count of members whose promise is already satisfied: on an error we
    // must fail only the remainder — set_exception on a fulfilled promise
    // would itself throw and unwind the worker thread.
    std::size_t fulfilled = 0;
    try {
      const std::size_t rows = members.size();
      nn::Tensor inputs({rows, features});
      std::vector<std::uint64_t> seeds(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        const Request& request = batch[members[b]];
        std::copy(request.features.begin(), request.features.end(),
                  inputs.data().begin() +
                      static_cast<std::ptrdiff_t>(b * features));
        seeds[b] = request.seed;
      }
      // Per-component energy fold: hand the backend a batch ledger when it
      // has electrical events to merge (the behavioural path has none —
      // its energy is the census constant already in energy_pj).
      std::optional<energy::EnergyLedger> batch_ledger;
      if (config_.account_energy && config_.backend != Backend::kBehavioral) {
        batch_ledger.emplace(config_.tile.adc_bits);
      }
      const auto compute_begin = std::chrono::steady_clock::now();
      // One batched forward answers the whole group; per-request streams
      // derive from the request seeds, so the grouping is invisible in
      // the results. Energy comes back per request (census-priced,
      // measured, or cascade-summed, by backend).
      const core::BackendBatch answered = backend.forward(
          inputs, seeds, batch_ledger ? &*batch_ledger : nullptr);
      const auto compute_end = std::chrono::steady_clock::now();
      if (batch_ledger) {
        fold_energy(*batch_ledger);
      }
      // The batched forward computes all rows at once; each request is
      // attributed its amortized share of the group's compute time.
      const double compute_share =
          to_us(compute_end - compute_begin) / static_cast<double>(rows);

      for (std::size_t b = 0; b < rows; ++b) {
        Request& request = batch[members[b]];
        publish_prediction(request, answered.predictions[b], popped,
                           compute_begin, compute_end, compute_share,
                           answered.energy_pj[b], answered.escalated[b] != 0,
                           batch.size(), worker_index);
        ++fulfilled;
      }
    } catch (...) {
      const auto error = std::current_exception();
      for (std::size_t b = fulfilled; b < members.size(); ++b) {
        batch[members[b]].promise.set_exception(error);
      }
    }
  }
}

}  // namespace neuspin::serve
