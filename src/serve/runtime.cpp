#include "serve/runtime.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/bayesian.h"
#include "core/thread_pool.h"
#include "nn/model.h"

namespace neuspin::serve {

namespace {

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Floor of the shed retry-after hint: never advise a client to retry
/// faster than this, even off a cold latency histogram.
constexpr double kRetryAfterFloorUs = 100.0;

}  // namespace

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kBehavioral:
      return "behavioral";
    case Backend::kTiled:
      return "tiled";
    case Backend::kCascade:
      return "cascade";
  }
  return "unknown";
}

std::string shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

OverloadError::OverloadError(ShedReason reason, double retry_after_us,
                             std::size_t queue_depth)
    : std::runtime_error("Runtime: request shed (" + shed_reason_name(reason) +
                         "), queue depth " + std::to_string(queue_depth) +
                         ", retry after ~" +
                         std::to_string(static_cast<long long>(retry_after_us)) +
                         "us"),
      reason_(reason),
      retry_after_us_(retry_after_us),
      queue_depth_(queue_depth) {}

DeadlineExceeded::DeadlineExceeded(std::uint64_t request_id, double overrun_us)
    : std::runtime_error("Runtime: request " + std::to_string(request_id) +
                         " missed its deadline by ~" +
                         std::to_string(static_cast<long long>(overrun_us)) +
                         "us"),
      request_id_(request_id),
      overrun_us_(overrun_us) {}

std::uint64_t Runtime::request_stream_seed(std::uint64_t base_seed,
                                           std::uint64_t request_index) {
  return nn::mix_seed(base_seed, request_index);
}

namespace {

/// Resolve every derived knob once, before the member initializers run:
/// the worker count (0 -> hardware) and the batcher's consumer count
/// (always the worker count, whatever the caller set). config() then
/// reports exactly what the runtime is doing.
RuntimeConfig normalized(RuntimeConfig config) {
  config.workers = core::resolve_worker_count(config.workers);
  config.batcher.consumers = config.workers;
  config.fused_workers = core::resolve_worker_count(config.fused_workers);
  return config;
}

}  // namespace

std::unique_ptr<core::FidelityBackend> Runtime::make_backend(
    const core::BuiltModel& model) const {
  const auto behavioral = [&] {
    core::BehavioralBackendConfig backend;
    backend.mc_samples = config_.mc_samples;
    backend.fused = config_.fused_batching;
    backend.team_size = config_.fused_workers;
    backend.energy_pj_per_request = census_energy_pj_;
    return std::make_unique<core::BehavioralBackend>(model, backend);
  };
  const auto tiled = [&] {
    core::TiledBackendConfig backend;
    backend.tile = config_.tile;
    backend.tile_seed = config_.tile_seed;
    backend.mc_samples = config_.mc_samples;
    backend.spindrop_p = config_.spindrop_p;
    backend.measure_energy = config_.account_energy;
    // One mutable staging clone feeds the replica build (the TiledMlp
    // constructor only reads the weights and keeps no reference).
    core::BuiltModel staging = model.clone();
    return std::make_unique<core::TiledBackend>(staging.net, backend);
  };
  std::unique_ptr<core::FidelityBackend> base;
  switch (config_.backend) {
    case Backend::kBehavioral:
      base = behavioral();
      break;
    case Backend::kTiled:
      base = tiled();
      break;
    case Backend::kCascade: {
      std::unique_ptr<core::FidelityBackend> expensive = tiled();
      if (injector_ != nullptr &&
          config_.fault_site == FaultSite::kExpensiveRung) {
        // Faults land only on the expensive rung — the breaker's chaos
        // diet: the cheap rung stays healthy to degrade onto.
        expensive = std::make_unique<FaultyBackend>(std::move(expensive),
                                                    injector_);
      }
      base = std::make_unique<CascadeBackend>(behavioral(),
                                              std::move(expensive),
                                              config_.cascade);
      break;
    }
  }
  if (base == nullptr) {
    throw std::invalid_argument("Runtime: unknown backend");
  }
  if (injector_ != nullptr && config_.fault_site == FaultSite::kWorker) {
    base = std::make_unique<FaultyBackend>(std::move(base), injector_);
  }
  return base;
}

Runtime::Runtime(const core::BuiltModel& model, const RuntimeConfig& config)
    : config_(normalized(config)),
      policy_(config_.policy),
      tracer_(config_.trace),
      batcher_(config_.batcher) {
  if (config_.mc_samples == 0) {
    throw std::invalid_argument("Runtime: need at least one MC sample");
  }
  if (config_.latency_window == 0) {
    throw std::invalid_argument("Runtime: latency_window must be at least 1");
  }
  if (config_.fault.enabled && config_.fault_site == FaultSite::kExpensiveRung &&
      config_.backend != Backend::kCascade) {
    throw std::invalid_argument(
        "Runtime: FaultSite::kExpensiveRung requires the cascade backend");
  }
  if (config_.supervision.enabled &&
      (config_.supervision.heartbeat.count() <= 0 ||
       config_.supervision.stall_timeout.count() <= 0)) {
    throw std::invalid_argument(
        "Runtime: supervision heartbeat and stall_timeout must be positive");
  }
  // Hot-path instruments, resolved once: recording is then a relaxed
  // atomic op per event, no registry lock and no stats mutex.
  ctr_requests_ = &metrics_.counter("serve.requests");
  ctr_batches_ = &metrics_.counter("serve.batches");
  ctr_accepted_ = &metrics_.counter("serve.accepted");
  ctr_abstained_ = &metrics_.counter("serve.abstained");
  ctr_shed_ = &metrics_.counter("serve.shed");
  ctr_shed_queue_full_ = &metrics_.counter("serve.shed.queue_full");
  ctr_shed_shutdown_ = &metrics_.counter("serve.shed.shutdown");
  ctr_escalated_ = &metrics_.counter("serve.escalated");
  ctr_degraded_ = &metrics_.counter("serve.degraded");
  ctr_deadline_ = &metrics_.counter("serve.deadline_expired");
  ctr_requeued_ = &metrics_.counter("serve.requeued");
  ctr_restarts_ = &metrics_.counter("serve.worker.restarts");
  ctr_worker_stalls_ = &metrics_.counter("serve.worker.stalls");
  ctr_drain_shed_ = &metrics_.counter("serve.drain.shed");
  ctr_health_probes_ = &metrics_.counter("xbar.health.probes");
  ctr_health_failures_ = &metrics_.counter("xbar.health.canary_failures");
  ctr_health_sweeps_ = &metrics_.counter("xbar.health.sweeps");
  ctr_health_cells_faulty_ = &metrics_.counter("xbar.health.cells_faulty");
  ctr_remap_rows_ = &metrics_.counter("xbar.remap.rows");
  ctr_remap_cols_ = &metrics_.counter("xbar.remap.cols");
  ctr_remap_exhausted_ = &metrics_.counter("xbar.remap.exhausted");
  ctr_recal_runs_ = &metrics_.counter("xbar.recal.runs");
  ctr_recal_cells_ = &metrics_.counter("xbar.recal.cells");
  ctr_heals_ = &metrics_.counter("serve.health.heals");
  ctr_quarantines_ = &metrics_.counter("serve.health.quarantines");
  gauge_health_score_ = &metrics_.gauge("serve.health.score");
  gauge_health_score_->set(1.0);
  gauge_energy_total_ = &metrics_.gauge("serve.energy_pj.total");
  hist_latency_total_ = &metrics_.histogram("serve.latency.total_us");
  hist_latency_queue_ = &metrics_.histogram("serve.latency.queue_us");
  hist_latency_compute_ = &metrics_.histogram("serve.latency.compute_us");
  batcher_.bind_metrics(&metrics_.histogram("serve.batch_size"),
                        &metrics_.gauge("serve.queue_depth"));
  const std::size_t workers = config_.workers;
  // Census-price one behavioural request (the behavioural path has no
  // electrical events to measure; the tiled rungs measure instead).
  if (config_.backend != Backend::kTiled && config_.account_energy &&
      !model.arch.layers.empty()) {
    core::CensusConfig census = config_.census;
    census.mc_passes = config_.mc_samples;
    const energy::EnergyLedger ledger =
        core::inference_census(model.arch, model.method, census);
    census_energy_pj_ = ledger.total_energy(energy::default_energy_params());
  }
  if (config_.fault.enabled) {
    injector_ = std::make_shared<FaultInjector>(config_.fault);
  }
  // Worker 0's backend is built from the model; the rest are clone()s of
  // its programmed state — identical bits without re-running programming.
  backends_.reserve(workers);
  backends_.push_back(make_backend(model));
  for (std::size_t w = 1; w < workers; ++w) {
    backends_.push_back(backends_.front()->clone());
  }
  if (config_.fault.enabled || config_.supervision.enabled ||
      config_.health.enabled) {
    // Crash/stall recovery re-clones a faulted worker's backend from this
    // pristine replica (a FaultyBackend clone shares the global injector,
    // so a restarted worker stays on the fault schedule). Health
    // monitoring keeps it too: a heal that cannot restore spec (spares
    // exhausted) falls back to the same re-clone path. Only kept when
    // restarts can happen — it costs a replica of memory.
    prototype_ = backends_.front()->clone();
  }
  if (tracer_.enabled()) {
    // clone() does not propagate the tracer; attach it per replica so
    // every worker's rung/tile spans land in one trace.
    for (auto& backend : backends_) {
      backend->set_tracer(&tracer_);
    }
  }
  // clone() does not propagate metrics either; bind per replica (shared
  // cores — the breaker, the injector — bind idempotently).
  for (auto& backend : backends_) {
    backend->bind_metrics(&metrics_);
  }
  inflight_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    inflight_.push_back(std::make_unique<InFlight>());
  }
  threads_.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
    if (config_.supervision.enabled) {
      supervisor_ = std::thread([this] { supervisor_loop(); });
    }
  } catch (...) {
    // Thread spawn failed partway: release the already-started workers
    // (they would otherwise block in pop_batch forever) and join them, so
    // the exception propagates instead of ~thread calling std::terminate.
    batcher_.close();
    for (auto& thread : threads_) {
      if (thread.joinable()) {
        thread.join();
      }
    }
    throw;
  }
}

Runtime::~Runtime() { shutdown(); }

void Runtime::shed_queue() {
  std::vector<Request> shed = batcher_.shed_pending();
  if (shed.empty()) {
    return;
  }
  const std::size_t depth = shed.size();
  for (auto& request : shed) {
    ctr_shed_->inc();
    ctr_shed_shutdown_->inc();
    ctr_drain_shed_->inc();
    request.promise.set_exception(std::make_exception_ptr(
        OverloadError(ShedReason::kShutdown, 0.0, depth)));
  }
}

void Runtime::shutdown() { shutdown(ShutdownOptions{}); }

void Runtime::shutdown(const ShutdownOptions& options) {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  if (!options.drain) {
    // Fast shutdown: the backlog fails typed instead of being served.
    // Batches already on workers still finish (a promise, once popped,
    // is the worker's to settle). Shed BEFORE close — close() releases
    // every pending request to the blocked workers, so shedding first
    // keeps "queued at shutdown" deterministic — then sweep once more
    // for any submission that raced between the two.
    shed_queue();
    batcher_.close();
    shed_queue();
  } else if (options.drain_timeout.count() > 0) {
    batcher_.close();
    // Bounded drain: give the workers the budget, then shed the rest.
    const auto give_up =
        std::chrono::steady_clock::now() + options.drain_timeout;
    while (batcher_.pending() > 0 &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    shed_queue();
  } else {
    batcher_.close();  // full drain: workers serve everything admitted
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  // Supervisor stops last: a stall during the drain still gets rescued.
  {
    std::lock_guard<std::mutex> stop(supervisor_mutex_);
    supervisor_stop_ = true;
  }
  supervisor_cv_.notify_all();
  if (supervisor_.joinable()) {
    supervisor_.join();
  }
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features) {
  const std::uint64_t id = next_request_.fetch_add(1);
  return submit_with_id(id, std::move(features),
                        request_stream_seed(config_.seed, id),
                        config_.default_deadline);
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features,
                                              std::uint64_t request_seed) {
  return submit_with_id(next_request_.fetch_add(1), std::move(features),
                        request_seed, config_.default_deadline);
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features,
                                              std::uint64_t request_seed,
                                              std::chrono::microseconds deadline) {
  return submit_with_id(next_request_.fetch_add(1), std::move(features),
                        request_seed, deadline);
}

std::future<ServedPrediction> Runtime::submit_with_id(std::uint64_t id,
                                                      std::vector<float> features,
                                                      std::uint64_t request_seed,
                                                      std::chrono::microseconds deadline) {
  Request request;
  request.id = id;
  request.features = std::move(features);
  request.seed = request_seed;
  request.enqueued = std::chrono::steady_clock::now();
  if (deadline.count() > 0) {
    request.deadline = request.enqueued + deadline;
  }
  std::future<ServedPrediction> future = request.promise.get_future();
  const std::size_t depth = batcher_.pending();
  if (config_.max_queue_depth > 0 && depth >= config_.max_queue_depth) {
    // Admission control: shed instead of queueing — the future resolves
    // immediately with a machine-readable OverloadError (reason + a
    // retry-after hint from the latency histogram) and the caller can
    // back off programmatically.
    ctr_shed_->inc();
    ctr_shed_queue_full_->inc();
    request.promise.set_exception(std::make_exception_ptr(
        OverloadError(ShedReason::kQueueFull, retry_after_hint(), depth)));
    return future;
  }
  try {
    batcher_.push(std::move(request));  // rejects after shutdown()
  } catch (const std::runtime_error&) {
    // Post-shutdown submission: classify as a shed (reason kShutdown, no
    // point retrying) and rethrow the typed error to the submitter. The
    // batcher already failed the request's promise.
    ctr_shed_->inc();
    ctr_shed_shutdown_->inc();
    throw OverloadError(ShedReason::kShutdown, 0.0, depth);
  }
  return future;
}

ServedPrediction Runtime::predict(const std::vector<float>& features) {
  return submit(features).get();
}

double Runtime::retry_after_hint() const {
  // A client retrying before the oldest queued request could possibly
  // complete is wasted work: floor the hint at the linger budget (and an
  // absolute 100us) so a cold histogram (or one that has only seen
  // sub-floor latencies) still yields a sane back-off.
  const double floor_us = std::max(
      kRetryAfterFloorUs,
      std::chrono::duration<double, std::micro>(config_.batcher.max_linger).count());
  return std::max(floor_us, hist_latency_total_->quantile(0.50));
}

RuntimeStats Runtime::stats() const {
  RuntimeStats out;
  out.requests = ctr_requests_->value();
  out.batches = ctr_batches_->value();
  out.accepted = ctr_accepted_->value();
  out.abstained = ctr_abstained_->value();
  out.shed = ctr_shed_->value();
  out.shed_queue_full = ctr_shed_queue_full_->value();
  out.shed_shutdown = ctr_shed_shutdown_->value();
  out.escalated = ctr_escalated_->value();
  out.degraded = ctr_degraded_->value();
  out.deadline_expired = ctr_deadline_->value();
  out.requeued = ctr_requeued_->value();
  out.worker_restarts = ctr_restarts_->value();
  out.worker_stalls = ctr_worker_stalls_->value();
  out.health_probes = ctr_health_probes_->value();
  out.health_failures = ctr_health_failures_->value();
  out.heals = ctr_heals_->value();
  out.quarantines = ctr_quarantines_->value();
  out.health_score = gauge_health_score_->value();
  out.mean_batch_size =
      out.batches == 0 ? 0.0
                       : static_cast<double>(out.requests) /
                             static_cast<double>(out.batches);
  out.total_energy_pj = gauge_energy_total_->value();
  const obs::HistogramSnapshot compute = hist_latency_compute_->snapshot();
  out.total_compute_us = compute.sum;
  out.queue_depth = batcher_.pending();
  const obs::HistogramSnapshot latency = hist_latency_total_->snapshot();
  out.window_p50_us = latency.quantile(0.50);
  out.window_p99_us = latency.quantile(0.99);
  return out;
}

xbar::DeltaStats Runtime::delta_stats() const {
  xbar::DeltaStats stats;
  for (const auto& backend : backends_) {
    stats += backend->delta_stats();
  }
  return stats;
}

void Runtime::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::vector<Request> batch = batcher_.pop_batch();
    if (batch.empty()) {
      return;  // closed and drained
    }
    ctr_batches_->inc();
    if (!serve_batch(worker_index, std::move(batch))) {
      // The backend faulted (crash) or was deposed mid-stall: replace it
      // before touching another batch. Any requests it stranded were
      // already re-queued, so recovery costs a clone, never a request.
      restart_backend(worker_index);
    }
    // Health monitoring runs BETWEEN batches on the worker's own thread:
    // queued requests wait out a probe/heal, they are never dropped.
    maybe_probe(worker_index);
  }
}

void Runtime::restart_backend(std::size_t worker_index) {
  if (prototype_ == nullptr) {
    return;  // no restart capability configured; keep the old instance
  }
  backends_[worker_index] = prototype_->clone();
  if (tracer_.enabled()) {
    backends_[worker_index]->set_tracer(&tracer_);
  }
  backends_[worker_index]->bind_metrics(&metrics_);
  ctr_restarts_->inc();
}

namespace {

/// Unwrap the fault decorator (if mounted at the worker seam) and find
/// the cascade, so a failed probe can trip the shared breaker.
CascadeBackend* find_cascade(core::FidelityBackend& backend) {
  core::FidelityBackend* inner = &backend;
  if (auto* faulty = dynamic_cast<FaultyBackend*>(inner)) {
    inner = &faulty->inner();
  }
  return dynamic_cast<CascadeBackend*>(inner);
}

}  // namespace

void Runtime::maybe_probe(std::size_t worker_index) {
  if (!config_.health.enabled) {
    return;
  }
  // One global ticket per served batch: whether ticket n probes is a pure
  // function of n (same replayability contract as the fault schedule —
  // which worker draws the ticket is a scheduling accident).
  const std::uint64_t ticket = health_ticket_.fetch_add(1) + 1;
  const bool probe_due =
      config_.health.probe_every > 0 && ticket % config_.health.probe_every == 0;
  const bool recal_due =
      config_.health.recal_every > 0 && ticket % config_.health.recal_every == 0;
  core::FidelityBackend& backend = *backends_[worker_index];
  if (recal_due && !probe_due) {
    // Preventive recalibration: blind re-program against reference
    // weights + ADC offset zeroing, no probe cost.
    obs::ScopedSpan span(&tracer_, "health:recal", "health");
    const std::size_t cells = backend.recalibrate();
    ctr_recal_runs_->inc();
    ctr_recal_cells_->inc(cells);
    return;
  }
  if (!probe_due) {
    return;
  }
  xbar::HealthReport report;
  {
    obs::ScopedSpan span(&tracer_, "health:probe", "health");
    span.arg("ticket", static_cast<double>(ticket));
    span.arg("worker", static_cast<double>(worker_index));
    report = backend.check_health(config_.health.probe);
    span.arg("score", report.score());
  }
  ctr_health_probes_->inc();
  if (report.cells_checked > 0) {
    ctr_health_sweeps_->inc();
    ctr_health_cells_faulty_->inc(report.cells_faulty);
  }
  gauge_health_score_->set(report.score());
  if (report.healthy()) {
    if (recal_due) {
      obs::ScopedSpan span(&tracer_, "health:recal", "health");
      const std::size_t cells = backend.recalibrate();
      ctr_recal_runs_->inc();
      ctr_recal_cells_->inc(cells);
    }
    return;
  }
  ctr_health_failures_->inc();
  // Out of spec. First: stop trusting the electrical rung — force the
  // (shared) breaker open so would-escalate requests on EVERY worker get
  // the cheap rung's bits flagged `degraded` while this substrate heals.
  if (auto* cascade = find_cascade(backend)) {
    cascade->quarantine_expensive();
    ctr_quarantines_->inc();
  }
  if (!config_.health.auto_heal) {
    return;
  }
  xbar::HealSummary summary;
  {
    obs::ScopedSpan span(&tracer_, "health:heal", "health");
    span.arg("ticket", static_cast<double>(ticket));
    span.arg("worker", static_cast<double>(worker_index));
    summary = backend.heal(config_.health.probe);
    span.arg("healthy_after", summary.healthy_after ? 1.0 : 0.0);
  }
  ctr_heals_->inc();
  ctr_remap_rows_->inc(summary.rows_remapped);
  ctr_remap_cols_->inc(summary.cols_remapped);
  ctr_remap_exhausted_->inc(summary.lines_unrepairable);
  ctr_recal_runs_->inc();
  ctr_recal_cells_->inc(summary.cells_recalibrated);
  if (summary.healthy_after) {
    gauge_health_score_->set(1.0);
    return;
  }
  // Spares exhausted (or a defect healing cannot reach): this substrate is
  // beyond in-place repair. Fall back to the crash-recovery path — replace
  // the worker's backend with a pristine re-clone (chip swap). Queued
  // requests simply wait for the clone; none are lost.
  restart_backend(worker_index);
  if (prototype_ != nullptr) {
    gauge_health_score_->set(1.0);
  }
}

void Runtime::supervisor_loop() {
  std::unique_lock<std::mutex> lock(supervisor_mutex_);
  for (;;) {
    supervisor_cv_.wait_for(lock, config_.supervision.heartbeat);
    if (supervisor_stop_) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    for (auto& slot_ptr : inflight_) {
      InFlight& slot = *slot_ptr;
      std::vector<Request> rescue;
      {
        std::lock_guard<std::mutex> slot_lock(slot.mutex);
        if (!slot.busy || slot.deposed ||
            now - slot.started < config_.supervision.stall_timeout) {
          continue;
        }
        // Stalled: depose the worker and steal its unanswered requests.
        // done[i] = 1 transfers promise ownership to us, so the worker —
        // if it ever wakes inside the forward — publishes nothing.
        for (std::size_t i = 0; i < slot.requests.size(); ++i) {
          if (slot.done[i] != 0) {
            continue;
          }
          slot.done[i] = 1;
          Request& request = slot.requests[i];
          if (request.retries == 0) {
            request.retries = 1;
            rescue.push_back(std::move(request));
          } else {
            // Stranded twice: stop gambling worker time on it.
            request.promise.set_exception(
                std::make_exception_ptr(std::runtime_error(
                    "Runtime: request abandoned after repeated worker "
                    "stalls")));
          }
        }
        slot.deposed = true;
        ctr_worker_stalls_->inc();
      }
      if (!rescue.empty()) {
        ctr_requeued_->inc(rescue.size());
        batcher_.requeue(std::move(rescue));
      }
    }
  }
}

void Runtime::publish_prediction(Request& request,
                                 const core::Prediction& prediction,
                                 std::chrono::steady_clock::time_point popped,
                                 std::chrono::steady_clock::time_point compute_begin,
                                 std::chrono::steady_clock::time_point compute_end,
                                 double compute_share_us, double energy_pj,
                                 bool escalated, bool degraded,
                                 std::size_t batch_size,
                                 std::size_t worker_index) {
  const double queue_us = to_us(popped - request.enqueued);
  const double total_us = to_us(compute_end - request.enqueued);
  ServedPrediction served;
  served.request_id = request.id;
  served.escalated = escalated;
  served.degraded = degraded;
  served.probs.assign(prediction.mean_probs.data().begin(),
                      prediction.mean_probs.data().end());
  served.predicted_class = prediction.predicted_class().front();
  served.confidence = served.probs[served.predicted_class];
  served.entropy = prediction.entropy.front();
  served.mutual_info = prediction.mutual_info.front();
  // Per-request spans land on a synthetic per-request track so one
  // request's queue/forward/policy intervals nest cleanly even when its
  // batch companions interleave on the worker thread.
  const bool sampled = tracer_.sampled(request.id);
  const std::uint64_t track = obs::Tracer::kRequestTrackBase + request.id;
  const double policy_begin_us = sampled ? tracer_.now_us() : 0.0;
  const SelectivePolicy::Decision decision =
      policy_.decide(served.confidence, served.entropy, served.mutual_info);
  if (sampled) {
    tracer_.record({"policy", "serve", policy_begin_us, tracer_.now_us(), track,
                    {{"accepted", decision.accepted ? 1.0 : 0.0},
                     {"score", decision.score}},
                    {}});
  }
  served.accepted = decision.accepted;
  served.policy_score = decision.score;
  served.mc_samples = config_.mc_samples;
  served.queue_latency_us = queue_us;
  served.compute_latency_us = compute_share_us;
  served.total_latency_us = total_us;
  served.energy_pj = energy_pj;
  served.batch_size = batch_size;
  served.worker = worker_index;
  ctr_requests_->inc();
  (served.accepted ? ctr_accepted_ : ctr_abstained_)->inc();
  if (escalated) {
    ctr_escalated_->inc();
  }
  if (degraded) {
    ctr_degraded_->inc();
  }
  gauge_energy_total_->add(served.energy_pj);
  hist_latency_total_->record(total_us);
  hist_latency_queue_->record(queue_us);
  hist_latency_compute_->record(compute_share_us);
  if (sampled) {
    tracer_.record({"queue", "serve", tracer_.to_us(request.enqueued),
                    tracer_.to_us(popped), track, {}, {}});
    tracer_.record({"forward", "serve", tracer_.to_us(compute_begin),
                    tracer_.to_us(compute_end), track,
                    {{"escalated", escalated ? 1.0 : 0.0},
                     {"batch_size", static_cast<double>(batch_size)},
                     {"worker", static_cast<double>(worker_index)}},
                    {}});
    // The request span closes at fulfillment time (just below), covering
    // enqueue -> reply end to end.
    tracer_.record({"request", "serve", tracer_.to_us(request.enqueued),
                    tracer_.now_us(), track,
                    {{"id", static_cast<double>(request.id)}},
                    {{"backend", backends_[worker_index]->name()}}});
  }
  request.promise.set_value(std::move(served));
}

void Runtime::fold_energy(const energy::EnergyLedger& ledger) {
  const energy::EnergyParams& params = energy::default_energy_params();
  for (std::size_t c = 0; c < static_cast<std::size_t>(energy::Component::kCount_);
       ++c) {
    const auto component = static_cast<energy::Component>(c);
    const std::uint64_t events = ledger.count(component);
    if (events == 0) {
      continue;
    }
    const std::string name = energy::component_name(component);
    metrics_.counter("energy.events." + name).inc(events);
    metrics_.gauge("energy.pj." + name)
        .add(ledger.component_energy(component, params));
  }
}

namespace {

/// Is a group failure worth a (single) retry on a fresh backend? Shape
/// and argument errors are deterministic — retrying replays them — so
/// they fail fast; everything else (InjectedFault, backend exceptions)
/// is treated as a worker fault.
bool retryable_failure(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::invalid_argument&) {
    return false;
  } catch (...) {
    return true;
  }
}

}  // namespace

bool Runtime::serve_batch(std::size_t worker_index, std::vector<Request> batch) {
  const auto popped = std::chrono::steady_clock::now();
  const std::size_t batch_rows = batch.size();
  core::FidelityBackend& backend = *backends_[worker_index];
  InFlight& slot = *inflight_[worker_index];
  // Worker-track span covering the whole pop (rung spans from the backend
  // nest inside it on the same thread track).
  obs::ScopedSpan batch_span(&tracer_, "batch", "serve");
  batch_span.arg("rows", static_cast<double>(batch_rows));
  batch_span.arg("worker", static_cast<double>(worker_index));
  // Group by feature count, preserving arrival order inside each group: a
  // wrong-sized submission then fails with its own shape error without
  // poisoning well-formed companions in the same pop.
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> groups;
  {
    // Park the batch in the worker's in-flight slot so the supervisor can
    // see (and rescue) it, and fail already-expired deadlines before any
    // forward work. done[i] is the promise-ownership bit from here on.
    std::lock_guard<std::mutex> slot_lock(slot.mutex);
    slot.requests = std::move(batch);
    slot.done.assign(slot.requests.size(), 0);
    slot.started = popped;
    slot.busy = true;
    slot.deposed = false;
    for (std::size_t r = 0; r < slot.requests.size(); ++r) {
      Request& request = slot.requests[r];
      if (request.deadline != std::chrono::steady_clock::time_point{} &&
          popped >= request.deadline) {
        slot.done[r] = 1;
        ctr_deadline_->inc();
        request.promise.set_exception(std::make_exception_ptr(
            DeadlineExceeded(request.id, to_us(popped - request.deadline))));
        continue;
      }
      const std::size_t f = request.features.size();
      auto it = std::find_if(groups.begin(), groups.end(),
                             [f](const auto& g) { return g.first == f; });
      if (it == groups.end()) {
        groups.push_back({f, {r}});
      } else {
        it->second.push_back(r);
      }
    }
  }

  bool healthy = true;
  for (auto& [features, members] : groups) {
    std::vector<std::size_t> live;  ///< members still unsettled at build time
    std::exception_ptr error;
    std::optional<core::BackendBatch> answered;
    std::chrono::steady_clock::time_point compute_begin;
    std::chrono::steady_clock::time_point compute_end;
    try {
      const std::size_t rows = members.size();
      nn::Tensor inputs({rows, features});
      std::vector<std::uint64_t> seeds(rows);
      {
        // Snapshot features/seeds under the lock, skipping members the
        // supervisor already rescued (their Request slots are moved-from).
        std::lock_guard<std::mutex> slot_lock(slot.mutex);
        for (const std::size_t r : members) {
          if (slot.done[r] == 0) {
            live.push_back(r);
          }
        }
        if (live.size() != rows) {
          inputs = nn::Tensor({live.size(), features});
          seeds.resize(live.size());
        }
        for (std::size_t b = 0; b < live.size(); ++b) {
          const Request& request = slot.requests[live[b]];
          std::copy(request.features.begin(), request.features.end(),
                    inputs.data().begin() +
                        static_cast<std::ptrdiff_t>(b * features));
          seeds[b] = request.seed;
        }
      }
      if (live.empty()) {
        continue;
      }
      // Per-component energy fold: hand the backend a batch ledger when it
      // has electrical events to merge (the behavioural path has none —
      // its energy is the census constant already in energy_pj).
      std::optional<energy::EnergyLedger> batch_ledger;
      if (config_.account_energy && config_.backend != Backend::kBehavioral) {
        batch_ledger.emplace(config_.tile.adc_bits);
      }
      compute_begin = std::chrono::steady_clock::now();
      // One batched forward answers the whole group (UNLOCKED — this is
      // where a fault plan stalls or crashes us); per-request streams
      // derive from the request seeds, so the grouping is invisible in
      // the results. Energy comes back per request (census-priced,
      // measured, or cascade-summed, by backend).
      answered.emplace(backend.forward(
          inputs, seeds, batch_ledger ? &*batch_ledger : nullptr));
      compute_end = std::chrono::steady_clock::now();
      if (batch_ledger) {
        fold_energy(*batch_ledger);
      }
    } catch (...) {
      error = std::current_exception();
    }

    if (!error) {
      if (live.empty()) {
        continue;
      }
      // The batched forward computes all rows at once; each request is
      // attributed its amortized share of the group's compute time.
      const double compute_share =
          to_us(compute_end - compute_begin) / static_cast<double>(live.size());
      std::lock_guard<std::mutex> slot_lock(slot.mutex);
      for (std::size_t b = 0; b < live.size(); ++b) {
        const std::size_t r = live[b];
        if (slot.done[r] != 0) {
          continue;  // rescued mid-forward: the answer is theirs now
        }
        slot.done[r] = 1;
        const bool degraded =
            b < answered->degraded.size() && answered->degraded[b] != 0;
        publish_prediction(slot.requests[r], answered->predictions[b], popped,
                           compute_begin, compute_end, compute_share,
                           answered->energy_pj[b],
                           answered->escalated[b] != 0, degraded, batch_rows,
                           worker_index);
      }
      continue;
    }

    // The group failed. Retryable failures re-queue each first-time
    // victim exactly once (same request seed — the retried answer is
    // bitwise the answer this forward would have produced); deterministic
    // failures and second-time victims fail to the client.
    const bool retry = retryable_failure(error);
    if (retry) {
      healthy = false;  // the backend is suspect: re-clone before reuse
    }
    std::vector<Request> requeue;
    {
      std::lock_guard<std::mutex> slot_lock(slot.mutex);
      for (const std::size_t r : live) {
        if (slot.done[r] != 0) {
          continue;
        }
        slot.done[r] = 1;
        Request& request = slot.requests[r];
        if (retry && request.retries == 0) {
          request.retries = 1;
          requeue.push_back(std::move(request));
        } else {
          request.promise.set_exception(error);
        }
      }
    }
    if (!requeue.empty()) {
      ctr_requeued_->inc(requeue.size());
      // Back at the queue head BEFORE this worker returns to pop_batch:
      // pop_batch only reports "drained" when the queue is truly empty,
      // so a re-queued request can never be lost to a racing shutdown.
      batcher_.requeue(std::move(requeue));
    }
  }

  {
    std::lock_guard<std::mutex> slot_lock(slot.mutex);
    slot.busy = false;
    if (slot.deposed) {
      healthy = false;  // we were declared stalled: re-clone our backend
    }
    slot.requests.clear();
    slot.done.clear();
  }
  return healthy;
}

}  // namespace neuspin::serve
