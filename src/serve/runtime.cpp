#include "serve/runtime.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/bayesian.h"
#include "core/thread_pool.h"
#include "nn/model.h"

namespace neuspin::serve {

namespace {

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Linear-interpolated percentile of an unsorted sample (copied; the
/// rolling window is small by construction).
double percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kBehavioral:
      return "behavioral";
    case Backend::kTiled:
      return "tiled";
    case Backend::kCascade:
      return "cascade";
  }
  return "unknown";
}

std::string shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

OverloadError::OverloadError(ShedReason reason, double retry_after_us,
                             std::size_t queue_depth)
    : std::runtime_error("Runtime: request shed (" + shed_reason_name(reason) +
                         "), queue depth " + std::to_string(queue_depth) +
                         ", retry after ~" +
                         std::to_string(static_cast<long long>(retry_after_us)) +
                         "us"),
      reason_(reason),
      retry_after_us_(retry_after_us),
      queue_depth_(queue_depth) {}

std::uint64_t Runtime::request_stream_seed(std::uint64_t base_seed,
                                           std::uint64_t request_index) {
  return nn::mix_seed(base_seed, request_index);
}

namespace {

/// Resolve every derived knob once, before the member initializers run:
/// the worker count (0 -> hardware) and the batcher's consumer count
/// (always the worker count, whatever the caller set). config() then
/// reports exactly what the runtime is doing.
RuntimeConfig normalized(RuntimeConfig config) {
  config.workers = core::resolve_worker_count(config.workers);
  config.batcher.consumers = config.workers;
  config.fused_workers = core::resolve_worker_count(config.fused_workers);
  return config;
}

}  // namespace

std::unique_ptr<core::FidelityBackend> Runtime::make_backend(
    const core::BuiltModel& model) const {
  const auto behavioral = [&] {
    core::BehavioralBackendConfig backend;
    backend.mc_samples = config_.mc_samples;
    backend.fused = config_.fused_batching;
    backend.team_size = config_.fused_workers;
    backend.energy_pj_per_request = census_energy_pj_;
    return std::make_unique<core::BehavioralBackend>(model, backend);
  };
  const auto tiled = [&] {
    core::TiledBackendConfig backend;
    backend.tile = config_.tile;
    backend.tile_seed = config_.tile_seed;
    backend.mc_samples = config_.mc_samples;
    backend.spindrop_p = config_.spindrop_p;
    backend.measure_energy = config_.account_energy;
    // One mutable staging clone feeds the replica build (the TiledMlp
    // constructor only reads the weights and keeps no reference).
    core::BuiltModel staging = model.clone();
    return std::make_unique<core::TiledBackend>(staging.net, backend);
  };
  switch (config_.backend) {
    case Backend::kBehavioral:
      return behavioral();
    case Backend::kTiled:
      return tiled();
    case Backend::kCascade:
      return std::make_unique<CascadeBackend>(behavioral(), tiled(),
                                              config_.cascade);
  }
  throw std::invalid_argument("Runtime: unknown backend");
}

Runtime::Runtime(const core::BuiltModel& model, const RuntimeConfig& config)
    : config_(normalized(config)),
      policy_(config_.policy),
      batcher_(config_.batcher) {
  if (config_.mc_samples == 0) {
    throw std::invalid_argument("Runtime: need at least one MC sample");
  }
  if (config_.latency_window == 0) {
    throw std::invalid_argument("Runtime: latency_window must be at least 1");
  }
  latency_ring_.resize(config_.latency_window, 0.0);
  const std::size_t workers = config_.workers;
  // Census-price one behavioural request (the behavioural path has no
  // electrical events to measure; the tiled rungs measure instead).
  if (config_.backend != Backend::kTiled && config_.account_energy &&
      !model.arch.layers.empty()) {
    core::CensusConfig census = config_.census;
    census.mc_passes = config_.mc_samples;
    const energy::EnergyLedger ledger =
        core::inference_census(model.arch, model.method, census);
    census_energy_pj_ = ledger.total_energy(energy::default_energy_params());
  }
  // Worker 0's backend is built from the model; the rest are clone()s of
  // its programmed state — identical bits without re-running programming.
  backends_.reserve(workers);
  backends_.push_back(make_backend(model));
  for (std::size_t w = 1; w < workers; ++w) {
    backends_.push_back(backends_.front()->clone());
  }
  threads_.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // Thread spawn failed partway: release the already-started workers
    // (they would otherwise block in pop_batch forever) and join them, so
    // the exception propagates instead of ~thread calling std::terminate.
    batcher_.close();
    for (auto& thread : threads_) {
      if (thread.joinable()) {
        thread.join();
      }
    }
    throw;
  }
}

Runtime::~Runtime() { shutdown(); }

void Runtime::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  batcher_.close();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features) {
  const std::uint64_t id = next_request_.fetch_add(1);
  return submit_with_id(id, std::move(features),
                        request_stream_seed(config_.seed, id));
}

std::future<ServedPrediction> Runtime::submit(std::vector<float> features,
                                              std::uint64_t request_seed) {
  return submit_with_id(next_request_.fetch_add(1), std::move(features),
                        request_seed);
}

std::future<ServedPrediction> Runtime::submit_with_id(std::uint64_t id,
                                                      std::vector<float> features,
                                                      std::uint64_t request_seed) {
  Request request;
  request.id = id;
  request.features = std::move(features);
  request.seed = request_seed;
  request.enqueued = std::chrono::steady_clock::now();
  std::future<ServedPrediction> future = request.promise.get_future();
  const std::size_t depth = batcher_.pending();
  if (config_.max_queue_depth > 0 && depth >= config_.max_queue_depth) {
    // Admission control: shed instead of queueing — the future resolves
    // immediately with a machine-readable OverloadError (reason + a
    // retry-after hint from the rolling latency window) and the caller
    // can back off programmatically.
    double retry_after_us = 0.0;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed;
      ++stats_.shed_queue_full;
      retry_after_us = window_p50_locked();
    }
    request.promise.set_exception(std::make_exception_ptr(
        OverloadError(ShedReason::kQueueFull, retry_after_us, depth)));
    return future;
  }
  try {
    batcher_.push(std::move(request));  // rejects after shutdown()
  } catch (const std::runtime_error&) {
    // Post-shutdown submission: classify as a shed (reason kShutdown, no
    // point retrying) and rethrow the typed error to the submitter. The
    // batcher already failed the request's promise.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed;
      ++stats_.shed_shutdown;
    }
    throw OverloadError(ShedReason::kShutdown, 0.0, depth);
  }
  return future;
}

ServedPrediction Runtime::predict(const std::vector<float>& features) {
  return submit(features).get();
}

void Runtime::record_latency_locked(double total_us) {
  latency_ring_[latency_next_] = total_us;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

double Runtime::window_p50_locked() const {
  if (latency_count_ == 0) {
    return 0.0;
  }
  std::vector<double> window(latency_ring_.begin(),
                             latency_ring_.begin() +
                                 static_cast<std::ptrdiff_t>(latency_count_));
  return percentile(std::move(window), 0.50);
}

RuntimeStats Runtime::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  RuntimeStats out = stats_;
  out.mean_batch_size =
      out.batches == 0 ? 0.0
                       : static_cast<double>(out.requests) /
                             static_cast<double>(out.batches);
  out.queue_depth = batcher_.pending();
  if (latency_count_ > 0) {
    std::vector<double> window(latency_ring_.begin(),
                               latency_ring_.begin() +
                                   static_cast<std::ptrdiff_t>(latency_count_));
    out.window_p50_us = percentile(window, 0.50);
    out.window_p99_us = percentile(std::move(window), 0.99);
  }
  return out;
}

xbar::DeltaStats Runtime::delta_stats() const {
  xbar::DeltaStats stats;
  for (const auto& backend : backends_) {
    stats += backend->delta_stats();
  }
  return stats;
}

void Runtime::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::vector<Request> batch = batcher_.pop_batch();
    if (batch.empty()) {
      return;  // closed and drained
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
    }
    serve_batch(worker_index, batch);
  }
}

void Runtime::publish_prediction(Request& request,
                                 const core::Prediction& prediction,
                                 double queue_us, double compute_us,
                                 double total_us, double energy_pj,
                                 bool escalated, std::size_t batch_size,
                                 std::size_t worker_index) {
  ServedPrediction served;
  served.request_id = request.id;
  served.escalated = escalated;
  served.probs.assign(prediction.mean_probs.data().begin(),
                      prediction.mean_probs.data().end());
  served.predicted_class = prediction.predicted_class().front();
  served.confidence = served.probs[served.predicted_class];
  served.entropy = prediction.entropy.front();
  served.mutual_info = prediction.mutual_info.front();
  const SelectivePolicy::Decision decision =
      policy_.decide(served.confidence, served.entropy, served.mutual_info);
  served.accepted = decision.accepted;
  served.policy_score = decision.score;
  served.mc_samples = config_.mc_samples;
  served.queue_latency_us = queue_us;
  served.compute_latency_us = compute_us;
  served.total_latency_us = total_us;
  served.energy_pj = energy_pj;
  served.batch_size = batch_size;
  served.worker = worker_index;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    if (served.accepted) {
      ++stats_.accepted;
    } else {
      ++stats_.abstained;
    }
    if (escalated) {
      ++stats_.escalated;
    }
    stats_.total_energy_pj += served.energy_pj;
    stats_.total_compute_us += served.compute_latency_us;
    record_latency_locked(served.total_latency_us);
  }
  request.promise.set_value(std::move(served));
}

void Runtime::serve_batch(std::size_t worker_index, std::vector<Request>& batch) {
  const auto popped = std::chrono::steady_clock::now();
  core::FidelityBackend& backend = *backends_[worker_index];
  // Group by feature count, preserving arrival order inside each group: a
  // wrong-sized submission then fails with its own shape error without
  // poisoning well-formed companions in the same pop.
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> groups;
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const std::size_t f = batch[r].features.size();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [f](const auto& g) { return g.first == f; });
    if (it == groups.end()) {
      groups.push_back({f, {r}});
    } else {
      it->second.push_back(r);
    }
  }

  for (auto& [features, members] : groups) {
    // Count of members whose promise is already satisfied: on an error we
    // must fail only the remainder — set_exception on a fulfilled promise
    // would itself throw and unwind the worker thread.
    std::size_t fulfilled = 0;
    try {
      const std::size_t rows = members.size();
      nn::Tensor inputs({rows, features});
      std::vector<std::uint64_t> seeds(rows);
      for (std::size_t b = 0; b < rows; ++b) {
        const Request& request = batch[members[b]];
        std::copy(request.features.begin(), request.features.end(),
                  inputs.data().begin() +
                      static_cast<std::ptrdiff_t>(b * features));
        seeds[b] = request.seed;
      }
      const auto compute_begin = std::chrono::steady_clock::now();
      // One batched forward answers the whole group; per-request streams
      // derive from the request seeds, so the grouping is invisible in
      // the results. Energy comes back per request (census-priced,
      // measured, or cascade-summed, by backend).
      const core::BackendBatch answered = backend.forward(inputs, seeds, nullptr);
      const auto compute_end = std::chrono::steady_clock::now();
      // The batched forward computes all rows at once; each request is
      // attributed its amortized share of the group's compute time.
      const double compute_share =
          to_us(compute_end - compute_begin) / static_cast<double>(rows);

      for (std::size_t b = 0; b < rows; ++b) {
        Request& request = batch[members[b]];
        publish_prediction(request, answered.predictions[b],
                           to_us(popped - request.enqueued), compute_share,
                           to_us(compute_end - request.enqueued),
                           answered.energy_pj[b], answered.escalated[b] != 0,
                           batch.size(), worker_index);
        ++fulfilled;
      }
    } catch (...) {
      const auto error = std::current_exception();
      for (std::size_t b = fulfilled; b < members.size(); ++b) {
        batch[members[b]].promise.set_exception(error);
      }
    }
  }
}

}  // namespace neuspin::serve
