// Deterministic fault injection and client-side retry for the serving
// runtime (ROADMAP: robustness).
//
// Chaos testing a nondeterministic server proves nothing: a failure seen
// once under random faults cannot be replayed, so it cannot be debugged or
// pinned in a test. This module makes the fault schedule itself part of
// the determinism contract. Every fault decision is a pure function of
// (FaultPlan::seed, global forward ticket): forward call n across ALL
// worker replicas draws mix_seed(seed, n) and compares the resulting
// uniform against the plan's probabilities. Same plan, same workload →
// same crashes, same stalls, same defect bursts, regardless of which
// worker happens to draw ticket n. Combined with the per-request seed
// contract (a request's bits do not depend on batch or worker), a chaos
// run is exactly replayable AND every completed answer is bitwise equal
// to the fault-free run's.
//
// The pieces:
//  * FaultPlan / FaultInjector — the seeded schedule and its shared,
//    thread-safe ticket counter (shared across backend clones so the
//    schedule is global, not per-worker).
//  * FaultyBackend — a FidelityBackend decorator that consults the
//    injector before delegating: it may throw InjectedFault (simulated
//    worker crash), sleep (stall, for supervision testing), or inject a
//    defect burst into the wrapped substrate.
//  * RetryPolicy / predict_with_retry — the client half: exponential
//    backoff with deterministic jitter honoring the runtime's
//    retry_after_us hint, retrying ONLY load shedding (kQueueFull).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fidelity.h"
#include "device/defects.h"
#include "serve/policy.h"

namespace neuspin::obs {
class Counter;   // obs/metrics.h
class Registry;  // obs/metrics.h
}  // namespace neuspin::obs

namespace neuspin::serve {

class Runtime;  // serve/runtime.h

/// A fault injected into a forward call by FaultyBackend (the simulated
/// worker crash). Retryable: the runtime re-queues the victim batch once.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(std::uint64_t ticket);
  [[nodiscard]] std::uint64_t ticket() const { return ticket_; }

 private:
  std::uint64_t ticket_;
};

/// The seeded fault schedule. Each forward call takes one global ticket n
/// and draws u = uniform(mix_seed(seed, n)); the bands [0, crash_p),
/// [crash_p, crash_p + stall_p), [crash_p + stall_p, + defect_p) select
/// the fault. Probabilities must sum to at most 1.
struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 1;  ///< schedule seed — same seed, same schedule
  double crash_p = 0.0;    ///< throw InjectedFault before forwarding
  double stall_p = 0.0;    ///< sleep `stall` before forwarding
  std::chrono::microseconds stall{2000};
  double defect_p = 0.0;   ///< inject `defect_rates` into the substrate
  device::DefectRates defect_rates{};
  /// Aim defect bursts at ONE tile (TiledMlp indexing: conv stages first,
  /// then dense layers). Negative targets the whole substrate. Chaos tests
  /// use this to hit a known tile and measure detection latency.
  int defect_tile = -1;
  /// Fourth band: apply one conductance-drift increment of
  /// `drift_magnitude` to the substrate (progressive aging under load).
  double drift_p = 0.0;
  double drift_magnitude = 0.01;
  /// Tickets below this never fault (let the system warm up).
  std::uint64_t warmup = 0;
  /// Tickets at or above this never fault (gives benches a clean recovery
  /// window at the end of a chaos run).
  std::uint64_t stop_after = ~0ull;
};

/// Thread-safe realization of a FaultPlan: the shared ticket counter plus
/// fault tallies. One injector is shared (shared_ptr) by a FaultyBackend
/// and all its clones, so the schedule is global per plan — which worker
/// draws ticket n is a scheduling accident, but whether ticket n faults
/// is not.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// What one forward call should suffer.
  enum class Action : std::uint8_t { kNone, kCrash, kStall, kDefectBurst, kDrift };

  struct Decision {
    Action action = Action::kNone;
    std::uint64_t ticket = 0;
    /// Seed of a defect burst or drift increment (derived from the
    /// schedule stream).
    std::uint64_t burst_seed = 0;
  };

  /// Take the next ticket and decide its fate. Pure function of
  /// (plan.seed, ticket) apart from the counter increment itself.
  [[nodiscard]] Decision next();

  /// Record instruments (idempotent; nullptr detaches). Counters:
  /// serve.fault.crashes / serve.fault.stalls / serve.fault.defect_bursts.
  void bind_metrics(obs::Registry* registry);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t tickets() const { return next_ticket_.load(); }
  [[nodiscard]] std::uint64_t crashes() const { return crashes_.load(); }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_.load(); }
  [[nodiscard]] std::uint64_t bursts() const { return bursts_.load(); }
  [[nodiscard]] std::uint64_t drifts() const { return drifts_.load(); }

 private:
  FaultPlan plan_;
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> bursts_{0};
  std::atomic<std::uint64_t> drifts_{0};
  std::atomic<obs::Counter*> ctr_crashes_{nullptr};
  std::atomic<obs::Counter*> ctr_stalls_{nullptr};
  std::atomic<obs::Counter*> ctr_bursts_{nullptr};
  std::atomic<obs::Counter*> ctr_drifts_{nullptr};
};

/// FidelityBackend decorator that consults a shared FaultInjector before
/// every forward. Clones clone the inner backend but SHARE the injector,
/// so the fault schedule spans all worker replicas. Stalls sleep on the
/// calling (worker) thread; crashes throw InjectedFault; defect bursts
/// call inject_defects on the wrapped instance only (clones keep their
/// own substrate, like real per-chip damage).
class FaultyBackend : public core::FidelityBackend {
 public:
  FaultyBackend(std::unique_ptr<core::FidelityBackend> inner,
                std::shared_ptr<FaultInjector> injector);

  [[nodiscard]] core::BackendBatch forward(
      const nn::Tensor& inputs, std::span<const std::uint64_t> request_seeds,
      energy::EnergyLedger* ledger) override;
  [[nodiscard]] std::unique_ptr<core::FidelityBackend> clone() const override;
  void reseed(std::uint64_t seed) override { inner_->reseed(seed); }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double cost_hint() const override { return inner_->cost_hint(); }
  [[nodiscard]] xbar::DeltaStats delta_stats() const override {
    return inner_->delta_stats();
  }
  void set_tracer(obs::Tracer* tracer) override;
  void inject_defects(const device::DefectRates& rates,
                      std::uint64_t seed) override {
    inner_->inject_defects(rates, seed);
  }
  void inject_defects_at(std::size_t tile_index, const device::DefectRates& rates,
                         std::uint64_t seed) override {
    inner_->inject_defects_at(tile_index, rates, seed);
  }
  void apply_drift(double magnitude, std::uint64_t seed) override {
    inner_->apply_drift(magnitude, seed);
  }
  [[nodiscard]] xbar::HealthReport check_health(
      const xbar::ProbeConfig& config) const override {
    return inner_->check_health(config);
  }
  xbar::HealSummary heal(const xbar::ProbeConfig& config) override {
    return inner_->heal(config);
  }
  std::size_t recalibrate() override { return inner_->recalibrate(); }
  void bind_metrics(obs::Registry* registry) override;

  [[nodiscard]] const FaultInjector& injector() const { return *injector_; }
  /// The wrapped backend — the health monitor unwraps the decorator to
  /// reach cascade-specific controls (quarantine).
  [[nodiscard]] core::FidelityBackend& inner() { return *inner_; }

 private:
  std::unique_ptr<core::FidelityBackend> inner_;
  std::shared_ptr<FaultInjector> injector_;
};

/// Where the runtime mounts the fault decorator.
enum class FaultSite : std::uint8_t {
  /// Wrap the whole worker backend — forwards crash/stall at the worker
  /// seam, exercising re-queue and supervision.
  kWorker,
  /// Wrap only the cascade's expensive rung — exercises the circuit
  /// breaker's degrade/half-open path. Requires BackendKind::kCascade.
  kExpensiveRung,
};

/// Client retry schedule for load-shed (OverloadError kQueueFull)
/// rejections: exponential backoff with deterministic jitter, floored by
/// the server's retry_after_us hint.
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< total tries, including the first
  std::chrono::microseconds base_backoff{200};
  std::chrono::microseconds max_backoff{50000};
  double multiplier = 2.0;
  /// Backoff is scaled by 1 + jitter * u, u deterministic in [-1, 1] from
  /// mix_seed(seed, attempt).
  double jitter = 0.1;
  std::uint64_t seed = 0x72657472ull;
};

/// Submit through `runtime` with retries: kQueueFull rejections back off
/// and retry (same request seed, so the eventual answer is bitwise the
/// no-shed answer); every other failure — kShutdown, DeadlineExceeded,
/// invalid input — propagates immediately. Throws the last OverloadError
/// when the attempts are exhausted. Returns the settled prediction.
[[nodiscard]] ServedPrediction predict_with_retry(
    Runtime& runtime, const std::vector<float>& features,
    std::uint64_t request_seed, const RetryPolicy& policy = {});

}  // namespace neuspin::serve
