// Event-counting energy ledger.
//
// Architecture models record *events* (cell reads, ADC conversions, RNG
// cycles, ...); the ledger multiplies counts by the EnergyParams cost table
// and produces per-component and total energies. Keeping raw counts (not
// pre-multiplied energy) makes ablations cheap: the same ledger can be
// re-priced under a different parameter set.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "energy/params.h"

namespace neuspin::energy {

/// Every kind of chargeable event in the architecture models.
enum class Component : std::uint8_t {
  kXbarCellRead,
  kWordlineActivation,
  kAdcConversion,     ///< priced at the ledger's ADC resolution
  kSenseAmp,
  kInputDriver,
  kRngDropoutCycle,
  kMtjWrite,
  kDigitalAdd,
  kDigitalMult,
  kSramReadWord,
  kRegisterAccess,
  kCount_,            ///< sentinel
};

[[nodiscard]] std::string component_name(Component c);

/// Counts events and prices them under an EnergyParams table.
class EnergyLedger {
 public:
  explicit EnergyLedger(std::size_t adc_bits = 8);

  /// Record `count` events of kind `c`.
  void add(Component c, std::uint64_t count);

  [[nodiscard]] std::uint64_t count(Component c) const;

  /// Energy of one component under `params`.
  [[nodiscard]] PicoJoule component_energy(Component c, const EnergyParams& params) const;

  /// Total energy under `params`.
  [[nodiscard]] PicoJoule total_energy(const EnergyParams& params) const;
  /// Total under the default parameter set.
  [[nodiscard]] PicoJoule total_energy() const;

  /// Total latency assuming the serialized schedule recorded in the counts
  /// (reads, conversions and RNG cycles do not overlap). Conservative.
  [[nodiscard]] Nanosecond total_latency(const EnergyParams& params) const;

  /// Merge another ledger's counts into this one.
  EnergyLedger& operator+=(const EnergyLedger& other);

  /// Multiply all counts (e.g. per-sample ledger -> per-batch ledger).
  EnergyLedger& operator*=(std::uint64_t factor);

  [[nodiscard]] std::size_t adc_bits() const { return adc_bits_; }
  void set_adc_bits(std::size_t bits) { adc_bits_ = bits; }

  void reset();

  /// Multi-line human-readable breakdown (component, count, energy, share).
  [[nodiscard]] std::string report(const EnergyParams& params) const;

 private:
  std::size_t adc_bits_;
  std::array<std::uint64_t, static_cast<std::size_t>(Component::kCount_)> counts_{};
};

/// Convert pJ to uJ (the unit of the paper's Table I).
[[nodiscard]] constexpr double to_microjoule(PicoJoule pj) { return pj * 1e-6; }

}  // namespace neuspin::energy
