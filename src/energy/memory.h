// Storage-footprint model (paper §III-B.1: "158.7x lower storage memory
// requirements compared to traditional methods").
//
// The footprint of a Bayesian NN depends on how its posterior is stored:
//   * binary point weights:       1 bit / weight
//   * full-precision weights:     32 bit / weight
//   * per-weight Gaussian VI:     64 bit / weight (mean + variance)
//   * deep ensembles:             members x weight storage
//   * subset-VI (NeuSpin):        1 bit / weight + 64 bit / scale entry
// plus small per-layer vectors (scales, norm parameters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace neuspin::energy {

/// Bit-level footprint of one model under a storage scheme.
struct MemoryFootprint {
  std::uint64_t weight_bits = 0;       ///< synaptic storage
  std::uint64_t scale_bits = 0;        ///< per-layer/per-channel scale vectors
  std::uint64_t variational_bits = 0;  ///< distribution parameters (mu, sigma)
  std::uint64_t norm_bits = 0;         ///< normalization parameters
  std::uint64_t other_bits = 0;        ///< anything else (arbiter state, ...)

  [[nodiscard]] std::uint64_t total_bits() const {
    return weight_bits + scale_bits + variational_bits + norm_bits + other_bits;
  }
  [[nodiscard]] double total_kib() const {
    return static_cast<double>(total_bits()) / 8.0 / 1024.0;
  }
  [[nodiscard]] std::string report() const;
};

/// Storage schemes for which footprints can be computed.
enum class StorageScheme : std::uint8_t {
  kBinaryPoint,        ///< deterministic BNN, 1 bit/weight
  kFullPrecisionPoint, ///< deterministic float NN, 32 bit/weight
  kPerWeightGaussianVi,///< classic VI: mu + sigma per weight
  kEnsemble,           ///< `ensemble_members` full-precision copies
  kSubsetVi,           ///< NeuSpin: binary weights + Gaussian scale vector
};

[[nodiscard]] std::string storage_scheme_name(StorageScheme s);

/// Shape summary a footprint is computed from.
struct ModelShape {
  std::uint64_t weight_count = 0;   ///< total synapses
  std::uint64_t scale_entries = 0;  ///< total scale-vector entries
  std::uint64_t norm_entries = 0;   ///< total normalization parameters
  std::size_t ensemble_members = 5; ///< used by kEnsemble only
};

/// Compute the footprint of `shape` under `scheme`.
[[nodiscard]] MemoryFootprint footprint(const ModelShape& shape, StorageScheme scheme);

}  // namespace neuspin::energy
