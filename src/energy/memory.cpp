#include "energy/memory.h"

#include <cstdio>
#include <stdexcept>

namespace neuspin::energy {

std::string MemoryFootprint::report() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "weights=%llu scale=%llu variational=%llu norm=%llu other=%llu "
                "total=%.2f KiB",
                static_cast<unsigned long long>(weight_bits),
                static_cast<unsigned long long>(scale_bits),
                static_cast<unsigned long long>(variational_bits),
                static_cast<unsigned long long>(norm_bits),
                static_cast<unsigned long long>(other_bits), total_kib());
  return line;
}

std::string storage_scheme_name(StorageScheme s) {
  switch (s) {
    case StorageScheme::kBinaryPoint:
      return "binary_point";
    case StorageScheme::kFullPrecisionPoint:
      return "fp32_point";
    case StorageScheme::kPerWeightGaussianVi:
      return "per_weight_gaussian_vi";
    case StorageScheme::kEnsemble:
      return "deep_ensemble";
    case StorageScheme::kSubsetVi:
      return "subset_vi";
  }
  return "unknown";
}

MemoryFootprint footprint(const ModelShape& shape, StorageScheme scheme) {
  constexpr std::uint64_t kFloatBits = 32;
  MemoryFootprint fp;
  fp.norm_bits = shape.norm_entries * kFloatBits;
  switch (scheme) {
    case StorageScheme::kBinaryPoint:
      fp.weight_bits = shape.weight_count;
      fp.scale_bits = shape.scale_entries * kFloatBits;
      break;
    case StorageScheme::kFullPrecisionPoint:
      fp.weight_bits = shape.weight_count * kFloatBits;
      fp.scale_bits = shape.scale_entries * kFloatBits;
      break;
    case StorageScheme::kPerWeightGaussianVi:
      fp.variational_bits = shape.weight_count * 2 * kFloatBits;
      fp.scale_bits = shape.scale_entries * kFloatBits;
      break;
    case StorageScheme::kEnsemble:
      if (shape.ensemble_members == 0) {
        throw std::invalid_argument("footprint: ensemble needs >= 1 member");
      }
      fp.weight_bits = shape.weight_count * kFloatBits * shape.ensemble_members;
      fp.scale_bits = shape.scale_entries * kFloatBits * shape.ensemble_members;
      fp.norm_bits *= shape.ensemble_members;
      break;
    case StorageScheme::kSubsetVi:
      fp.weight_bits = shape.weight_count;                       // binary
      fp.variational_bits = shape.scale_entries * 2 * kFloatBits; // mu + rho
      break;
  }
  return fp;
}

}  // namespace neuspin::energy
