#include "energy/accountant.h"

#include <cstdio>
#include <stdexcept>

namespace neuspin::energy {

const EnergyParams& default_energy_params() {
  static const EnergyParams kDefaults{};
  return kDefaults;
}

std::string component_name(Component c) {
  switch (c) {
    case Component::kXbarCellRead:
      return "xbar_cell_read";
    case Component::kWordlineActivation:
      return "wordline_activation";
    case Component::kAdcConversion:
      return "adc_conversion";
    case Component::kSenseAmp:
      return "sense_amp";
    case Component::kInputDriver:
      return "input_driver";
    case Component::kRngDropoutCycle:
      return "rng_dropout_cycle";
    case Component::kMtjWrite:
      return "mtj_write";
    case Component::kDigitalAdd:
      return "digital_add";
    case Component::kDigitalMult:
      return "digital_mult";
    case Component::kSramReadWord:
      return "sram_read_word";
    case Component::kRegisterAccess:
      return "register_access";
    case Component::kCount_:
      break;
  }
  return "unknown";
}

EnergyLedger::EnergyLedger(std::size_t adc_bits) : adc_bits_(adc_bits) {
  if (adc_bits == 0 || adc_bits > 16) {
    throw std::invalid_argument("EnergyLedger: ADC resolution must be 1..16 bits");
  }
}

void EnergyLedger::add(Component c, std::uint64_t count) {
  counts_[static_cast<std::size_t>(c)] += count;
}

std::uint64_t EnergyLedger::count(Component c) const {
  return counts_[static_cast<std::size_t>(c)];
}

PicoJoule EnergyLedger::component_energy(Component c, const EnergyParams& params) const {
  const double n = static_cast<double>(count(c));
  switch (c) {
    case Component::kXbarCellRead:
      return n * params.xbar_cell_read;
    case Component::kWordlineActivation:
      return n * params.wordline_activation;
    case Component::kAdcConversion:
      return n * params.adc_conversion(adc_bits_);
    case Component::kSenseAmp:
      return n * params.sense_amp;
    case Component::kInputDriver:
      return n * params.input_driver;
    case Component::kRngDropoutCycle:
      return n * params.rng_dropout_cycle;
    case Component::kMtjWrite:
      return n * params.mtj_write;
    case Component::kDigitalAdd:
      return n * params.add32;
    case Component::kDigitalMult:
      return n * params.mult32;
    case Component::kSramReadWord:
      return n * params.sram_read_word;
    case Component::kRegisterAccess:
      return n * params.register_access;
    case Component::kCount_:
      break;
  }
  return 0.0;
}

PicoJoule EnergyLedger::total_energy(const EnergyParams& params) const {
  PicoJoule total = 0.0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Component::kCount_); ++i) {
    total += component_energy(static_cast<Component>(i), params);
  }
  return total;
}

PicoJoule EnergyLedger::total_energy() const {
  return total_energy(default_energy_params());
}

Nanosecond EnergyLedger::total_latency(const EnergyParams& params) const {
  // Serialize the dominant phases; cell reads within one wordline
  // activation happen in parallel, so charge reads at wordline granularity.
  return static_cast<double>(count(Component::kWordlineActivation)) * params.t_xbar_read +
         static_cast<double>(count(Component::kAdcConversion)) * params.t_adc +
         static_cast<double>(count(Component::kRngDropoutCycle)) * params.t_rng_cycle +
         static_cast<double>(count(Component::kDigitalMult)) * params.t_digital_mac +
         static_cast<double>(count(Component::kSramReadWord)) * params.t_sram_read;
}

EnergyLedger& EnergyLedger::operator+=(const EnergyLedger& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  return *this;
}

EnergyLedger& EnergyLedger::operator*=(std::uint64_t factor) {
  for (auto& c : counts_) {
    c *= factor;
  }
  return *this;
}

void EnergyLedger::reset() { counts_.fill(0); }

std::string EnergyLedger::report(const EnergyParams& params) const {
  const PicoJoule total = total_energy(params);
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-22s %14s %12s %7s\n", "component", "events",
                "energy[pJ]", "share");
  out += line;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Component::kCount_); ++i) {
    const auto c = static_cast<Component>(i);
    if (count(c) == 0) {
      continue;
    }
    const PicoJoule e = component_energy(c, params);
    std::snprintf(line, sizeof(line), "%-22s %14llu %12.2f %6.1f%%\n",
                  component_name(c).c_str(),
                  static_cast<unsigned long long>(count(c)), e,
                  total > 0.0 ? 100.0 * e / total : 0.0);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-22s %14s %12.2f (%.3f uJ)\n", "total", "", total,
                to_microjoule(total));
  out += line;
  return out;
}

}  // namespace neuspin::energy
