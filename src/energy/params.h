// Component-level energy/latency constants for the CIM architecture models.
//
// Digital-logic constants follow Horowitz, ISSCC 2014 ("Computing's energy
// problem") — the paper's own reference [16] — at a 45nm-class node:
// 32-bit int add 0.1 pJ, 32-bit int multiply 3.1 pJ, 8KB SRAM 32-bit read
// 10 pJ. Mixed-signal and spintronic constants are calibrated once against
// the SpinDrop row of the paper's Table I (2.00 uJ/image on a LeNet-class
// binary CNN with 20 Monte-Carlo passes); every other method's number then
// *follows from its architecture census* — no per-method tuning. This is
// the documented substitution for the authors' circuit-level simulations
// (DESIGN.md §2): relative comparisons are preserved by construction.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "device/units.h"

namespace neuspin::energy {

using device::Nanosecond;
using device::PicoJoule;

/// Energy cost table. All values in picojoules per event.
struct EnergyParams {
  // --- analog CIM path ---
  /// One bit-cell contributing to an analog MAC during a read pulse
  /// (V_read^2 / R * t averaged over P/AP; ~fJ class for MOhm SOT cells).
  PicoJoule xbar_cell_read = 0.0005;
  /// Driving one word line for one read cycle (decoder + line charge).
  PicoJoule wordline_activation = 0.02;
  /// One conversion of a multi-bit SAR ADC; scales 4x per +2 bits around
  /// the 8-bit anchor below (adc_conversion() helper).
  PicoJoule adc_8bit = 2.0;
  /// One sense-amplifier (1-bit) evaluation: the cheap alternative used by
  /// the binary-activation architectures (Fig. 2 / Fig. 3).
  PicoJoule sense_amp = 0.05;
  /// Charging one input DAC / bit-line conditioning circuit per vector bit.
  PicoJoule input_driver = 0.01;

  // --- spintronic stochastic path ---
  /// One full dropout-signal generation cycle: stochastic SET, sense-amp
  /// verify read, deterministic RESET, plus write-driver and control CMOS.
  /// The device part alone is ~0.3 pJ (see device::SpinRng::energy_per_bit);
  /// the driver/control overhead dominates. Calibrated to Table I.
  PicoJoule rng_dropout_cycle = 17.5;
  /// One deterministic MTJ write (weight programming, not inference).
  PicoJoule mtj_write = 0.3;

  // --- digital periphery (Horowitz ISSCC'14, 45nm) ---
  PicoJoule add32 = 0.1;
  PicoJoule mult32 = 3.1;
  PicoJoule sram_read_word = 10.0;  ///< 32-bit word from an 8KB SRAM macro
  PicoJoule register_access = 0.03;

  // --- latency (ns per event; used for sampling-latency comparisons) ---
  Nanosecond t_xbar_read = 10.0;       ///< one crossbar read phase
  Nanosecond t_adc = 5.0;              ///< one ADC conversion
  Nanosecond t_rng_cycle = 6.0;        ///< SET+read+RESET dropout cycle
  Nanosecond t_digital_mac = 1.0;      ///< one digital MAC
  Nanosecond t_sram_read = 2.0;

  /// ADC conversion energy at `bits` resolution: each extra bit costs ~2x
  /// (SAR energy roughly doubles per bit in this regime).
  [[nodiscard]] PicoJoule adc_conversion(std::size_t bits) const {
    if (bits == 0 || bits > 16) {
      throw std::invalid_argument("EnergyParams: ADC resolution must be 1..16 bits");
    }
    double e = adc_8bit;
    for (std::size_t b = 8; b < bits; ++b) {
      e *= 2.0;
    }
    for (std::size_t b = bits; b < 8; ++b) {
      e *= 0.5;
    }
    return e;
  }
};

/// Default parameter set shared by all experiments.
[[nodiscard]] const EnergyParams& default_energy_params();

}  // namespace neuspin::energy
