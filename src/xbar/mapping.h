// Convolution-to-crossbar mapping strategies (paper Fig. 1).
//
// Strategy 1 (Gokmen et al. [21]): every kernel of shape K x K x Cin is
// unfolded into one crossbar *column*; the layer becomes a single logical
// crossbar of (K*K*Cin) rows by Cout columns.
//
// Strategy 2 (Peng et al. [22]): each of the K*K kernel positions gets its
// own small crossbar of Cin rows by Cout columns; partial sums from the
// K*K crossbars are accumulated at the periphery.
//
// Both compute identical math; they differ in crossbar count, shape,
// word-line activity and — the paper's point — in how a Spatial-SpinDrop
// module must gate rows to drop an input feature map:
//   * strategy 1: a dropped input channel corresponds to K*K row *groups*
//     scattered through the tall crossbar -> the dropout module must drive
//     a grouped multi-row enable;
//   * strategy 2: a dropped input channel is exactly one row in each of
//     the K*K small crossbars -> one broadcast line per channel.
// The census functions below quantify these differences for the Fig. 1
// benchmark.
#pragma once

#include <cstddef>
#include <string>

namespace neuspin::xbar {

/// Conv layer geometry the mapping is computed for.
struct ConvGeometry {
  std::size_t in_channels = 16;
  std::size_t out_channels = 32;
  std::size_t kernel = 3;
  std::size_t output_height = 14;
  std::size_t output_width = 14;
  /// Spare lines provisioned PER ARRAY for self-healing remap (see
  /// xbar/health.h). 0 = no redundancy; the census is then identical to
  /// the spare-less one.
  std::size_t spare_rows = 0;
  std::size_t spare_cols = 0;

  [[nodiscard]] std::size_t kernel_area() const { return kernel * kernel; }
  [[nodiscard]] std::size_t output_pixels() const { return output_height * output_width; }
};

/// The two mapping strategies of Fig. 1.
enum class MappingStrategy : std::uint8_t {
  kUnfoldedColumns,   ///< strategy 1: K*K*Cin rows x Cout cols, one crossbar
  kKernelPosition,    ///< strategy 2: K*K crossbars of Cin x Cout
};

[[nodiscard]] std::string mapping_name(MappingStrategy s);

/// Physical census of a conv layer under a mapping strategy.
struct MappingCensus {
  std::size_t crossbar_count = 0;      ///< physical arrays
  std::size_t crossbar_rows = 0;       ///< rows per array
  std::size_t crossbar_cols = 0;       ///< cols per array
  std::size_t total_cells = 0;         ///< differential pairs across arrays
  /// Word-line activations needed to compute ONE output pixel.
  std::size_t wordline_acts_per_pixel = 0;
  /// Spatial-SpinDrop modules needed to gate all *input* feature maps.
  std::size_t dropout_modules = 0;
  /// Row-enable signals one dropout decision must drive (fan-out).
  std::size_t dropout_fanout = 0;
  /// ADC conversions per output pixel (one per column per crossbar).
  std::size_t adc_per_pixel = 0;
  /// Self-healing redundancy: spare differential pairs across all arrays
  /// (physical cells minus logical cells). Spares are provisioned per
  /// array, so the two strategies price redundancy very differently —
  /// strategy 1 amortizes one array's spare lines over the whole layer,
  /// strategy 2 pays for spare lines in each of its K*K small arrays.
  std::size_t spare_cells = 0;
  /// spare_cells / total_cells: the area tax of the provisioned
  /// redundancy (0 when no spares are provisioned).
  double spare_overhead = 0.0;
};

/// Compute the census of `geometry` under `strategy`.
[[nodiscard]] MappingCensus census(const ConvGeometry& geometry, MappingStrategy strategy);

}  // namespace neuspin::xbar
