// Analog SOT-MRAM crossbar array (paper Fig. 2 / Fig. 3 substrate).
//
// The crossbar stores a matrix of conductances and computes matrix-vector
// products by Kirchhoff current summation: applying row voltages v_i makes
// column j carry I_j = sum_i v_i * G_ij. Binary weights use the XNOR
// bit-cell (two complementary 1T-1MTJ cells, paper §III-A.1), realized as
// a differential pair of conductance matrices G+ / G-.
//
// Non-idealities modeled:
//   * device-to-device variability at programming time (VariabilityModel)
//   * manufacturing defects (DefectMap) consulted at every read
//   * cycle-to-cycle read noise (optional, per read)
//   * IR drop along the columns: a first-order attenuation that grows with
//     the number of simultaneously active rows and the wire resistance.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "device/defects.h"
#include "device/mtj.h"
#include "device/variability.h"

namespace neuspin::xbar {

using device::MicroAmp;
using device::MicroSiemens;
using device::Volt;

/// Construction parameters of a physical crossbar.
struct CrossbarConfig {
  std::size_t rows = 128;
  std::size_t cols = 128;
  device::MtjParams mtj{};              ///< junction design point
  Volt read_voltage = 0.1;              ///< row drive amplitude
  /// Column wire resistance per cell pitch (kOhm); sets the IR-drop scale.
  /// The default corresponds to a few percent of gain sag on a fully
  /// active 128-row column — noticeable but calibratable, matching
  /// copper interconnect at the 28nm-class node.
  double wire_resistance = 0.00005;
  /// Conductance a shorted cell presents (uS).
  MicroSiemens short_conductance = 2000.0;

  void validate() const;
};

/// One programmable conductance plane with defects and variability.
class Crossbar {
 public:
  /// Ideal, defect-free crossbar.
  explicit Crossbar(const CrossbarConfig& config);

  /// Crossbar with device-to-device variability and manufacturing defects
  /// drawn from `seed`.
  Crossbar(const CrossbarConfig& config, const device::VariabilityParams& variability,
           const device::DefectRates& defects, std::uint64_t seed);

  /// Program a cell to P (weight bit 1) or AP (weight bit 0). Programming a
  /// defective cell has no effect (the defect wins), matching hardware.
  void program(std::size_t row, std::size_t col, device::MtjState state);

  /// Program from a +-1 weight matrix row-major span (rows*cols entries):
  /// +1 -> parallel (high G), -1 -> anti-parallel (low G).
  void program_binary(std::span<const float> weights);

  /// Effective conductance of a cell after defects.
  [[nodiscard]] MicroSiemens conductance(std::size_t row, std::size_t col) const;

  /// Analog MAC: row voltages (one per row, volts) -> column currents (uA).
  /// `active_rows` restricts the computation to rows whose voltage is
  /// non-zero; IR drop is applied based on how many rows are active.
  [[nodiscard]] std::vector<MicroAmp> mac(std::span<const Volt> row_voltages) const;

  /// MAC with cycle-to-cycle read noise from `engine`.
  [[nodiscard]] std::vector<MicroAmp> mac_noisy(std::span<const Volt> row_voltages,
                                                std::mt19937_64& engine,
                                                double read_noise_sigma) const;

  [[nodiscard]] std::size_t rows() const { return config_.rows; }
  [[nodiscard]] std::size_t cols() const { return config_.cols; }
  [[nodiscard]] const CrossbarConfig& config() const { return config_; }
  [[nodiscard]] const device::DefectMap& defects() const { return defects_; }
  [[nodiscard]] device::DefectMap& defects() { return defects_; }

  /// Conductances of the two healthy states after this instance's
  /// variability draw, averaged over cells (used for SA thresholds).
  [[nodiscard]] MicroSiemens mean_on_conductance() const;
  [[nodiscard]] MicroSiemens mean_off_conductance() const;

  /// First-order column IR-drop attenuation for `active_rows`
  /// simultaneously driven rows. Public so the event-driven evaluation
  /// (xbar::EventMac) applies exactly the factor mac() would.
  [[nodiscard]] double ir_drop_factor(std::size_t active_rows) const;

 private:
  CrossbarConfig config_;
  std::vector<MicroSiemens> g_parallel_;      ///< per-cell P-state conductance
  std::vector<MicroSiemens> g_antiparallel_;  ///< per-cell AP-state conductance
  std::vector<device::MtjState> state_;
  device::DefectMap defects_;
};

}  // namespace neuspin::xbar
