// Analog SOT-MRAM crossbar array (paper Fig. 2 / Fig. 3 substrate).
//
// The crossbar stores a matrix of conductances and computes matrix-vector
// products by Kirchhoff current summation: applying row voltages v_i makes
// column j carry I_j = sum_i v_i * G_ij. Binary weights use the XNOR
// bit-cell (two complementary 1T-1MTJ cells, paper §III-A.1), realized as
// a differential pair of conductance matrices G+ / G-.
//
// Non-idealities modeled:
//   * device-to-device variability at programming time (VariabilityModel)
//   * manufacturing defects (DefectMap) consulted at every read
//   * cycle-to-cycle read noise (optional, per read)
//   * IR drop along the columns: a first-order attenuation that grows with
//     the number of simultaneously active rows and the wire resistance.
//   * conductance drift (apply_drift) repaired by recalibrate()
//
// Spare lines: the physical die may provision `spare_rows` / `spare_cols`
// extra lines beyond the logical array. All public indices are logical;
// a row/col map translates to physical lines, so quarantined lines can be
// remapped onto spares (remap_row / remap_col) without the callers — or
// the event engine, which reads through conductance() — noticing anything
// but the repaired values. IR drop stays keyed to the logical row count:
// spare provisioning must not change the electrical length of the column
// that the logical array was calibrated for.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "device/defects.h"
#include "device/mtj.h"
#include "device/variability.h"

namespace neuspin::xbar {

using device::MicroAmp;
using device::MicroSiemens;
using device::Volt;

/// Construction parameters of a physical crossbar.
struct CrossbarConfig {
  std::size_t rows = 128;
  std::size_t cols = 128;
  /// Spare lines provisioned beyond the logical array for self-healing
  /// remaps. Spare cells draw their own variability/defects at fabrication
  /// time like any other cell — a defective spare is possible and is
  /// re-detected by the next probe after a remap onto it.
  std::size_t spare_rows = 0;
  std::size_t spare_cols = 0;
  device::MtjParams mtj{};              ///< junction design point
  Volt read_voltage = 0.1;              ///< row drive amplitude
  /// Column wire resistance per cell pitch (kOhm); sets the IR-drop scale.
  /// The default corresponds to a few percent of gain sag on a fully
  /// active 128-row column — noticeable but calibratable, matching
  /// copper interconnect at the 28nm-class node.
  double wire_resistance = 0.00005;
  /// Conductance a shorted cell presents (uS).
  MicroSiemens short_conductance = 2000.0;

  void validate() const;
};

/// One programmable conductance plane with defects and variability.
class Crossbar {
 public:
  /// Ideal, defect-free crossbar.
  explicit Crossbar(const CrossbarConfig& config);

  /// Crossbar with device-to-device variability and manufacturing defects
  /// drawn from `seed`.
  Crossbar(const CrossbarConfig& config, const device::VariabilityParams& variability,
           const device::DefectRates& defects, std::uint64_t seed);

  /// Program a cell to P (weight bit 1) or AP (weight bit 0). Programming a
  /// defective cell has no effect (the defect wins), matching hardware.
  void program(std::size_t row, std::size_t col, device::MtjState state);

  /// Program from a +-1 weight matrix row-major span (rows*cols entries):
  /// +1 -> parallel (high G), -1 -> anti-parallel (low G).
  void program_binary(std::span<const float> weights);

  /// Effective conductance of a cell after remap, drift and defects — the
  /// value a read actually measures.
  [[nodiscard]] MicroSiemens conductance(std::size_t row, std::size_t col) const;

  /// Programmed-target conductance of a cell: the post-variability healthy
  /// conductance of the programmed state, before drift and defects. This is
  /// the golden reference health probes compare measured reads against.
  [[nodiscard]] MicroSiemens reference_conductance(std::size_t row,
                                                   std::size_t col) const;

  /// Programmed MTJ state of a (logical) cell.
  [[nodiscard]] device::MtjState programmed_state(std::size_t row,
                                                  std::size_t col) const;

  /// Analog MAC: row voltages (one per row, volts) -> column currents (uA).
  /// `active_rows` restricts the computation to rows whose voltage is
  /// non-zero; IR drop is applied based on how many rows are active.
  [[nodiscard]] std::vector<MicroAmp> mac(std::span<const Volt> row_voltages) const;

  /// MAC with cycle-to-cycle read noise from `engine`.
  [[nodiscard]] std::vector<MicroAmp> mac_noisy(std::span<const Volt> row_voltages,
                                                std::mt19937_64& engine,
                                                double read_noise_sigma) const;

  [[nodiscard]] std::size_t rows() const { return config_.rows; }
  [[nodiscard]] std::size_t cols() const { return config_.cols; }
  [[nodiscard]] const CrossbarConfig& config() const { return config_; }
  /// Raw defect map over the PHYSICAL array (rows+spare_rows x
  /// cols+spare_cols). Indices here are physical; use inject_defect() /
  /// defect_at() for logical, remap-aware access.
  [[nodiscard]] const device::DefectMap& defects() const { return defects_; }
  [[nodiscard]] device::DefectMap& defects() { return defects_; }

  /// Set / read the defect kind of a LOGICAL cell (routed through the
  /// current remap). Injection after a remap lands on the line actually in
  /// use, like radiation hitting the active array.
  void inject_defect(std::size_t row, std::size_t col, device::DefectKind kind);
  [[nodiscard]] device::DefectKind defect_at(std::size_t row, std::size_t col) const;

  // --- Self-healing -------------------------------------------------------

  /// Remap a logical row onto the next free spare physical row, copying the
  /// programmed weights (the reprogramming pass). The spare starts
  /// drift-free — it was just programmed. Returns false (no change) when no
  /// spare row is left. Callers holding EventMac delta state over this
  /// plane must invalidate it.
  bool remap_row(std::size_t row);
  /// Same for a logical column.
  bool remap_col(std::size_t col);

  [[nodiscard]] std::size_t spare_rows_available() const {
    return config_.spare_rows - spare_rows_used_;
  }
  [[nodiscard]] std::size_t spare_cols_available() const {
    return config_.spare_cols - spare_cols_used_;
  }
  [[nodiscard]] bool remapped() const { return remapped_; }
  [[nodiscard]] std::size_t physical_row(std::size_t row) const { return row_map_[row]; }
  [[nodiscard]] std::size_t physical_col(std::size_t col) const { return col_map_[col]; }

  /// Apply one increment of conductance drift: every physical cell's
  /// conductance decays by a per-cell factor exp(-magnitude * |N(0,1)|)
  /// drawn deterministically from `seed`. Repeated calls compound
  /// (progressive drift). Stuck/short defect conductances drift too — the
  /// material relaxes regardless of what pinned it.
  void apply_drift(double magnitude, std::uint64_t seed);

  /// Re-program every cell to its reference conductance (ideal
  /// program-verify), clearing accumulated drift. Defects are physical and
  /// survive recalibration. Returns the number of cells whose conductance
  /// moved.
  std::size_t recalibrate();

  [[nodiscard]] bool drifted() const { return !drift_.empty(); }

  /// Conductances of the two healthy states after this instance's
  /// variability draw, averaged over physical cells (used for SA
  /// thresholds).
  [[nodiscard]] MicroSiemens mean_on_conductance() const;
  [[nodiscard]] MicroSiemens mean_off_conductance() const;

  /// First-order column IR-drop attenuation for `active_rows`
  /// simultaneously driven rows. Public so the event-driven evaluation
  /// (xbar::EventMac) applies exactly the factor mac() would. Keyed to the
  /// logical row count: spare provisioning does not change it.
  [[nodiscard]] double ir_drop_factor(std::size_t active_rows) const;

 private:
  [[nodiscard]] std::size_t physical_rows() const {
    return config_.rows + config_.spare_rows;
  }
  [[nodiscard]] std::size_t physical_cols() const {
    return config_.cols + config_.spare_cols;
  }
  /// Measured conductance of a PHYSICAL cell (drift + defects applied).
  [[nodiscard]] MicroSiemens cell_conductance(std::size_t phys_row,
                                              std::size_t phys_col) const;
  void init_maps();

  CrossbarConfig config_;
  std::size_t pcols_ = 0;                     ///< physical column pitch
  std::vector<MicroSiemens> g_parallel_;      ///< per-cell P-state conductance
  std::vector<MicroSiemens> g_antiparallel_;  ///< per-cell AP-state conductance
  std::vector<device::MtjState> state_;
  device::DefectMap defects_;
  /// Logical -> physical line maps (identity until a remap).
  std::vector<std::size_t> row_map_;
  std::vector<std::size_t> col_map_;
  std::size_t spare_rows_used_ = 0;
  std::size_t spare_cols_used_ = 0;
  bool remapped_ = false;
  /// Per-physical-cell multiplicative drift factor; empty means no drift
  /// (the common case pays neither memory nor arithmetic for it).
  std::vector<double> drift_;
};

}  // namespace neuspin::xbar
