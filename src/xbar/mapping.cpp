#include "xbar/mapping.h"

#include <stdexcept>

namespace neuspin::xbar {

std::string mapping_name(MappingStrategy s) {
  switch (s) {
    case MappingStrategy::kUnfoldedColumns:
      return "strategy1_unfolded_columns";
    case MappingStrategy::kKernelPosition:
      return "strategy2_kernel_position";
  }
  return "unknown";
}

MappingCensus census(const ConvGeometry& geometry, MappingStrategy strategy) {
  if (geometry.in_channels == 0 || geometry.out_channels == 0 || geometry.kernel == 0) {
    throw std::invalid_argument("census: geometry fields must be positive");
  }
  MappingCensus c;
  switch (strategy) {
    case MappingStrategy::kUnfoldedColumns:
      c.crossbar_count = 1;
      c.crossbar_rows = geometry.kernel_area() * geometry.in_channels;
      c.crossbar_cols = geometry.out_channels;
      // All rows fire for each output pixel.
      c.wordline_acts_per_pixel = c.crossbar_rows;
      // One module per input feature map; each must gate K*K scattered row
      // groups inside the tall array.
      c.dropout_modules = geometry.in_channels;
      c.dropout_fanout = geometry.kernel_area();
      c.adc_per_pixel = geometry.out_channels;
      break;
    case MappingStrategy::kKernelPosition:
      c.crossbar_count = geometry.kernel_area();
      c.crossbar_rows = geometry.in_channels;
      c.crossbar_cols = geometry.out_channels;
      c.wordline_acts_per_pixel = geometry.kernel_area() * geometry.in_channels;
      // One module per input feature map; it drives the same row index in
      // every kernel-position crossbar through one broadcast line.
      c.dropout_modules = geometry.in_channels;
      c.dropout_fanout = 1;
      c.adc_per_pixel = geometry.kernel_area() * geometry.out_channels;
      break;
  }
  c.total_cells = c.crossbar_count * c.crossbar_rows * c.crossbar_cols;
  // Redundancy tax: each array is physically (rows + spare_rows) x
  // (cols + spare_cols); everything beyond the logical grid is spare.
  const std::size_t physical_per_array =
      (c.crossbar_rows + geometry.spare_rows) *
      (c.crossbar_cols + geometry.spare_cols);
  c.spare_cells =
      c.crossbar_count * physical_per_array - c.total_cells;
  c.spare_overhead = c.total_cells == 0
                         ? 0.0
                         : static_cast<double>(c.spare_cells) /
                               static_cast<double>(c.total_cells);
  return c;
}

}  // namespace neuspin::xbar
