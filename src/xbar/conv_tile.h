// Convolution tile: tile-level execution of a binary conv layer using the
// im2col decomposition onto a DenseTile (mapping strategy 1 of Fig. 1:
// each K*K*Cin kernel becomes one crossbar column; every output pixel is
// one MVM).
//
// This completes the electrically faithful path for CNNs: the same
// crossbar/ADC/defect models that DenseTile uses, driven once per output
// pixel, with every event charged to the ledger. It is exact but pays one
// crossbar read phase per pixel, so accuracy sweeps use the behavioural
// path (core::AnalogReadout) and this tile anchors its validation.
// core::TiledMlp chains ConvTiles (plus folded batch-norm thresholds and
// digital pooling) in front of its DenseTiles to run the Table-I CNN
// end to end on the electrical substrate.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <span>

#include "energy/accountant.h"
#include "nn/tensor.h"
#include "xbar/tile.h"

namespace neuspin::xbar {

/// One binary conv layer (stride 1, symmetric zero padding) on a tile.
class ConvTile {
 public:
  /// `binary_weights` is the (out_ch, in_ch, k, k) +-1 kernel tensor
  /// flattened row-major; `scales` one alpha per output channel.
  ConvTile(const TileConfig& config, std::size_t in_channels, std::size_t out_channels,
           std::size_t kernel, std::size_t padding,
           std::span<const float> binary_weights, std::span<const float> scales,
           std::uint64_t seed);

  /// Deep copy preserving the programmed tile (cells, variability draws,
  /// injected defects) and the internal RNG state — the replica primitive
  /// for CNN-shaped TiledMlp clones.
  ConvTile(const ConvTile& other);
  ConvTile& operator=(const ConvTile&) = delete;
  ConvTile(ConvTile&&) = default;
  ConvTile& operator=(ConvTile&&) = default;
  [[nodiscard]] std::unique_ptr<ConvTile> clone() const {
    return std::make_unique<ConvTile>(*this);
  }

  /// Hardware forward pass of one NCHW input tensor. Every output pixel
  /// drives one MVM on the underlying crossbar pair. Read noise draws from
  /// the tile's own engine.
  [[nodiscard]] nn::Tensor forward(const nn::Tensor& input,
                                   energy::EnergyLedger* ledger = nullptr);

  /// Forward pass with per-input-channel gating under a caller-owned
  /// engine: a disabled channel's K*K crossbar rows (one contiguous group
  /// under strategy 1 — the grouped multi-row enable of xbar/mapping.h)
  /// drive no word line, realizing Spatial-SpinDrop on the electrical
  /// path. An empty `channel_enabled` span means all channels enabled.
  [[nodiscard]] nn::Tensor forward_gated(const nn::Tensor& input,
                                         std::span<const std::uint8_t> channel_enabled,
                                         energy::EnergyLedger* ledger,
                                         std::mt19937_64& engine);

  [[nodiscard]] std::size_t in_channels() const { return in_ch_; }
  [[nodiscard]] std::size_t out_channels() const { return out_ch_; }
  [[nodiscard]] std::size_t kernel() const { return kernel_; }
  [[nodiscard]] std::size_t padding() const { return padding_; }
  /// The underlying unfolded-column tile (strategy 1 geometry). The
  /// mutable overload exists for the self-healing path (probe / remap /
  /// recalibrate operate on the DenseTile).
  [[nodiscard]] const DenseTile& tile() const { return *tile_; }
  [[nodiscard]] DenseTile& tile() { return *tile_; }

  /// Event-engine work census of the underlying tile.
  [[nodiscard]] const DeltaStats& delta_stats() const { return tile_->delta_stats(); }

  /// Inject stuck-at defects into the underlying crossbars.
  void inject_defects(const device::DefectRates& rates, std::uint64_t seed) {
    tile_->inject_defects(rates, seed);
  }

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t padding_;
  std::unique_ptr<DenseTile> tile_;  ///< (k*k*in_ch) x out_ch
  std::mt19937_64 engine_;
};

}  // namespace neuspin::xbar
