#include "xbar/adc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuspin::xbar {

Adc::Adc(std::size_t bits, device::MicroAmp full_scale)
    : bits_(bits), full_scale_(full_scale) {
  if (bits == 0 || bits > 16) {
    throw std::invalid_argument("Adc: resolution must be 1..16 bits");
  }
  if (full_scale <= 0.0) {
    throw std::invalid_argument("Adc: full_scale must be positive");
  }
  // Symmetric mid-rise quantizer: codes span [-2^(b-1), +2^(b-1)] so both
  // full-scale extremes are exactly representable and the in-range error
  // stays within LSB/2 everywhere.
  lsb_ = full_scale_ / static_cast<double>(std::int64_t{1} << (bits_ - 1));
}

std::int64_t Adc::code(device::MicroAmp current) const {
  const double clipped = std::clamp(current + offset_, -full_scale_, full_scale_);
  const auto max_code = std::int64_t{1} << (bits_ - 1);
  const auto c = static_cast<std::int64_t>(std::llround(clipped / lsb_));
  return std::clamp(c, -max_code, max_code);
}

double Adc::quantize(device::MicroAmp current) const {
  return static_cast<double>(code(current)) * lsb_;
}

SenseAmp::SenseAmp(device::MicroAmp threshold) : threshold_(threshold) {}

}  // namespace neuspin::xbar
