// ADC and sense-amplifier models for the crossbar read-out path.
//
// The ADC quantizes an analog column current into a signed digital code.
// Resolution is the central accuracy/energy lever the paper's §II-D
// quantization-error discussion refers to; bench_ablations sweeps it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "device/units.h"

namespace neuspin::xbar {

/// Successive-approximation ADC with a symmetric full-scale range.
class Adc {
 public:
  /// `bits` resolution (1..16); `full_scale` is the largest magnitude
  /// current (uA) representable without clipping.
  Adc(std::size_t bits, device::MicroAmp full_scale);

  /// Quantize a signed current to the nearest code, clipping to range,
  /// and return the reconstructed analog value (uA) of that code.
  [[nodiscard]] double quantize(device::MicroAmp current) const;

  /// Integer code for a current (symmetric, two's-complement style).
  [[nodiscard]] std::int64_t code(device::MicroAmp current) const;

  [[nodiscard]] std::size_t bits() const { return bits_; }
  [[nodiscard]] device::MicroAmp full_scale() const { return full_scale_; }
  /// Smallest representable current step.
  [[nodiscard]] device::MicroAmp lsb() const { return lsb_; }

  /// Input-referred offset error (uA), added to every measured current.
  /// Drifts with temperature/aging; zeroed by offset recalibration against
  /// a grounded input (DenseTile::recalibrate).
  void set_offset(device::MicroAmp offset) { offset_ = offset; }
  [[nodiscard]] device::MicroAmp offset() const { return offset_; }

 private:
  std::size_t bits_;
  device::MicroAmp full_scale_;
  device::MicroAmp lsb_;
  device::MicroAmp offset_ = 0.0;
};

/// One-bit sense amplifier: sign detector with a programmable threshold.
/// The binary-activation architectures (Fig. 2, Fig. 3) use this instead
/// of a full ADC, which is where most of their energy saving comes from.
class SenseAmp {
 public:
  explicit SenseAmp(device::MicroAmp threshold = 0.0);

  /// +1 if the current exceeds the threshold, else -1.
  [[nodiscard]] float evaluate(device::MicroAmp current) const {
    return current > threshold_ ? 1.0f : -1.0f;
  }

  [[nodiscard]] device::MicroAmp threshold() const { return threshold_; }

 private:
  device::MicroAmp threshold_;
};

}  // namespace neuspin::xbar
