#include "xbar/decoder.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace neuspin::xbar {

WordlineDecoder::WordlineDecoder(std::size_t line_count) : enabled_(line_count, false) {
  if (line_count == 0) {
    throw std::invalid_argument("WordlineDecoder: line_count must be positive");
  }
}

void WordlineDecoder::enable_range(std::size_t first, std::size_t count) {
  if (first + count > enabled_.size()) {
    throw std::out_of_range("WordlineDecoder: range [" + std::to_string(first) + ", " +
                            std::to_string(first + count) + ") exceeds " +
                            std::to_string(enabled_.size()) + " lines");
  }
  std::fill(enabled_.begin() + static_cast<std::ptrdiff_t>(first),
            enabled_.begin() + static_cast<std::ptrdiff_t>(first + count), true);
}

void WordlineDecoder::disable_range(std::size_t first, std::size_t count) {
  if (first + count > enabled_.size()) {
    throw std::out_of_range("WordlineDecoder: disable range out of bounds");
  }
  std::fill(enabled_.begin() + static_cast<std::ptrdiff_t>(first),
            enabled_.begin() + static_cast<std::ptrdiff_t>(first + count), false);
}

void WordlineDecoder::disable_all() {
  std::fill(enabled_.begin(), enabled_.end(), false);
}

bool WordlineDecoder::is_enabled(std::size_t line) const {
  if (line >= enabled_.size()) {
    throw std::out_of_range("WordlineDecoder: line out of range");
  }
  return enabled_[line];
}

std::size_t WordlineDecoder::enabled_count() const {
  return static_cast<std::size_t>(std::count(enabled_.begin(), enabled_.end(), true));
}

std::size_t WordlineDecoder::address_bits() const {
  std::size_t bits = 0;
  std::size_t capacity = 1;
  while (capacity < enabled_.size()) {
    capacity *= 2;
    ++bits;
  }
  return bits;
}

void WordlineDecoder::apply(std::vector<double>& row_voltages) const {
  if (row_voltages.size() != enabled_.size()) {
    throw std::invalid_argument("WordlineDecoder::apply: size mismatch");
  }
  for (std::size_t i = 0; i < row_voltages.size(); ++i) {
    if (!enabled_[i]) {
      row_voltages[i] = 0.0;
    }
  }
}

}  // namespace neuspin::xbar
