// Word-line decoder with multi-consecutive-address enable (paper
// §III-A.1: "a word-line decoder is used with the capability to enable
// multiple consecutive addresses"). The multi-enable is what lets a whole
// input vector drive the crossbar in one read phase, and what lets a
// SpinDrop module gate a *pair* of word lines (one XNOR cell pair) at once.
#pragma once

#include <cstddef>
#include <vector>

namespace neuspin::xbar {

/// Decoder for `line_count` word lines.
class WordlineDecoder {
 public:
  explicit WordlineDecoder(std::size_t line_count);

  /// Enable lines [first, first+count). Throws std::out_of_range on
  /// overflow. Previously enabled lines stay enabled.
  void enable_range(std::size_t first, std::size_t count);

  /// Disable lines [first, first+count).
  void disable_range(std::size_t first, std::size_t count);

  void disable_all();

  [[nodiscard]] bool is_enabled(std::size_t line) const;
  [[nodiscard]] std::size_t enabled_count() const;
  [[nodiscard]] std::size_t line_count() const { return enabled_.size(); }

  /// Address bits needed for this decoder (ceil(log2(line_count))).
  [[nodiscard]] std::size_t address_bits() const;

  /// Mask the rows of a voltage vector: disabled lines are forced to 0.
  void apply(std::vector<double>& row_voltages) const;

 private:
  std::vector<bool> enabled_;
};

}  // namespace neuspin::xbar
