#include "xbar/bitcell.h"

#include <cmath>
#include <stdexcept>

namespace neuspin::xbar {

XnorBitcell::XnorBitcell(const device::MtjParams& params, float weight)
    : true_cell_(params), comp_cell_(params), weight_(0.0f) {
  program(weight);
}

void XnorBitcell::program(float weight) {
  weight_ = weight >= 0.0f ? 1.0f : -1.0f;
  if (weight_ > 0.0f) {
    true_cell_.set_state(device::MtjState::kParallel);
    comp_cell_.set_state(device::MtjState::kAntiParallel);
  } else {
    true_cell_.set_state(device::MtjState::kAntiParallel);
    comp_cell_.set_state(device::MtjState::kParallel);
  }
}

device::MicroAmp XnorBitcell::differential_current(float input,
                                                   device::Volt read_voltage) const {
  if (std::abs(input) != 1.0f) {
    throw std::invalid_argument("XnorBitcell: input must be +-1");
  }
  // input +1 drives the true line positively; input -1 swaps the roles of
  // the two lines, which is electrically a sign flip of the difference.
  const device::MicroSiemens diff =
      true_cell_.conductance() - comp_cell_.conductance();
  return read_voltage * diff * input;
}

device::MicroSiemens XnorBitcell::delta_conductance(const device::MtjParams& params) {
  return device::conductance_from_kohm(params.r_parallel) -
         device::conductance_from_kohm(params.r_antiparallel());
}

}  // namespace neuspin::xbar
