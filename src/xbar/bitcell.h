// XNOR bit-cell: the unit storing one binary weight as two complementary
// 1T-1MTJ cells (paper §III-A.1: "each trained weight is stored in a unit
// represented by two 1T-1MTJ cells").
//
// Encoding: weight +1 -> (P, AP), weight -1 -> (AP, P). An input of +1
// drives the true line, -1 drives the complement line; the differential
// current through the pair is then proportional to input XNOR weight:
//
//   I_diff = V * (G_true - G_comp) * input = V * dG * (weight * input)
//
// so a column of such cells sums to the signed popcount a binary dense
// layer needs. The Crossbar class vectorizes exactly this arithmetic; the
// bit-cell class documents and unit-tests the single-cell contract.
#pragma once

#include "device/mtj.h"
#include "device/units.h"

namespace neuspin::xbar {

/// One differential XNOR bit-cell.
class XnorBitcell {
 public:
  explicit XnorBitcell(const device::MtjParams& params, float weight = 1.0f);

  /// Program the stored weight (+1 or -1; sign of `weight` is used).
  void program(float weight);

  /// Stored weight as +-1.
  [[nodiscard]] float weight() const { return weight_; }

  /// Differential current contribution for an input of +-1 at `read_voltage`.
  [[nodiscard]] device::MicroAmp differential_current(float input,
                                                      device::Volt read_voltage) const;

  /// Conductances of the true/complement branches.
  [[nodiscard]] device::MicroSiemens true_conductance() const {
    return true_cell_.conductance();
  }
  [[nodiscard]] device::MicroSiemens complement_conductance() const {
    return comp_cell_.conductance();
  }

  /// Conductance difference magnitude dG = G_P - G_AP of this design point.
  [[nodiscard]] static device::MicroSiemens delta_conductance(
      const device::MtjParams& params);

 private:
  device::Mtj true_cell_;
  device::Mtj comp_cell_;
  float weight_;
};

}  // namespace neuspin::xbar
