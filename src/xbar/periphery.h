// Digital periphery blocks around the crossbars (paper Fig. 2 / Fig. 3:
// accumulator-adder, registers, averaging block).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "energy/accountant.h"

namespace neuspin::xbar {

/// Accumulates partial sums across row-blocks / kernel-position crossbars.
/// Counts its add operations into an optional ledger.
class AccumulatorAdder {
 public:
  explicit AccumulatorAdder(std::size_t width, energy::EnergyLedger* ledger = nullptr);

  /// acc[i] += partial[i]; charges one digital add per lane.
  void accumulate(const std::vector<double>& partial);

  [[nodiscard]] const std::vector<double>& value() const { return acc_; }
  void reset();

  [[nodiscard]] std::size_t width() const { return acc_.size(); }

 private:
  std::vector<double> acc_;
  energy::EnergyLedger* ledger_;
};

/// Averages T Monte-Carlo output vectors (paper Fig. 3 "Averaging Block").
class AveragingBlock {
 public:
  explicit AveragingBlock(std::size_t width, energy::EnergyLedger* ledger = nullptr);

  /// Add one forward-pass output.
  void add_sample(const std::vector<double>& sample);

  /// Mean over added samples; throws std::logic_error if none were added.
  [[nodiscard]] std::vector<double> mean() const;
  /// Per-lane variance (population); requires >= 2 samples.
  [[nodiscard]] std::vector<double> variance() const;

  [[nodiscard]] std::size_t sample_count() const { return count_; }
  void reset();

 private:
  std::vector<double> sum_;
  std::vector<double> sum_sq_;
  std::size_t count_ = 0;
  energy::EnergyLedger* ledger_;
};

}  // namespace neuspin::xbar
