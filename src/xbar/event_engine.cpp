#include "xbar/event_engine.h"

#include <cstring>
#include <stdexcept>

namespace neuspin::xbar {

std::string eval_mode_name(EvalMode mode) {
  switch (mode) {
    case EvalMode::kFull:
      return "full";
    case EvalMode::kEventDriven:
      return "event_driven";
  }
  return "unknown";
}

namespace {

/// Leaf product of one (row, col) cell. A zero drive voltage (gated or ±0)
/// contributes an exact +0.0 without touching the conductance — the same
/// rule in both modes, so the shortcut cannot break bitwise equality.
inline double leaf_product(const Crossbar& xb, std::span<const Volt> v,
                           std::size_t r, std::size_t c) {
  return v[r] == 0.0 ? 0.0 : v[r] * xb.conductance(r, c);
}

/// Bitwise voltage comparison: ±0.0 count as different so a sign flip of
/// zero re-propagates instead of silently reusing a leaf computed under
/// the other zero.
inline bool same_bits(Volt a, Volt b) {
  return std::memcmp(&a, &b, sizeof(Volt)) == 0;
}

}  // namespace

void EventMac::rebuild(const Crossbar& xb, std::span<const Volt> v) {
  const std::size_t rows = xb.rows();
  const std::size_t cols = xb.cols();
  levels_.clear();
  levels_.emplace_back(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      levels_[0][r * cols + c] = leaf_product(xb, v, r, c);
    }
  }
  std::size_t n = rows;
  while (n > 1) {
    const std::vector<double>& prev = levels_.back();
    const std::size_t next_n = (n + 1) / 2;
    std::vector<double> next(next_n * cols);
    for (std::size_t i = 0; i < next_n; ++i) {
      const std::size_t lo = 2 * i;
      const std::size_t hi = lo + 1;
      for (std::size_t c = 0; c < cols; ++c) {
        // Odd tail passes through unchanged (no +0.0: that could flip the
        // sign of a -0.0 partial and break bitwise equality).
        next[i * cols + c] = hi < n ? prev[lo * cols + c] + prev[hi * cols + c]
                                    : prev[lo * cols + c];
      }
    }
    levels_.push_back(std::move(next));
    n = next_n;
  }
  last_v_.assign(v.begin(), v.end());
  valid_ = true;
}

void EventMac::propagate_row(const Crossbar& xb, std::span<const Volt> v,
                             std::size_t row) {
  const std::size_t cols = xb.cols();
  for (std::size_t c = 0; c < cols; ++c) {
    levels_[0][row * cols + c] = leaf_product(xb, v, row, c);
  }
  // Recompute the ancestors bottom-up. When several rows are dirty a shared
  // ancestor is recomputed once per dirty descendant; the last walk sees
  // every updated child, so the final tree equals a full rebuild.
  std::size_t n = xb.rows();
  std::size_t idx = row;
  for (std::size_t level = 1; level < levels_.size(); ++level) {
    idx /= 2;
    const std::size_t lo = 2 * idx;
    const std::size_t hi = lo + 1;
    const std::vector<double>& prev = levels_[level - 1];
    std::vector<double>& cur = levels_[level];
    for (std::size_t c = 0; c < cols; ++c) {
      cur[idx * cols + c] = hi < n ? prev[lo * cols + c] + prev[hi * cols + c]
                                   : prev[lo * cols + c];
    }
    n = (n + 1) / 2;
  }
}

std::vector<MicroAmp> EventMac::mac(const Crossbar& xb,
                                    std::span<const Volt> row_voltages,
                                    EvalMode mode, DeltaStats& stats) {
  const std::size_t rows = xb.rows();
  const std::size_t cols = xb.cols();
  if (row_voltages.size() != rows) {
    throw std::invalid_argument("EventMac::mac: expected " + std::to_string(rows) +
                                " row voltages, got " +
                                std::to_string(row_voltages.size()));
  }
  ++stats.evaluations;
  stats.rows_total += rows;
  if (mode == EvalMode::kFull || !valid_ || last_v_.size() != rows) {
    rebuild(xb, row_voltages);
    stats.rows_dirty += rows;
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      if (!same_bits(row_voltages[r], last_v_[r])) {
        propagate_row(xb, row_voltages, r);
        last_v_[r] = row_voltages[r];
        ++stats.rows_dirty;
      }
    }
  }

  std::size_t active = 0;
  for (Volt v : row_voltages) {
    if (v != 0.0) {
      ++active;
    }
  }
  const double attenuation = xb.ir_drop_factor(active);
  const std::vector<double>& root = levels_.back();
  std::vector<MicroAmp> currents(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    currents[c] = root[c] * attenuation;
  }
  return currents;
}

}  // namespace neuspin::xbar
