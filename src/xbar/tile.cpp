#include "xbar/tile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "xbar/bitcell.h"
#include "xbar/decoder.h"
#include "xbar/periphery.h"

namespace neuspin::xbar {

void TileConfig::validate() const {
  if (max_rows == 0) {
    throw std::invalid_argument("TileConfig: max_rows must be positive");
  }
  if (adc_bits == 0 || adc_bits > 16) {
    throw std::invalid_argument("TileConfig: adc_bits must be 1..16");
  }
  crossbar.validate();
}

DenseTile::DenseTile(const TileConfig& config, std::size_t in_features,
                     std::size_t out_features, std::span<const float> binary_weights,
                     std::span<const float> scales, std::uint64_t seed)
    : config_(config),
      in_(in_features),
      out_(out_features),
      scales_(scales.begin(), scales.end()),
      adc_(config.adc_bits, 1.0),  // re-initialized below once unit current is known
      sense_amp_(0.0),
      unit_current_(0.0) {
  config_.validate();
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("DenseTile: feature counts must be positive");
  }
  if (binary_weights.size() != in_features * out_features) {
    throw std::invalid_argument("DenseTile: weight count mismatch");
  }
  if (scales_.size() != out_features) {
    throw std::invalid_argument("DenseTile: expected one scale per output column");
  }

  const device::MicroSiemens delta_g =
      XnorBitcell::delta_conductance(config_.crossbar.mtj);
  unit_current_ = config_.crossbar.read_voltage * delta_g;
  // Full scale sized so a fully-correlated block cannot clip.
  adc_ = Adc(config_.adc_bits,
             unit_current_ * static_cast<double>(std::min(in_, config_.max_rows)));

  const std::size_t blocks = (in_ + config_.max_rows - 1) / config_.max_rows;
  plus_.reserve(blocks);
  minus_.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t first = b * config_.max_rows;
    const std::size_t rows = std::min(config_.max_rows, in_ - first);
    CrossbarConfig cfg = config_.crossbar;
    cfg.rows = rows;
    cfg.cols = out_;
    auto xb_plus = std::make_unique<Crossbar>(cfg, config_.variability, config_.defects,
                                              seed + 2 * b);
    auto xb_minus = std::make_unique<Crossbar>(cfg, config_.variability, config_.defects,
                                               seed + 2 * b + 1);
    // Differential programming: w=+1 -> (P, AP); w=-1 -> (AP, P).
    std::vector<float> w_plus(rows * out_);
    std::vector<float> w_minus(rows * out_);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < out_; ++c) {
        const float w = binary_weights[(first + r) * out_ + c];
        w_plus[r * out_ + c] = w;
        w_minus[r * out_ + c] = -w;
      }
    }
    xb_plus->program_binary(w_plus);
    xb_minus->program_binary(w_minus);
    plus_.push_back(std::move(xb_plus));
    minus_.push_back(std::move(xb_minus));
  }
  plus_state_.resize(plus_.size());
  minus_state_.resize(minus_.size());
}

DenseTile::DenseTile(const DenseTile& other)
    : config_(other.config_),
      in_(other.in_),
      out_(other.out_),
      scales_(other.scales_),
      adc_(other.adc_),
      sense_amp_(other.sense_amp_),
      unit_current_(other.unit_current_) {
  plus_.reserve(other.plus_.size());
  minus_.reserve(other.minus_.size());
  for (const auto& xb : other.plus_) {
    plus_.push_back(std::make_unique<Crossbar>(*xb));
  }
  for (const auto& xb : other.minus_) {
    minus_.push_back(std::make_unique<Crossbar>(*xb));
  }
  // Delta state is not copied: it only caches the previous pass, and the
  // clone has not run one yet.
  plus_state_.resize(plus_.size());
  minus_state_.resize(minus_.size());
}

std::size_t DenseTile::cell_count() const {
  std::size_t n = 0;
  for (const auto& xb : plus_) {
    n += xb->rows() * xb->cols();
  }
  return n;
}

void DenseTile::inject_defects(const device::DefectRates& rates, std::uint64_t seed) {
  for (std::size_t b = 0; b < plus_.size(); ++b) {
    const device::DefectMap plus_map(plus_[b]->rows(), plus_[b]->cols(), rates,
                                     seed + 101 * b);
    const device::DefectMap minus_map(minus_[b]->rows(), minus_[b]->cols(), rates,
                                      seed + 101 * b + 57);
    for (std::size_t r = 0; r < plus_[b]->rows(); ++r) {
      for (std::size_t c = 0; c < plus_[b]->cols(); ++c) {
        // Logical, remap-aware routing: a burst after a repair hits the
        // lines actually in use, not abandoned physical lines.
        if (plus_map.at(r, c) != device::DefectKind::kNone) {
          plus_[b]->inject_defect(r, c, plus_map.at(r, c));
        }
        if (minus_map.at(r, c) != device::DefectKind::kNone) {
          minus_[b]->inject_defect(r, c, minus_map.at(r, c));
        }
      }
    }
    // The cached trees were built against the old defect map.
    plus_state_[b].invalidate();
    minus_state_[b].invalidate();
  }
}

void DenseTile::inject_cell_defect(std::size_t block, bool plus_plane, std::size_t row,
                                   std::size_t col, device::DefectKind kind) {
  if (block >= plus_.size() || row >= plus_[block]->rows() ||
      col >= plus_[block]->cols()) {
    throw std::out_of_range("DenseTile::inject_cell_defect: cell out of range");
  }
  (plus_plane ? plus_ : minus_)[block]->inject_defect(row, col, kind);
  plus_state_[block].invalidate();
  minus_state_[block].invalidate();
}

void DenseTile::apply_drift(double magnitude, std::uint64_t seed) {
  if (magnitude <= 0.0) {
    return;
  }
  for (std::size_t b = 0; b < plus_.size(); ++b) {
    plus_[b]->apply_drift(magnitude, seed + 2 * b);
    minus_[b]->apply_drift(magnitude, seed + 2 * b + 1);
    plus_state_[b].invalidate();
    minus_state_[b].invalidate();
  }
  // The read-out chain ages with the array: the ADC's input-referred
  // offset random-walks by a fraction of an LSB per drift epoch.
  if (config_.readout == Readout::kAdc) {
    std::mt19937_64 engine(seed ^ 0xadc0ff5e7ULL);
    std::normal_distribution<double> step(0.0, 1.0);
    adc_.set_offset(adc_.offset() + magnitude * adc_.lsb() * step(engine));
  }
}

std::size_t DenseTile::recalibrate() {
  std::size_t moved = 0;
  for (std::size_t b = 0; b < plus_.size(); ++b) {
    moved += plus_[b]->recalibrate();
    moved += minus_[b]->recalibrate();
    plus_state_[b].invalidate();
    minus_state_[b].invalidate();
  }
  adc_.set_offset(0.0);
  return moved;
}

bool DenseTile::remap_row(std::size_t block, std::size_t row) {
  if (block >= plus_.size() || row >= plus_[block]->rows()) {
    return false;
  }
  if (plus_[block]->spare_rows_available() == 0 ||
      minus_[block]->spare_rows_available() == 0) {
    return false;
  }
  const bool ok_plus = plus_[block]->remap_row(row);
  const bool ok_minus = minus_[block]->remap_row(row);
  plus_state_[block].invalidate();
  minus_state_[block].invalidate();
  return ok_plus && ok_minus;
}

bool DenseTile::remap_col(std::size_t block, std::size_t col) {
  if (block >= plus_.size() || col >= plus_[block]->cols()) {
    return false;
  }
  if (plus_[block]->spare_cols_available() == 0 ||
      minus_[block]->spare_cols_available() == 0) {
    return false;
  }
  const bool ok_plus = plus_[block]->remap_col(col);
  const bool ok_minus = minus_[block]->remap_col(col);
  plus_state_[block].invalidate();
  minus_state_[block].invalidate();
  return ok_plus && ok_minus;
}

namespace {

/// Cycle-to-cycle multiplicative read noise, applied after summation — the
/// same per-column draw order (and a fresh distribution per plane, like
/// Crossbar::mac_noisy) whichever evaluation mode computed the currents,
/// so the engine stream is identical across modes.
void apply_read_noise(std::vector<device::MicroAmp>& currents,
                      std::mt19937_64& engine, double sigma) {
  std::normal_distribution<double> noise(1.0, sigma);
  for (auto& i : currents) {
    i *= noise(engine);
  }
}

}  // namespace

std::vector<float> DenseTile::forward(std::span<const float> input,
                                      energy::EnergyLedger* ledger,
                                      std::mt19937_64& engine) {
  const std::vector<std::uint8_t> all_enabled(in_, 1);
  return forward_gated(input, all_enabled, ledger, engine);
}

std::vector<float> DenseTile::forward_gated(std::span<const float> input,
                                            std::span<const std::uint8_t> row_enabled,
                                            energy::EnergyLedger* ledger,
                                            std::mt19937_64& engine) {
  if (input.size() != in_ || row_enabled.size() != in_) {
    throw std::invalid_argument("DenseTile::forward: expected " + std::to_string(in_) +
                                " inputs, got " + std::to_string(input.size()));
  }
  // Cross-block partial-sum accumulation runs through the Fig. 2
  // accumulator-adder. Its ledger hook stays disconnected: the digital
  // adds are charged explicitly below (ADC path, blocks after the first
  // only — the first block's write is a register load), and in sense-amp
  // mode the adder stands in value-for-value for the shared analog
  // accumulation line, which costs nothing per block.
  AccumulatorAdder accumulator(out_);
  std::vector<double> partial(out_, 0.0);
  for (std::size_t b = 0; b < plus_.size(); ++b) {
    const std::size_t first = b * config_.max_rows;
    const std::size_t rows = plus_[b]->rows();
    // Word-line decode (§III-A.1): gating arrives as enabled address
    // ranges — SpinDrop neuron pairs and Spatial-SpinDrop K*K channel
    // groups are contiguous by construction — and the decoder masks the
    // drive voltages of everything else to exact zero.
    WordlineDecoder decoder(rows);
    for (std::size_t r = 0; r < rows;) {
      if (!row_enabled[first + r]) {
        ++r;
        continue;
      }
      std::size_t run = r;
      while (run < rows && row_enabled[first + run]) {
        ++run;
      }
      decoder.enable_range(r, run - r);
      r = run;
    }
    std::vector<Volt> voltages(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      voltages[r] =
          config_.crossbar.read_voltage * static_cast<double>(input[first + r]);
    }
    decoder.apply(voltages);
    std::size_t active = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      if (voltages[r] != 0.0) {
        ++active;
      }
    }
    auto i_plus = plus_state_[b].mac(*plus_[b], voltages, config_.eval_mode,
                                     delta_stats_);
    auto i_minus = minus_state_[b].mac(*minus_[b], voltages, config_.eval_mode,
                                       delta_stats_);
    if (config_.read_noise_sigma > 0.0) {
      apply_read_noise(i_plus, engine, config_.read_noise_sigma);
      apply_read_noise(i_minus, engine, config_.read_noise_sigma);
    }

    if (ledger != nullptr) {
      ledger->add(energy::Component::kWordlineActivation, active);
      ledger->add(energy::Component::kInputDriver, active);
      ledger->add(energy::Component::kXbarCellRead, 2 * active * out_);
      if (config_.readout == Readout::kAdc) {
        ledger->add(energy::Component::kAdcConversion, out_);
        if (b > 0) {
          ledger->add(energy::Component::kDigitalAdd, out_);
        }
      }
    }
    for (std::size_t c = 0; c < out_; ++c) {
      const double diff = i_plus[c] - i_minus[c];
      if (config_.readout == Readout::kAdc) {
        partial[c] = adc_.quantize(diff) / unit_current_;
      } else {
        // Sense-amp path: analog partial sums share the accumulation line;
        // digitization happens once per column after the last block.
        partial[c] = diff;
      }
    }
    accumulator.accumulate(partial);
  }
  const std::vector<double>& accumulated = accumulator.value();
  std::vector<float> output(out_);
  if (config_.readout == Readout::kSenseAmp) {
    if (ledger != nullptr) {
      ledger->add(energy::Component::kSenseAmp, out_);
    }
    for (std::size_t c = 0; c < out_; ++c) {
      output[c] = sense_amp_.evaluate(accumulated[c]) * scales_[c];
    }
    return output;
  }
  if (ledger != nullptr) {
    ledger->add(energy::Component::kDigitalMult, out_);  // per-column scale
  }
  for (std::size_t c = 0; c < out_; ++c) {
    output[c] = static_cast<float>(accumulated[c]) * scales_[c];
  }
  return output;
}

}  // namespace neuspin::xbar
