// Layer tile: the hardware execution unit for one binary dense layer
// (and, via im2col, for conv layers).
//
// A tile programs an (in x out) +-1 weight matrix into differential
// crossbar pairs (XNOR bit-cells), splitting tall matrices into row blocks
// of at most `max_rows`. A forward pass drives the input as analog row
// voltages, reads differential column currents per block, digitizes them
// (multi-bit ADC or 1-bit sense amp), accumulates blocks digitally, and
// applies the per-column scale factors.
//
// All chargeable events are recorded into an optional EnergyLedger, so the
// same forward path produces both the numerics and the energy census.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "device/defects.h"
#include "device/variability.h"
#include "energy/accountant.h"
#include "xbar/adc.h"
#include "xbar/crossbar.h"
#include "xbar/event_engine.h"

namespace neuspin::xbar {

/// Column read-out style.
enum class Readout : std::uint8_t {
  kAdc,       ///< multi-bit conversion, output is a quantized weighted sum
  kSenseAmp,  ///< 1-bit sign read-out (binary-activation architectures)
};

/// Tile construction parameters.
struct TileConfig {
  std::size_t max_rows = 128;     ///< physical crossbar height limit
  std::size_t adc_bits = 8;
  Readout readout = Readout::kAdc;
  CrossbarConfig crossbar{};      ///< per-array electrical design point
  /// Cycle-to-cycle multiplicative read-noise sigma (0 disables).
  double read_noise_sigma = 0.0;
  /// How MVMs are evaluated. kEventDriven (the default) re-propagates only
  /// rows whose drive voltage changed since the tile's previous pass;
  /// kFull rebuilds every column from scratch. Bitwise-equal by
  /// construction (see xbar/event_engine.h); energy accounting charges the
  /// full pass either way — the hardware does not skip word lines, only
  /// the simulator skips arithmetic.
  EvalMode eval_mode = EvalMode::kEventDriven;
  /// Device-to-device variability; ideal (all zero) by default so the
  /// nominal tile is exact — non-ideality is opt-in per experiment.
  device::VariabilityParams variability{0.0, 0.0, 0.0};
  device::DefectRates defects{};

  void validate() const;
};

/// One binary dense layer mapped onto crossbar hardware.
class DenseTile {
 public:
  /// Program a tile from +-1 weights (row-major, in x out) and per-column
  /// scales. `seed` drives variability/defect draws for all sub-arrays.
  DenseTile(const TileConfig& config, std::size_t in_features, std::size_t out_features,
            std::span<const float> binary_weights, std::span<const float> scales,
            std::uint64_t seed);

  /// Deep copy preserving every programmed cell, variability draw and
  /// defect — including defects injected after construction. Replicating
  /// a tile for a worker thread through clone() gives the same bits as
  /// rebuilding it from (weights, config, seed) without re-running the
  /// whole programming pass.
  DenseTile(const DenseTile& other);
  DenseTile& operator=(const DenseTile&) = delete;
  DenseTile(DenseTile&&) = default;
  DenseTile& operator=(DenseTile&&) = default;
  [[nodiscard]] std::unique_ptr<DenseTile> clone() const {
    return std::make_unique<DenseTile>(*this);
  }

  /// Hardware forward pass for one input vector. Values are interpreted as
  /// multiples of the read voltage (binary nets drive exactly +-1).
  /// Events are recorded into `ledger` when non-null. Non-const: the tile
  /// keeps per-block delta state between passes (config().eval_mode).
  [[nodiscard]] std::vector<float> forward(std::span<const float> input,
                                           energy::EnergyLedger* ledger,
                                           std::mt19937_64& engine);

  /// Forward pass with per-row gating: rows whose `row_enabled` flag is
  /// false contribute nothing (SpinDrop / Spatial-SpinDrop dropout path).
  [[nodiscard]] std::vector<float> forward_gated(std::span<const float> input,
                                                 std::span<const std::uint8_t> row_enabled,
                                                 energy::EnergyLedger* ledger,
                                                 std::mt19937_64& engine);

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }
  [[nodiscard]] std::size_t block_count() const { return plus_.size(); }
  [[nodiscard]] const TileConfig& config() const { return config_; }

  /// Total differential cell pairs across all blocks.
  [[nodiscard]] std::size_t cell_count() const;

  /// Inject additional stuck-at defects into every block (fault-injection
  /// experiments). `rate` is the per-cell probability for each plane.
  /// Invalidates the cached delta state — the next pass re-propagates
  /// every row against the new defect map.
  void inject_defects(const device::DefectRates& rates, std::uint64_t seed);

  /// Targeted injection into one cell of one plane of one block (logical
  /// indices, routed through the current remap). `plus_plane` selects the
  /// G+ (true) or G- (false) plane. Invalidates that block's delta state.
  void inject_cell_defect(std::size_t block, bool plus_plane, std::size_t row,
                          std::size_t col, device::DefectKind kind);

  // --- Self-healing -------------------------------------------------------

  /// One increment of conductance drift on every plane plus an ADC-offset
  /// random walk (see Crossbar::apply_drift); deterministic in `seed`,
  /// compounding across calls.
  void apply_drift(double magnitude, std::uint64_t seed);

  /// Re-program every plane to its reference conductances and zero the ADC
  /// offset (program-verify + offset cal against a grounded input).
  /// Returns the number of cells whose conductance moved.
  std::size_t recalibrate();

  /// Remap logical row `row` of block `block` (or logical column `col`,
  /// which lives per block too) onto spare lines in BOTH planes.
  /// All-or-nothing: fails without side effects when either plane is out
  /// of spares. Invalidates the block's delta state on success.
  bool remap_row(std::size_t block, std::size_t row);
  bool remap_col(std::size_t block, std::size_t col);

  /// Read-only plane access for health probing (golden references and
  /// measured conductances).
  [[nodiscard]] const Crossbar& plus_plane(std::size_t block) const {
    return *plus_[block];
  }
  [[nodiscard]] const Crossbar& minus_plane(std::size_t block) const {
    return *minus_[block];
  }
  [[nodiscard]] const Adc& adc() const { return adc_; }
  [[nodiscard]] double unit_current() const { return unit_current_; }

  /// Accumulated event-engine work census since construction (or the last
  /// reset): how much row propagation the delta cache skipped.
  [[nodiscard]] const DeltaStats& delta_stats() const { return delta_stats_; }
  void reset_delta_stats() { delta_stats_ = DeltaStats{}; }

 private:
  TileConfig config_;
  std::size_t in_;
  std::size_t out_;
  std::vector<float> scales_;
  /// Differential planes per row-block.
  std::vector<std::unique_ptr<Crossbar>> plus_;
  std::vector<std::unique_ptr<Crossbar>> minus_;
  /// Delta-evaluation state shadowing each plane (never cloned: a fresh
  /// replica re-propagates everything on its first pass).
  std::vector<EventMac> plus_state_;
  std::vector<EventMac> minus_state_;
  DeltaStats delta_stats_;
  Adc adc_;
  SenseAmp sense_amp_;
  /// Current-to-weighted-sum conversion factor: V_read * dG (uA per unit).
  double unit_current_;
};

}  // namespace neuspin::xbar
