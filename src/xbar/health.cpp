#include "xbar/health.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace neuspin::xbar {

double ProbeReport::health_score() const {
  if (!swept) {
    return canary_ok && !adc_offset_detected ? 1.0 : 0.0;
  }
  if (cells_checked == 0) {
    return 1.0;
  }
  return 1.0 - static_cast<double>(cells_faulty) / static_cast<double>(cells_checked);
}

void HealthReport::fold(const ProbeReport& report) {
  ++tiles;
  if (!report.healthy()) {
    ++tiles_faulty;
  }
  cells_checked += report.cells_checked;
  cells_faulty += report.cells_faulty;
  drift_suspected = drift_suspected || report.drift_suspected;
  min_tile_score = std::min(min_tile_score, report.health_score());
}

void HealSummary::fold(const HealSummary& other) {
  rows_remapped += other.rows_remapped;
  cols_remapped += other.cols_remapped;
  lines_unrepairable += other.lines_unrepairable;
  cells_recalibrated += other.cells_recalibrated;
  healthy_after = healthy_after && other.healthy_after;
}

namespace {

/// Golden all-rows column currents from the reference conductances, with
/// the exact summation order of Crossbar::mac so a healthy plane matches
/// bitwise, not just within tolerance.
std::vector<double> golden_all_rows(const Crossbar& xb, Volt v) {
  std::vector<double> currents(xb.cols(), 0.0);
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    for (std::size_t c = 0; c < xb.cols(); ++c) {
      currents[c] += v * xb.reference_conductance(r, c);
    }
  }
  const double attenuation = xb.ir_drop_factor(xb.rows());
  for (auto& i : currents) {
    i *= attenuation;
  }
  return currents;
}

bool canary_plane_ok(const Crossbar& xb, Volt v, double tolerance_ua) {
  const std::vector<Volt> drive(xb.rows(), v);
  const auto measured = xb.mac(drive);
  const auto golden = golden_all_rows(xb, v);
  for (std::size_t c = 0; c < xb.cols(); ++c) {
    if (std::abs(measured[c] - golden[c]) > tolerance_ua) {
      return false;
    }
  }
  return true;
}

/// Deterministic greedy line cover of the stuck cells of one block:
/// repeatedly quarantine the row or column explaining the most uncovered
/// cells (rows beat columns on ties, lower index beats higher).
void cover_block(std::size_t block, std::size_t rows, std::size_t cols,
                 std::vector<std::pair<std::size_t, std::size_t>> stuck,
                 std::vector<LineFault>& faulty_rows,
                 std::vector<LineFault>& faulty_cols) {
  while (!stuck.empty()) {
    std::vector<std::size_t> row_count(rows, 0);
    std::vector<std::size_t> col_count(cols, 0);
    for (const auto& [r, c] : stuck) {
      ++row_count[r];
      ++col_count[c];
    }
    std::size_t best_row = 0;
    std::size_t best_col = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      if (row_count[r] > row_count[best_row]) {
        best_row = r;
      }
    }
    for (std::size_t c = 0; c < cols; ++c) {
      if (col_count[c] > col_count[best_col]) {
        best_col = c;
      }
    }
    const bool pick_row = row_count[best_row] >= col_count[best_col];
    const std::size_t covered = pick_row ? row_count[best_row] : col_count[best_col];
    if (pick_row) {
      faulty_rows.push_back(LineFault{block, best_row, covered});
    } else {
      faulty_cols.push_back(LineFault{block, best_col, covered});
    }
    std::erase_if(stuck, [&](const auto& cell) {
      return pick_row ? cell.first == best_row : cell.second == best_col;
    });
  }
}

}  // namespace

ProbeReport probe_tile(const DenseTile& tile, const ProbeConfig& config) {
  ProbeReport report;
  const double unit = tile.unit_current();
  const Volt v = tile.config().crossbar.read_voltage;
  const double canary_tol = config.canary_tolerance * unit;
  for (std::size_t b = 0; b < tile.block_count(); ++b) {
    if (!canary_plane_ok(tile.plus_plane(b), v, canary_tol) ||
        !canary_plane_ok(tile.minus_plane(b), v, canary_tol)) {
      report.canary_ok = false;
      break;
    }
  }
  // Grounded-input read: a non-zero code on a zero input is read-out
  // offset. Sub-LSB/2 offsets sit below the measurement floor — and below
  // the quantizer's own error — so invisibility there is harmless.
  if (tile.config().readout == Readout::kAdc && tile.adc().quantize(0.0) != 0.0) {
    report.adc_offset_detected = true;
  }
  if (report.canary_ok && !report.adc_offset_detected && !config.force_sweep) {
    return report;
  }

  // Localization sweep. Per-cell conductance deviation carries exactly the
  // information a one-hot row probe measures (currents scale by
  // v * ir_drop_factor(1)), computed in O(cells).
  report.swept = true;
  const double delta_g = unit / v;
  double healthy_dev_sum = 0.0;
  std::size_t healthy_cells = 0;
  for (std::size_t b = 0; b < tile.block_count(); ++b) {
    std::vector<std::pair<std::size_t, std::size_t>> stuck;
    for (const Crossbar* xb : {&tile.plus_plane(b), &tile.minus_plane(b)}) {
      for (std::size_t r = 0; r < xb->rows(); ++r) {
        for (std::size_t c = 0; c < xb->cols(); ++c) {
          const double dev =
              std::abs(xb->conductance(r, c) - xb->reference_conductance(r, c)) /
              delta_g;
          ++report.cells_checked;
          report.max_deviation = std::max(report.max_deviation, dev);
          if (dev > config.cell_tolerance) {
            ++report.cells_faulty;
            stuck.emplace_back(r, c);
          } else {
            healthy_dev_sum += dev;
            ++healthy_cells;
          }
        }
      }
    }
    // Both planes share word lines and bit lines through the differential
    // pair, so covers merge across planes: one spare line repairs both.
    std::sort(stuck.begin(), stuck.end());
    stuck.erase(std::unique(stuck.begin(), stuck.end()), stuck.end());
    cover_block(b, tile.plus_plane(b).rows(), tile.plus_plane(b).cols(),
                std::move(stuck), report.faulty_rows, report.faulty_cols);
  }
  if (healthy_cells > 0) {
    report.mean_deviation = healthy_dev_sum / static_cast<double>(healthy_cells);
  }
  report.drift_suspected = report.mean_deviation > config.drift_tolerance;
  return report;
}

HealSummary heal_tile(DenseTile& tile, const ProbeConfig& config) {
  ProbeConfig swept = config;
  swept.force_sweep = true;
  const ProbeReport before = probe_tile(tile, swept);

  HealSummary summary;
  for (const LineFault& f : before.faulty_rows) {
    if (tile.remap_row(f.block, f.index)) {
      ++summary.rows_remapped;
    } else {
      ++summary.lines_unrepairable;
    }
  }
  for (const LineFault& f : before.faulty_cols) {
    if (tile.remap_col(f.block, f.index)) {
      ++summary.cols_remapped;
    } else {
      ++summary.lines_unrepairable;
    }
  }
  // Reprogram-verify every plane and zero the ADC offset. Runs even when
  // only lines were remapped: the spare lines were programmed from the
  // reference weights, everything else re-verifies as a no-op.
  summary.cells_recalibrated = tile.recalibrate();

  const ProbeReport after = probe_tile(tile, swept);
  summary.healthy_after = after.healthy();
  return summary;
}

}  // namespace neuspin::xbar
