// Online tile health: canary probing, fault localization, and healing.
//
// A probe compares what the array measures against what it was programmed
// to hold. Every crossbar keeps its programmed-target (reference)
// conductances (Crossbar::reference_conductance), so golden outputs are
// computable for any probe vector. Two probe stages:
//
//   1. Canary — one all-rows MVM per plane per block through the real
//      electrical path (Crossbar::mac), compared column-by-column against
//      the golden currents computed from the references with the same
//      summation order. On a healthy, undrifted tile the two are bitwise
//      equal, so the canary tolerance only has to reject measurement
//      floors, not model error. A grounded-input ADC read checks for
//      read-out offset drift.
//   2. Localization sweep — per-cell comparison of measured vs reference
//      conductance. A one-hot row probe of row r yields column currents
//      v * G(r,c) * ir_drop_factor(1), so comparing per-cell conductances
//      is exactly the information |rows| one-hot MVMs would measure,
//      computed in O(cells) instead of O(rows * cells) (pinned equivalent
//      by test). Cells deviating beyond `cell_tolerance` are stuck; a
//      raised mean deviation over the remaining cells is drift.
//
// Faulty cells are quarantined at line granularity (that is what spare
// lines can replace): a deterministic greedy cover picks the row/column
// explaining the most uncovered faulty cells (rows win ties, then the
// lower index), matching how memory BIST allocates spares.
//
// heal_tile() = probe -> remap quarantined lines onto spares (both planes,
// weights reprogrammed) -> recalibrate drift + ADC offset -> re-probe.
// After a successful heal the tile is bitwise-equal to a fresh defect-free
// tile over healthy cells (pinned by tests/health_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "xbar/tile.h"

namespace neuspin::xbar {

/// Probe thresholds. Conductance tolerances are fractions of the nominal
/// on/off conductance split (delta G), current tolerances are fractions of
/// the tile's unit current — both voltage- and geometry-independent.
struct ProbeConfig {
  /// Canary: max |measured - golden| column current, in unit currents.
  double canary_tolerance = 0.05;
  /// Sweep: |G_measured - G_reference| above this fraction of delta G
  /// classifies the cell as stuck.
  double cell_tolerance = 0.25;
  /// Sweep: mean |G_measured - G_reference| of non-stuck cells above this
  /// fraction of delta G flags drift (schedules recalibration).
  double drift_tolerance = 0.02;
  /// Run the localization sweep even when the canary passes.
  bool force_sweep = false;
};

/// One quarantined line of one row block.
struct LineFault {
  std::size_t block = 0;
  /// Row index within the block, or logical column index.
  std::size_t index = 0;
  /// Faulty cells this line covered when it was picked (both planes).
  std::size_t faulty_cells = 0;
};

/// Result of probing one tile.
struct ProbeReport {
  bool canary_ok = true;
  /// Grounded-input ADC read returned a non-zero code (offset drift).
  bool adc_offset_detected = false;
  bool swept = false;
  std::size_t cells_checked = 0;  ///< both planes, all blocks
  std::size_t cells_faulty = 0;
  double max_deviation = 0.0;   ///< max |dG| / delta G over swept cells
  double mean_deviation = 0.0;  ///< mean |dG| / delta G over non-stuck cells
  bool drift_suspected = false;
  std::vector<LineFault> faulty_rows;
  std::vector<LineFault> faulty_cols;

  [[nodiscard]] bool healthy() const {
    return canary_ok && !adc_offset_detected && cells_faulty == 0 &&
           !drift_suspected;
  }
  /// Structural health in [0,1]: fraction of probed cells on spec. Without
  /// a sweep the canary verdict is all the information there is.
  [[nodiscard]] double health_score() const;
};

/// Aggregate over a model's tiles. The score is worst-tile: one sick tile
/// corrupts every answer routed through it, so averaging would hide it.
struct HealthReport {
  std::size_t tiles = 0;
  std::size_t tiles_faulty = 0;
  std::size_t cells_checked = 0;
  std::size_t cells_faulty = 0;
  bool drift_suspected = false;
  double min_tile_score = 1.0;

  void fold(const ProbeReport& report);
  [[nodiscard]] bool healthy() const {
    return tiles_faulty == 0 && !drift_suspected;
  }
  [[nodiscard]] double score() const { return min_tile_score; }
};

/// What healing did to one tile (or, folded, to a whole model).
struct HealSummary {
  std::size_t rows_remapped = 0;
  std::size_t cols_remapped = 0;
  /// Quarantined lines left in place because spares ran out.
  std::size_t lines_unrepairable = 0;
  std::size_t cells_recalibrated = 0;
  /// The post-heal probe came back clean.
  bool healthy_after = true;

  void fold(const HealSummary& other);
};

/// Canary probe; runs the localization sweep when the canary fails (or
/// config.force_sweep is set).
[[nodiscard]] ProbeReport probe_tile(const DenseTile& tile, const ProbeConfig& config);

/// Probe, remap quarantined lines, recalibrate, re-probe. The tile keeps
/// serving correct-over-healthy-cells answers immediately after return;
/// `healthy_after == false` means a replacement (re-clone) is needed.
[[nodiscard]] HealSummary heal_tile(DenseTile& tile, const ProbeConfig& config);

}  // namespace neuspin::xbar
