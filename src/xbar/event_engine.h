// Event-driven crossbar evaluation (ROADMAP item 2).
//
// A Monte-Carlo pass over a tiled network re-drives every tile with an
// input vector that is usually ALMOST the input of the previous pass: the
// first layer sees the identical request row T times, hidden layers change
// only where a sign activation or a dropout draw flipped. Re-simulating
// every bit-line from scratch wastes the work that did not change, so this
// engine re-propagates only the rows whose drive voltage differs from the
// cached previous pass — the EventSim idea applied to analog MVMs.
//
// Bitwise contract. Floating-point addition is not associative, so an
// incremental "subtract the old contribution, add the new one" update
// would drift from a from-scratch evaluation by ULPs. Instead each column
// keeps its row products in a fixed pairwise-sum tree: level 0 holds the
// per-row products v_r * G_rc, every higher level pairwise-sums the level
// below (an odd tail element passes through unchanged), and the root is
// the column current before IR attenuation. Re-evaluating a dirty row
// recomputes its leaf and the O(log rows) ancestors above it — through the
// SAME additions, in the SAME order, as rebuilding the whole tree. Full
// and event-driven evaluation are therefore bitwise-equal by construction,
// and tests pin it the way Conv2d::Algo pins direct-vs-im2col.
//
// Energy accounting is NOT affected: the hardware still drives every
// active word line each pass, so tiles charge the ledger as if fully
// evaluated. The skipped work is simulator time only, reported separately
// through DeltaStats.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "xbar/crossbar.h"

namespace neuspin::xbar {

/// How a tile evaluates its crossbar MVMs.
enum class EvalMode : std::uint8_t {
  kFull,         ///< rebuild every leaf each pass (the reference)
  kEventDriven,  ///< re-propagate only rows whose voltage changed
};

[[nodiscard]] std::string eval_mode_name(EvalMode mode);

/// Simulator-side work census of the event engine. `rows_total` counts the
/// rows a full evaluation would have propagated; `rows_dirty` the rows the
/// engine actually propagated. Their gap is the saved simulation work.
struct DeltaStats {
  std::uint64_t evaluations = 0;  ///< plane MVMs evaluated
  std::uint64_t rows_total = 0;   ///< rows a full evaluation would touch
  std::uint64_t rows_dirty = 0;   ///< rows actually re-propagated

  /// Fraction of row propagations skipped (0 when nothing ran yet).
  [[nodiscard]] double skip_ratio() const {
    return rows_total == 0
               ? 0.0
               : 1.0 - static_cast<double>(rows_dirty) /
                           static_cast<double>(rows_total);
  }

  DeltaStats& operator+=(const DeltaStats& other) {
    evaluations += other.evaluations;
    rows_total += other.rows_total;
    rows_dirty += other.rows_dirty;
    return *this;
  }
};

/// Delta-evaluation state for ONE conductance plane: the cached drive
/// voltages plus the pairwise-sum tree of every column. Owned by the tile
/// alongside the Crossbar it shadows; reads conductances through the
/// crossbar's public defect-aware accessor, so it must be invalidated
/// whenever the programmed state or the defect map changes.
class EventMac {
 public:
  /// Column currents (uA, IR drop applied) of `xb` under `row_voltages`.
  /// kFull discards the cache and rebuilds every leaf; kEventDriven
  /// re-propagates only rows whose voltage changed bitwise since the last
  /// call. Both modes reduce through the identical tree.
  [[nodiscard]] std::vector<MicroAmp> mac(const Crossbar& xb,
                                          std::span<const Volt> row_voltages,
                                          EvalMode mode, DeltaStats& stats);

  /// Drop the cached state (programmed cells or defects changed).
  void invalidate() { valid_ = false; }

 private:
  void rebuild(const Crossbar& xb, std::span<const Volt> v);
  void propagate_row(const Crossbar& xb, std::span<const Volt> v, std::size_t row);

  bool valid_ = false;
  std::vector<Volt> last_v_;
  /// levels_[0]: rows x cols leaf products; levels_[k]: ceil(prev/2) x cols
  /// pairwise sums; levels_.back(): 1 x cols raw column currents.
  std::vector<std::vector<double>> levels_;
};

}  // namespace neuspin::xbar
