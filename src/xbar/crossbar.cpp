#include "xbar/crossbar.h"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace neuspin::xbar {

void CrossbarConfig::validate() const {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("CrossbarConfig: dimensions must be positive");
  }
  mtj.validate();
  if (read_voltage <= 0.0) {
    throw std::invalid_argument("CrossbarConfig: read_voltage must be positive");
  }
  if (wire_resistance < 0.0) {
    throw std::invalid_argument("CrossbarConfig: wire_resistance must be non-negative");
  }
}

void Crossbar::init_maps() {
  pcols_ = physical_cols();
  row_map_.resize(config_.rows);
  col_map_.resize(config_.cols);
  std::iota(row_map_.begin(), row_map_.end(), std::size_t{0});
  std::iota(col_map_.begin(), col_map_.end(), std::size_t{0});
}

Crossbar::Crossbar(const CrossbarConfig& config)
    : config_(config),
      g_parallel_((config.rows + config.spare_rows) * (config.cols + config.spare_cols),
                  device::conductance_from_kohm(config.mtj.r_parallel)),
      g_antiparallel_(
          (config.rows + config.spare_rows) * (config.cols + config.spare_cols),
          device::conductance_from_kohm(config.mtj.r_antiparallel())),
      state_((config.rows + config.spare_rows) * (config.cols + config.spare_cols),
             device::MtjState::kAntiParallel),
      defects_(config.rows + config.spare_rows, config.cols + config.spare_cols) {
  config_.validate();
  init_maps();
}

Crossbar::Crossbar(const CrossbarConfig& config,
                   const device::VariabilityParams& variability,
                   const device::DefectRates& defects, std::uint64_t seed)
    : config_(config),
      g_parallel_((config.rows + config.spare_rows) *
                  (config.cols + config.spare_cols)),
      g_antiparallel_((config.rows + config.spare_rows) *
                      (config.cols + config.spare_cols)),
      state_((config.rows + config.spare_rows) * (config.cols + config.spare_cols),
             device::MtjState::kAntiParallel),
      defects_(config.rows + config.spare_rows, config.cols + config.spare_cols,
               defects, seed ^ 0x9e3779b97f4a7c15ULL) {
  config_.validate();
  init_maps();
  device::VariabilityModel model(variability, seed);
  const MicroSiemens g_p = device::conductance_from_kohm(config.mtj.r_parallel);
  const MicroSiemens g_ap = device::conductance_from_kohm(config.mtj.r_antiparallel());
  for (std::size_t i = 0; i < g_parallel_.size(); ++i) {
    // Log-normal resistance factor scales both states (barrier thickness
    // shifts P and AP together); conductance scales inversely.
    const double factor = model.sample_resistance_factor();
    g_parallel_[i] = g_p / factor;
    g_antiparallel_[i] = g_ap / factor;
  }
}

void Crossbar::program(std::size_t row, std::size_t col, device::MtjState state) {
  if (row >= config_.rows || col >= config_.cols) {
    throw std::out_of_range("Crossbar::program: cell (" + std::to_string(row) + "," +
                            std::to_string(col) + ") out of range");
  }
  state_[row_map_[row] * pcols_ + col_map_[col]] = state;
}

void Crossbar::program_binary(std::span<const float> weights) {
  if (weights.size() != config_.rows * config_.cols) {
    throw std::invalid_argument("Crossbar::program_binary: expected " +
                                std::to_string(config_.rows * config_.cols) +
                                " weights, got " + std::to_string(weights.size()));
  }
  for (std::size_t r = 0; r < config_.rows; ++r) {
    const std::size_t base = row_map_[r] * pcols_;
    for (std::size_t c = 0; c < config_.cols; ++c) {
      state_[base + col_map_[c]] = weights[r * config_.cols + c] >= 0.0f
                                       ? device::MtjState::kParallel
                                       : device::MtjState::kAntiParallel;
    }
  }
}

MicroSiemens Crossbar::cell_conductance(std::size_t phys_row,
                                        std::size_t phys_col) const {
  const std::size_t i = phys_row * pcols_ + phys_col;
  const double factor = drift_.empty() ? 1.0 : drift_[i];
  const MicroSiemens gp = g_parallel_[i] * factor;
  const MicroSiemens gap = g_antiparallel_[i] * factor;
  const MicroSiemens healthy = state_[i] == device::MtjState::kParallel ? gp : gap;
  return defects_.effective_conductance(phys_row, phys_col, healthy, gp, gap,
                                        config_.short_conductance);
}

MicroSiemens Crossbar::conductance(std::size_t row, std::size_t col) const {
  return cell_conductance(row_map_[row], col_map_[col]);
}

MicroSiemens Crossbar::reference_conductance(std::size_t row, std::size_t col) const {
  const std::size_t i = row_map_[row] * pcols_ + col_map_[col];
  return state_[i] == device::MtjState::kParallel ? g_parallel_[i]
                                                  : g_antiparallel_[i];
}

device::MtjState Crossbar::programmed_state(std::size_t row, std::size_t col) const {
  return state_[row_map_[row] * pcols_ + col_map_[col]];
}

void Crossbar::inject_defect(std::size_t row, std::size_t col,
                             device::DefectKind kind) {
  defects_.set(row_map_[row], col_map_[col], kind);
}

device::DefectKind Crossbar::defect_at(std::size_t row, std::size_t col) const {
  return defects_.at(row_map_[row], col_map_[col]);
}

bool Crossbar::remap_row(std::size_t row) {
  if (row >= config_.rows || spare_rows_used_ >= config_.spare_rows) {
    return false;
  }
  const std::size_t old_phys = row_map_[row];
  const std::size_t new_phys = config_.rows + spare_rows_used_;
  ++spare_rows_used_;
  for (std::size_t c = 0; c < config_.cols; ++c) {
    const std::size_t pc = col_map_[c];
    state_[new_phys * pcols_ + pc] = state_[old_phys * pcols_ + pc];
    if (!drift_.empty()) {
      drift_[new_phys * pcols_ + pc] = 1.0;  // freshly programmed
    }
  }
  row_map_[row] = new_phys;
  remapped_ = true;
  return true;
}

bool Crossbar::remap_col(std::size_t col) {
  if (col >= config_.cols || spare_cols_used_ >= config_.spare_cols) {
    return false;
  }
  const std::size_t old_phys = col_map_[col];
  const std::size_t new_phys = config_.cols + spare_cols_used_;
  ++spare_cols_used_;
  for (std::size_t r = 0; r < config_.rows; ++r) {
    const std::size_t base = row_map_[r] * pcols_;
    state_[base + new_phys] = state_[base + old_phys];
    if (!drift_.empty()) {
      drift_[base + new_phys] = 1.0;
    }
  }
  col_map_[col] = new_phys;
  remapped_ = true;
  return true;
}

void Crossbar::apply_drift(double magnitude, std::uint64_t seed) {
  if (magnitude <= 0.0) {
    return;
  }
  if (drift_.empty()) {
    drift_.assign(state_.size(), 1.0);
  }
  std::mt19937_64 engine(seed);
  std::normal_distribution<double> chi(0.0, 1.0);
  for (auto& f : drift_) {
    f *= std::exp(-magnitude * std::abs(chi(engine)));
  }
}

std::size_t Crossbar::recalibrate() {
  if (drift_.empty()) {
    return 0;
  }
  std::size_t moved = 0;
  for (double f : drift_) {
    if (f != 1.0) {
      ++moved;
    }
  }
  drift_.clear();
  return moved;
}

double Crossbar::ir_drop_factor(std::size_t active_rows) const {
  // First-order column IR drop: the column wire of length `rows` carries the
  // summed current of all active rows; the voltage seen by distant cells
  // sags by roughly (wire R per pitch) * rows/2 * G_on * active_rows.
  const MicroSiemens g_on = device::conductance_from_kohm(config_.mtj.r_parallel);
  const double sag = config_.wire_resistance * static_cast<double>(config_.rows) / 2.0 *
                     (g_on / 1000.0) * static_cast<double>(active_rows);
  return 1.0 / (1.0 + sag);
}

std::vector<MicroAmp> Crossbar::mac(std::span<const Volt> row_voltages) const {
  if (row_voltages.size() != config_.rows) {
    throw std::invalid_argument("Crossbar::mac: expected " +
                                std::to_string(config_.rows) + " row voltages, got " +
                                std::to_string(row_voltages.size()));
  }
  std::size_t active = 0;
  for (Volt v : row_voltages) {
    if (v != 0.0) {
      ++active;
    }
  }
  const double attenuation = ir_drop_factor(active);
  // Hoisted: defect_count() walks the whole map, so it must not sit in the
  // per-cell loop.
  const bool has_defects = defects_.defect_count() > 0;
  const bool fast = !has_defects && !remapped_ && drift_.empty();

  std::vector<MicroAmp> currents(config_.cols, 0.0);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    const Volt v = row_voltages[r];
    if (v == 0.0) {
      continue;
    }
    const std::size_t base = row_map_[r] * pcols_;
    if (fast) {
      for (std::size_t c = 0; c < config_.cols; ++c) {
        const std::size_t i = base + c;
        const MicroSiemens g = state_[i] == device::MtjState::kParallel
                                   ? g_parallel_[i]
                                   : g_antiparallel_[i];
        // V [V] * G [uS] = I [uA]
        currents[c] += v * g;
      }
    } else {
      const std::size_t pr = row_map_[r];
      for (std::size_t c = 0; c < config_.cols; ++c) {
        currents[c] += v * cell_conductance(pr, col_map_[c]);
      }
    }
  }
  for (auto& i : currents) {
    i *= attenuation;
  }
  return currents;
}

std::vector<MicroAmp> Crossbar::mac_noisy(std::span<const Volt> row_voltages,
                                          std::mt19937_64& engine,
                                          double read_noise_sigma) const {
  auto currents = mac(row_voltages);
  if (read_noise_sigma > 0.0) {
    std::normal_distribution<double> noise(1.0, read_noise_sigma);
    for (auto& i : currents) {
      i *= noise(engine);
    }
  }
  return currents;
}

MicroSiemens Crossbar::mean_on_conductance() const {
  double s = 0.0;
  for (MicroSiemens g : g_parallel_) {
    s += g;
  }
  return s / static_cast<double>(g_parallel_.size());
}

MicroSiemens Crossbar::mean_off_conductance() const {
  double s = 0.0;
  for (MicroSiemens g : g_antiparallel_) {
    s += g;
  }
  return s / static_cast<double>(g_antiparallel_.size());
}

}  // namespace neuspin::xbar
