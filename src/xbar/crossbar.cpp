#include "xbar/crossbar.h"

#include <stdexcept>
#include <string>

namespace neuspin::xbar {

void CrossbarConfig::validate() const {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("CrossbarConfig: dimensions must be positive");
  }
  mtj.validate();
  if (read_voltage <= 0.0) {
    throw std::invalid_argument("CrossbarConfig: read_voltage must be positive");
  }
  if (wire_resistance < 0.0) {
    throw std::invalid_argument("CrossbarConfig: wire_resistance must be non-negative");
  }
}

Crossbar::Crossbar(const CrossbarConfig& config)
    : config_(config),
      g_parallel_(config.rows * config.cols,
                  device::conductance_from_kohm(config.mtj.r_parallel)),
      g_antiparallel_(config.rows * config.cols,
                      device::conductance_from_kohm(config.mtj.r_antiparallel())),
      state_(config.rows * config.cols, device::MtjState::kAntiParallel),
      defects_(config.rows, config.cols) {
  config_.validate();
}

Crossbar::Crossbar(const CrossbarConfig& config,
                   const device::VariabilityParams& variability,
                   const device::DefectRates& defects, std::uint64_t seed)
    : config_(config),
      g_parallel_(config.rows * config.cols),
      g_antiparallel_(config.rows * config.cols),
      state_(config.rows * config.cols, device::MtjState::kAntiParallel),
      defects_(config.rows, config.cols, defects, seed ^ 0x9e3779b97f4a7c15ULL) {
  config_.validate();
  device::VariabilityModel model(variability, seed);
  const MicroSiemens g_p = device::conductance_from_kohm(config.mtj.r_parallel);
  const MicroSiemens g_ap = device::conductance_from_kohm(config.mtj.r_antiparallel());
  for (std::size_t i = 0; i < g_parallel_.size(); ++i) {
    // Log-normal resistance factor scales both states (barrier thickness
    // shifts P and AP together); conductance scales inversely.
    const double factor = model.sample_resistance_factor();
    g_parallel_[i] = g_p / factor;
    g_antiparallel_[i] = g_ap / factor;
  }
}

void Crossbar::program(std::size_t row, std::size_t col, device::MtjState state) {
  if (row >= config_.rows || col >= config_.cols) {
    throw std::out_of_range("Crossbar::program: cell (" + std::to_string(row) + "," +
                            std::to_string(col) + ") out of range");
  }
  state_[row * config_.cols + col] = state;
}

void Crossbar::program_binary(std::span<const float> weights) {
  if (weights.size() != config_.rows * config_.cols) {
    throw std::invalid_argument("Crossbar::program_binary: expected " +
                                std::to_string(config_.rows * config_.cols) +
                                " weights, got " + std::to_string(weights.size()));
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    state_[i] = weights[i] >= 0.0f ? device::MtjState::kParallel
                                   : device::MtjState::kAntiParallel;
  }
}

MicroSiemens Crossbar::conductance(std::size_t row, std::size_t col) const {
  const std::size_t i = row * config_.cols + col;
  const MicroSiemens healthy = state_[i] == device::MtjState::kParallel
                                   ? g_parallel_[i]
                                   : g_antiparallel_[i];
  return defects_.effective_conductance(row, col, healthy, g_parallel_[i],
                                        g_antiparallel_[i], config_.short_conductance);
}

double Crossbar::ir_drop_factor(std::size_t active_rows) const {
  // First-order column IR drop: the column wire of length `rows` carries the
  // summed current of all active rows; the voltage seen by distant cells
  // sags by roughly (wire R per pitch) * rows/2 * G_on * active_rows.
  const MicroSiemens g_on = device::conductance_from_kohm(config_.mtj.r_parallel);
  const double sag = config_.wire_resistance * static_cast<double>(config_.rows) / 2.0 *
                     (g_on / 1000.0) * static_cast<double>(active_rows);
  return 1.0 / (1.0 + sag);
}

std::vector<MicroAmp> Crossbar::mac(std::span<const Volt> row_voltages) const {
  if (row_voltages.size() != config_.rows) {
    throw std::invalid_argument("Crossbar::mac: expected " +
                                std::to_string(config_.rows) + " row voltages, got " +
                                std::to_string(row_voltages.size()));
  }
  std::size_t active = 0;
  for (Volt v : row_voltages) {
    if (v != 0.0) {
      ++active;
    }
  }
  const double attenuation = ir_drop_factor(active);
  // Hoisted: defect_count() walks the whole map, so it must not sit in the
  // per-cell loop.
  const bool has_defects = defects_.defect_count() > 0;

  std::vector<MicroAmp> currents(config_.cols, 0.0);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    const Volt v = row_voltages[r];
    if (v == 0.0) {
      continue;
    }
    const std::size_t base = r * config_.cols;
    for (std::size_t c = 0; c < config_.cols; ++c) {
      const std::size_t i = base + c;
      MicroSiemens g = state_[i] == device::MtjState::kParallel ? g_parallel_[i]
                                                                : g_antiparallel_[i];
      if (has_defects) {
        g = defects_.effective_conductance(r, c, g, g_parallel_[i], g_antiparallel_[i],
                                           config_.short_conductance);
      }
      // V [V] * G [uS] = I [uA]
      currents[c] += v * g;
    }
  }
  for (auto& i : currents) {
    i *= attenuation;
  }
  return currents;
}

std::vector<MicroAmp> Crossbar::mac_noisy(std::span<const Volt> row_voltages,
                                          std::mt19937_64& engine,
                                          double read_noise_sigma) const {
  auto currents = mac(row_voltages);
  if (read_noise_sigma > 0.0) {
    std::normal_distribution<double> noise(1.0, read_noise_sigma);
    for (auto& i : currents) {
      i *= noise(engine);
    }
  }
  return currents;
}

MicroSiemens Crossbar::mean_on_conductance() const {
  double s = 0.0;
  for (MicroSiemens g : g_parallel_) {
    s += g;
  }
  return s / static_cast<double>(g_parallel_.size());
}

MicroSiemens Crossbar::mean_off_conductance() const {
  double s = 0.0;
  for (MicroSiemens g : g_antiparallel_) {
    s += g;
  }
  return s / static_cast<double>(g_antiparallel_.size());
}

}  // namespace neuspin::xbar
