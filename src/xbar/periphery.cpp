#include "xbar/periphery.h"

namespace neuspin::xbar {

AccumulatorAdder::AccumulatorAdder(std::size_t width, energy::EnergyLedger* ledger)
    : acc_(width, 0.0), ledger_(ledger) {
  if (width == 0) {
    throw std::invalid_argument("AccumulatorAdder: width must be positive");
  }
}

void AccumulatorAdder::accumulate(const std::vector<double>& partial) {
  if (partial.size() != acc_.size()) {
    throw std::invalid_argument("AccumulatorAdder: width mismatch");
  }
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    acc_[i] += partial[i];
  }
  if (ledger_ != nullptr) {
    ledger_->add(energy::Component::kDigitalAdd, acc_.size());
  }
}

void AccumulatorAdder::reset() { std::fill(acc_.begin(), acc_.end(), 0.0); }

AveragingBlock::AveragingBlock(std::size_t width, energy::EnergyLedger* ledger)
    : sum_(width, 0.0), sum_sq_(width, 0.0), ledger_(ledger) {
  if (width == 0) {
    throw std::invalid_argument("AveragingBlock: width must be positive");
  }
}

void AveragingBlock::add_sample(const std::vector<double>& sample) {
  if (sample.size() != sum_.size()) {
    throw std::invalid_argument("AveragingBlock: width mismatch");
  }
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    sum_[i] += sample[i];
    sum_sq_[i] += sample[i] * sample[i];
  }
  ++count_;
  if (ledger_ != nullptr) {
    // One add per lane for the running sum; the square path costs a mult.
    ledger_->add(energy::Component::kDigitalAdd, sum_.size());
    ledger_->add(energy::Component::kDigitalMult, sum_.size());
  }
}

std::vector<double> AveragingBlock::mean() const {
  if (count_ == 0) {
    throw std::logic_error("AveragingBlock: no samples added");
  }
  std::vector<double> m(sum_.size());
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    m[i] = sum_[i] / static_cast<double>(count_);
  }
  return m;
}

std::vector<double> AveragingBlock::variance() const {
  if (count_ < 2) {
    throw std::logic_error("AveragingBlock: variance needs >= 2 samples");
  }
  std::vector<double> v(sum_.size());
  const double n = static_cast<double>(count_);
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    const double mean = sum_[i] / n;
    v[i] = sum_sq_[i] / n - mean * mean;
    if (v[i] < 0.0) {
      v[i] = 0.0;  // numerical floor
    }
  }
  return v;
}

void AveragingBlock::reset() {
  std::fill(sum_.begin(), sum_.end(), 0.0);
  std::fill(sum_sq_.begin(), sum_sq_.end(), 0.0);
  count_ = 0;
}

}  // namespace neuspin::xbar
