#include "xbar/conv_tile.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace neuspin::xbar {

ConvTile::ConvTile(const TileConfig& config, std::size_t in_channels,
                   std::size_t out_channels, std::size_t kernel, std::size_t padding,
                   std::span<const float> binary_weights, std::span<const float> scales,
                   std::uint64_t seed)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      padding_(padding),
      engine_(seed ^ 0xc0117) {
  if (in_channels == 0 || out_channels == 0 || kernel == 0) {
    throw std::invalid_argument("ConvTile: geometry must be positive");
  }
  const std::size_t rows = kernel * kernel * in_channels;
  if (binary_weights.size() != out_channels * rows) {
    throw std::invalid_argument("ConvTile: weight count mismatch");
  }
  if (scales.size() != out_channels) {
    throw std::invalid_argument("ConvTile: expected one scale per output channel");
  }
  // Unfold kernels into crossbar columns (strategy 1): weight tensor is
  // (oc, ic, ky, kx) row-major; the tile wants (row, col) = (ic*k*k, oc).
  std::vector<float> unfolded(rows * out_channels);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    for (std::size_t r = 0; r < rows; ++r) {
      unfolded[r * out_channels + oc] = binary_weights[oc * rows + r];
    }
  }
  tile_ = std::make_unique<DenseTile>(config, rows, out_channels, unfolded, scales,
                                      seed);
}

ConvTile::ConvTile(const ConvTile& other)
    : in_ch_(other.in_ch_),
      out_ch_(other.out_ch_),
      kernel_(other.kernel_),
      padding_(other.padding_),
      tile_(other.tile_->clone()),
      engine_(other.engine_) {}

nn::Tensor ConvTile::forward(const nn::Tensor& input, energy::EnergyLedger* ledger) {
  return forward_gated(input, {}, ledger, engine_);
}

nn::Tensor ConvTile::forward_gated(const nn::Tensor& input,
                                   std::span<const std::uint8_t> channel_enabled,
                                   energy::EnergyLedger* ledger,
                                   std::mt19937_64& engine) {
  if (input.rank() != 4 || input.dim(1) != in_ch_) {
    throw std::invalid_argument("ConvTile: expected NCHW input with C=" +
                                std::to_string(in_ch_));
  }
  if (!channel_enabled.empty() && channel_enabled.size() != in_ch_) {
    throw std::invalid_argument("ConvTile: expected one enable flag per input channel");
  }
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = h + 2 * padding_ - kernel_ + 1;
  const std::size_t ow = w + 2 * padding_ - kernel_ + 1;
  const std::size_t rows = kernel_ * kernel_ * in_ch_;

  // Expand the per-channel mask onto crossbar rows: channel ic owns the
  // contiguous K*K row group [ic*k*k, (ic+1)*k*k) in (ic, ky, kx) order.
  std::vector<std::uint8_t> row_enabled(rows, 1);
  if (!channel_enabled.empty()) {
    for (std::size_t ic = 0; ic < in_ch_; ++ic) {
      if (!channel_enabled[ic]) {
        std::fill(row_enabled.begin() +
                      static_cast<std::ptrdiff_t>(ic * kernel_ * kernel_),
                  row_enabled.begin() +
                      static_cast<std::ptrdiff_t>((ic + 1) * kernel_ * kernel_),
                  static_cast<std::uint8_t>(0));
      }
    }
  }

  nn::Tensor out({n, out_ch_, oh, ow});
  std::vector<float> patch(rows);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        // im2col: gather the receptive field in (ic, ky, kx) order, the
        // same order the kernels were unfolded in.
        std::size_t r = 0;
        for (std::size_t ic = 0; ic < in_ch_; ++ic) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx, ++r) {
              const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(y + ky) -
                                        static_cast<std::ptrdiff_t>(padding_);
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(x + kx) -
                                        static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || ix < 0 || iy >= static_cast<std::ptrdiff_t>(h) ||
                  ix >= static_cast<std::ptrdiff_t>(w)) {
                patch[r] = 0.0f;  // zero padding drives no word line
              } else {
                patch[r] = input.at4(b, ic, static_cast<std::size_t>(iy),
                                     static_cast<std::size_t>(ix));
              }
            }
          }
        }
        const std::vector<float> sums =
            tile_->forward_gated(patch, row_enabled, ledger, engine);
        for (std::size_t oc = 0; oc < out_ch_; ++oc) {
          out.at4(b, oc, y, x) = sums[oc];
        }
      }
    }
  }
  return out;
}

}  // namespace neuspin::xbar
