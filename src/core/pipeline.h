// Co-design pipeline: train -> (convert) -> Bayesian CIM evaluation.
//
// Bundles the recurring experiment steps so examples/benches stay short:
// training with the method's regularizer, Monte-Carlo evaluation of
// accuracy + calibration, and the OOD detection protocol.
#pragma once

#include <cstdint>

#include "core/bayesian.h"
#include "core/models.h"
#include "nn/model.h"

namespace neuspin::core {

/// Training knobs for a method model.
struct FitConfig {
  std::size_t epochs = 8;
  std::size_t batch_size = 32;
  float lr = 0.01f;
  float kl_weight = 1e-4f;      ///< sub-set VI KL weight per step
  float scale_lambda = 1e-2f;   ///< scale-dropout regularizer weight
  /// Label smoothing of the training objective. The NeuSpin training
  /// recipes use a calibration-friendly objective; 0.1 keeps logits small
  /// so predictive entropy stays informative on OOD inputs.
  float label_smoothing = 0.05f;
  bool verbose = false;
};

/// Train `model` on `train` (handles the method's regularizer and leaves
/// the model in deterministic-eval state). Returns final train accuracy.
float fit(BuiltModel& model, const nn::Dataset& train, const FitConfig& config);

/// Monte-Carlo evaluation summary.
struct EvalResult {
  float accuracy = 0.0f;
  float nll = 0.0f;
  float ece = 0.0f;
  float brier = 0.0f;
  float mean_entropy = 0.0f;
};

/// Bayesian evaluation with `mc_samples` stochastic passes per batch.
[[nodiscard]] EvalResult evaluate(BuiltModel& model, const nn::Dataset& test,
                                  std::size_t mc_samples, std::size_t batch_size = 100);

/// Per-sample uncertainty scores (predictive entropy) over a dataset.
[[nodiscard]] std::vector<float> entropy_scores(BuiltModel& model,
                                                const nn::Dataset& data,
                                                std::size_t mc_samples,
                                                std::size_t batch_size = 100);

/// OOD detection summary following the paper's protocol.
struct OodResult {
  float auroc = 0.0f;
  float detection_rate = 0.0f;  ///< at the 95th in-distribution percentile
};

[[nodiscard]] OodResult evaluate_ood(BuiltModel& model, const nn::Dataset& in_dist,
                                     const nn::Dataset& ood, std::size_t mc_samples,
                                     std::size_t batch_size = 100);

}  // namespace neuspin::core
