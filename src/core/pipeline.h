// Co-design pipeline: train -> (convert) -> Bayesian CIM evaluation.
//
// Bundles the recurring experiment steps so examples/benches stay short:
// training with the method's regularizer, Monte-Carlo evaluation of
// accuracy + calibration, the corruption-robustness sweep and the OOD
// detection protocol.
//
// Evaluation threading: every entry point fans out over the shared worker
// pool (EvalOptions::threads) along whichever axis has the parallelism —
// the T Monte-Carlo passes of a batch when T is large, or whole batches
// when T is small and the dataset splits into many batches. Each worker
// owns a deep clone of the model (the serial path clones once too — the
// caller's model, including its RNG streams, is never mutated), every
// pass reseeds its clone's stochastic layers from a deterministic
// per-pass seed, and the reduction runs in (batch, pass) order — so
// results are a pure function of (model, data, mc_samples, seed),
// identical for any thread count and fan-out strategy including serial.
#pragma once

#include <cstdint>

#include "core/bayesian.h"
#include "core/models.h"
#include "data/corruption.h"
#include "nn/model.h"

namespace neuspin::core {

/// Training knobs for a method model.
struct FitConfig {
  std::size_t epochs = 8;
  std::size_t batch_size = 32;
  float lr = 0.01f;
  float kl_weight = 1e-4f;      ///< sub-set VI KL weight per step
  float scale_lambda = 1e-2f;   ///< scale-dropout regularizer weight
  /// Label smoothing of the training objective. The NeuSpin training
  /// recipes use a calibration-friendly objective; 0.1 keeps logits small
  /// so predictive entropy stays informative on OOD inputs.
  float label_smoothing = 0.05f;
  bool verbose = false;
  /// Data-parallel training (train::Trainer pass-through). `shards` is the
  /// gradient decomposition of each minibatch and defines the numerics
  /// (1 = the exact historical serial loop); `workers` only schedules the
  /// shard tasks and never changes a bit of the result (0 = pool size).
  std::size_t shards = 1;
  std::size_t workers = 0;
  /// Global-norm gradient clipping (0 disables).
  float grad_clip = 0.0f;
};

/// Train `model` on `train` through train::Trainer (handles the method's
/// regularizer and leaves the model in deterministic-eval state). Returns
/// final train accuracy.
float fit(BuiltModel& model, const nn::Dataset& train, const FitConfig& config);

/// Knobs of the Monte-Carlo evaluation entry points.
struct EvalOptions {
  std::size_t mc_samples = 20;  ///< T stochastic passes per batch
  std::size_t batch_size = 100;
  /// Worker threads for the fan-out (MC passes and/or batches): 0 = one
  /// per hardware thread, 1 = serial (a single clone runs everything on
  /// the calling thread). One model clone is made per worker, capped at
  /// the useful parallelism max(mc_samples, batches) — counts above the
  /// hardware thread count are honored (useful for determinism testing)
  /// but only cost memory. Results do not depend on this value.
  std::size_t threads = 0;
  /// Base seed of the per-pass RNG streams. Results are a deterministic
  /// function of (seed, mc_samples), whatever the thread count.
  std::uint64_t seed = 0x6e65757370696e00ull;
};

/// Monte-Carlo evaluation summary.
struct EvalResult {
  float accuracy = 0.0f;
  float nll = 0.0f;
  float ece = 0.0f;
  float brier = 0.0f;
  float mean_entropy = 0.0f;
};

/// Bayesian evaluation with EvalOptions::mc_samples stochastic passes per
/// batch, fanned across the shared worker pool.
[[nodiscard]] EvalResult evaluate(const BuiltModel& model, const nn::Dataset& test,
                                  const EvalOptions& options);

/// Convenience overload: default EvalOptions with the given sample count.
[[nodiscard]] EvalResult evaluate(const BuiltModel& model, const nn::Dataset& test,
                                  std::size_t mc_samples, std::size_t batch_size = 100);

/// Per-sample uncertainty scores (predictive entropy) over a dataset.
[[nodiscard]] std::vector<float> entropy_scores(const BuiltModel& model,
                                                const nn::Dataset& data,
                                                const EvalOptions& options);
[[nodiscard]] std::vector<float> entropy_scores(const BuiltModel& model,
                                                const nn::Dataset& data,
                                                std::size_t mc_samples,
                                                std::size_t batch_size = 100);

/// OOD detection summary following the paper's protocol.
struct OodResult {
  float auroc = 0.0f;
  float detection_rate = 0.0f;  ///< at the 95th in-distribution percentile
};

[[nodiscard]] OodResult evaluate_ood(const BuiltModel& model, const nn::Dataset& in_dist,
                                     const nn::Dataset& ood, const EvalOptions& options);
[[nodiscard]] OodResult evaluate_ood(const BuiltModel& model, const nn::Dataset& in_dist,
                                     const nn::Dataset& ood, std::size_t mc_samples,
                                     std::size_t batch_size = 100);

/// One point of the corruption-robustness sweep (paper §IV takeaway 2).
struct CorruptionEval {
  data::CorruptionKind kind{};
  float severity = 0.0f;
  EvalResult result;
};

/// Corruption sweep: corrupt `images` (NCHW, pre-standardization) at every
/// (kind, severity) pair, per-sample standardize, and evaluate each with
/// the pooled Monte-Carlo protocol. The model clones are built once and
/// reused across the whole sweep.
[[nodiscard]] std::vector<CorruptionEval> evaluate_corruption(
    const BuiltModel& model, const nn::Dataset& images,
    const std::vector<data::CorruptionKind>& kinds,
    const std::vector<float>& severities, std::uint64_t corruption_seed,
    const EvalOptions& options);

}  // namespace neuspin::core
