// Backbone builders: assemble a binary MLP or CNN with the method-specific
// Bayesian layers inserted at the positions the paper's architectures
// prescribe, and expose typed handles for training-time regularizers,
// MC-mode switching and post-training conversions.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/affinedrop.h"
#include "core/census.h"
#include "core/hw_model.h"
#include "core/method.h"
#include "core/scaledrop.h"
#include "core/spinbayes.h"
#include "core/spindrop.h"
#include "core/subset_vi.h"
#include "nn/binarize.h"
#include "nn/model.h"

namespace neuspin::core {

/// Options shared by the backbone builders.
struct ModelConfig {
  Method method = Method::kSpinDrop;
  std::uint64_t seed = 42;
  /// Dropout probability for the dropout-based methods. Scale-dropout
  /// overrides this per layer via the adaptive rule when `adaptive_p`.
  double dropout_p = 0.15;
  bool adaptive_p = true;
  /// Gaussian sigma of the hardware dropout-module probability (scale
  /// dropout) / thermal-stability shift of SpinDrop modules.
  double hw_variation = 0.0;
  /// Behavioural hardware non-idealities inserted after binary layers.
  HwNoiseConfig hw{};
  /// SpinBayes conversion parameters (used by convert_to_spinbayes).
  SpinBayesConfig spinbayes{};
};

/// A built model plus typed views of its method layers.
struct BuiltModel {
  nn::Sequential net;
  Method method = Method::kDeterministic;
  ArchSpec arch;  ///< census-compatible description of the backbone

  std::vector<SpinDropLayer*> drop_layers;
  std::vector<ScaleDropLayer*> scale_layers;
  std::vector<InvertedNormLayer*> inv_norm_layers;
  std::vector<BayesianScaleLayer*> bayes_layers;
  std::vector<SpinBayesScaleLayer*> spinbayes_layers;
  /// Indices of bayes_layers inside `net` (needed for SpinBayes swap).
  std::vector<std::size_t> bayes_layer_indices;

  /// Toggle stochastic behaviour during evaluation (Bayesian inference).
  void enable_mc(bool on);

  /// Build the training-loss regularizer for this method: the KL term of
  /// sub-set VI (weight `kl_weight`) and/or the scale regularizer of
  /// scale-dropout (weight `scale_lambda`). Returns an empty function for
  /// methods without a regularizer.
  [[nodiscard]] std::function<float()> make_regularizer(float kl_weight,
                                                        float scale_lambda);

  /// One stochastic forward pass returning logits (for McPredictor).
  [[nodiscard]] nn::Tensor stochastic_logits(const nn::Tensor& input);

  /// Fused stochastic forward: one pass over a stacked (rows x features)
  /// batch where row r computes under per-row streams seeded by
  /// row_seeds[r] — bit for bit what reseed_stochastic(row_seeds[r])
  /// followed by stochastic_logits on that single row would return. The
  /// fused Monte-Carlo path (core::predict_fused_batch) stacks T passes x
  /// B requests through this to run one big matmul per layer instead of
  /// T*B small ones.
  [[nodiscard]] nn::Tensor stochastic_logits_rows(
      const nn::Tensor& stacked, std::span<const std::uint64_t> row_seeds);

  /// Reset every stochastic layer's RNG streams so the next forward pass
  /// is a pure function of (weights, input, pass_seed). The Monte-Carlo
  /// evaluator calls this once per stochastic pass, which is what makes
  /// its results independent of the worker-thread count.
  void reseed_stochastic(std::uint64_t pass_seed) { net.reseed(pass_seed); }

  /// Deep copy of the model: weights, persistent state, RNG streams and
  /// the typed layer views (rebuilt against the cloned net). Used to
  /// replicate a trained model once per worker thread; clones share no
  /// mutable state (energy ledgers excepted — see the layer headers).
  [[nodiscard]] BuiltModel clone() const;

  /// Pin the inference compute path of every binary layer (kAuto routes
  /// onto the bit-packed XNOR/popcount kernels when the activations pack
  /// exactly; kFloat is the reference oracle). Training is unaffected.
  void set_binary_algo(nn::BinaryAlgo algo);
};

/// Binary MLP: in -> hidden... -> classes on flattened inputs.
[[nodiscard]] BuiltModel make_binary_mlp(const ModelConfig& config, std::size_t inputs,
                                         const std::vector<std::size_t>& hidden,
                                         std::size_t classes);

/// The small binary CNN of the Table I benchmark:
/// 1x16x16 -> conv8(3x3) -> pool -> conv16(3x3) -> pool -> dense64 -> 10.
[[nodiscard]] BuiltModel make_binary_cnn(const ModelConfig& config);

/// Replace every trained BayesianScaleLayer with its SpinBayes in-memory
/// approximation (N quantized posterior samples + arbiter). The model must
/// have been built with Method::kSpinBayes (trained as sub-set VI).
void convert_to_spinbayes(BuiltModel& model, const SpinBayesConfig& config);

}  // namespace neuspin::core
