#include "core/bayesian.h"

#include <stdexcept>
#include <utility>

#include "core/thread_pool.h"
#include "nn/model.h"

namespace neuspin::core {

namespace {

constexpr std::uint64_t kDefaultBaseSeed = 0x6d635f7061737365ull;  // "mc_passe"

nn::Tensor checked_probs(nn::Tensor logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("McPredictor: forward must return (batch x classes)");
  }
  return nn::softmax_rows(logits);
}

}  // namespace

std::vector<std::size_t> Prediction::predicted_class() const {
  std::vector<std::size_t> out(mean_probs.dim(0));
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < mean_probs.dim(1); ++j) {
      if (mean_probs.at(i, j) > mean_probs.at(i, best)) {
        best = j;
      }
    }
    out[i] = best;
  }
  return out;
}

McPredictor::McPredictor(std::size_t samples)
    : McPredictor(samples, kDefaultBaseSeed) {}

McPredictor::McPredictor(std::size_t samples, std::uint64_t base_seed)
    : samples_(samples), base_seed_(base_seed) {
  if (samples == 0) {
    throw std::invalid_argument("McPredictor: need at least one MC sample");
  }
}

Prediction McPredictor::reduce(std::vector<nn::Tensor> member_probs) const {
  Prediction pred;
  pred.member_probs = std::move(member_probs);
  pred.mean_probs = nn::Tensor(pred.member_probs.front().shape());
  // Accumulate in pass order: float addition is not associative, and this
  // fixed order is what keeps serial and threaded results bitwise equal.
  for (const auto& p : pred.member_probs) {
    pred.mean_probs += p;
  }
  pred.mean_probs *= 1.0f / static_cast<float>(samples_);
  pred.entropy = predictive_entropy(pred.mean_probs);
  pred.mutual_info = mutual_information(pred.member_probs);
  return pred;
}

Prediction McPredictor::predict(const nn::Tensor& input,
                                const Forward& stochastic_forward) const {
  std::vector<nn::Tensor> member_probs;
  member_probs.reserve(samples_);
  for (std::size_t t = 0; t < samples_; ++t) {
    member_probs.push_back(checked_probs(stochastic_forward(input)));
  }
  return reduce(std::move(member_probs));
}

Prediction McPredictor::predict(const nn::Tensor& input,
                                const SeededForward& stochastic_forward) const {
  std::vector<nn::Tensor> member_probs;
  member_probs.reserve(samples_);
  for (std::size_t t = 0; t < samples_; ++t) {
    member_probs.push_back(
        checked_probs(stochastic_forward(input, nn::mix_seed(base_seed_, t))));
  }
  return reduce(std::move(member_probs));
}

Prediction McPredictor::predict(const nn::Tensor& input,
                                const std::vector<SeededForward>& replicas,
                                ThreadPool& pool) const {
  if (replicas.empty()) {
    throw std::invalid_argument("McPredictor: need at least one forward replica");
  }
  if (replicas.size() == 1) {
    return predict(input, replicas.front());
  }
  std::vector<nn::Tensor> member_probs(samples_);
  // Contiguous chunks, one per replica: a replica is only ever inside one
  // chunk, so its model clone needs no locking.
  pool.run_chunked(
      samples_, replicas.size(),
      [this, &input, &member_probs, &replicas](std::size_t chunk, std::size_t begin,
                                               std::size_t end) {
        const SeededForward& forward = replicas[chunk];
        for (std::size_t t = begin; t < end; ++t) {
          member_probs[t] =
              checked_probs(forward(input, nn::mix_seed(base_seed_, t)));
        }
      });
  return reduce(std::move(member_probs));
}

}  // namespace neuspin::core
