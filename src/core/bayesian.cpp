#include "core/bayesian.h"

#include <stdexcept>

namespace neuspin::core {

std::vector<std::size_t> Prediction::predicted_class() const {
  std::vector<std::size_t> out(mean_probs.dim(0));
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < mean_probs.dim(1); ++j) {
      if (mean_probs.at(i, j) > mean_probs.at(i, best)) {
        best = j;
      }
    }
    out[i] = best;
  }
  return out;
}

McPredictor::McPredictor(std::size_t samples) : samples_(samples) {
  if (samples == 0) {
    throw std::invalid_argument("McPredictor: need at least one MC sample");
  }
}

Prediction McPredictor::predict(
    const nn::Tensor& input,
    const std::function<nn::Tensor(const nn::Tensor&)>& stochastic_forward) const {
  Prediction pred;
  pred.member_probs.reserve(samples_);
  for (std::size_t t = 0; t < samples_; ++t) {
    const nn::Tensor logits = stochastic_forward(input);
    if (logits.rank() != 2) {
      throw std::invalid_argument("McPredictor: forward must return (batch x classes)");
    }
    pred.member_probs.push_back(nn::softmax_rows(logits));
  }
  pred.mean_probs = nn::Tensor(pred.member_probs.front().shape());
  for (const auto& p : pred.member_probs) {
    pred.mean_probs += p;
  }
  pred.mean_probs *= 1.0f / static_cast<float>(samples_);
  pred.entropy = predictive_entropy(pred.mean_probs);
  pred.mutual_info = mutual_information(pred.member_probs);
  return pred;
}

}  // namespace neuspin::core
