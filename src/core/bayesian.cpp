#include "core/bayesian.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/models.h"
#include "core/thread_pool.h"
#include "nn/model.h"

namespace neuspin::core {

namespace {

constexpr std::uint64_t kDefaultBaseSeed = 0x6d635f7061737365ull;  // "mc_passe"

nn::Tensor checked_probs(nn::Tensor logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("McPredictor: forward must return (batch x classes)");
  }
  return nn::softmax_rows(logits);
}

}  // namespace

std::vector<std::size_t> Prediction::predicted_class() const {
  std::vector<std::size_t> out(mean_probs.dim(0));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = nn::argmax_row(mean_probs, i);
  }
  return out;
}

McPredictor::McPredictor(std::size_t samples)
    : McPredictor(samples, kDefaultBaseSeed) {}

McPredictor::McPredictor(std::size_t samples, std::uint64_t base_seed)
    : samples_(samples), base_seed_(base_seed) {
  if (samples == 0) {
    throw std::invalid_argument("McPredictor: need at least one MC sample");
  }
}

Prediction McPredictor::reduce(std::vector<nn::Tensor> member_probs) const {
  Prediction pred;
  pred.member_probs = std::move(member_probs);
  pred.mean_probs = nn::Tensor(pred.member_probs.front().shape());
  // Accumulate in pass order: float addition is not associative, and this
  // fixed order is what keeps serial and threaded results bitwise equal.
  for (const auto& p : pred.member_probs) {
    pred.mean_probs += p;
  }
  pred.mean_probs *= 1.0f / static_cast<float>(samples_);
  pred.entropy = predictive_entropy(pred.mean_probs);
  pred.mutual_info = mutual_information(pred.member_probs);
  return pred;
}

Prediction McPredictor::predict(const nn::Tensor& input,
                                const Forward& stochastic_forward) const {
  std::vector<nn::Tensor> member_probs;
  member_probs.reserve(samples_);
  for (std::size_t t = 0; t < samples_; ++t) {
    member_probs.push_back(checked_probs(stochastic_forward(input)));
  }
  return reduce(std::move(member_probs));
}

Prediction McPredictor::predict(const nn::Tensor& input,
                                const SeededForward& stochastic_forward) const {
  std::vector<nn::Tensor> member_probs;
  member_probs.reserve(samples_);
  for (std::size_t t = 0; t < samples_; ++t) {
    member_probs.push_back(
        checked_probs(stochastic_forward(input, nn::mix_seed(base_seed_, t))));
  }
  return reduce(std::move(member_probs));
}

Prediction McPredictor::predict(const nn::Tensor& input,
                                const std::vector<SeededForward>& replicas,
                                ThreadPool& pool) const {
  if (replicas.empty()) {
    throw std::invalid_argument("McPredictor: need at least one forward replica");
  }
  if (replicas.size() == 1) {
    return predict(input, replicas.front());
  }
  std::vector<nn::Tensor> member_probs(samples_);
  // Contiguous chunks, one per replica: a replica is only ever inside one
  // chunk, so its model clone needs no locking.
  pool.run_chunked(
      samples_, replicas.size(),
      [this, &input, &member_probs, &replicas](std::size_t chunk, std::size_t begin,
                                               std::size_t end) {
        const SeededForward& forward = replicas[chunk];
        for (std::size_t t = begin; t < end; ++t) {
          member_probs[t] =
              checked_probs(forward(input, nn::mix_seed(base_seed_, t)));
        }
      });
  return reduce(std::move(member_probs));
}

std::vector<Prediction> predict_fused_batch(BuiltModel& model,
                                            const nn::Tensor& inputs,
                                            std::span<const std::uint64_t> request_seeds,
                                            std::size_t mc_samples) {
  return predict_fused_batch(std::span<BuiltModel>(&model, 1), inputs,
                             request_seeds, mc_samples);
}

std::vector<Prediction> predict_fused_batch(std::span<BuiltModel> team,
                                            const nn::Tensor& inputs,
                                            std::span<const std::uint64_t> request_seeds,
                                            std::size_t mc_samples, ThreadPool* pool) {
  if (team.empty()) {
    throw std::invalid_argument("predict_fused_batch: need at least one model");
  }
  if (inputs.rank() != 2) {
    throw std::invalid_argument("predict_fused_batch: expected (batch x features)");
  }
  const std::size_t batch = inputs.dim(0);
  const std::size_t features = inputs.dim(1);
  if (batch == 0 || batch != request_seeds.size()) {
    throw std::invalid_argument(
        "predict_fused_batch: expected one request seed per input row");
  }
  if (mc_samples == 0) {
    throw std::invalid_argument("predict_fused_batch: need at least one MC sample");
  }

  // Stack request rows x passes: stacked row b*T + t is a copy of input
  // row b running pass t's stream.
  const std::size_t rows = batch * mc_samples;
  nn::Tensor stacked({rows, features});
  std::vector<std::uint64_t> row_seeds(rows);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto src = inputs.data().subspan(b * features, features);
    for (std::size_t t = 0; t < mc_samples; ++t) {
      std::copy(src.begin(), src.end(),
                stacked.data().begin() +
                    static_cast<std::ptrdiff_t>((b * mc_samples + t) * features));
      row_seeds[b * mc_samples + t] = nn::mix_seed(request_seeds[b], t);
    }
  }

  const std::size_t chunks = std::min(team.size(), rows);
  nn::Tensor logits;
  if (chunks <= 1) {
    logits = team[0].stochastic_logits_rows(stacked, row_seeds);
    if (logits.rank() != 2 || logits.dim(0) != rows) {
      throw std::invalid_argument(
          "predict_fused_batch: model returned bad logits shape");
    }
  } else {
    // Contiguous row partitions, one per team member. Each chunk's rows
    // carry the same per-row stream seeds they had in the full stack, and
    // the forward is row-independent, so the chunked logits are bit for
    // bit the single-model stacked forward's — the partition only decides
    // which clone computes which rows.
    std::vector<nn::Tensor> chunk_logits(chunks);
    (pool != nullptr ? *pool : ThreadPool::shared())
        .run_chunked(rows, chunks,
                     [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                       const std::size_t span = end - begin;
                       nn::Tensor part({span, features});
                       std::copy(
                           stacked.data().begin() +
                               static_cast<std::ptrdiff_t>(begin * features),
                           stacked.data().begin() +
                               static_cast<std::ptrdiff_t>(end * features),
                           part.data().begin());
                       chunk_logits[chunk] = team[chunk].stochastic_logits_rows(
                           part, std::span<const std::uint64_t>(row_seeds)
                                     .subspan(begin, span));
                     });
    std::size_t classes = 0;
    std::size_t row = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const nn::Tensor& part = chunk_logits[c];
      if (part.empty() && part.rank() == 0) {
        continue;  // ragged ceil partition: trailing chunks may be empty
      }
      if (part.rank() != 2 || (classes != 0 && part.dim(1) != classes) ||
          row + part.dim(0) > rows) {
        throw std::invalid_argument(
            "predict_fused_batch: model returned bad logits shape");
      }
      if (classes == 0) {
        classes = part.dim(1);
        logits = nn::Tensor({rows, classes});
      }
      std::copy(part.data().begin(), part.data().end(),
                logits.data().begin() +
                    static_cast<std::ptrdiff_t>(row * classes));
      row += part.dim(0);
    }
    if (row != rows) {
      throw std::invalid_argument(
          "predict_fused_batch: model returned bad logits shape");
    }
  }
  const nn::Tensor probs = nn::softmax_rows(logits);
  const std::size_t classes = probs.dim(1);

  std::vector<Prediction> out;
  out.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<nn::Tensor> member_probs;
    member_probs.reserve(mc_samples);
    for (std::size_t t = 0; t < mc_samples; ++t) {
      const auto row = probs.data().subspan((b * mc_samples + t) * classes, classes);
      member_probs.emplace_back(nn::Shape{1, classes},
                                std::vector<float>(row.begin(), row.end()));
    }
    out.push_back(
        McPredictor(mc_samples, request_seeds[b]).reduce(std::move(member_probs)));
  }
  return out;
}

}  // namespace neuspin::core
