// SpinBayes: Bayesian in-memory approximation with an N-crossbar topology
// and a spintronic Arbiter (paper §III-B.2, Fig. 3).
//
// Idea: rather than sampling a continuous posterior on the fly (expensive
// on CIM hardware), approximate it *in memory*: materialize N posterior
// samples of the Bayesian parameters, quantize each to the multi-level
// MTJ cell grid, and store them as N crossbar instances. At inference,
// a spintronic stochastic Arbiter generates a random one-hot vector per
// forward pass that selects which instance participates — Monte-Carlo
// sampling becomes a crossbar *select*, with latency independent of the
// parameter count.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <random>
#include <vector>

#include "core/subset_vi.h"
#include "energy/accountant.h"
#include "nn/layers.h"

namespace neuspin::core {

/// Spintronic one-hot Arbiter: selects one of N crossbars per pass using
/// stochastic MTJ switching events as the entropy source.
class SpinArbiter {
 public:
  /// `fan_out` is N, the number of selectable crossbars.
  SpinArbiter(std::size_t fan_out, std::uint64_t seed,
              energy::EnergyLedger* ledger = nullptr);

  /// Draw a uniformly distributed selection in [0, fan_out).
  /// Implemented as a binary tournament over stochastic switching bits
  /// (ceil(log2 N) device firings per draw), charged to the ledger.
  [[nodiscard]] std::size_t select();

  /// One-hot vector of the latest selection.
  [[nodiscard]] std::vector<std::uint8_t> one_hot() const;

  [[nodiscard]] std::size_t fan_out() const { return fan_out_; }
  [[nodiscard]] std::size_t bits_per_draw() const { return bits_per_draw_; }

  /// Reset the arbiter's entropy stream (per-pass reproducibility).
  void reseed(std::uint64_t seed) { engine_.seed(seed); }

  /// Serialize / restore the entropy stream mid-run (text), so a
  /// checkpointed training run resumes the arbiter bitwise.
  void save_stream(std::ostream& out) const {
    out << engine_ << '\n' << last_selection_ << '\n';
  }
  void load_stream(std::istream& in) { in >> engine_ >> last_selection_; }

 private:
  std::size_t fan_out_;
  std::size_t bits_per_draw_;
  std::size_t last_selection_ = 0;
  std::mt19937_64 engine_;
  energy::EnergyLedger* ledger_;
};

/// Configuration of the SpinBayes scale stage.
struct SpinBayesConfig {
  std::size_t instances = 8;     ///< N crossbar copies of the posterior
  std::size_t quant_levels = 8;  ///< multi-level cell resolution
  float quant_lo = 0.5f;
  float quant_hi = 1.5f;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Inference-only layer holding N quantized posterior samples of a scale
/// vector; the Arbiter picks one instance per stochastic pass.
///
/// Built from a trained BayesianScaleLayer via `from_posterior` — this is
/// the "Bayesian in-memory approximation" step (posterior -> memory-
/// friendly distribution -> CIM mapping).
class SpinBayesScaleLayer : public nn::Layer {
 public:
  SpinBayesScaleLayer(std::vector<nn::Tensor> instances, std::uint64_t seed,
                      energy::EnergyLedger* ledger = nullptr);

  /// Materialize N quantized samples from a trained posterior.
  [[nodiscard]] static std::unique_ptr<SpinBayesScaleLayer> from_posterior(
      const BayesianScaleLayer& posterior, const SpinBayesConfig& config,
      energy::EnergyLedger* ledger = nullptr);

  nn::Tensor forward(const nn::Tensor& input, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "SpinBayesScale"; }
  /// Clones share the (optional) energy ledger pointer; run concurrent
  /// clones without a ledger or synchronize externally.
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<SpinBayesScaleLayer>(*this);
  }
  void reseed(std::uint64_t seed) override {
    arbiter_.reseed(seed);
    row_seeds_.clear();
  }
  /// Row mode (fused MC): row r reseeds the Arbiter from row_seeds[r] and
  /// selects its own crossbar instance, matching a batch-of-one pass.
  void reseed_rows(std::span<const std::uint64_t> row_seeds) override {
    row_seeds_.assign(row_seeds.begin(), row_seeds.end());
  }
  void save_rng_state(std::ostream& out) const override {
    arbiter_.save_stream(out);
    out << last_selection_ << '\n';
  }
  void load_rng_state(std::istream& in) override {
    arbiter_.load_stream(in);
    in >> last_selection_;
  }

  void enable_mc(bool on) { mc_mode_ = on; }
  [[nodiscard]] std::size_t instance_count() const { return instances_.size(); }
  [[nodiscard]] const nn::Tensor& instance(std::size_t i) const { return instances_[i]; }
  [[nodiscard]] std::size_t last_selection() const { return last_selection_; }
  [[nodiscard]] SpinArbiter& arbiter() { return arbiter_; }

 private:
  std::vector<nn::Tensor> instances_;
  SpinArbiter arbiter_;
  bool mc_mode_ = false;
  std::vector<std::uint64_t> row_seeds_;  ///< non-empty = row mode
  std::size_t last_selection_ = 0;
  energy::EnergyLedger* ledger_;
};

}  // namespace neuspin::core
