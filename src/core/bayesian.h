// Monte-Carlo Bayesian predictive loop (paper §II-C).
//
// Every NeuSpin method reduces Bayesian inference to the same pattern: run
// T stochastic forward passes (each pass samples dropout masks, scale
// vectors, variational parameters or crossbar selections), average the
// softmax outputs for the predictive mean, and derive uncertainty from the
// spread. McPredictor implements that loop over any stochastic model.
//
// The T passes are independent by construction, so the predictor can fan
// them across a thread pool. Reproducibility contract: the seeded entry
// points derive one RNG seed per pass from the predictor's base seed, the
// per-pass results are stored by pass index, and the reduction always runs
// in pass order on the calling thread — so serial and threaded execution
// produce bitwise-identical predictions for a fixed (seed, samples) pair.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/uncertainty.h"
#include "nn/tensor.h"

namespace neuspin::core {

class ThreadPool;
struct BuiltModel;

/// Result of Bayesian inference over a batch.
struct Prediction {
  nn::Tensor mean_probs;              ///< (batch x classes) predictive mean
  std::vector<float> entropy;         ///< total predictive uncertainty
  std::vector<float> mutual_info;     ///< epistemic part
  std::vector<nn::Tensor> member_probs;  ///< per-pass probabilities (T entries)

  /// Argmax class of each sample.
  [[nodiscard]] std::vector<std::size_t> predicted_class() const;
};

/// Runs the Monte-Carlo predictive loop.
class McPredictor {
 public:
  /// Legacy stateful forward: draws randomness from the model's own
  /// accumulated RNG state (not reproducible across thread counts).
  using Forward = std::function<nn::Tensor(const nn::Tensor&)>;
  /// Seeded forward: must produce logits that depend only on (weights,
  /// input, pass_seed). Model replicas expose this by reseeding their
  /// stochastic layers with `pass_seed` before the forward pass.
  using SeededForward =
      std::function<nn::Tensor(const nn::Tensor&, std::uint64_t pass_seed)>;

  /// `samples` is T, the number of stochastic forward passes.
  explicit McPredictor(std::size_t samples);
  McPredictor(std::size_t samples, std::uint64_t base_seed);

  /// `stochastic_forward` must return LOGITS of shape (batch x classes) and
  /// be stochastic across invocations (that is the Bayesian approximation).
  [[nodiscard]] Prediction predict(const nn::Tensor& input,
                                   const Forward& stochastic_forward) const;

  /// Seeded serial loop: pass t runs with seed mix_seed(base_seed, t).
  [[nodiscard]] Prediction predict(const nn::Tensor& input,
                                   const SeededForward& stochastic_forward) const;

  /// Seeded parallel loop: the T passes are split into contiguous chunks,
  /// one per replica, and chunks run concurrently on `pool`. Each replica
  /// must wrap an independent model clone (replicas never run two chunks at
  /// once, but distinct replicas run simultaneously). Bitwise identical to
  /// the seeded serial overload for any replica/thread count.
  [[nodiscard]] Prediction predict(const nn::Tensor& input,
                                   const std::vector<SeededForward>& replicas,
                                   ThreadPool& pool) const;

  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t base_seed() const { return base_seed_; }

  /// Shared tail of every predict flavour: reduce `samples()` per-pass
  /// probability tensors (already ordered by pass index) into a
  /// Prediction — pass-order mean, predictive entropy, mutual
  /// information. Public so alternative forward paths (the tiled
  /// electrical evaluator) reduce through the exact same code and stay
  /// bitwise aligned with the behavioural path.
  [[nodiscard]] Prediction reduce(std::vector<nn::Tensor> member_probs) const;

 private:
  std::size_t samples_;
  std::uint64_t base_seed_;
};

/// Fused batched Monte-Carlo prediction: stacks the T stochastic passes of
/// every request row into one (B*T x features) forward per layer — one
/// large cache-blocked matmul instead of B*T vector-matrix products — and
/// reduces each row's T passes through McPredictor::reduce. Row b of
/// `inputs` occupies stacked rows [b*T, (b+1)*T), pass t running under the
/// per-row stream seed mix_seed(request_seeds[b], t).
///
/// Contract: the returned Prediction for row b is bitwise identical to
///   McPredictor(mc_samples, request_seeds[b]).predict(row_b, forward)
/// where `forward` reseeds the model with the pass seed before each
/// batch-of-one pass — the serving runtime's per-request reproducibility
/// contract, now independent of how requests are batched together.
///
/// `model` must have MC mode enabled and support per-row streams on every
/// stochastic layer (all built-in method layers do); its RNG state is
/// consumed. Inference only: do not call backward() afterwards.
[[nodiscard]] std::vector<Prediction> predict_fused_batch(
    BuiltModel& model, const nn::Tensor& inputs,
    std::span<const std::uint64_t> request_seeds, std::size_t mc_samples);

/// Pool-parallel fused prediction: the stacked (B*T) rows are split into
/// one deterministic contiguous chunk per team member and chunk c runs its
/// share of the stacked forward on team[c] concurrently over `pool`
/// (ThreadPool::shared() when null). Because every stacked row computes
/// under its own splitmix64 stream (Layer::reseed_rows) and the blocked
/// kernels make each output row a function of its input row alone, the
/// partition is invisible in the results: any team size — including a team
/// of one, which runs inline without touching the pool — produces the
/// single-thread bits. This is how very large T*B stacks scale *within*
/// one serving worker instead of grinding a whole (B*T x F) forward on a
/// single core.
///
/// Team members must be clones of one model (same weights and state) with
/// MC mode enabled; each member's RNG state is consumed independently.
/// The team must not be shared with another concurrent call.
[[nodiscard]] std::vector<Prediction> predict_fused_batch(
    std::span<BuiltModel> team, const nn::Tensor& inputs,
    std::span<const std::uint64_t> request_seeds, std::size_t mc_samples,
    ThreadPool* pool = nullptr);

}  // namespace neuspin::core
