// Monte-Carlo Bayesian predictive loop (paper §II-C).
//
// Every NeuSpin method reduces Bayesian inference to the same pattern: run
// T stochastic forward passes (each pass samples dropout masks, scale
// vectors, variational parameters or crossbar selections), average the
// softmax outputs for the predictive mean, and derive uncertainty from the
// spread. McPredictor implements that loop over any stochastic model.
#pragma once

#include <functional>
#include <vector>

#include "core/uncertainty.h"
#include "nn/tensor.h"

namespace neuspin::core {

/// Result of Bayesian inference over a batch.
struct Prediction {
  nn::Tensor mean_probs;              ///< (batch x classes) predictive mean
  std::vector<float> entropy;         ///< total predictive uncertainty
  std::vector<float> mutual_info;     ///< epistemic part
  std::vector<nn::Tensor> member_probs;  ///< per-pass probabilities (T entries)

  /// Argmax class of each sample.
  [[nodiscard]] std::vector<std::size_t> predicted_class() const;
};

/// Runs the Monte-Carlo predictive loop.
class McPredictor {
 public:
  /// `samples` is T, the number of stochastic forward passes.
  explicit McPredictor(std::size_t samples);

  /// `stochastic_forward` must return LOGITS of shape (batch x classes) and
  /// be stochastic across invocations (that is the Bayesian approximation).
  [[nodiscard]] Prediction predict(
      const nn::Tensor& input,
      const std::function<nn::Tensor(const nn::Tensor&)>& stochastic_forward) const;

  [[nodiscard]] std::size_t samples() const { return samples_; }

 private:
  std::size_t samples_;
};

}  // namespace neuspin::core
