// Hardware deployment models.
//
// Two fidelity levels, used for different purposes (DESIGN.md §2):
//
//  * DenseTile-based inference (TiledMlp): full electrical simulation of
//    every MVM — crossbar currents, ADC quantization, IR drop, defects.
//    Used by the quickstart example, integration tests and substrate
//    benches. Exact but too slow for full accuracy sweeps of CNNs.
//
//  * Behavioural hardware noise (AnalogReadout + inject_weight_defects):
//    the same non-idealities folded into fast tensor ops — pre-activation
//    quantization to the ADC LSB, Gaussian read noise, and binary-weight
//    sign flips for stuck-at defects. Validated against the tile path in
//    tests/hw_consistency_test.cpp; used by the accuracy benches.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "energy/accountant.h"
#include "nn/binarize.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "xbar/tile.h"

namespace neuspin::core {

/// Behavioural non-ideality knobs for fast hardware-aware evaluation.
struct HwNoiseConfig {
  bool enabled = false;
  /// ADC level count (2^bits); pre-activations are quantized onto this
  /// many levels across the batch's observed dynamic range (a SAR ADC
  /// with auto-ranged full scale). 0 disables quantization.
  std::size_t quant_levels = 256;
  /// Read-noise sigma as a fraction of the observed dynamic range
  /// (cycle-to-cycle conductance noise + residual IR drop).
  float noise_fraction = 0.0f;
  std::uint64_t seed = 99;
};

/// Identity during training; at evaluation applies ADC quantization and
/// additive read noise to the pre-activations of the preceding binary
/// layer. Backward is a straight pass-through (STE), so the layer can stay
/// in the graph during training without affecting gradients.
class AnalogReadout : public nn::Layer {
 public:
  explicit AnalogReadout(const HwNoiseConfig& config);

  nn::Tensor forward(const nn::Tensor& input, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "AnalogReadout"; }
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<AnalogReadout>(*this);
  }
  void reseed(std::uint64_t seed) override { engine_.seed(seed); }

 private:
  HwNoiseConfig config_;
  std::mt19937_64 engine_;
};

/// Flip the sign of a fraction `flip_rate` of latent weights in every
/// BinaryDense / BinaryConv2d layer of `net` — the behavioural equivalent
/// of stuck-at defects landing on the wrong state. Returns the number of
/// flipped weights.
std::size_t inject_weight_defects(nn::Sequential& net, float flip_rate,
                                  std::uint64_t seed);

/// Multiply every learnable parameter of `net` by (1 + N(0, rel_sigma)) —
/// the conductance-variation analogue for layers whose parameters live in
/// the NVM crossbars (LSTM gates, dense weights, multi-level cells).
/// Normalization parameters are skipped by default: they live in digital
/// registers, not in analog conductances. Returns the perturbed count.
std::size_t perturb_weights(nn::Sequential& net, float rel_sigma, std::uint64_t seed,
                            bool include_norm_params = false);

/// Tile-backed inference for a trained binary MLP of the canonical layout
///   [BinaryDense -> BatchNorm -> Sign]* -> BinaryDense.
/// Batch-norm is folded into per-neuron thresholds; hidden activations are
/// computed with sign read-out, the final layer with the configured ADC.
class TiledMlp {
 public:
  /// Map `net` (which must follow the canonical layout) onto tiles.
  TiledMlp(nn::Sequential& net, const xbar::TileConfig& tile_config,
           std::uint64_t seed);

  /// Deterministic hardware forward pass of a (batch x features) tensor.
  [[nodiscard]] nn::Tensor forward(const nn::Tensor& input,
                                   energy::EnergyLedger* ledger = nullptr);

  /// SpinDrop hardware pass: hidden activations are gated by per-neuron
  /// stochastic MTJ modules with dropout probability `p`.
  [[nodiscard]] nn::Tensor forward_spindrop(const nn::Tensor& input, double p,
                                            energy::EnergyLedger* ledger = nullptr);

  [[nodiscard]] std::size_t layer_count() const { return tiles_.size(); }
  /// Inject extra stuck-at defects into every tile.
  void inject_defects(const device::DefectRates& rates, std::uint64_t seed);

 private:
  struct FoldedLayer {
    std::unique_ptr<xbar::DenseTile> tile;
    std::vector<float> bias;       ///< dense bias per column
    std::vector<float> threshold;  ///< folded BN threshold (hidden layers)
    std::vector<float> bn_sign;    ///< sign of gamma (threshold comparison flips)
    bool hidden = false;
  };

  std::vector<FoldedLayer> tiles_;
  std::mt19937_64 engine_;
  std::uint64_t dropout_seed_;
};

}  // namespace neuspin::core
