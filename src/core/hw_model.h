// Hardware deployment models.
//
// Two fidelity levels, used for different purposes (DESIGN.md §2):
//
//  * DenseTile-based inference (TiledMlp): full electrical simulation of
//    every MVM — crossbar currents, ADC quantization, IR drop, defects.
//    Used by the quickstart example, integration tests and substrate
//    benches. Exact but too slow for full accuracy sweeps of CNNs.
//
//  * Behavioural hardware noise (AnalogReadout + inject_weight_defects):
//    the same non-idealities folded into fast tensor ops — pre-activation
//    quantization to the ADC LSB, Gaussian read noise, and binary-weight
//    sign flips for stuck-at defects. Validated against the tile path in
//    tests/hw_consistency_test.cpp; used by the accuracy benches.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <random>
#include <vector>

#include "core/bayesian.h"
#include "energy/accountant.h"
#include "nn/binarize.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "xbar/conv_tile.h"
#include "xbar/health.h"
#include "xbar/tile.h"

namespace neuspin::obs {
class Tracer;  // obs/trace.h
}

namespace neuspin::core {

class FidelityBackend;  // core/fidelity.h

/// Behavioural non-ideality knobs for fast hardware-aware evaluation.
struct HwNoiseConfig {
  bool enabled = false;
  /// ADC level count (2^bits); pre-activations are quantized onto this
  /// many levels across the batch's observed dynamic range (a SAR ADC
  /// with auto-ranged full scale). 0 disables quantization.
  std::size_t quant_levels = 256;
  /// Read-noise sigma as a fraction of the observed dynamic range
  /// (cycle-to-cycle conductance noise + residual IR drop).
  float noise_fraction = 0.0f;
  std::uint64_t seed = 99;
};

/// Identity during training; at evaluation applies ADC quantization and
/// additive read noise to the pre-activations of the preceding binary
/// layer. Backward is a straight pass-through (STE), so the layer can stay
/// in the graph during training without affecting gradients.
class AnalogReadout : public nn::Layer {
 public:
  explicit AnalogReadout(const HwNoiseConfig& config);

  nn::Tensor forward(const nn::Tensor& input, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "AnalogReadout"; }
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<AnalogReadout>(*this);
  }
  void reseed(std::uint64_t seed) override {
    engine_.seed(seed);
    row_seeds_.clear();
  }
  /// Row mode (fused MC): row r auto-ranges its full scale over its own
  /// values and draws read noise from a stream seeded by row_seeds[r] —
  /// bit for bit the batch-of-one evaluation pass, whose SAR reference
  /// tracked exactly that one row.
  void reseed_rows(std::span<const std::uint64_t> row_seeds) override {
    row_seeds_.assign(row_seeds.begin(), row_seeds.end());
  }
  void save_rng_state(std::ostream& out) const override { out << engine_ << '\n'; }
  void load_rng_state(std::istream& in) override { in >> engine_; }

 private:
  HwNoiseConfig config_;
  std::mt19937_64 engine_;
  std::vector<std::uint64_t> row_seeds_;  ///< non-empty = row mode
};

/// Flip the sign of a fraction `flip_rate` of latent weights in every
/// BinaryDense / BinaryConv2d layer of `net` — the behavioural equivalent
/// of stuck-at defects landing on the wrong state. Returns the number of
/// flipped weights.
std::size_t inject_weight_defects(nn::Sequential& net, float flip_rate,
                                  std::uint64_t seed);

/// Multiply every learnable parameter of `net` by (1 + N(0, rel_sigma)) —
/// the conductance-variation analogue for layers whose parameters live in
/// the NVM crossbars (LSTM gates, dense weights, multi-level cells).
/// Normalization parameters are skipped by default: they live in digital
/// registers, not in analog conductances. Returns the perturbed count.
std::size_t perturb_weights(nn::Sequential& net, float rel_sigma, std::uint64_t seed,
                            bool include_norm_params = false);

/// Tile-backed inference for a trained binary network of the canonical
/// layout
///   [BinaryConv2d -> BatchNorm -> Sign -> (MaxPool2d)]*
///   [BinaryDense -> BatchNorm -> Sign]* -> BinaryDense.
/// Batch-norm is folded into per-neuron (dense) or per-channel (conv)
/// thresholds; hidden activations are computed with sign read-out, the
/// final layer with the configured ADC. Conv stages run on ConvTile
/// (mapping strategy 1: one MVM per output pixel), pooling and flattening
/// are digital periphery on the ±1 activations, so the Table-I CNN has a
/// fully electrical path. Flat (batch x features) inputs to a CNN-shaped
/// net are reshaped to NCHW assuming square feature maps.
class TiledMlp {
 public:
  /// Map `net` (which must follow the canonical layout) onto tiles.
  TiledMlp(nn::Sequential& net, const xbar::TileConfig& tile_config,
           std::uint64_t seed);

  /// Deep copy via DenseTile::clone: every programmed cell, variability
  /// draw, folded threshold and injected defect is preserved, so a clone
  /// serves the same predictions as a rebuild from (net, config, seed)
  /// without re-running the tile programming pass. The replica primitive
  /// of TiledMcEvaluator and the tiled serving backend.
  TiledMlp(const TiledMlp& other);
  TiledMlp& operator=(const TiledMlp&) = delete;
  TiledMlp(TiledMlp&&) = default;
  TiledMlp& operator=(TiledMlp&&) = default;
  [[nodiscard]] TiledMlp clone() const { return TiledMlp(*this); }

  /// Deterministic hardware forward pass of a (batch x features) tensor.
  [[nodiscard]] nn::Tensor forward(const nn::Tensor& input,
                                   energy::EnergyLedger* ledger = nullptr);

  /// SpinDrop hardware pass: hidden dense activations are gated by
  /// per-neuron stochastic MTJ modules with dropout probability `p`; conv
  /// stages use one Spatial-SpinDrop module per feature map (a dropped
  /// channel disables its whole K*K row group in the next conv tile —
  /// strategy 1's grouped multi-row enable).
  [[nodiscard]] nn::Tensor forward_spindrop(const nn::Tensor& input, double p,
                                            energy::EnergyLedger* ledger = nullptr);

  [[nodiscard]] std::size_t layer_count() const {
    return conv_stages_.size() + tiles_.size();
  }
  [[nodiscard]] std::size_t conv_stage_count() const { return conv_stages_.size(); }
  /// Output width of the classifier layer.
  [[nodiscard]] std::size_t out_features() const;
  /// Inject extra stuck-at defects into every tile.
  void inject_defects(const device::DefectRates& rates, std::uint64_t seed);
  /// Inject into one tile only. Tiles index conv stages first, then dense
  /// layers — the order of layer_count(); the per-tile seed derivation
  /// matches inject_defects so targeting tile t reproduces exactly the
  /// defects a whole-model injection would have put there.
  void inject_defects_at(std::size_t tile_index, const device::DefectRates& rates,
                         std::uint64_t seed);

  /// One conductance-drift increment on every tile (deterministic in
  /// `seed`, compounding across calls).
  void apply_drift(double magnitude, std::uint64_t seed);
  /// Canary-probe every tile (localization sweep only where the canary
  /// fails, unless `config.force_sweep`).
  [[nodiscard]] xbar::HealthReport probe_health(const xbar::ProbeConfig& config) const;
  /// Probe + spare-line remap + recalibrate every tile.
  [[nodiscard]] xbar::HealSummary heal(const xbar::ProbeConfig& config);
  /// Re-program all tiles to reference conductances and zero ADC offsets.
  std::size_t recalibrate();

  /// Reset the electrical RNG stream (cycle-to-cycle read noise and MTJ
  /// dropout draws) so the next forward pass is a pure function of
  /// (programmed tiles, input, p, seed). The pooled Monte-Carlo evaluator
  /// and the serving runtime reseed before every pass, which is what makes
  /// tile-level inference reproducible across worker counts.
  void reseed(std::uint64_t seed) { engine_.seed(seed); }

  /// Aggregate event-engine work census over every tile (conv and dense):
  /// how much row propagation the delta caches skipped since construction.
  [[nodiscard]] xbar::DeltaStats delta_stats() const;

  /// Attach a span tracer (nullptr detaches): every subsequent tile
  /// evaluation emits a span carrying the event engine's rows-skipped
  /// census for that call. Observability only — never touches the
  /// electrical RNG stream or a result bit. Not copied by clone().
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct FoldedLayer {
    std::unique_ptr<xbar::DenseTile> tile;
    std::vector<float> bias;       ///< dense bias per column
    std::vector<float> threshold;  ///< folded BN threshold (hidden layers)
    std::vector<float> bn_sign;    ///< sign of gamma (threshold comparison flips)
    bool hidden = false;
  };
  /// One electrical conv block: ConvTile + bias + folded BN threshold,
  /// followed by optional 2x2 digital max pooling of the ±1 activations.
  struct ConvStage {
    std::unique_ptr<xbar::ConvTile> tile;
    std::vector<float> bias;       ///< conv bias per output channel
    std::vector<float> threshold;  ///< folded BN threshold per channel
    std::vector<float> bn_sign;    ///< sign of gamma per channel
    bool pool = false;             ///< MaxPool2d follows the activation
  };

  /// Run the conv stages on one flat sample, replacing `x`/`enabled` with
  /// the flattened ±1 feature maps and their Spatial-SpinDrop gating.
  void run_conv_stages(std::vector<float>& x, std::vector<std::uint8_t>& enabled,
                       double p, energy::EnergyLedger* ledger);

  std::vector<ConvStage> conv_stages_;
  std::vector<FoldedLayer> tiles_;
  std::mt19937_64 engine_;
  std::uint64_t dropout_seed_;
  /// Span sink for per-tile evaluation spans (null = no tracing). Not
  /// copied: a clone's owner re-attaches its own tracer.
  obs::Tracer* tracer_ = nullptr;
};

/// Knobs of the pooled tile-level Monte-Carlo evaluator.
struct TiledEvalOptions {
  std::size_t mc_samples = 20;  ///< T electrical passes per sample
  /// SpinDrop probability of each hidden neuron's MTJ dropout module
  /// (0 = deterministic hardware forward, still subject to read noise).
  double dropout_p = 0.0;
  /// Replica count: 0 = one per hardware thread, 1 = serial. Results are
  /// independent of this value.
  std::size_t threads = 0;
  /// Base seed of the per-(sample, pass) RNG streams.
  std::uint64_t seed = 0x74696c65646d63ull;  // "tiledmc"
};

/// Parallel Monte-Carlo inference over the electrical fidelity level: the
/// clone-per-worker pattern of core::evaluate driven through replicated
/// core::TiledBackend instances (core/fidelity.h).
///
/// The first replica is programmed eagerly (construction is a
/// deterministic function of (net weights, tile config, tile seed), and a
/// non-canonical net layout fails here, not at the first predict);
/// additional replicas are FidelityBackend::clone() copies of its
/// programmed state — bit-identical hardware, including the variability
/// and defect draws, without re-running the programming pass per worker.
/// Replicas are built lazily, up to min(threads, batch rows), so a small
/// predict() on a many-core host does not clone tiles that would sit
/// idle. Samples are fanned across replicas in contiguous chunks; sample
/// `row` runs its T passes under the backend request seed
/// mix_seed(seed, row) (so pass t draws mix_seed(mix_seed(seed, row), t)).
/// Predictions are therefore a pure function of (net, tile config, tile
/// seed, options, inputs) — bitwise identical for any thread count. Note
/// the streams are keyed by in-call row index: predicting the same rows
/// split across several predict() calls draws different streams than one
/// combined call (the serving runtime, which needs per-request
/// invariance, derives its own per-request seeds instead).
class TiledMcEvaluator {
 public:
  /// Programs the first replica from `net` (read-only; the caller's net is
  /// never referenced after construction).
  TiledMcEvaluator(nn::Sequential& net, const xbar::TileConfig& tile_config,
                   std::uint64_t tile_seed, const TiledEvalOptions& options);
  ~TiledMcEvaluator();
  TiledMcEvaluator(TiledMcEvaluator&&) noexcept;
  TiledMcEvaluator& operator=(TiledMcEvaluator&&) noexcept;
  TiledMcEvaluator(const TiledMcEvaluator&) = delete;
  TiledMcEvaluator& operator=(const TiledMcEvaluator&) = delete;

  /// Bayesian prediction of a (batch x features) tensor. When `ledger` is
  /// non-null, every chargeable event of every pass is accumulated into it
  /// (per-replica sub-ledgers are merged deterministically).
  [[nodiscard]] Prediction predict(const nn::Tensor& inputs,
                                   energy::EnergyLedger* ledger = nullptr);

  /// Replicas constructed so far (grows on demand, never past `threads`).
  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] const TiledEvalOptions& options() const { return options_; }
  /// Event-engine work census summed over every replica's tiles.
  [[nodiscard]] xbar::DeltaStats delta_stats() const;

 private:
  TiledEvalOptions options_;
  std::size_t max_replicas_;
  std::vector<std::unique_ptr<FidelityBackend>> replicas_;
};

}  // namespace neuspin::core
