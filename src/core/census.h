// Architecture census: event counts, RNG/dropout-module inventory and
// storage footprint of one Bayesian inference, per method.
//
// This is the machinery behind Table I's energy column and all of the
// paper's x-factor claims (9x / 94.11x / 2.94x / 100x / 70x / 158.7x):
// every method's cost is derived from the SAME architecture description
// under the SAME component cost table; only the per-method counting rules
// differ, and those follow the circuit descriptions in §III.
#pragma once

#include <cstdint>
#include <vector>

#include "core/method.h"
#include "energy/accountant.h"
#include "energy/memory.h"

namespace neuspin::core {

/// One layer of the deployed architecture.
struct LayerSpec {
  enum class Kind : std::uint8_t { kDense, kConv } kind = Kind::kDense;
  // Dense fields.
  std::size_t in_features = 0;
  std::size_t out_features = 0;
  // Conv fields.
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;
  std::size_t out_height = 0;
  std::size_t out_width = 0;
  /// Hidden layers carry normalization + binary activation; the final
  /// (classifier) layer does not.
  bool hidden = true;

  [[nodiscard]] static LayerSpec dense(std::size_t in, std::size_t out, bool hidden);
  [[nodiscard]] static LayerSpec conv(std::size_t in_ch, std::size_t out_ch,
                                      std::size_t kernel, std::size_t out_h,
                                      std::size_t out_w);

  /// Rows of one matrix-vector multiply on the crossbar.
  [[nodiscard]] std::size_t mvm_rows() const;
  /// Columns of one MVM.
  [[nodiscard]] std::size_t mvm_cols() const;
  /// MVMs needed per forward pass (conv: one per output pixel).
  [[nodiscard]] std::size_t mvm_count() const;
  /// Output activations ("neurons") of this layer.
  [[nodiscard]] std::size_t neurons() const;
  /// Feature maps (conv) — dense layers report 1.
  [[nodiscard]] std::size_t feature_maps() const;
  /// Synaptic weights.
  [[nodiscard]] std::size_t weights() const;
  /// Per-channel scale-vector entries.
  [[nodiscard]] std::size_t scale_entries() const;
};

/// The whole deployed network.
struct ArchSpec {
  std::vector<LayerSpec> layers;

  [[nodiscard]] std::size_t total_weights() const;
  [[nodiscard]] std::size_t total_neurons() const;        ///< hidden only
  [[nodiscard]] std::size_t total_feature_maps() const;   ///< hidden only
  [[nodiscard]] std::size_t total_scale_entries() const;  ///< hidden only
  [[nodiscard]] std::size_t hidden_layer_count() const;
};

/// The LeNet-class binary CNN used by the Table I benchmark
/// (16x16x1 -> conv8 -> conv16 -> dense64 -> 10).
[[nodiscard]] ArchSpec small_cnn_arch();

/// The binary MLP used by MLP-level experiments (256-128-128-10).
[[nodiscard]] ArchSpec mlp_arch();

/// Census knobs.
struct CensusConfig {
  std::size_t mc_passes = 20;    ///< T, Monte-Carlo forward passes
  std::size_t max_rows = 128;    ///< crossbar height (row blocking)
  std::size_t adc_bits_full = 8; ///< ADC-architecture resolution
  std::size_t spinbayes_instances = 8;
  /// Bernoulli trials per Gaussian sample when SOT devices synthesize
  /// Gaussians by accumulation (sub-set VI, traditional VI).
  std::size_t bits_per_gaussian = 8;
};

/// Number of physical dropout/RNG modules the method instantiates
/// (the paper's "9x fewer dropout modules" metric).
[[nodiscard]] std::size_t dropout_module_count(const ArchSpec& arch, Method method);

/// Stochastic bits consumed by ONE forward pass.
[[nodiscard]] std::uint64_t rng_bits_per_pass(const ArchSpec& arch, Method method,
                                              const CensusConfig& config);

/// Full event ledger of one Bayesian inference (T stochastic passes).
[[nodiscard]] energy::EnergyLedger inference_census(const ArchSpec& arch, Method method,
                                                    const CensusConfig& config);

/// Storage footprint of the deployed model under the method's scheme.
[[nodiscard]] energy::MemoryFootprint storage_census(const ArchSpec& arch, Method method,
                                                     const CensusConfig& config);

}  // namespace neuspin::core
