#include "core/dropconnect.h"

#include <cmath>
#include <stdexcept>

#include "nn/binarize.h"

namespace neuspin::core {

DropConnectDense::DropConnectDense(std::size_t in_features, std::size_t out_features,
                                   double p, std::mt19937_64& engine,
                                   std::uint64_t mask_seed,
                                   energy::EnergyLedger* ledger)
    : in_(in_features),
      out_(out_features),
      p_(p),
      latent_weight_(nn::Tensor::randn(
          {in_features, out_features},
          std::sqrt(2.0f / static_cast<float>(in_features)), engine)),
      bias_({out_features}),
      weight_grad_({in_features, out_features}),
      bias_grad_({out_features}),
      mask_engine_(mask_seed),
      ledger_(ledger) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("DropConnectDense: feature counts must be positive");
  }
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("DropConnectDense: p must lie in [0,1)");
  }
}

nn::Tensor DropConnectDense::forward(const nn::Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("DropConnectDense: expected (batch x " +
                                std::to_string(in_) + ")");
  }
  input_cache_ = input;
  masked_binary_cache_ = nn::sign_of(latent_weight_);
  alpha_cache_ = nn::column_abs_mean(latent_weight_);

  const bool stochastic = (training || mc_mode_) && p_ > 0.0;
  if (stochastic) {
    std::bernoulli_distribution drop(p_);
    for (std::size_t i = 0; i < masked_binary_cache_.numel(); ++i) {
      if (drop(mask_engine_)) {
        masked_binary_cache_[i] = 0.0f;  // gated connection
      }
    }
    if (ledger_ != nullptr) {
      // One stochastic module decision per weight per pass — the cost the
      // paper's resource-scalability argument is about.
      ledger_->add(energy::Component::kRngDropoutCycle, in_ * out_);
    }
  }

  nn::Tensor out = matmul(input, masked_binary_cache_);
  for (std::size_t i = 0; i < out.dim(0); ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      out.at(i, j) = out.at(i, j) * alpha_cache_[j] + bias_[j];
    }
  }
  return out;
}

nn::Tensor DropConnectDense::backward(const nn::Tensor& grad_output) {
  const std::size_t batch = grad_output.dim(0);
  nn::Tensor g_scaled = grad_output;
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      g_scaled.at(i, j) *= alpha_cache_[j];
      bias_grad_[j] += grad_output.at(i, j);
    }
  }
  nn::Tensor wg = matmul_a_transposed(input_cache_, g_scaled);
  for (std::size_t i = 0; i < wg.numel(); ++i) {
    // STE window, and no gradient through connections dropped this pass.
    if (std::abs(latent_weight_[i]) > 1.0f || masked_binary_cache_[i] == 0.0f) {
      wg[i] = 0.0f;
    }
  }
  weight_grad_ += wg;
  return matmul_transposed(g_scaled, masked_binary_cache_);
}

std::vector<nn::ParamRef> DropConnectDense::parameters() {
  return {{&latent_weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

}  // namespace neuspin::core
