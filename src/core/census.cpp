#include "core/census.h"

#include <stdexcept>

namespace neuspin::core {

LayerSpec LayerSpec::dense(std::size_t in, std::size_t out, bool hidden_layer) {
  LayerSpec s;
  s.kind = Kind::kDense;
  s.in_features = in;
  s.out_features = out;
  s.hidden = hidden_layer;
  return s;
}

LayerSpec LayerSpec::conv(std::size_t in_ch, std::size_t out_ch, std::size_t kernel,
                          std::size_t out_h, std::size_t out_w) {
  LayerSpec s;
  s.kind = Kind::kConv;
  s.in_channels = in_ch;
  s.out_channels = out_ch;
  s.kernel = kernel;
  s.out_height = out_h;
  s.out_width = out_w;
  s.hidden = true;
  return s;
}

std::size_t LayerSpec::mvm_rows() const {
  return kind == Kind::kDense ? in_features : kernel * kernel * in_channels;
}

std::size_t LayerSpec::mvm_cols() const {
  return kind == Kind::kDense ? out_features : out_channels;
}

std::size_t LayerSpec::mvm_count() const {
  return kind == Kind::kDense ? 1 : out_height * out_width;
}

std::size_t LayerSpec::neurons() const { return mvm_cols() * mvm_count(); }

std::size_t LayerSpec::feature_maps() const {
  return kind == Kind::kConv ? out_channels : 1;
}

std::size_t LayerSpec::weights() const { return mvm_rows() * mvm_cols(); }

std::size_t LayerSpec::scale_entries() const { return mvm_cols(); }

std::size_t ArchSpec::total_weights() const {
  std::size_t n = 0;
  for (const auto& l : layers) {
    n += l.weights();
  }
  return n;
}

std::size_t ArchSpec::total_neurons() const {
  std::size_t n = 0;
  for (const auto& l : layers) {
    if (l.hidden) {
      n += l.neurons();
    }
  }
  return n;
}

std::size_t ArchSpec::total_feature_maps() const {
  std::size_t n = 0;
  for (const auto& l : layers) {
    if (l.hidden) {
      n += l.feature_maps();
    }
  }
  return n;
}

std::size_t ArchSpec::total_scale_entries() const {
  std::size_t n = 0;
  for (const auto& l : layers) {
    if (l.hidden) {
      n += l.scale_entries();
    }
  }
  return n;
}

std::size_t ArchSpec::hidden_layer_count() const {
  std::size_t n = 0;
  for (const auto& l : layers) {
    if (l.hidden) {
      ++n;
    }
  }
  return n;
}

ArchSpec small_cnn_arch() {
  ArchSpec arch;
  arch.layers = {
      LayerSpec::conv(1, 8, 3, 16, 16),   // conv1, pooled to 8x8 afterwards
      LayerSpec::conv(8, 16, 3, 8, 8),    // conv2, pooled to 4x4 afterwards
      LayerSpec::dense(256, 64, true),    // 4*4*16 = 256
      LayerSpec::dense(64, 10, false),
  };
  return arch;
}

ArchSpec mlp_arch() {
  ArchSpec arch;
  arch.layers = {
      LayerSpec::dense(256, 128, true),
      LayerSpec::dense(128, 128, true),
      LayerSpec::dense(128, 10, false),
  };
  return arch;
}

namespace {

/// Does the method use the binary-activation (sense-amp) read-out for
/// hidden layers? (Fig. 2 / Fig. 3 architectures.)
bool sense_amp_architecture(Method method) {
  // Fig. 2's scale-dropout and the sub-set VI design fold normalization
  // into sense-amp thresholds; SpinBayes (Fig. 3) stores quantized
  // multi-level weights and keeps multi-bit ADC read-out.
  switch (method) {
    case Method::kSpinScaleDrop:
    case Method::kSubsetVi:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::size_t dropout_module_count(const ArchSpec& arch, Method method) {
  switch (method) {
    case Method::kDeterministic:
      return 0;
    case Method::kSpinDrop: {
      // One module per neuron of the widest layer; modules are reused
      // across layers (the paper notes reuse), but a layer's neurons fire
      // concurrently so the pool must cover the widest hidden layer.
      std::size_t widest = 0;
      for (const auto& l : arch.layers) {
        if (l.hidden) {
          widest = std::max(widest, l.neurons());
        }
      }
      return widest;
    }
    case Method::kSpatialSpinDrop: {
      std::size_t widest = 0;
      for (const auto& l : arch.layers) {
        if (l.hidden) {
          widest = std::max(widest, l.feature_maps());
        }
      }
      return widest;
    }
    case Method::kSpinScaleDrop:
      return arch.hidden_layer_count();  // exactly one module per layer
    case Method::kAffineDropout:
      return 2 * arch.hidden_layer_count();  // weight mask + bias mask
    case Method::kSubsetVi: {
      // One Gaussian sampler per layer, shared across channels serially.
      return arch.hidden_layer_count();
    }
    case Method::kSpinBayes:
      return arch.hidden_layer_count();  // one arbiter per layer
    case Method::kTraditionalVi: {
      // On-the-fly per-weight sampling: a sampler bank per layer sized to
      // the widest layer's weight count.
      std::size_t widest = 0;
      for (const auto& l : arch.layers) {
        widest = std::max(widest, l.weights());
      }
      return widest;
    }
  }
  return 0;
}

std::uint64_t rng_bits_per_pass(const ArchSpec& arch, Method method,
                                const CensusConfig& config) {
  std::uint64_t bits = 0;
  for (const auto& l : arch.layers) {
    if (!l.hidden) {
      continue;
    }
    switch (method) {
      case Method::kDeterministic:
        break;
      case Method::kSpinDrop:
        bits += l.neurons();  // one decision per neuron
        break;
      case Method::kSpatialSpinDrop:
        bits += l.feature_maps();  // one per feature map (dense: one)
        break;
      case Method::kSpinScaleDrop:
        bits += 1;  // single scale-dropout module per layer
        break;
      case Method::kAffineDropout:
        bits += 2;  // scalar weight mask + scalar bias mask
        break;
      case Method::kSubsetVi:
        bits += config.bits_per_gaussian * l.scale_entries();
        break;
      case Method::kSpinBayes: {
        std::size_t b = 0;
        std::size_t cap = 1;
        while (cap < config.spinbayes_instances) {
          cap *= 2;
          ++b;
        }
        bits += b;  // arbiter one-hot draw
        break;
      }
      case Method::kTraditionalVi:
        bits += config.bits_per_gaussian * l.weights();
        break;
    }
  }
  return bits;
}

energy::EnergyLedger inference_census(const ArchSpec& arch, Method method,
                                      const CensusConfig& config) {
  if (config.mc_passes == 0 || config.max_rows == 0) {
    throw std::invalid_argument("inference_census: invalid config");
  }
  energy::EnergyLedger ledger(config.adc_bits_full);
  const bool sa_arch = sense_amp_architecture(method);
  // Deterministic point networks run a single pass; Bayesian methods run T.
  const std::uint64_t passes = method == Method::kDeterministic ? 1 : config.mc_passes;

  for (const auto& l : arch.layers) {
    const std::uint64_t rows = l.mvm_rows();
    const std::uint64_t cols = l.mvm_cols();
    const std::uint64_t mvms = l.mvm_count();
    const std::uint64_t blocks = (rows + config.max_rows - 1) / config.max_rows;

    // Analog MAC path, identical for every method.
    ledger.add(energy::Component::kWordlineActivation, passes * rows * mvms);
    ledger.add(energy::Component::kInputDriver, passes * rows * mvms);
    ledger.add(energy::Component::kXbarCellRead, passes * 2 * rows * cols * mvms);

    if (l.hidden && sa_arch) {
      // Binary-activation read-out: one SA evaluation per column per MVM;
      // batch-norm is folded into the SA threshold at deployment time.
      ledger.add(energy::Component::kSenseAmp, passes * cols * mvms);
    } else {
      // Full ADC read-out + digital normalization per neuron.
      ledger.add(energy::Component::kAdcConversion, passes * cols * blocks * mvms);
      if (blocks > 1) {
        ledger.add(energy::Component::kDigitalAdd, passes * cols * (blocks - 1) * mvms);
      }
      if (l.hidden) {
        // BatchNorm: one multiply + one add per output activation.
        ledger.add(energy::Component::kDigitalMult, passes * cols * mvms);
        ledger.add(energy::Component::kDigitalAdd, passes * cols * mvms);
      }
    }

    // Method-specific per-layer machinery.
    if (l.hidden) {
      switch (method) {
        case Method::kSpinScaleDrop:
          // Scale vector fetched from SRAM and folded into the SA
          // thresholds once per pass.
          ledger.add(energy::Component::kSramReadWord, passes * l.scale_entries());
          ledger.add(energy::Component::kDigitalMult, passes * l.scale_entries());
          break;
        case Method::kSubsetVi:
          // Posterior parameters read from the scale crossbar (mu, sigma
          // planes) and combined with the sampled noise.
          ledger.add(energy::Component::kXbarCellRead, passes * 2 * l.scale_entries());
          ledger.add(energy::Component::kDigitalMult, passes * l.scale_entries());
          ledger.add(energy::Component::kDigitalAdd, passes * l.scale_entries());
          break;
        case Method::kSpinBayes:
          // Selected instance read from its crossbar.
          ledger.add(energy::Component::kXbarCellRead, passes * l.scale_entries());
          break;
        case Method::kAffineDropout:
          // Affine transform: multiply + add per activation (already
          // covered by the BN charge above for the ADC architecture).
          break;
        default:
          break;
      }
    }
  }

  ledger.add(energy::Component::kRngDropoutCycle,
             passes * rng_bits_per_pass(arch, method, config));
  // Monte-Carlo averaging of the class logits.
  const std::size_t classes = arch.layers.back().mvm_cols();
  ledger.add(energy::Component::kDigitalAdd, passes * classes);
  return ledger;
}

energy::MemoryFootprint storage_census(const ArchSpec& arch, Method method,
                                       const CensusConfig& config) {
  energy::ModelShape shape;
  shape.weight_count = arch.total_weights();
  shape.scale_entries = arch.total_scale_entries();
  shape.norm_entries = 2 * arch.total_scale_entries();  // gamma+beta per channel

  switch (method) {
    case Method::kDeterministic:
    case Method::kSpinDrop:
    case Method::kSpatialSpinDrop:
      return energy::footprint(shape, energy::StorageScheme::kBinaryPoint);
    case Method::kSpinScaleDrop:
    case Method::kAffineDropout:
      // Binary weights + one float scale (or affine w/b) vector.
      return energy::footprint(shape, energy::StorageScheme::kBinaryPoint);
    case Method::kSubsetVi:
      return energy::footprint(shape, energy::StorageScheme::kSubsetVi);
    case Method::kSpinBayes: {
      auto fp = energy::footprint(shape, energy::StorageScheme::kSubsetVi);
      // N quantized instances replace the (mu, sigma) parameterization.
      std::size_t level_bits = 0;
      std::size_t cap = 1;
      while (cap < 8) {  // 8-level multi-value cell
        cap *= 2;
        ++level_bits;
      }
      fp.variational_bits = 0;
      fp.other_bits = static_cast<std::uint64_t>(config.spinbayes_instances) *
                      shape.scale_entries * level_bits;
      return fp;
    }
    case Method::kTraditionalVi:
      return energy::footprint(shape, energy::StorageScheme::kPerWeightGaussianVi);
  }
  return {};
}

}  // namespace neuspin::core
