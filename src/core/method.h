// Enumeration of the Bayesian approximation methods the NeuSpin project
// compares (paper Table I plus the baselines the in-text claims are made
// against).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neuspin::core {

/// All methods the benches compare.
enum class Method : std::uint8_t {
  kDeterministic,   ///< point-estimate binary NN (no Bayesian treatment)
  kSpinDrop,        ///< per-neuron MTJ dropout (§III-A.1)
  kSpatialSpinDrop, ///< per-feature-map dropout (§III-A.2)
  kSpinScaleDrop,   ///< per-layer scale dropout (§III-A.3)
  kAffineDropout,   ///< inverted norm + stochastic affine (§III-A.4)
  kSubsetVi,        ///< Bayesian sub-set parameter inference (§III-B.1)
  kSpinBayes,       ///< N-crossbar in-memory approximation (§III-B.2)
  kTraditionalVi,   ///< per-weight Gaussian VI baseline (related work)
};

[[nodiscard]] std::string method_name(Method m);

/// The five methods of the paper's Table I, in its row order.
[[nodiscard]] const std::vector<Method>& table1_methods();

}  // namespace neuspin::core
