#include "core/spindrop.h"

#include <stdexcept>
#include <string>

#include "nn/model.h"

namespace neuspin::core {

PseudoDropoutSource::PseudoDropoutSource(double p, std::uint64_t seed)
    : p_(p), state_(seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("PseudoDropoutSource: p must lie in [0,1)");
  }
}

bool PseudoDropoutSource::sample() {
  // splitmix64 step (Steele et al.) -> uniform double in [0, 1) from the
  // top 53 bits. Full-period, statistically solid for Bernoulli gating,
  // and O(1) to reseed.
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < p_;
}

namespace {

device::SpinRngConfig spin_config_for(double target_p, double delta_shift) {
  device::SpinRngConfig config;
  config.target_probability = target_p;
  if (delta_shift != 0.0) {
    config.delta_override = config.mtj.delta + delta_shift;
  }
  return config;
}

}  // namespace

SpinDropoutSource::SpinDropoutSource(double target_p, double delta_shift,
                                     std::uint64_t seed, energy::EnergyLedger* ledger)
    : rng_(spin_config_for(target_p, delta_shift), seed), ledger_(ledger) {}

bool SpinDropoutSource::sample() {
  if (ledger_ != nullptr) {
    ledger_->add(energy::Component::kRngDropoutCycle, 1);
  }
  return rng_.next_bit();
}

double SpinDropoutSource::probability() const { return rng_.realized_probability(); }

SpinDropLayer::SpinDropLayer(DropGranularity granularity,
                             std::vector<std::unique_ptr<DropoutSource>> sources,
                             std::uint64_t train_seed)
    : granularity_(granularity), sources_(std::move(sources)), train_engine_(train_seed) {
  if (sources_.empty()) {
    throw std::invalid_argument("SpinDropLayer: need at least one dropout source");
  }
  for (const auto& s : sources_) {
    if (s == nullptr) {
      throw std::invalid_argument("SpinDropLayer: null dropout source");
    }
  }
}

SpinDropLayer::SpinDropLayer(const SpinDropLayer& other)
    : granularity_(other.granularity_),
      train_engine_(other.train_engine_),
      mc_mode_(other.mc_mode_),
      mask_(other.mask_) {
  sources_.reserve(other.sources_.size());
  for (const auto& s : other.sources_) {
    sources_.push_back(s->clone());
  }
}

void SpinDropLayer::reseed(std::uint64_t seed) {
  for (std::size_t u = 0; u < sources_.size(); ++u) {
    sources_[u]->reseed(nn::mix_seed(seed, u));
  }
  train_engine_.seed(nn::mix_seed(seed, sources_.size()));
  row_seeds_.clear();
}

void SpinDropLayer::reseed_rows(std::span<const std::uint64_t> row_seeds) {
  row_seeds_.assign(row_seeds.begin(), row_seeds.end());
}

std::string SpinDropLayer::name() const {
  switch (granularity_) {
    case DropGranularity::kNeuron:
      return "SpinDrop";
    case DropGranularity::kFeatureMap:
      return "SpatialSpinDrop";
    case DropGranularity::kLayer:
      return "LayerSpinDrop";
  }
  return "SpinDrop";
}

double SpinDropLayer::realized_probability() const {
  double p = 0.0;
  for (const auto& s : sources_) {
    p += s->probability();
  }
  return p / static_cast<double>(sources_.size());
}

std::size_t SpinDropLayer::unit_count(const nn::Shape& shape) const {
  switch (granularity_) {
    case DropGranularity::kNeuron: {
      std::size_t per_sample = 1;
      for (std::size_t a = 1; a < shape.size(); ++a) {
        per_sample *= shape[a];
      }
      return per_sample;
    }
    case DropGranularity::kFeatureMap:
      if (shape.size() < 2) {
        throw std::invalid_argument("SpinDropLayer: feature-map dropout needs rank>=2");
      }
      return shape[1];
    case DropGranularity::kLayer:
      return 1;
  }
  return 1;
}

void SpinDropLayer::apply_unit_mask(nn::Tensor& x, const std::vector<float>& unit_mask,
                                    std::size_t b_begin, std::size_t b_end) const {
  const nn::Shape& shape = x.shape();
  const std::size_t batch = shape[0];
  const std::size_t per_sample = x.numel() / batch;
  switch (granularity_) {
    case DropGranularity::kNeuron:
      for (std::size_t b = b_begin; b < b_end; ++b) {
        for (std::size_t u = 0; u < per_sample; ++u) {
          x[b * per_sample + u] *= unit_mask[u];
        }
      }
      break;
    case DropGranularity::kFeatureMap: {
      const std::size_t channels = shape[1];
      const std::size_t inner = per_sample / channels;
      for (std::size_t b = b_begin; b < b_end; ++b) {
        for (std::size_t c = 0; c < channels; ++c) {
          const float m = unit_mask[c];
          if (m == 1.0f) {
            continue;
          }
          for (std::size_t i = 0; i < inner; ++i) {
            x[(b * channels + c) * inner + i] *= m;
          }
        }
      }
      break;
    }
    case DropGranularity::kLayer:
      if (unit_mask[0] != 1.0f) {
        for (std::size_t b = b_begin; b < b_end; ++b) {
          for (std::size_t u = 0; u < per_sample; ++u) {
            x[b * per_sample + u] = 0.0f;
          }
        }
      }
      break;
  }
}

std::vector<float> SpinDropLayer::draw_unit_mask(std::size_t units) {
  if (units > sources_.size() && granularity_ != DropGranularity::kLayer) {
    throw std::logic_error("SpinDropLayer: " + std::to_string(units) +
                           " units but only " + std::to_string(sources_.size()) +
                           " dropout modules");
  }
  std::vector<float> unit_mask(units, 1.0f);
  for (std::size_t u = 0; u < units; ++u) {
    // Modules are reusable across units when fewer exist (paper notes the
    // module can be time-multiplexed); index modulo the pool size.
    if (sources_[u % sources_.size()]->sample()) {
      unit_mask[u] = 0.0f;
    }
  }
  return unit_mask;
}

nn::Tensor SpinDropLayer::forward(const nn::Tensor& input, bool training) {
  const bool active = training || mc_mode_;
  nn::Tensor out = input;
  if (!active) {
    mask_ = nn::Tensor(input.shape(), 1.0f);
    return out;
  }
  if (training) {
    // Per-sample pseudo masks at the layer's granularity (fast path, the
    // standard MC-dropout training procedure).
    const double p = sources_.front()->probability();
    std::bernoulli_distribution drop(p);
    mask_ = nn::Tensor(input.shape(), 1.0f);
    const std::size_t batch = input.dim(0);
    const std::size_t per_sample = input.numel() / batch;
    const std::size_t units = unit_count(input.shape());
    const std::size_t inner = per_sample / units;
    const bool row_mode = !row_seeds_.empty();
    if (row_mode && batch != row_seeds_.size()) {
      throw std::invalid_argument("SpinDropLayer: row-seed count does not match batch");
    }
    for (std::size_t b = 0; b < batch; ++b) {
      if (row_mode) {
        // Sharded-trainer contract: sample b's mask comes from a stream
        // keyed to its global row seed — bit for bit the mask a
        // batch-of-one training forward after reseed(row_seeds_[b]) would
        // draw (reseed() seeds the train engine with salt source count).
        train_engine_.seed(nn::mix_seed(row_seeds_[b], sources_.size()));
      }
      for (std::size_t u = 0; u < units; ++u) {
        if (drop(train_engine_)) {
          for (std::size_t i = 0; i < inner; ++i) {
            mask_[(b * units + u) * inner + i] = 0.0f;
          }
        }
      }
    }
    for (std::size_t i = 0; i < out.numel(); ++i) {
      out[i] *= mask_[i];
    }
    return out;
  }
  const std::size_t units = unit_count(input.shape());
  const std::size_t batch = input.dim(0);
  mask_ = nn::Tensor(input.shape(), 1.0f);
  if (!row_seeds_.empty()) {
    // Fused MC: every row replays the batch-of-one procedure under its own
    // seed — reseed all modules, then draw one decision per unit.
    if (batch != row_seeds_.size()) {
      throw std::invalid_argument("SpinDropLayer: row-seed count does not match batch");
    }
    for (std::size_t r = 0; r < batch; ++r) {
      for (std::size_t u = 0; u < sources_.size(); ++u) {
        sources_[u]->reseed(nn::mix_seed(row_seeds_[r], u));
      }
      const std::vector<float> unit_mask = draw_unit_mask(units);
      apply_unit_mask(out, unit_mask, r, r + 1);
      apply_unit_mask(mask_, unit_mask, r, r + 1);
    }
    return out;
  }
  // Bayesian inference: one decision per unit per pass, drawn from the
  // physical (or pseudo) modules and shared across the batch.
  const std::vector<float> unit_mask = draw_unit_mask(units);
  apply_unit_mask(out, unit_mask, 0, batch);
  // Cache an element-wise mask so backward stays correct even in mc mode.
  apply_unit_mask(mask_, unit_mask, 0, batch);
  return out;
}

nn::Tensor SpinDropLayer::backward(const nn::Tensor& grad_output) {
  nn::Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    grad[i] *= mask_[i];
  }
  return grad;
}

std::unique_ptr<SpinDropLayer> make_pseudo_spindrop(DropGranularity granularity,
                                                    std::size_t units, double p,
                                                    std::uint64_t seed) {
  std::vector<std::unique_ptr<DropoutSource>> sources;
  sources.reserve(units);
  for (std::size_t u = 0; u < units; ++u) {
    sources.push_back(std::make_unique<PseudoDropoutSource>(p, seed + 31 * u + 1));
  }
  return std::make_unique<SpinDropLayer>(granularity, std::move(sources), seed ^ 0xabcd);
}

std::unique_ptr<SpinDropLayer> make_spintronic_spindrop(DropGranularity granularity,
                                                        std::size_t units, double p,
                                                        double delta_sigma,
                                                        std::uint64_t seed,
                                                        energy::EnergyLedger* ledger) {
  std::mt19937_64 engine(seed);
  std::normal_distribution<double> shift(0.0, delta_sigma);
  std::vector<std::unique_ptr<DropoutSource>> sources;
  sources.reserve(units);
  for (std::size_t u = 0; u < units; ++u) {
    sources.push_back(std::make_unique<SpinDropoutSource>(
        p, delta_sigma > 0.0 ? shift(engine) : 0.0, seed + 977 * u + 5, ledger));
  }
  return std::make_unique<SpinDropLayer>(granularity, std::move(sources), seed ^ 0xdcba);
}

}  // namespace neuspin::core
