// Reusable worker-thread pool for the Monte-Carlo evaluation fan-out.
//
// The MC predictive loop runs T independent stochastic forward passes; the
// pool lets those passes execute on however many hardware threads exist
// while keeping the call-site synchronous: `run_all` submits a task batch
// and blocks until every task finished, rethrowing the first exception.
//
// The pool is deliberately small: a mutex/condition-variable task queue,
// no work stealing, no futures leaking into the public API beyond what
// `submit` returns. Evaluation-scale batches (tens of tasks, each running
// a full network forward pass) amortize the queue cost by orders of
// magnitude.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace neuspin::core {

/// Resolve a requested worker/replica count: 0 means one per hardware
/// thread (minimum 1), anything else is honored as-is — the shared rule of
/// every clone-per-worker fan-out (evaluation, tiled inference, serving).
[[nodiscard]] std::size_t resolve_worker_count(std::size_t requested);

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// `thread_count` 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue one task; the future resolves when it ran (or carries its
  /// exception).
  std::future<void> submit(std::function<void()> task);

  /// Submit every task and wait for all of them. If any task threw, the
  /// first exception (in submission order) is rethrown after all tasks
  /// finished, so no task is left running against destroyed state.
  void run_all(std::vector<std::function<void()>> tasks);

  /// Process-wide pool sized to the hardware, created on first use.
  /// Shared by the evaluation pipeline so repeated `evaluate` calls reuse
  /// the same warm threads.
  [[nodiscard]] static ThreadPool& shared();

  /// Split [0, total) into at most `max_chunks` contiguous ceil-sized
  /// chunks and run `worker(chunk, begin, end)` for every non-empty chunk,
  /// blocking until all finished (single-chunk work runs inline on the
  /// calling thread). Chunk indices are dense from 0 so callers can map a
  /// chunk to a dedicated replica/ledger — the shared partitioning of
  /// every clone-per-worker fan-out; results must not depend on the
  /// partition, only the work assignment does.
  void run_chunked(std::size_t total, std::size_t max_chunks,
                   const std::function<void(std::size_t chunk, std::size_t begin,
                                            std::size_t end)>& worker);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace neuspin::core
