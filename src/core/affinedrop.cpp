#include "core/affinedrop.h"

#include <cmath>
#include <stdexcept>

namespace neuspin::core {

void AffineDropConfig::validate() const {
  if (features == 0) {
    throw std::invalid_argument("AffineDropConfig: features must be positive");
  }
  if (dropout_p < 0.0 || dropout_p >= 1.0) {
    throw std::invalid_argument("AffineDropConfig: dropout_p must lie in [0,1)");
  }
  if (eps <= 0.0f) {
    throw std::invalid_argument("AffineDropConfig: eps must be positive");
  }
}

InvertedNormLayer::InvertedNormLayer(const AffineDropConfig& config)
    : config_(config),
      weight_({config.features}, 1.0f),
      bias_({config.features}),
      weight_grad_({config.features}),
      bias_grad_({config.features}),
      running_mean_({config.features}),
      running_var_({config.features}, 1.0f),
      engine_(config.seed),
      batch_std_({config.features}) {
  config_.validate();
}

void InvertedNormLayer::resolve_geometry(const nn::Shape& shape, std::size_t& outer,
                                         std::size_t& inner) const {
  if (shape.size() == 2 && shape[1] == config_.features) {
    outer = shape[0];
    inner = 1;
    return;
  }
  if (shape.size() == 4 && shape[1] == config_.features) {
    outer = shape[0];
    inner = shape[2] * shape[3];
    return;
  }
  throw std::invalid_argument("InvertedNormLayer(" + std::to_string(config_.features) +
                              "): unsupported input shape " +
                              nn::shape_to_string(shape));
}

nn::Tensor InvertedNormLayer::forward(const nn::Tensor& input, bool training) {
  std::size_t outer = 0;
  std::size_t inner = 0;
  resolve_geometry(input.shape(), outer, inner);
  input_shape_ = input.shape();
  input_cache_ = input;

  if (!row_seeds_.empty() && !training) {
    // Fused MC: each row draws its own two scalar masks and is normalized
    // against the running statistics, replaying the batch-of-one pass.
    if (outer != row_seeds_.size()) {
      throw std::invalid_argument(
          "InvertedNormLayer: row-seed count does not match batch");
    }
    const std::size_t features = config_.features;
    nn::Tensor out(input.shape());
    for (std::size_t o = 0; o < outer; ++o) {
      engine_.seed(row_seeds_[o]);
      bool wd = false;
      bool bd = false;
      if (dropout_enabled_ && mc_mode_) {
        std::bernoulli_distribution drop(config_.dropout_p);
        wd = drop(engine_);
        bd = drop(engine_);
      }
      for (std::size_t f = 0; f < features; ++f) {
        const float w = wd ? 1.0f : weight_[f];
        const float b = bd ? 0.0f : bias_[f];
        const float mean = running_mean_[f];
        const float inv_std = 1.0f / std::sqrt(running_var_[f] + config_.eps);
        for (std::size_t i = 0; i < inner; ++i) {
          const std::size_t idx = (o * features + f) * inner + i;
          out[idx] = (w * input[idx] + b - mean) * inv_std;
        }
      }
    }
    return out;
  }

  // Sample the two scalar masks (vector-wise dropout, paper §III-A.4).
  weight_dropped_ = false;
  bias_dropped_ = false;
  if (dropout_enabled_ && (training || mc_mode_)) {
    std::bernoulli_distribution drop(config_.dropout_p);
    weight_dropped_ = drop(engine_);
    bias_dropped_ = drop(engine_);
  }

  // Affine first (the inversion): a = w_eff (.) x + b_eff.
  const std::size_t features = config_.features;
  affine_cache_ = nn::Tensor(input.shape());
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t f = 0; f < features; ++f) {
      const float w = weight_dropped_ ? 1.0f : weight_[f];
      const float b = bias_dropped_ ? 0.0f : bias_[f];
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (o * features + f) * inner + i;
        affine_cache_[idx] = w * input[idx] + b;
      }
    }
  }

  // ...then normalize, with no further affine stage.
  const float count = static_cast<float>(outer * inner);
  nn::Tensor out(input.shape());
  normalized_cache_ = nn::Tensor(input.shape());
  // Self-healing evaluation re-estimates statistics from the batch itself
  // (only meaningful with more than one value per feature).
  const bool use_batch_stats = training || (self_healing_ && outer * inner > 1);
  for (std::size_t f = 0; f < features; ++f) {
    float mean = 0.0f;
    float var = 0.0f;
    if (use_batch_stats) {
      for (std::size_t o = 0; o < outer; ++o) {
        for (std::size_t i = 0; i < inner; ++i) {
          mean += affine_cache_[(o * features + f) * inner + i];
        }
      }
      mean /= count;
      for (std::size_t o = 0; o < outer; ++o) {
        for (std::size_t i = 0; i < inner; ++i) {
          const float d = affine_cache_[(o * features + f) * inner + i] - mean;
          var += d * d;
        }
      }
      var /= count;
      if (training) {
        running_mean_[f] = (1.0f - config_.momentum) * running_mean_[f] +
                           config_.momentum * mean;
        running_var_[f] =
            (1.0f - config_.momentum) * running_var_[f] + config_.momentum * var;
      }
    } else {
      mean = running_mean_[f];
      var = running_var_[f];
    }
    const float inv_std = 1.0f / std::sqrt(var + config_.eps);
    batch_std_[f] = std::sqrt(var + config_.eps);
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (o * features + f) * inner + i;
        const float norm = (affine_cache_[idx] - mean) * inv_std;
        normalized_cache_[idx] = norm;
        out[idx] = norm;
      }
    }
  }
  return out;
}

nn::Tensor InvertedNormLayer::backward(const nn::Tensor& grad_output) {
  std::size_t outer = 0;
  std::size_t inner = 0;
  resolve_geometry(input_shape_, outer, inner);
  const float count = static_cast<float>(outer * inner);
  const std::size_t features = config_.features;

  nn::Tensor grad_input(input_shape_);
  for (std::size_t f = 0; f < features; ++f) {
    // Gradient through the normalization (gamma == 1, beta == 0).
    float sum_g = 0.0f;
    float sum_gn = 0.0f;
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (o * features + f) * inner + i;
        sum_g += grad_output[idx];
        sum_gn += grad_output[idx] * normalized_cache_[idx];
      }
    }
    const float inv_std = 1.0f / batch_std_[f];
    const float w_eff = weight_dropped_ ? 1.0f : weight_[f];
    float dw = 0.0f;
    float db = 0.0f;
    for (std::size_t o = 0; o < outer; ++o) {
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (o * features + f) * inner + i;
        // d(loss)/d(affine) through the batch-normalization.
        const float da = inv_std * (grad_output[idx] - sum_g / count -
                                    normalized_cache_[idx] * sum_gn / count);
        dw += da * input_cache_[idx];
        db += da;
        grad_input[idx] = da * w_eff;
      }
    }
    // Dropped parameters receive no gradient for this pass (they were not
    // part of the computation).
    if (!weight_dropped_) {
      weight_grad_[f] += dw;
    }
    if (!bias_dropped_) {
      bias_grad_[f] += db;
    }
  }
  return grad_input;
}

std::vector<nn::ParamRef> InvertedNormLayer::parameters() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

}  // namespace neuspin::core
