// SpinDrop and Spatial-SpinDrop layers (paper §III-A.1, §III-A.2).
//
// SpinDrop equips each neuron with a stochastic MTJ dropout module: a
// calibrated sub-critical SET pulse flips the device with probability p,
// a sense-amp read of the state *is* the dropout signal, and a RESET
// rearms it. Spatial-SpinDrop replaces per-neuron gating with per-feature-
// map gating, cutting the module count by ~an order of magnitude and
// making the module generalize over both conv mapping strategies (Fig. 1).
//
// Both layers draw their bits from a DropoutSource, so training can use a
// fast pseudo-random source while hardware-accurate inference uses
// device::SpinRng modules whose *realized* probability is shifted by
// device variation. Generated bits are charged to an EnergyLedger.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <random>
#include <vector>

#include "device/rng.h"
#include "energy/accountant.h"
#include "nn/layers.h"

namespace neuspin::core {

/// Source of dropout decisions (true = drop).
class DropoutSource {
 public:
  virtual ~DropoutSource() = default;
  /// Draw one dropout decision.
  [[nodiscard]] virtual bool sample() = 0;
  /// Probability the source actually realizes.
  [[nodiscard]] virtual double probability() const = 0;
  /// Deep copy (model replication for threaded MC evaluation).
  [[nodiscard]] virtual std::unique_ptr<DropoutSource> clone() const = 0;
  /// Reset the source's entropy stream; realized probability is untouched.
  virtual void reseed(std::uint64_t seed) = 0;
  /// Serialize / restore the stream mid-run (text), so a checkpointed
  /// training run resumes this source bitwise. Sources that skip these
  /// hooks still work — they just aren't bitwise across kill-and-resume.
  virtual void save_state(std::ostream& out) const { (void)out; }
  virtual void load_state(std::istream& in) { (void)in; }
};

/// Ideal Bernoulli source (software training path).
///
/// Backed by a splitmix64 counter stream rather than std::mt19937_64: the
/// Monte-Carlo evaluator reseeds EVERY module before EVERY pass (and the
/// fused path before every row), so reseed() sits on the hottest loop of
/// the whole serving runtime. A splitmix64 reseed is a single store where
/// an mt19937_64 reseed initializes 312 state words — per-module streams
/// would otherwise dominate the fused forward's runtime.
class PseudoDropoutSource final : public DropoutSource {
 public:
  PseudoDropoutSource(double p, std::uint64_t seed);
  [[nodiscard]] bool sample() override;
  [[nodiscard]] double probability() const override { return p_; }
  [[nodiscard]] std::unique_ptr<DropoutSource> clone() const override {
    return std::make_unique<PseudoDropoutSource>(*this);
  }
  void reseed(std::uint64_t seed) override { state_ = seed; }
  void save_state(std::ostream& out) const override { out << state_ << '\n'; }
  void load_state(std::istream& in) override { in >> state_; }

 private:
  double p_;
  std::uint64_t state_;
};

/// Hardware source backed by one stochastic MTJ module. The realized
/// probability deviates from the target according to the device's
/// variation-shifted thermal stability factor.
class SpinDropoutSource final : public DropoutSource {
 public:
  /// `target_p` is the requested dropout probability; `delta_shift` is the
  /// variation offset applied to the MTJ's thermal stability factor (0 for
  /// a nominal device); bits are charged to `ledger` when non-null.
  SpinDropoutSource(double target_p, double delta_shift, std::uint64_t seed,
                    energy::EnergyLedger* ledger = nullptr);

  [[nodiscard]] bool sample() override;
  [[nodiscard]] double probability() const override;
  [[nodiscard]] const device::SpinRng& rng() const { return rng_; }
  /// Clones share the (optional) energy ledger pointer; concurrent clones
  /// must therefore run without a ledger or with external synchronization.
  [[nodiscard]] std::unique_ptr<DropoutSource> clone() const override {
    return std::make_unique<SpinDropoutSource>(*this);
  }
  void reseed(std::uint64_t seed) override { rng_.reseed(seed); }
  void save_state(std::ostream& out) const override { rng_.save_stream(out); }
  void load_state(std::istream& in) override { rng_.load_stream(in); }

 private:
  device::SpinRng rng_;
  energy::EnergyLedger* ledger_;
};

/// Dropout granularity of the spin-dropout layer family.
enum class DropGranularity : std::uint8_t {
  kNeuron,      ///< SpinDrop: one decision per neuron (per element)
  kFeatureMap,  ///< Spatial-SpinDrop: one decision per channel
  kLayer,       ///< one decision for the whole layer (scale-dropout style)
};

/// Dropout layer whose decisions come from DropoutSources.
///
/// Training uses per-sample pseudo-random masks (standard MC-dropout
/// training); during Bayesian inference (`mc_mode`), masks are drawn once
/// per forward pass and shared across the batch, matching the hardware,
/// where one physical module gates one neuron/feature map for the pass.
/// Dropped units output zero, which on the crossbar is a disabled
/// word-line pair — no rescaling is applied, matching the binary-NN
/// convention of the paper.
class SpinDropLayer : public nn::Layer {
 public:
  /// `sources`: one per gated unit (neuron count for kNeuron, channel
  /// count for kFeatureMap, 1 for kLayer). `train_seed` drives the
  /// training-path pseudo masks.
  SpinDropLayer(DropGranularity granularity,
                std::vector<std::unique_ptr<DropoutSource>> sources,
                std::uint64_t train_seed);
  /// Deep copy: every dropout source is cloned (RNG state included).
  SpinDropLayer(const SpinDropLayer& other);

  nn::Tensor forward(const nn::Tensor& input, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<SpinDropLayer>(*this);
  }
  void reseed(std::uint64_t seed) override;
  /// Row mode: row r of the next MC forward reseeds every module from
  /// row_seeds[r] and draws its own unit mask — bit for bit the mask a
  /// batch-of-one pass after reseed(row_seeds[r]) would draw. Training
  /// forwards honor row mode too (the data-parallel trainer's contract):
  /// sample r's pseudo mask comes from the train stream reseeded by
  /// row_seeds[r], exactly the batch-of-one training draw.
  void reseed_rows(std::span<const std::uint64_t> row_seeds) override;
  void save_rng_state(std::ostream& out) const override {
    out << train_engine_ << '\n';
    for (const auto& source : sources_) {
      source->save_state(out);
    }
  }
  void load_rng_state(std::istream& in) override {
    in >> train_engine_;
    for (auto& source : sources_) {
      source->load_state(in);
    }
  }

  void enable_mc(bool on) { mc_mode_ = on; }
  [[nodiscard]] bool mc_enabled() const { return mc_mode_; }
  [[nodiscard]] DropGranularity granularity() const { return granularity_; }
  [[nodiscard]] std::size_t module_count() const { return sources_.size(); }
  /// Mean realized probability across this layer's physical modules.
  [[nodiscard]] double realized_probability() const;

 private:
  /// Units gated for `shape` (elements, channels or 1).
  [[nodiscard]] std::size_t unit_count(const nn::Shape& shape) const;
  /// Broadcast a per-unit mask over batch rows [b_begin, b_end) of x.
  void apply_unit_mask(nn::Tensor& x, const std::vector<float>& unit_mask,
                       std::size_t b_begin, std::size_t b_end) const;

  /// Draw one per-unit mask with the modules' current streams (the shared
  /// body of the batch-shared and per-row MC paths).
  [[nodiscard]] std::vector<float> draw_unit_mask(std::size_t units);

  DropGranularity granularity_;
  std::vector<std::unique_ptr<DropoutSource>> sources_;
  std::mt19937_64 train_engine_;
  bool mc_mode_ = false;
  std::vector<std::uint64_t> row_seeds_;  ///< non-empty = row mode
  nn::Tensor mask_;  ///< element-wise mask cached for backward
};

/// Build a SpinDropLayer with ideal pseudo sources (training / ablation).
[[nodiscard]] std::unique_ptr<SpinDropLayer> make_pseudo_spindrop(
    DropGranularity granularity, std::size_t units, double p, std::uint64_t seed);

/// Build a SpinDropLayer backed by MTJ modules with device-to-device
/// variation of the thermal stability factor (sigma `delta_sigma`).
[[nodiscard]] std::unique_ptr<SpinDropLayer> make_spintronic_spindrop(
    DropGranularity granularity, std::size_t units, double p, double delta_sigma,
    std::uint64_t seed, energy::EnergyLedger* ledger = nullptr);

}  // namespace neuspin::core
