#include "core/fidelity.h"

#include <stdexcept>
#include <utility>

#include "nn/model.h"
#include "obs/trace.h"

namespace neuspin::core {

namespace {

void check_inputs(const nn::Tensor& inputs,
                  std::span<const std::uint64_t> request_seeds) {
  if (inputs.rank() != 2) {
    throw std::invalid_argument("FidelityBackend: expected (batch x features) input");
  }
  if (inputs.dim(0) == 0 || inputs.dim(0) != request_seeds.size()) {
    throw std::invalid_argument(
        "FidelityBackend: expected one request seed per input row");
  }
}

nn::Tensor copy_row(const nn::Tensor& inputs, std::size_t b) {
  const std::size_t features = inputs.dim(1);
  nn::Tensor row({1, features});
  std::copy(inputs.data().begin() + static_cast<std::ptrdiff_t>(b * features),
            inputs.data().begin() + static_cast<std::ptrdiff_t>((b + 1) * features),
            row.data().begin());
  return row;
}

}  // namespace

BehavioralBackend::BehavioralBackend(const BuiltModel& model,
                                     const BehavioralBackendConfig& config)
    : config_(config) {
  if (config.mc_samples == 0) {
    throw std::invalid_argument("BehavioralBackend: need at least one MC sample");
  }
  if (config.team_size == 0) {
    throw std::invalid_argument("BehavioralBackend: team_size must be at least 1");
  }
  // Member 0 serves the unfused per-request loops; the fused path splits
  // its stacked forward across the whole team.
  const std::size_t members = config.fused ? config.team_size : 1;
  team_.reserve(members);
  for (std::size_t m = 0; m < members; ++m) {
    team_.push_back(model.clone());
    team_.back().enable_mc(true);
  }
}

BehavioralBackend::BehavioralBackend(const BehavioralBackend& other)
    : config_(other.config_) {
  team_.reserve(other.team_.size());
  for (const auto& member : other.team_) {
    team_.push_back(member.clone());
  }
}

void BehavioralBackend::reseed(std::uint64_t seed) {
  for (auto& member : team_) {
    member.reseed_stochastic(seed);
  }
}

BackendBatch BehavioralBackend::forward(const nn::Tensor& inputs,
                                        std::span<const std::uint64_t> request_seeds,
                                        energy::EnergyLedger* /*ledger*/) {
  check_inputs(inputs, request_seeds);
  const std::size_t batch = inputs.dim(0);
  obs::ScopedSpan span(tracer_, "rung:behavioral", "backend");
  span.arg("rows", static_cast<double>(batch));
  span.arg("mc_samples", static_cast<double>(config_.mc_samples));
  span.arg("fused", config_.fused ? 1.0 : 0.0);
  BackendBatch out;
  if (config_.fused) {
    // One stacked (requests x T) forward per layer; per-row streams keep
    // every row the bit-exact batch-of-one prediction.
    out.predictions = predict_fused_batch(std::span<BuiltModel>(team_), inputs,
                                          request_seeds, config_.mc_samples);
  } else {
    out.predictions.reserve(batch);
    BuiltModel& replica = team_.front();
    for (std::size_t b = 0; b < batch; ++b) {
      const nn::Tensor row = copy_row(inputs, b);
      const McPredictor predictor(config_.mc_samples, request_seeds[b]);
      out.predictions.push_back(predictor.predict(
          row, McPredictor::SeededForward(
                   [&replica](const nn::Tensor& x, std::uint64_t pass_seed) {
                     replica.reseed_stochastic(pass_seed);
                     return replica.stochastic_logits(x);
                   })));
    }
  }
  // No electrical events on this path: energy is the census-priced
  // constant, and a caller ledger has nothing to merge.
  out.energy_pj.assign(batch, config_.energy_pj_per_request);
  out.escalated.assign(batch, 0);
  return out;
}

TiledBackend::TiledBackend(nn::Sequential& net, const TiledBackendConfig& config)
    : config_(config), replica_(net, config.tile, config.tile_seed) {
  if (config.mc_samples == 0) {
    throw std::invalid_argument("TiledBackend: need at least one MC sample");
  }
}

TiledBackend::TiledBackend(const TiledBackend& other)
    : config_(other.config_), replica_(other.replica_) {}

void TiledBackend::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  replica_.set_tracer(tracer);
}

BackendBatch TiledBackend::forward(const nn::Tensor& inputs,
                                   std::span<const std::uint64_t> request_seeds,
                                   energy::EnergyLedger* ledger) {
  check_inputs(inputs, request_seeds);
  const std::size_t batch = inputs.dim(0);
  obs::ScopedSpan span(tracer_, "rung:tiled", "backend");
  span.arg("rows", static_cast<double>(batch));
  span.arg("mc_samples", static_cast<double>(config_.mc_samples));
  const xbar::DeltaStats before = span.active() ? replica_.delta_stats()
                                                : xbar::DeltaStats{};
  BackendBatch out;
  out.predictions.reserve(batch);
  out.energy_pj.assign(batch, 0.0);
  out.escalated.assign(batch, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    const nn::Tensor row = copy_row(inputs, b);
    const McPredictor predictor(config_.mc_samples, request_seeds[b]);
    if (config_.measure_energy) {
      // Per-request attribution: a fresh ledger per row, merged into the
      // caller's afterwards (row order, so chunked and serial accumulation
      // agree event count by event count).
      energy::EnergyLedger row_ledger(config_.tile.adc_bits);
      out.predictions.push_back(predictor.predict(
          row, McPredictor::SeededForward(
                   [this, &row_ledger](const nn::Tensor& x, std::uint64_t pass_seed) {
                     replica_.reseed(pass_seed);
                     return replica_.forward_spindrop(x, config_.spindrop_p,
                                                      &row_ledger);
                   })));
      out.energy_pj[b] = row_ledger.total_energy(energy::default_energy_params());
      if (ledger != nullptr) {
        *ledger += row_ledger;
      }
    } else {
      out.predictions.push_back(predictor.predict(
          row, McPredictor::SeededForward(
                   [this, ledger](const nn::Tensor& x, std::uint64_t pass_seed) {
                     replica_.reseed(pass_seed);
                     return replica_.forward_spindrop(x, config_.spindrop_p, ledger);
                   })));
    }
  }
  if (span.active()) {
    xbar::DeltaStats delta = replica_.delta_stats();
    delta.evaluations -= before.evaluations;
    delta.rows_total -= before.rows_total;
    delta.rows_dirty -= before.rows_dirty;
    span.arg("rows_total", static_cast<double>(delta.rows_total));
    span.arg("rows_dirty", static_cast<double>(delta.rows_dirty));
    span.arg("rows_skipped",
             static_cast<double>(delta.rows_total - delta.rows_dirty));
  }
  return out;
}

}  // namespace neuspin::core
