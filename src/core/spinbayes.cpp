#include "core/spinbayes.h"

#include <stdexcept>

namespace neuspin::core {

SpinArbiter::SpinArbiter(std::size_t fan_out, std::uint64_t seed,
                         energy::EnergyLedger* ledger)
    : fan_out_(fan_out), engine_(seed), ledger_(ledger) {
  if (fan_out == 0) {
    throw std::invalid_argument("SpinArbiter: fan_out must be positive");
  }
  bits_per_draw_ = 0;
  std::size_t capacity = 1;
  while (capacity < fan_out_) {
    capacity *= 2;
    ++bits_per_draw_;
  }
}

std::size_t SpinArbiter::select() {
  // Rejection-sampled binary tournament: draw ceil(log2 N) stochastic
  // switching bits; retry on overflow so the distribution stays uniform.
  std::uniform_int_distribution<std::size_t> bit(0, 1);
  std::size_t value = 0;
  do {
    value = 0;
    for (std::size_t b = 0; b < bits_per_draw_; ++b) {
      value = (value << 1) | bit(engine_);
    }
    if (ledger_ != nullptr) {
      ledger_->add(energy::Component::kRngDropoutCycle, bits_per_draw_);
    }
  } while (value >= fan_out_);
  last_selection_ = value;
  return value;
}

std::vector<std::uint8_t> SpinArbiter::one_hot() const {
  std::vector<std::uint8_t> v(fan_out_, 0);
  v[last_selection_] = 1;
  return v;
}

void SpinBayesConfig::validate() const {
  if (instances == 0) {
    throw std::invalid_argument("SpinBayesConfig: need at least one instance");
  }
  if (quant_levels < 2) {
    throw std::invalid_argument("SpinBayesConfig: quant_levels must be >= 2");
  }
  if (quant_lo >= quant_hi) {
    throw std::invalid_argument("SpinBayesConfig: need quant_lo < quant_hi");
  }
}

SpinBayesScaleLayer::SpinBayesScaleLayer(std::vector<nn::Tensor> instances,
                                         std::uint64_t seed,
                                         energy::EnergyLedger* ledger)
    : instances_(std::move(instances)),
      arbiter_(instances_.empty() ? 1 : instances_.size(), seed, ledger),
      ledger_(ledger) {
  if (instances_.empty()) {
    throw std::invalid_argument("SpinBayesScaleLayer: need at least one instance");
  }
  for (const auto& inst : instances_) {
    if (inst.shape() != instances_.front().shape()) {
      throw std::invalid_argument("SpinBayesScaleLayer: instance shape mismatch");
    }
  }
}

std::unique_ptr<SpinBayesScaleLayer> SpinBayesScaleLayer::from_posterior(
    const BayesianScaleLayer& posterior, const SpinBayesConfig& config,
    energy::EnergyLedger* ledger) {
  config.validate();
  // Sample the posterior with a dedicated engine and re-quantize each
  // sample onto the SpinBayes multi-level grid below.
  std::mt19937_64 engine(config.seed);
  std::vector<nn::Tensor> instances;
  instances.reserve(config.instances);
  const float lo = config.quant_lo;
  const float hi = config.quant_hi;
  const float step = (hi - lo) / static_cast<float>(config.quant_levels - 1);
  for (std::size_t n = 0; n < config.instances; ++n) {
    nn::Tensor s = posterior.sample_scale(engine);
    for (std::size_t c = 0; c < s.numel(); ++c) {
      const float clipped = std::min(std::max(s[c], lo), hi);
      s[c] = lo + std::round((clipped - lo) / step) * step;
    }
    instances.push_back(std::move(s));
  }
  return std::make_unique<SpinBayesScaleLayer>(std::move(instances), config.seed ^ 0x5b5b,
                                               ledger);
}

nn::Tensor SpinBayesScaleLayer::forward(const nn::Tensor& input, bool training) {
  const std::size_t channels = instances_.front().numel();
  if (input.rank() < 2 || input.dim(1) != channels) {
    throw std::invalid_argument("SpinBayesScaleLayer: expected channel axis of size " +
                                std::to_string(channels));
  }
  const bool stochastic = training || mc_mode_;
  // Row mode is the fused-MC inference replay (quantized samples, arbiter
  // per row); training-mode forwards keep the shared-stream procedure.
  if (stochastic && !training && !row_seeds_.empty()) {
    // Fused MC: each row reseeds the Arbiter under its own stream and
    // selects its own instance, replaying the batch-of-one pass.
    const std::size_t batch = input.dim(0);
    if (batch != row_seeds_.size()) {
      throw std::invalid_argument(
          "SpinBayesScaleLayer: row-seed count does not match batch");
    }
    const std::size_t inner = input.numel() / batch / channels;
    nn::Tensor out = input;
    for (std::size_t b = 0; b < batch; ++b) {
      arbiter_.reseed(row_seeds_[b]);
      last_selection_ = arbiter_.select();
      const nn::Tensor& row_scale = instances_[last_selection_];
      if (ledger_ != nullptr) {
        ledger_->add(energy::Component::kXbarCellRead, channels);
      }
      for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t i = 0; i < inner; ++i) {
          out[(b * channels + c) * inner + i] *= row_scale[c];
        }
      }
    }
    return out;
  }
  last_selection_ = stochastic ? arbiter_.select() : 0;
  const nn::Tensor& s = instances_[last_selection_];
  if (ledger_ != nullptr && stochastic) {
    // Selected instance is read out of its crossbar.
    ledger_->add(energy::Component::kXbarCellRead, channels);
  }

  nn::Tensor out = input;
  const std::size_t batch = input.dim(0);
  const std::size_t inner = input.numel() / batch / channels;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < inner; ++i) {
        out[(b * channels + c) * inner + i] *= s[c];
      }
    }
  }
  return out;
}

nn::Tensor SpinBayesScaleLayer::backward(const nn::Tensor& grad_output) {
  // Inference-only layer: propagate through the fixed selected scale.
  nn::Tensor grad = grad_output;
  const nn::Tensor& s = instances_[last_selection_];
  const std::size_t channels = s.numel();
  const std::size_t batch = grad.dim(0);
  const std::size_t inner = grad.numel() / batch / channels;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < inner; ++i) {
        grad[(b * channels + c) * inner + i] *= s[c];
      }
    }
  }
  return grad;
}

}  // namespace neuspin::core
