// Bayesian Sub-Set Parameter Inference (paper §III-B.1).
//
// Instead of a distribution over every weight (intractable on binary CIM
// hardware and 2-10x more memory), only a *small* parameter group — the
// per-channel scale vector — receives the Bayesian treatment. Weights stay
// deterministic (binary, learned by maximum likelihood); the scale vector
// gets a diagonal Gaussian variational posterior q(s) = N(mu, softplus(rho)^2)
// trained with the reparameterization trick against a N(1, sigma_p^2)
// prior (centered at one: scales multiply binary +-1 weights).
//
// Hardware realization: a second, small crossbar of multi-level MTJ cells
// stores the posterior parameters; SOT stochastic switching provides the
// Gaussian samples (sum-of-Bernoullis). The layer optionally quantizes
// sampled scales to the multi-level cell's grid, which is also the entry
// point for the SpinBayes in-memory approximation.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <random>

#include "energy/accountant.h"
#include "nn/layers.h"

namespace neuspin::core {

/// Configuration of one Bayesian scale layer.
struct BayesScaleConfig {
  std::size_t channels = 0;
  float prior_sigma = 0.1f;     ///< prior N(1, prior_sigma^2)
  float init_rho = -3.0f;       ///< softplus(-3) ~ 0.049 initial posterior std
  /// Quantization levels for the multi-level cell (0 = no quantization).
  std::size_t quant_levels = 0;
  /// Scale range the quantizer covers.
  float quant_lo = 0.5f;
  float quant_hi = 1.5f;
  std::uint64_t seed = 1;

  void validate() const;
};

/// out = x * s with s ~ q(s) sampled fresh every stochastic pass.
class BayesianScaleLayer : public nn::Layer {
 public:
  explicit BayesianScaleLayer(const BayesScaleConfig& config,
                              energy::EnergyLedger* ledger = nullptr);

  nn::Tensor forward(const nn::Tensor& input, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "BayesianScale"; }
  /// Clones share the (optional) energy ledger pointer; run concurrent
  /// clones without a ledger or synchronize externally.
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<BayesianScaleLayer>(*this);
  }
  void reseed(std::uint64_t seed) override {
    engine_.seed(seed);
    row_seeds_.clear();
  }
  /// Row mode (fused MC): row r samples its own posterior scale vector
  /// from a stream seeded by row_seeds[r], matching a batch-of-one pass.
  void reseed_rows(std::span<const std::uint64_t> row_seeds) override {
    row_seeds_.assign(row_seeds.begin(), row_seeds.end());
  }
  void save_rng_state(std::ostream& out) const override { out << engine_ << '\n'; }
  void load_rng_state(std::istream& in) override { in >> engine_; }

  void enable_mc(bool on) { mc_mode_ = on; }

  [[nodiscard]] nn::Tensor& mu() { return mu_; }
  [[nodiscard]] nn::Tensor& rho() { return rho_; }
  [[nodiscard]] nn::Tensor& mu_grad() { return mu_grad_; }
  [[nodiscard]] nn::Tensor& rho_grad() { return rho_grad_; }
  [[nodiscard]] const BayesScaleConfig& config() const { return config_; }

  /// Posterior standard deviation per channel (softplus(rho)).
  [[nodiscard]] nn::Tensor posterior_std() const;

  /// Draw one posterior sample of the scale vector (quantized if the
  /// config enables it) without running a forward pass. Used by SpinBayes
  /// to materialize its crossbar instances.
  [[nodiscard]] nn::Tensor sample_scale(std::mt19937_64& engine) const;

  /// Quantize a scale value to the configured multi-level grid.
  [[nodiscard]] float quantize(float s) const;

 private:
  BayesScaleConfig config_;
  nn::Tensor mu_;
  nn::Tensor rho_;
  nn::Tensor mu_grad_;
  nn::Tensor rho_grad_;
  std::mt19937_64 engine_;
  bool mc_mode_ = false;
  std::vector<std::uint64_t> row_seeds_;  ///< non-empty = row mode
  // Caches for backward.
  nn::Tensor input_cache_;
  nn::Tensor eps_cache_;    ///< the reparameterization noise of this pass
  nn::Tensor scale_cache_;  ///< the sampled scale actually applied
  bool deterministic_pass_ = false;
  energy::EnergyLedger* ledger_;
};

}  // namespace neuspin::core
