// Fidelity backends: one batched-prediction interface over the two
// hardware-simulation fidelity levels (DESIGN.md §2).
//
// Everything that answers Bayesian prediction requests — the serving
// runtime's workers, the pooled tile evaluator, the benches — used to
// hard-code which fidelity level it drove (BuiltModel clones vs TiledMlp
// replicas) and duplicate the per-request seeding, energy attribution and
// replica plumbing around it. FidelityBackend extracts that contract:
//
//   forward(inputs, request_seeds[, ledger])  ->  BackendBatch
//
// where row b's prediction is a pure function of (model, row b,
// mc_samples, request_seeds[b]) — the per-request reproducibility contract
// of serve::Runtime, now enforced at the backend seam. clone() yields an
// independent replica with identical programmed state (the worker-replica
// primitive), and cost_hint() ranks backends by per-request cost so a
// cascade can order its rungs.
//
// Two leaf backends live here, next to the machinery they wrap:
//
//  * BehavioralBackend — BuiltModel clones running the fast tensor path
//    (fused (requests x T) stacked forwards or per-request MC loops);
//    energy is census-priced per request by the caller.
//  * TiledBackend — a TiledMlp replica running the full electrical
//    simulation (crossbar currents, ADC, defects, event-driven delta
//    evaluation); energy is measured event by event per request.
//
// serve::CascadeBackend (serve/backend.h) composes two of these into an
// uncertainty-gated escalation chain.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/bayesian.h"
#include "core/hw_model.h"
#include "core/models.h"
#include "energy/accountant.h"
#include "nn/tensor.h"
#include "xbar/tile.h"

namespace neuspin::obs {
class Registry;  // obs/metrics.h
class Tracer;    // obs/trace.h
}  // namespace neuspin::obs

namespace neuspin::core {

/// One batch of answered requests: parallel arrays, one entry per input
/// row. Each Prediction is a batch-of-one (1 x classes) result.
struct BackendBatch {
  std::vector<Prediction> predictions;
  /// Per-request energy attribution in picojoules (all zeros when the
  /// backend was configured without energy accounting).
  std::vector<double> energy_pj;
  /// Per-request cascade flag: 1 when an escalation rung answered the
  /// request. Leaf backends always report 0.
  std::vector<std::uint8_t> escalated;
  /// Per-request degraded flag: 1 when the answer SHOULD have escalated
  /// but a circuit-broken (or failing) expensive rung forced the cheap
  /// bits instead (serve::CascadeBackend). EMPTY means "no row degraded"
  /// — leaf backends never fill it, so the common path stays two
  /// allocations, not three.
  std::vector<std::uint8_t> degraded;
};

/// A replicable engine that answers batches of seeded prediction requests
/// at one fidelity level (or a composition of levels).
class FidelityBackend {
 public:
  virtual ~FidelityBackend() = default;

  /// Answer one (batch x features) tensor of requests. Row b runs the
  /// T-pass Monte-Carlo loop under streams derived from request_seeds[b]
  /// (pass t draws mix_seed(request_seeds[b], t)) — bitwise identical for
  /// any batch composition, replica, or worker count. When `ledger` is
  /// non-null every chargeable electrical event is also merged into it in
  /// row order.
  [[nodiscard]] virtual BackendBatch forward(
      const nn::Tensor& inputs, std::span<const std::uint64_t> request_seeds,
      energy::EnergyLedger* ledger) = 0;

  /// Independent replica with identical programmed state: clones share no
  /// mutable state, so each serving worker forwards on its own clone
  /// without locking. A clone answers every request with the same bits as
  /// its source.
  [[nodiscard]] virtual std::unique_ptr<FidelityBackend> clone() const = 0;

  /// Reset any internal RNG streams. forward() re-derives all stochastic
  /// streams from the request seeds, so this only matters for callers
  /// driving the wrapped model outside the seeded contract.
  virtual void reseed(std::uint64_t seed) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Estimated cost of answering one request, in arbitrary units where
  /// the behavioural tensor path is 1.0. Cascades order their rungs
  /// cheapest-first by this hint; it carries no accuracy meaning.
  [[nodiscard]] virtual double cost_hint() const = 0;

  /// Event-engine work census (rows skipped by the delta caches) summed
  /// over the backend's tiles. Backends without an electrical substrate
  /// report an empty census.
  [[nodiscard]] virtual xbar::DeltaStats delta_stats() const { return {}; }

  /// Attach a span tracer (nullptr detaches): forward() then emits one
  /// rung-level span per call (and the tiled backend per-tile evaluation
  /// spans). Observability only — spans read clocks, never RNG streams,
  /// so attaching a tracer cannot change a single result bit. Not
  /// propagated by clone(); the owner re-attaches per replica.
  virtual void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Inject extra stuck-at defects into the backend's substrate mid-run.
  /// No-op for backends without an electrical substrate (behavioural);
  /// composite backends (cascade, fault decorator) propagate to their
  /// children. Affects only THIS instance — sibling clones keep serving
  /// the pristine bits until the caller injects into them too.
  virtual void inject_defects(const device::DefectRates& rates, std::uint64_t seed) {
    (void)rates;
    (void)seed;
  }

  /// Targeted variant: defects land on one tile only (TiledMlp tile
  /// indexing — conv stages first, then dense layers). Chaos tests aim
  /// bursts with this to measure per-tile detection latency. No-op without
  /// a substrate; out-of-range tile indices are also a no-op (a cascade's
  /// cheap rung has no tile to hit).
  virtual void inject_defects_at(std::size_t tile_index,
                                 const device::DefectRates& rates, std::uint64_t seed) {
    (void)tile_index;
    (void)rates;
    (void)seed;
  }

  /// One conductance-drift increment across the substrate (deterministic
  /// in `seed`, compounding). No-op without a substrate.
  virtual void apply_drift(double magnitude, std::uint64_t seed) {
    (void)magnitude;
    (void)seed;
  }

  /// Canary-probe the substrate (xbar/health.h). Backends without tiles
  /// report an empty, healthy record.
  [[nodiscard]] virtual xbar::HealthReport check_health(
      const xbar::ProbeConfig& config) const {
    (void)config;
    return {};
  }

  /// Probe + spare-line remap + recalibrate the substrate. Backends
  /// without tiles heal vacuously (healthy_after = true, nothing touched).
  virtual xbar::HealSummary heal(const xbar::ProbeConfig& config) {
    (void)config;
    return {};
  }

  /// Re-program the substrate to its reference conductances and zero ADC
  /// offsets; returns cells moved. No-op without a substrate.
  virtual std::size_t recalibrate() { return 0; }

  /// Attach a metrics registry (nullptr detaches): backends with internal
  /// health state (the cascade's circuit breaker, the fault injector) then
  /// record their counters/gauges into it. Observability only — like
  /// set_tracer, binding cannot change a result bit. Not propagated by
  /// clone(); the owner re-binds per replica (shared state like a breaker
  /// core binds idempotently).
  virtual void bind_metrics(obs::Registry* registry) { (void)registry; }

 protected:
  obs::Tracer* tracer_ = nullptr;
};

/// Knobs of the behavioural (fast tensor path) backend.
struct BehavioralBackendConfig {
  std::size_t mc_samples = 20;  ///< T stochastic passes per request
  /// Serve each forward() through the fused (requests x T) stacked pass
  /// (core::predict_fused_batch) instead of per-request MC loops. Bitwise
  /// identical either way under the per-row stream contract.
  bool fused = true;
  /// Clones splitting the fused stacked forward over the shared pool
  /// (resolved; 1 = run inline on the calling thread).
  std::size_t team_size = 1;
  /// Census-priced energy of one request (0 = no energy accounting). The
  /// behavioural path has no electrical events to measure, so the caller
  /// prices a request once from the architecture census
  /// (core::inference_census) and every answer reports that constant.
  double energy_pj_per_request = 0.0;
};

/// BuiltModel clones running the behavioural tensor path, with whatever
/// HwNoiseConfig non-idealities the model was built with.
class BehavioralBackend : public FidelityBackend {
 public:
  /// Clones `model` team_size times (MC mode enabled); the caller's model
  /// is never mutated.
  BehavioralBackend(const BuiltModel& model, const BehavioralBackendConfig& config);
  BehavioralBackend(const BehavioralBackend& other);

  [[nodiscard]] BackendBatch forward(const nn::Tensor& inputs,
                                     std::span<const std::uint64_t> request_seeds,
                                     energy::EnergyLedger* ledger) override;
  [[nodiscard]] std::unique_ptr<FidelityBackend> clone() const override {
    return std::make_unique<BehavioralBackend>(*this);
  }
  void reseed(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override { return "behavioral"; }
  [[nodiscard]] double cost_hint() const override { return 1.0; }

  [[nodiscard]] const BehavioralBackendConfig& config() const { return config_; }

 private:
  BehavioralBackendConfig config_;
  std::vector<BuiltModel> team_;
};

/// Knobs of the tiled (full electrical simulation) backend.
struct TiledBackendConfig {
  xbar::TileConfig tile{};       ///< crossbar design point
  std::uint64_t tile_seed = 42;  ///< programming seed (same seed = same bits)
  std::size_t mc_samples = 20;   ///< T electrical passes per request
  double spindrop_p = 0.0;       ///< hardware dropout-module probability
  /// Measure per-request energy event-by-event into BackendBatch::energy_pj.
  /// Off, forward() still merges events into a caller ledger when given one
  /// (the pooled evaluator's mode: chunk ledgers, no per-row attribution).
  bool measure_energy = true;
};

/// One TiledMlp replica serving the electrically faithful path: crossbar
/// currents, ADC quantization, IR drop, defects, SpinDrop row gating —
/// roughly three orders of magnitude more work per request than the
/// behavioural path (see cost_hint).
class TiledBackend : public FidelityBackend {
 public:
  /// Programs a replica from `net` (read-only; the canonical-layout
  /// requirements of TiledMlp apply).
  TiledBackend(nn::Sequential& net, const TiledBackendConfig& config);
  /// Deep copy of the programmed replica (variability and defect draws
  /// included) — same bits as a rebuild, without the programming pass.
  TiledBackend(const TiledBackend& other);

  [[nodiscard]] BackendBatch forward(const nn::Tensor& inputs,
                                     std::span<const std::uint64_t> request_seeds,
                                     energy::EnergyLedger* ledger) override;
  [[nodiscard]] std::unique_ptr<FidelityBackend> clone() const override {
    return std::make_unique<TiledBackend>(*this);
  }
  void reseed(std::uint64_t seed) override { replica_.reseed(seed); }
  [[nodiscard]] std::string name() const override { return "tiled"; }
  [[nodiscard]] double cost_hint() const override { return 1000.0; }
  [[nodiscard]] xbar::DeltaStats delta_stats() const override {
    return replica_.delta_stats();
  }
  /// Propagates to the replica so per-tile evaluation spans (with the
  /// event engine's rows-skipped census) land on the same tracer.
  void set_tracer(obs::Tracer* tracer) override;

  /// Extra stuck-at defects on every tile of the replica.
  void inject_defects(const device::DefectRates& rates, std::uint64_t seed) override {
    replica_.inject_defects(rates, seed);
  }
  void inject_defects_at(std::size_t tile_index, const device::DefectRates& rates,
                         std::uint64_t seed) override {
    if (tile_index < replica_.layer_count()) {
      replica_.inject_defects_at(tile_index, rates, seed);
    }
  }
  void apply_drift(double magnitude, std::uint64_t seed) override {
    replica_.apply_drift(magnitude, seed);
  }
  [[nodiscard]] xbar::HealthReport check_health(
      const xbar::ProbeConfig& config) const override {
    return replica_.probe_health(config);
  }
  xbar::HealSummary heal(const xbar::ProbeConfig& config) override {
    return replica_.heal(config);
  }
  std::size_t recalibrate() override { return replica_.recalibrate(); }

  [[nodiscard]] const TiledBackendConfig& config() const { return config_; }

 private:
  TiledBackendConfig config_;
  TiledMlp replica_;
};

}  // namespace neuspin::core
