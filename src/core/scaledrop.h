// SpinScaleDrop (paper §III-A.3, Fig. 2).
//
// A learnable per-channel scale vector multiplies the layer activation;
// Bayesian behaviour comes from a *single* dropout module per layer that
// stochastically deactivates the whole scale vector (scale modulation
// rather than information zeroing: a dropped scale becomes the neutral 1).
//
// Placement: the scale stage multiplies the *binary activations* feeding
// the next crossbar (electrically, per-channel modulation of the input
// driver amplitude). Scaling before the normalization would be absorbed by
// the batch statistics and learn nothing.
//
// Hardware fidelity: the physical dropout module's probability is itself a
// random variable — manufacturing/in-field variation of the MTJ shifts it
// — modeled as a Gaussian around the target p (the paper fits exactly this
// distribution). A layer-dependent adaptive rule sets p from the layer's
// parameter count, removing the design-space exploration for p.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <random>

#include "energy/accountant.h"
#include "nn/layers.h"

namespace neuspin::core {

/// Adaptive layer-dependent dropout probability (paper: "selects the
/// dropout probability based on the parameter size of the layer").
/// Larger layers carry more co-adaptation risk and get a higher p; the
/// rule interpolates log-linearly between p_min at <=1k parameters and
/// p_max at >=1M parameters.
[[nodiscard]] double adaptive_scale_dropout_p(std::size_t layer_param_count,
                                              double p_min = 0.05, double p_max = 0.25);

/// Configuration of one scale-dropout layer.
struct ScaleDropConfig {
  std::size_t channels = 0;       ///< scale vector length
  double dropout_p = 0.1;         ///< target dropout probability
  /// Sigma of the Gaussian the *hardware* dropout probability is drawn
  /// from (0 = ideal module). Drawn once at construction per module.
  double hw_p_sigma = 0.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// The scale-dropout layer: out = x * s (broadcast over batch/spatial),
/// with s replaced by the neutral vector 1 when the per-pass dropout fires.
class ScaleDropLayer : public nn::Layer {
 public:
  explicit ScaleDropLayer(const ScaleDropConfig& config,
                          energy::EnergyLedger* ledger = nullptr);

  nn::Tensor forward(const nn::Tensor& input, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "ScaleDrop"; }
  /// Clones share the (optional) energy ledger pointer; run concurrent
  /// clones without a ledger or synchronize externally.
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<ScaleDropLayer>(*this);
  }
  /// Resets the dropout stream; the realized (variation-shifted)
  /// probability was fixed at construction and is not redrawn.
  void reseed(std::uint64_t seed) override {
    engine_.seed(seed);
    row_seeds_.clear();
  }
  /// Row mode (fused MC): row r draws its own layer-drop decision from a
  /// stream seeded by row_seeds[r], matching a batch-of-one pass.
  void reseed_rows(std::span<const std::uint64_t> row_seeds) override {
    row_seeds_.assign(row_seeds.begin(), row_seeds.end());
  }
  void save_rng_state(std::ostream& out) const override { out << engine_ << '\n'; }
  void load_rng_state(std::istream& in) override { in >> engine_; }

  void enable_mc(bool on) { mc_mode_ = on; }
  /// Probability the physical module realizes (Gaussian-shifted).
  [[nodiscard]] double realized_p() const { return realized_p_; }
  [[nodiscard]] nn::Tensor& scale() { return scale_; }
  [[nodiscard]] nn::Tensor& scale_grad() { return scale_grad_; }
  /// Whether the most recent forward dropped the scale vector.
  [[nodiscard]] bool last_pass_dropped() const { return last_dropped_; }

 private:
  /// Channels live on axis 1 (rank 2 or 4); broadcast multiply / reduce.
  void check_shape(const nn::Shape& shape) const;

  ScaleDropConfig config_;
  double realized_p_;
  nn::Tensor scale_;
  nn::Tensor scale_grad_;
  std::mt19937_64 engine_;
  bool mc_mode_ = false;
  bool last_dropped_ = false;
  std::vector<std::uint64_t> row_seeds_;  ///< non-empty = row mode
  nn::Tensor input_cache_;
  energy::EnergyLedger* ledger_;
};

}  // namespace neuspin::core
