// Uncertainty quantification metrics (paper §II-B and the OOD / corrupted
// data evaluations throughout §III).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.h"

namespace neuspin::core {

/// Per-sample predictive entropy of (batch x classes) probabilities, nats.
[[nodiscard]] std::vector<float> predictive_entropy(const nn::Tensor& probs);

/// Mutual information between prediction and posterior (epistemic
/// uncertainty): H(mean_probs) - mean_t H(probs_t). `member_probs` holds T
/// tensors of (batch x classes).
[[nodiscard]] std::vector<float> mutual_information(
    const std::vector<nn::Tensor>& member_probs);

/// Negative log-likelihood of labels under predicted probabilities,
/// averaged over the batch.
[[nodiscard]] float negative_log_likelihood(const nn::Tensor& probs,
                                            const std::vector<std::size_t>& labels);

/// Brier score (mean squared error against one-hot labels).
[[nodiscard]] float brier_score(const nn::Tensor& probs,
                                const std::vector<std::size_t>& labels);

/// Expected calibration error with `bins` equal-width confidence bins.
[[nodiscard]] float expected_calibration_error(const nn::Tensor& probs,
                                               const std::vector<std::size_t>& labels,
                                               std::size_t bins = 10);

/// Classification accuracy of argmax predictions.
[[nodiscard]] float accuracy(const nn::Tensor& probs,
                             const std::vector<std::size_t>& labels);

/// AUROC of an OOD detector that scores each sample with `score`
/// (higher = more OOD). `is_ood[i]` marks ground truth.
[[nodiscard]] float auroc(const std::vector<float>& score,
                          const std::vector<bool>& is_ood);

/// OOD detection rate at a threshold calibrated so that `quantile` of the
/// in-distribution scores fall below it (the paper's "detects up to X% of
/// OOD samples" protocol). Returns the fraction of OOD samples whose score
/// exceeds the threshold.
[[nodiscard]] float detection_rate(const std::vector<float>& id_scores,
                                   const std::vector<float>& ood_scores,
                                   float quantile = 0.95f);

}  // namespace neuspin::core
