#include "core/thread_pool.h"

#include <algorithm>
#include <utility>

namespace neuspin::core {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& task : tasks) {
    futures.push_back(submit(std::move(task)));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace neuspin::core
