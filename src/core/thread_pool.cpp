#include "core/thread_pool.h"

#include <algorithm>
#include <utility>

namespace neuspin::core {

std::size_t resolve_worker_count(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  thread_count = resolve_worker_count(thread_count);
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& task : tasks) {
    futures.push_back(submit(std::move(task)));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::run_chunked(
    std::size_t total, std::size_t max_chunks,
    const std::function<void(std::size_t chunk, std::size_t begin, std::size_t end)>&
        worker) {
  if (total == 0) {
    return;
  }
  const std::size_t chunks = std::min(std::max<std::size_t>(1, max_chunks), total);
  if (chunks <= 1) {
    worker(0, 0, total);
    return;
  }
  const std::size_t per_chunk = (total + chunks - 1) / chunks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, total);
    if (begin >= end) {
      break;  // ragged tail: the last chunks may be empty
    }
    tasks.push_back([&worker, c, begin, end] { worker(c, begin, end); });
  }
  run_all(std::move(tasks));
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace neuspin::core
