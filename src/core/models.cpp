#include "core/models.h"

#include <stdexcept>

#include "nn/binarize.h"
#include "nn/loss.h"

namespace neuspin::core {

namespace {

/// Everything a builder needs while appending one hidden block.
struct BuildContext {
  BuiltModel* model = nullptr;
  const ModelConfig* config = nullptr;
  std::mt19937_64* engine = nullptr;
  std::size_t slot = 0;  ///< running index used to diversify seeds
};

/// Insert the method's scale-type layer (after the binary activation; see
/// the placement note in make_binary_mlp), if the method has one.
void add_scale_slot(BuildContext& ctx, std::size_t channels,
                    std::size_t layer_param_count) {
  BuiltModel& m = *ctx.model;
  const ModelConfig& cfg = *ctx.config;
  const std::uint64_t seed = cfg.seed + 1000 + 17 * ctx.slot;
  switch (cfg.method) {
    case Method::kSpinScaleDrop: {
      ScaleDropConfig sc;
      sc.channels = channels;
      sc.dropout_p = cfg.adaptive_p ? adaptive_scale_dropout_p(layer_param_count)
                                    : cfg.dropout_p;
      sc.hw_p_sigma = cfg.hw_variation * 0.05;  // variation shifts p directly
      sc.seed = seed;
      m.scale_layers.push_back(&m.net.emplace<ScaleDropLayer>(sc));
      break;
    }
    case Method::kSubsetVi:
    case Method::kSpinBayes: {
      BayesScaleConfig bc;
      bc.channels = channels;
      bc.seed = seed;
      m.bayes_layer_indices.push_back(m.net.size());
      m.bayes_layers.push_back(&m.net.emplace<BayesianScaleLayer>(bc));
      break;
    }
    default:
      break;
  }
  ++ctx.slot;
}

/// Insert the normalization stage: InvertedNorm for the affine-dropout
/// method, plain BatchNorm otherwise.
void add_norm(BuildContext& ctx, std::size_t channels) {
  BuiltModel& m = *ctx.model;
  const ModelConfig& cfg = *ctx.config;
  if (cfg.method == Method::kAffineDropout) {
    AffineDropConfig ac;
    ac.features = channels;
    ac.dropout_p = cfg.dropout_p;
    ac.seed = cfg.seed + 2000 + 13 * ctx.slot;
    m.inv_norm_layers.push_back(&m.net.emplace<InvertedNormLayer>(ac));
  } else {
    m.net.emplace<nn::BatchNorm>(channels);
  }
}

/// Insert the dropout slot after the activation (and pooling): neuron
/// dropout for SpinDrop, feature-map dropout for Spatial-SpinDrop.
void add_drop_slot(BuildContext& ctx, std::size_t neuron_units,
                   std::size_t feature_map_units) {
  BuiltModel& m = *ctx.model;
  const ModelConfig& cfg = *ctx.config;
  const std::uint64_t seed = cfg.seed + 3000 + 29 * ctx.slot;
  switch (cfg.method) {
    case Method::kSpinDrop: {
      auto layer = cfg.hw_variation > 0.0
                       ? make_spintronic_spindrop(DropGranularity::kNeuron, neuron_units,
                                                  cfg.dropout_p, cfg.hw_variation, seed)
                       : make_pseudo_spindrop(DropGranularity::kNeuron, neuron_units,
                                              cfg.dropout_p, seed);
      m.drop_layers.push_back(layer.get());
      m.net.add(std::move(layer));
      break;
    }
    case Method::kSpatialSpinDrop: {
      auto layer = cfg.hw_variation > 0.0
                       ? make_spintronic_spindrop(DropGranularity::kFeatureMap,
                                                  feature_map_units, cfg.dropout_p,
                                                  cfg.hw_variation, seed)
                       : make_pseudo_spindrop(DropGranularity::kFeatureMap,
                                              feature_map_units, cfg.dropout_p, seed);
      m.drop_layers.push_back(layer.get());
      m.net.add(std::move(layer));
      break;
    }
    default:
      break;
  }
  ++ctx.slot;
}

void add_analog_readout(BuildContext& ctx) {
  const ModelConfig& cfg = *ctx.config;
  if (cfg.hw.enabled) {
    HwNoiseConfig hw = cfg.hw;
    hw.seed = cfg.hw.seed + 47 * ctx.slot;
    ctx.model->net.emplace<AnalogReadout>(hw);
  }
}

}  // namespace

void BuiltModel::enable_mc(bool on) {
  for (auto* l : drop_layers) {
    l->enable_mc(on);
  }
  for (auto* l : scale_layers) {
    l->enable_mc(on);
  }
  for (auto* l : inv_norm_layers) {
    l->enable_mc(on);
  }
  for (auto* l : bayes_layers) {
    l->enable_mc(on);
  }
  for (auto* l : spinbayes_layers) {
    l->enable_mc(on);
  }
}

std::function<float()> BuiltModel::make_regularizer(float kl_weight,
                                                    float scale_lambda) {
  if (bayes_layers.empty() && scale_layers.empty()) {
    return {};
  }
  auto bayes = bayes_layers;
  auto scales = scale_layers;
  return [bayes, scales, kl_weight, scale_lambda]() {
    float reg = 0.0f;
    for (auto* l : bayes) {
      reg += nn::gaussian_scale_kl(l->mu(), l->rho(), l->config().prior_sigma,
                                   kl_weight, l->mu_grad(), l->rho_grad());
    }
    for (auto* l : scales) {
      reg += nn::scale_regularizer(l->scale(), scale_lambda, l->scale_grad());
    }
    return reg;
  };
}

nn::Tensor BuiltModel::stochastic_logits(const nn::Tensor& input) {
  return net.forward(input, /*training=*/false);
}

nn::Tensor BuiltModel::stochastic_logits_rows(
    const nn::Tensor& stacked, std::span<const std::uint64_t> row_seeds) {
  if (stacked.rank() != 2 || stacked.dim(0) != row_seeds.size()) {
    throw std::invalid_argument(
        "stochastic_logits_rows: expected one row seed per stacked row");
  }
  net.reseed_rows(row_seeds);
  return net.forward(stacked, /*training=*/false);
}

BuiltModel BuiltModel::clone() const {
  BuiltModel copy;
  copy.net = net.clone();
  copy.method = method;
  copy.arch = arch;
  // Rebuild the typed views against the cloned layers. The builders append
  // views in net order, so a single ordered scan reproduces them exactly.
  for (std::size_t i = 0; i < copy.net.size(); ++i) {
    nn::Layer* layer = &copy.net.layer(i);
    if (auto* l = dynamic_cast<SpinDropLayer*>(layer)) {
      copy.drop_layers.push_back(l);
    } else if (auto* l = dynamic_cast<ScaleDropLayer*>(layer)) {
      copy.scale_layers.push_back(l);
    } else if (auto* l = dynamic_cast<InvertedNormLayer*>(layer)) {
      copy.inv_norm_layers.push_back(l);
    } else if (auto* l = dynamic_cast<BayesianScaleLayer*>(layer)) {
      copy.bayes_layers.push_back(l);
      copy.bayes_layer_indices.push_back(i);
    } else if (auto* l = dynamic_cast<SpinBayesScaleLayer*>(layer)) {
      copy.spinbayes_layers.push_back(l);
    }
  }
  return copy;
}

void BuiltModel::set_binary_algo(nn::BinaryAlgo algo) {
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Layer* layer = &net.layer(i);
    if (auto* l = dynamic_cast<nn::BinaryDense*>(layer)) {
      l->set_binary_algo(algo);
    } else if (auto* l = dynamic_cast<nn::BinaryConv2d*>(layer)) {
      l->set_binary_algo(algo);
    }
  }
}

BuiltModel make_binary_mlp(const ModelConfig& config, std::size_t inputs,
                           const std::vector<std::size_t>& hidden,
                           std::size_t classes) {
  if (hidden.empty()) {
    throw std::invalid_argument("make_binary_mlp: need at least one hidden layer");
  }
  BuiltModel model;
  model.method = config.method;
  std::mt19937_64 engine(config.seed);
  BuildContext ctx{&model, &config, &engine, 0};

  std::size_t prev = inputs;
  for (std::size_t h : hidden) {
    model.net.emplace<nn::BinaryDense>(prev, h, engine);
    add_analog_readout(ctx);
    add_norm(ctx, h);
    model.net.emplace<nn::SignActivation>();
    // The scale stage sits after the binary activation: it modulates the
    // drive amplitude of the next crossbar's word lines. Placing it before
    // the normalization would make a positive per-channel scale a no-op
    // (batch statistics absorb it), killing both its gradient and the
    // dropout modulation.
    add_scale_slot(ctx, h, prev * h);
    add_drop_slot(ctx, h, h);
    model.arch.layers.push_back(LayerSpec::dense(prev, h, true));
    prev = h;
  }
  model.net.emplace<nn::BinaryDense>(prev, classes, engine);
  model.arch.layers.push_back(LayerSpec::dense(prev, classes, false));
  return model;
}

BuiltModel make_binary_cnn(const ModelConfig& config) {
  BuiltModel model;
  model.method = config.method;
  std::mt19937_64 engine(config.seed);
  BuildContext ctx{&model, &config, &engine, 0};

  // conv1: 1x16x16 -> 8x16x16, pooled to 8x8x8.
  model.net.emplace<nn::BinaryConv2d>(1, 8, 3, 1, engine);
  add_analog_readout(ctx);
  add_norm(ctx, 8);
  model.net.emplace<nn::SignActivation>();
  add_scale_slot(ctx, 8, 1 * 8 * 9);  // after the activation; see make_binary_mlp
  model.net.emplace<nn::MaxPool2d>();
  add_drop_slot(ctx, 8 * 8 * 8, 8);
  model.arch.layers.push_back(LayerSpec::conv(1, 8, 3, 16, 16));

  // conv2: 8x8x8 -> 16x8x8, pooled to 16x4x4.
  model.net.emplace<nn::BinaryConv2d>(8, 16, 3, 1, engine);
  add_analog_readout(ctx);
  add_norm(ctx, 16);
  model.net.emplace<nn::SignActivation>();
  add_scale_slot(ctx, 16, 8 * 16 * 9);
  model.net.emplace<nn::MaxPool2d>();
  add_drop_slot(ctx, 16 * 4 * 4, 16);
  model.arch.layers.push_back(LayerSpec::conv(8, 16, 3, 8, 8));

  model.net.emplace<nn::Flatten>();

  // dense: 256 -> 64.
  model.net.emplace<nn::BinaryDense>(256, 64, engine);
  add_analog_readout(ctx);
  add_norm(ctx, 64);
  model.net.emplace<nn::SignActivation>();
  add_scale_slot(ctx, 64, 256 * 64);
  add_drop_slot(ctx, 64, 64);
  model.arch.layers.push_back(LayerSpec::dense(256, 64, true));

  model.net.emplace<nn::BinaryDense>(64, 10, engine);
  model.arch.layers.push_back(LayerSpec::dense(64, 10, false));
  return model;
}

void convert_to_spinbayes(BuiltModel& model, const SpinBayesConfig& config) {
  if (model.method != Method::kSpinBayes) {
    throw std::logic_error("convert_to_spinbayes: model was not built for SpinBayes");
  }
  if (model.bayes_layers.size() != model.bayes_layer_indices.size()) {
    throw std::logic_error("convert_to_spinbayes: inconsistent layer bookkeeping");
  }
  for (std::size_t i = 0; i < model.bayes_layers.size(); ++i) {
    SpinBayesConfig layer_cfg = config;
    layer_cfg.seed = config.seed + 71 * i;
    auto replacement =
        SpinBayesScaleLayer::from_posterior(*model.bayes_layers[i], layer_cfg);
    model.spinbayes_layers.push_back(replacement.get());
    model.net.replace(model.bayes_layer_indices[i], std::move(replacement));
  }
  model.bayes_layers.clear();
}

}  // namespace neuspin::core
