#include "core/subset_vi.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/loss.h"

namespace neuspin::core {

void BayesScaleConfig::validate() const {
  if (channels == 0) {
    throw std::invalid_argument("BayesScaleConfig: channels must be positive");
  }
  if (prior_sigma <= 0.0f) {
    throw std::invalid_argument("BayesScaleConfig: prior_sigma must be positive");
  }
  if (quant_levels == 1) {
    throw std::invalid_argument("BayesScaleConfig: quant_levels must be 0 or >= 2");
  }
  if (quant_levels >= 2 && quant_lo >= quant_hi) {
    throw std::invalid_argument("BayesScaleConfig: need quant_lo < quant_hi");
  }
}

BayesianScaleLayer::BayesianScaleLayer(const BayesScaleConfig& config,
                                       energy::EnergyLedger* ledger)
    : config_(config),
      mu_({config.channels}, 1.0f),
      rho_({config.channels}, config.init_rho),
      mu_grad_({config.channels}),
      rho_grad_({config.channels}),
      engine_(config.seed),
      ledger_(ledger) {
  config_.validate();
}

nn::Tensor BayesianScaleLayer::posterior_std() const {
  nn::Tensor std_({config_.channels});
  for (std::size_t c = 0; c < config_.channels; ++c) {
    std_[c] = nn::softplus(rho_[c]);
  }
  return std_;
}

float BayesianScaleLayer::quantize(float s) const {
  if (config_.quant_levels < 2) {
    return s;
  }
  const float lo = config_.quant_lo;
  const float hi = config_.quant_hi;
  const float clipped = std::clamp(s, lo, hi);
  const float step = (hi - lo) / static_cast<float>(config_.quant_levels - 1);
  const float level = std::round((clipped - lo) / step);
  return lo + level * step;
}

nn::Tensor BayesianScaleLayer::sample_scale(std::mt19937_64& engine) const {
  std::normal_distribution<float> normal(0.0f, 1.0f);
  nn::Tensor s({config_.channels});
  for (std::size_t c = 0; c < config_.channels; ++c) {
    s[c] = quantize(mu_[c] + nn::softplus(rho_[c]) * normal(engine));
  }
  return s;
}

nn::Tensor BayesianScaleLayer::forward(const nn::Tensor& input, bool training) {
  if (input.rank() < 2 || input.dim(1) != config_.channels) {
    throw std::invalid_argument("BayesianScaleLayer: expected channel axis of size " +
                                std::to_string(config_.channels));
  }
  input_cache_ = input;
  const bool stochastic = training || mc_mode_;
  deterministic_pass_ = !stochastic;

  if (stochastic && !training && !row_seeds_.empty()) {
    // Fused MC: each row samples its own posterior scale vector under its
    // own stream, replaying the batch-of-one pass (quantized deployment
    // grid, ledger charges per row).
    const std::size_t batch = input.dim(0);
    if (batch != row_seeds_.size()) {
      throw std::invalid_argument(
          "BayesianScaleLayer: row-seed count does not match batch");
    }
    const std::size_t channels = config_.channels;
    const std::size_t inner = input.numel() / batch / channels;
    nn::Tensor out = input;
    for (std::size_t b = 0; b < batch; ++b) {
      engine_.seed(row_seeds_[b]);
      std::normal_distribution<float> normal(0.0f, 1.0f);
      for (std::size_t c = 0; c < channels; ++c) {
        const float eps = normal(engine_);
        float s = mu_[c] + nn::softplus(rho_[c]) * eps;
        s = quantize(s);
        for (std::size_t i = 0; i < inner; ++i) {
          out[(b * channels + c) * inner + i] *= s;
        }
      }
      if (ledger_ != nullptr) {
        ledger_->add(energy::Component::kRngDropoutCycle, 8 * channels);
        ledger_->add(energy::Component::kXbarCellRead, 2 * channels);
        ledger_->add(energy::Component::kDigitalMult, channels);
      }
    }
    return out;
  }

  scale_cache_ = nn::Tensor({config_.channels});
  eps_cache_ = nn::Tensor({config_.channels});
  std::normal_distribution<float> normal(0.0f, 1.0f);
  for (std::size_t c = 0; c < config_.channels; ++c) {
    if (stochastic) {
      eps_cache_[c] = normal(engine_);
      scale_cache_[c] = mu_[c] + nn::softplus(rho_[c]) * eps_cache_[c];
      // Quantize only outside training: the multi-level grid is a
      // deployment constraint, while training needs smooth gradients.
      if (!training) {
        scale_cache_[c] = quantize(scale_cache_[c]);
      }
    } else {
      eps_cache_[c] = 0.0f;
      scale_cache_[c] = mu_[c];
    }
  }
  if (ledger_ != nullptr && stochastic) {
    // One Gaussian sample per channel via sum-of-Bernoullis on the SOT
    // stochastic devices: 8 switching trials per sample.
    ledger_->add(energy::Component::kRngDropoutCycle, 8 * config_.channels);
    // Posterior parameters fetched from the scale crossbar.
    ledger_->add(energy::Component::kXbarCellRead, 2 * config_.channels);
    ledger_->add(energy::Component::kDigitalMult, config_.channels);
  }

  nn::Tensor out = input;
  const std::size_t batch = input.dim(0);
  const std::size_t inner = input.numel() / batch / config_.channels;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < config_.channels; ++c) {
      const float s = scale_cache_[c];
      for (std::size_t i = 0; i < inner; ++i) {
        out[(b * config_.channels + c) * inner + i] *= s;
      }
    }
  }
  return out;
}

nn::Tensor BayesianScaleLayer::backward(const nn::Tensor& grad_output) {
  nn::Tensor grad = grad_output;
  const std::size_t batch = grad.dim(0);
  const std::size_t channels = config_.channels;
  const std::size_t inner = grad.numel() / batch / channels;
  for (std::size_t c = 0; c < channels; ++c) {
    float ds = 0.0f;  // d(loss)/d(scale_c)
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (b * channels + c) * inner + i;
        ds += grad_output[idx] * input_cache_[idx];
        grad[idx] *= scale_cache_[c];
      }
    }
    // Reparameterization: s = mu + softplus(rho) * eps.
    mu_grad_[c] += ds;
    if (!deterministic_pass_) {
      rho_grad_[c] += ds * eps_cache_[c] * nn::softplus_grad(rho_[c]);
    }
  }
  return grad;
}

std::vector<nn::ParamRef> BayesianScaleLayer::parameters() {
  return {{&mu_, &mu_grad_}, {&rho_, &rho_grad_}};
}

}  // namespace neuspin::core
