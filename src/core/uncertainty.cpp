#include "core/uncertainty.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace neuspin::core {

namespace {

float entropy_of_row(const nn::Tensor& probs, std::size_t row) {
  float h = 0.0f;
  for (std::size_t j = 0; j < probs.dim(1); ++j) {
    const float p = probs.at(row, j);
    if (p > 1e-12f) {
      h -= p * std::log(p);
    }
  }
  return h;
}

}  // namespace

std::vector<float> predictive_entropy(const nn::Tensor& probs) {
  if (probs.rank() != 2) {
    throw std::invalid_argument("predictive_entropy: expected (batch x classes)");
  }
  std::vector<float> h(probs.dim(0));
  for (std::size_t i = 0; i < probs.dim(0); ++i) {
    h[i] = entropy_of_row(probs, i);
  }
  return h;
}

std::vector<float> mutual_information(const std::vector<nn::Tensor>& member_probs) {
  if (member_probs.empty()) {
    throw std::invalid_argument("mutual_information: need at least one member");
  }
  const std::size_t batch = member_probs.front().dim(0);
  const std::size_t classes = member_probs.front().dim(1);
  nn::Tensor mean({batch, classes});
  for (const auto& p : member_probs) {
    if (p.shape() != mean.shape()) {
      throw std::invalid_argument("mutual_information: member shape mismatch");
    }
    mean += p;
  }
  mean *= 1.0f / static_cast<float>(member_probs.size());

  std::vector<float> mi = predictive_entropy(mean);
  for (std::size_t i = 0; i < batch; ++i) {
    float expected_h = 0.0f;
    for (const auto& p : member_probs) {
      expected_h += entropy_of_row(p, i);
    }
    mi[i] -= expected_h / static_cast<float>(member_probs.size());
    mi[i] = std::max(mi[i], 0.0f);  // numerical floor
  }
  return mi;
}

float negative_log_likelihood(const nn::Tensor& probs,
                              const std::vector<std::size_t>& labels) {
  if (probs.dim(0) != labels.size()) {
    throw std::invalid_argument("negative_log_likelihood: batch mismatch");
  }
  float nll = 0.0f;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    nll -= std::log(std::max(probs.at(i, labels[i]), 1e-12f));
  }
  return nll / static_cast<float>(labels.size());
}

float brier_score(const nn::Tensor& probs, const std::vector<std::size_t>& labels) {
  if (probs.dim(0) != labels.size()) {
    throw std::invalid_argument("brier_score: batch mismatch");
  }
  float score = 0.0f;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t j = 0; j < probs.dim(1); ++j) {
      const float target = j == labels[i] ? 1.0f : 0.0f;
      const float d = probs.at(i, j) - target;
      score += d * d;
    }
  }
  return score / static_cast<float>(labels.size());
}

float expected_calibration_error(const nn::Tensor& probs,
                                 const std::vector<std::size_t>& labels,
                                 std::size_t bins) {
  if (bins == 0) {
    throw std::invalid_argument("expected_calibration_error: bins must be positive");
  }
  if (probs.dim(0) != labels.size()) {
    throw std::invalid_argument("expected_calibration_error: batch mismatch");
  }
  std::vector<float> bin_conf(bins, 0.0f);
  std::vector<float> bin_acc(bins, 0.0f);
  std::vector<std::size_t> bin_count(bins, 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t best = nn::argmax_row(probs, i);
    const float conf = probs.at(i, best);
    auto bin = static_cast<std::size_t>(conf * static_cast<float>(bins));
    bin = std::min(bin, bins - 1);
    bin_conf[bin] += conf;
    bin_acc[bin] += best == labels[i] ? 1.0f : 0.0f;
    ++bin_count[bin];
  }
  float ece = 0.0f;
  const float n = static_cast<float>(labels.size());
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_count[b] == 0) {
      continue;
    }
    const float count = static_cast<float>(bin_count[b]);
    ece += count / n * std::abs(bin_acc[b] / count - bin_conf[b] / count);
  }
  return ece;
}

float accuracy(const nn::Tensor& probs, const std::vector<std::size_t>& labels) {
  if (probs.dim(0) != labels.size()) {
    throw std::invalid_argument("accuracy: batch mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (nn::argmax_row(probs, i) == labels[i]) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(labels.size());
}

float auroc(const std::vector<float>& score, const std::vector<bool>& is_ood) {
  if (score.size() != is_ood.size() || score.empty()) {
    throw std::invalid_argument("auroc: size mismatch or empty input");
  }
  // Rank-sum (Mann-Whitney U) formulation with average ranks for ties.
  std::vector<std::size_t> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });

  std::size_t positives = 0;
  std::size_t negatives = 0;
  for (bool o : is_ood) {
    (o ? positives : negatives)++;
  }
  if (positives == 0 || negatives == 0) {
    throw std::invalid_argument("auroc: need both OOD and in-distribution samples");
  }

  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && score[order[j + 1]] == score[order[i]]) {
      ++j;
    }
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (is_ood[order[k]]) {
        rank_sum_pos += avg_rank;
      }
    }
    i = j + 1;
  }
  const double u = rank_sum_pos - static_cast<double>(positives) *
                                      (static_cast<double>(positives) + 1.0) / 2.0;
  return static_cast<float>(u / (static_cast<double>(positives) *
                                 static_cast<double>(negatives)));
}

float detection_rate(const std::vector<float>& id_scores,
                     const std::vector<float>& ood_scores, float quantile) {
  if (id_scores.empty() || ood_scores.empty()) {
    throw std::invalid_argument("detection_rate: empty score vector");
  }
  if (quantile <= 0.0f || quantile >= 1.0f) {
    throw std::invalid_argument("detection_rate: quantile must lie in (0,1)");
  }
  std::vector<float> sorted = id_scores;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(quantile * static_cast<float>(sorted.size()));
  const float threshold = sorted[std::min(idx, sorted.size() - 1)];
  std::size_t detected = 0;
  for (float s : ood_scores) {
    if (s > threshold) {
      ++detected;
    }
  }
  return static_cast<float>(detected) / static_cast<float>(ood_scores.size());
}

}  // namespace neuspin::core
