// MC-DropConnect (paper §II-D): dropout applied to each *weight* rather
// than each neuron. The paper discusses it as the costliest point of the
// design space — "the number of Dropout modules equals the total number of
// weights ... the number of Dropout modules in the hardware can be huge
// and the overall sampling latency can be long" — and NeuSpin's methods
// exist to avoid exactly this. The layer is implemented so the census and
// ablation benches can quantify that argument.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <random>

#include "energy/accountant.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace neuspin::core {

/// Binary dense layer with per-weight Bernoulli connection dropout.
///
/// Forward: y = x (M (.) sign(W)) * alpha + b, with mask M resampled per
/// training step and per MC pass. Dropped connections contribute nothing —
/// on the crossbar this is a cell whose word-line/bit-line intersection is
/// gated off for the pass, which is why the hardware cost scales with the
/// weight count.
class DropConnectDense : public nn::Layer {
 public:
  DropConnectDense(std::size_t in_features, std::size_t out_features, double p,
                   std::mt19937_64& engine, std::uint64_t mask_seed,
                   energy::EnergyLedger* ledger = nullptr);

  nn::Tensor forward(const nn::Tensor& input, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::ParamRef> parameters() override;
  [[nodiscard]] std::string name() const override { return "DropConnectDense"; }
  /// Clones share the (optional) energy ledger pointer; run concurrent
  /// clones without a ledger or synchronize externally.
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<DropConnectDense>(*this);
  }
  void reseed(std::uint64_t seed) override { mask_engine_.seed(seed); }
  void save_rng_state(std::ostream& out) const override { out << mask_engine_ << '\n'; }
  void load_rng_state(std::istream& in) override { in >> mask_engine_; }

  void enable_mc(bool on) { mc_mode_ = on; }
  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }
  [[nodiscard]] double probability() const { return p_; }
  /// RNG decisions one stochastic pass consumes (== weight count).
  [[nodiscard]] std::size_t decisions_per_pass() const { return in_ * out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  double p_;
  nn::Tensor latent_weight_;
  nn::Tensor bias_;
  nn::Tensor weight_grad_;
  nn::Tensor bias_grad_;
  std::mt19937_64 mask_engine_;
  bool mc_mode_ = false;
  // Caches for backward.
  nn::Tensor input_cache_;
  nn::Tensor masked_binary_cache_;  ///< M (.) sign(W)
  nn::Tensor alpha_cache_;
  energy::EnergyLedger* ledger_;
};

}  // namespace neuspin::core
