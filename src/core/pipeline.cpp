#include "core/pipeline.h"

#include <algorithm>

namespace neuspin::core {

float fit(BuiltModel& model, const nn::Dataset& train, const FitConfig& config) {
  model.enable_mc(false);
  nn::TrainConfig tc;
  tc.epochs = config.epochs;
  tc.batch_size = config.batch_size;
  tc.lr = config.lr;
  tc.verbose = config.verbose;
  tc.label_smoothing = config.label_smoothing;
  tc.regularizer = model.make_regularizer(config.kl_weight, config.scale_lambda);
  const auto history = nn::train_classifier(model.net, train, tc);
  return history.empty() ? 0.0f : history.back().train_accuracy;
}

EvalResult evaluate(BuiltModel& model, const nn::Dataset& test, std::size_t mc_samples,
                    std::size_t batch_size) {
  model.enable_mc(true);
  McPredictor predictor(mc_samples);
  auto forward = [&model](const nn::Tensor& x) { return model.stochastic_logits(x); };

  EvalResult result;
  nn::Tensor all_probs({test.size(), 0});
  std::vector<nn::Tensor> prob_batches;
  std::vector<float> entropies;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, test.size());
    auto [inputs, labels] = test.batch(begin, end);
    const Prediction pred = predictor.predict(inputs, forward);
    prob_batches.push_back(pred.mean_probs);
    entropies.insert(entropies.end(), pred.entropy.begin(), pred.entropy.end());
  }
  // Stitch the batches back together.
  const std::size_t classes = prob_batches.front().dim(1);
  nn::Tensor probs({test.size(), classes});
  std::size_t row = 0;
  for (const auto& batch : prob_batches) {
    for (std::size_t i = 0; i < batch.dim(0); ++i, ++row) {
      for (std::size_t j = 0; j < classes; ++j) {
        probs.at(row, j) = batch.at(i, j);
      }
    }
  }
  model.enable_mc(false);

  result.accuracy = accuracy(probs, test.labels);
  result.nll = negative_log_likelihood(probs, test.labels);
  result.ece = expected_calibration_error(probs, test.labels);
  result.brier = brier_score(probs, test.labels);
  float h = 0.0f;
  for (float e : entropies) {
    h += e;
  }
  result.mean_entropy = entropies.empty() ? 0.0f
                                          : h / static_cast<float>(entropies.size());
  return result;
}

std::vector<float> entropy_scores(BuiltModel& model, const nn::Dataset& data,
                                  std::size_t mc_samples, std::size_t batch_size) {
  model.enable_mc(true);
  McPredictor predictor(mc_samples);
  auto forward = [&model](const nn::Tensor& x) { return model.stochastic_logits(x); };
  std::vector<float> scores;
  scores.reserve(data.size());
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, data.size());
    auto [inputs, labels] = data.batch(begin, end);
    const Prediction pred = predictor.predict(inputs, forward);
    scores.insert(scores.end(), pred.entropy.begin(), pred.entropy.end());
  }
  model.enable_mc(false);
  return scores;
}

OodResult evaluate_ood(BuiltModel& model, const nn::Dataset& in_dist,
                       const nn::Dataset& ood, std::size_t mc_samples,
                       std::size_t batch_size) {
  const std::vector<float> id_scores =
      entropy_scores(model, in_dist, mc_samples, batch_size);
  const std::vector<float> ood_scores = entropy_scores(model, ood, mc_samples, batch_size);

  std::vector<float> all = id_scores;
  all.insert(all.end(), ood_scores.begin(), ood_scores.end());
  std::vector<bool> is_ood(id_scores.size(), false);
  is_ood.insert(is_ood.end(), ood_scores.size(), true);

  OodResult result;
  result.auroc = auroc(all, is_ood);
  result.detection_rate = detection_rate(id_scores, ood_scores);
  return result;
}

}  // namespace neuspin::core
