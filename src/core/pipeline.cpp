#include "core/pipeline.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.h"
#include "data/strokes.h"
#include "train/trainer.h"

namespace neuspin::core {

float fit(BuiltModel& model, const nn::Dataset& train, const FitConfig& config) {
  model.enable_mc(false);
  train::TrainerConfig tc;
  tc.epochs = config.epochs;
  tc.batch_size = config.batch_size;
  tc.lr = config.lr;
  tc.verbose = config.verbose;
  tc.label_smoothing = config.label_smoothing;
  tc.shards = config.shards;
  tc.workers = config.workers;
  tc.grad_clip = config.grad_clip;
  tc.regularizer = model.make_regularizer(config.kl_weight, config.scale_lambda);
  train::Trainer trainer(model.net, std::move(tc));
  const auto history = trainer.fit(train);
  return history.empty() ? 0.0f : history.back().train_accuracy;
}

namespace {

/// Number of batches a dataset splits into under `batch_size`.
std::size_t batch_count(std::size_t dataset_size, std::size_t batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("evaluate: batch_size must be at least 1");
  }
  return (dataset_size + batch_size - 1) / batch_size;
}

/// Worker count actually used: capped by the useful parallelism of the run
/// (`parallel_cap` = max of MC sample count and batch count — beyond that,
/// extra clones would sit idle) and resolved against the hardware when
/// `requested` is 0. An explicit request above the hardware thread count is
/// honored, not capped: results are thread-count invariant, and
/// over-subscribed counts are how single-core hosts (and CI) exercise the
/// multi-replica path.
std::size_t resolve_workers(std::size_t requested, std::size_t parallel_cap) {
  return std::max<std::size_t>(
      1, std::min(resolve_worker_count(requested), parallel_cap));
}

/// Owns the per-worker model clones of one evaluation run and serves
/// batch predictions through the MC predictor. The caller's model is
/// never mutated — MC mode and reseeding happen on the clones only, so
/// the model's RNG state after evaluation is independent of the thread
/// count, and an exception mid-construction leaves nothing toggled.
class PooledEvaluator {
 public:
  /// `batches_hint` is the largest batch count this evaluator will be asked
  /// to predict in one call; together with mc_samples it bounds the useful
  /// replica count.
  PooledEvaluator(const BuiltModel& model, const EvalOptions& options,
                  std::size_t batches_hint)
      : options_(options),
        workers_(resolve_workers(options.threads,
                                 std::max(options.mc_samples, batches_hint))) {
    if (options.mc_samples == 0) {
      throw std::invalid_argument("evaluate: need at least one MC sample");
    }
    replicas_.reserve(workers_);
    forwards_.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
      replicas_.push_back(model.clone());
      replicas_.back().enable_mc(true);
    }
    for (auto& replica : replicas_) {
      forwards_.push_back([&replica](const nn::Tensor& x, std::uint64_t pass_seed) {
        replica.reseed_stochastic(pass_seed);
        return replica.stochastic_logits(x);
      });
    }
  }

  PooledEvaluator(const PooledEvaluator&) = delete;
  PooledEvaluator& operator=(const PooledEvaluator&) = delete;

  /// Predict one batch. `batch_seed` feeds the per-pass seed derivation,
  /// so distinct batches draw distinct (but reproducible) mask sets.
  [[nodiscard]] Prediction predict(const nn::Tensor& inputs, std::uint64_t batch_seed) {
    const McPredictor predictor(options_.mc_samples, batch_seed);
    if (workers_ <= 1) {
      return predictor.predict(inputs, forwards_.front());
    }
    return predictor.predict(inputs, forwards_, ThreadPool::shared());
  }

  /// Predict a whole run of batches; batch i uses the stream seed
  /// mix_seed(base_seed, i) exactly like the serial loop always did.
  ///
  /// Two fan-out strategies cover the pool:
  ///  * pass-parallel (few large batches, many MC passes): batches run in
  ///    order, each one's T passes split across every replica;
  ///  * batch-parallel (many batches, few MC passes — the ROADMAP case):
  ///    contiguous batch chunks run concurrently, one replica per chunk,
  ///    each batch's passes serial on its chunk's replica.
  /// Either way a batch's prediction is the same pure function of
  /// (weights, inputs, mc_samples, batch seed), and the reduction order is
  /// fixed by batch index — so results are bitwise identical for any
  /// thread count and strategy choice.
  [[nodiscard]] std::vector<Prediction> predict_many(
      const std::vector<nn::Tensor>& batches, std::uint64_t base_seed) {
    std::vector<Prediction> out(batches.size());
    if (batches.empty()) {
      return out;  // entropy_scores on an empty dataset yields no scores
    }
    // Critical-path cost of each strategy, in serial pass-units: batch-
    // parallel runs per_chunk batches of T serial passes on the busiest
    // replica; pass-parallel runs every batch in order, each batch's T
    // passes split across the replicas.
    const std::size_t chunks = std::min(workers_, batches.size());
    const std::size_t per_chunk = (batches.size() + chunks - 1) / chunks;
    const std::size_t pass_workers = std::min(workers_, options_.mc_samples);
    const std::size_t batch_parallel_cost = per_chunk * options_.mc_samples;
    const std::size_t pass_parallel_cost =
        batches.size() * ((options_.mc_samples + pass_workers - 1) / pass_workers);
    const bool batch_parallel = workers_ > 1 && batches.size() > 1 &&
                                batch_parallel_cost < pass_parallel_cost;
    if (!batch_parallel) {
      for (std::size_t i = 0; i < batches.size(); ++i) {
        out[i] = predict(batches[i], nn::mix_seed(base_seed, i));
        discard_member_probs(out[i]);
      }
      return out;
    }
    ThreadPool::shared().run_chunked(
        batches.size(), workers_,
        [this, &batches, &out, base_seed](std::size_t chunk, std::size_t begin,
                                          std::size_t end) {
          const McPredictor::SeededForward& forward = forwards_[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            const McPredictor predictor(options_.mc_samples,
                                        nn::mix_seed(base_seed, i));
            out[i] = predictor.predict(batches[i], forward);
            discard_member_probs(out[i]);
          }
        });
    return out;
  }

 private:
  /// The evaluation entry points only consume mean_probs/entropy; dropping
  /// the T per-pass tensors right after each batch's reduction keeps peak
  /// memory at O(T x batch) instead of O(T x dataset).
  static void discard_member_probs(Prediction& pred) {
    pred.member_probs.clear();
    pred.member_probs.shrink_to_fit();
  }

  EvalOptions options_;
  std::size_t workers_;
  std::vector<BuiltModel> replicas_;
  std::vector<McPredictor::SeededForward> forwards_;
};

/// Split a dataset into its input batch tensors.
std::vector<nn::Tensor> input_batches(const nn::Dataset& data,
                                      std::size_t batch_size) {
  std::vector<nn::Tensor> batches;
  batches.reserve(batch_count(data.size(), batch_size));
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, data.size());
    batches.push_back(data.batch(begin, end).first);
  }
  return batches;
}

EvalResult evaluate_with(PooledEvaluator& evaluator, const nn::Dataset& test,
                         const EvalOptions& options) {
  if (test.size() == 0) {
    throw std::invalid_argument("evaluate: empty dataset");
  }
  const std::vector<Prediction> predictions =
      evaluator.predict_many(input_batches(test, options.batch_size), options.seed);
  std::vector<nn::Tensor> prob_batches;
  std::vector<float> entropies;
  for (const Prediction& pred : predictions) {
    prob_batches.push_back(pred.mean_probs);
    entropies.insert(entropies.end(), pred.entropy.begin(), pred.entropy.end());
  }
  // Stitch the batches back together.
  const std::size_t classes = prob_batches.front().dim(1);
  nn::Tensor probs({test.size(), classes});
  std::size_t row = 0;
  for (const auto& batch : prob_batches) {
    for (std::size_t i = 0; i < batch.dim(0); ++i, ++row) {
      for (std::size_t j = 0; j < classes; ++j) {
        probs.at(row, j) = batch.at(i, j);
      }
    }
  }

  EvalResult result;
  result.accuracy = accuracy(probs, test.labels);
  result.nll = negative_log_likelihood(probs, test.labels);
  result.ece = expected_calibration_error(probs, test.labels);
  result.brier = brier_score(probs, test.labels);
  float h = 0.0f;
  for (float e : entropies) {
    h += e;
  }
  result.mean_entropy = entropies.empty() ? 0.0f
                                          : h / static_cast<float>(entropies.size());
  return result;
}

std::vector<float> entropy_scores_with(PooledEvaluator& evaluator,
                                       const nn::Dataset& data,
                                       const EvalOptions& options) {
  std::vector<float> scores;
  scores.reserve(data.size());
  const std::vector<Prediction> predictions =
      evaluator.predict_many(input_batches(data, options.batch_size), options.seed);
  for (const Prediction& pred : predictions) {
    scores.insert(scores.end(), pred.entropy.begin(), pred.entropy.end());
  }
  return scores;
}

}  // namespace

EvalResult evaluate(const BuiltModel& model, const nn::Dataset& test,
                    const EvalOptions& options) {
  PooledEvaluator evaluator(model, options,
                            batch_count(test.size(), options.batch_size));
  return evaluate_with(evaluator, test, options);
}

EvalResult evaluate(const BuiltModel& model, const nn::Dataset& test,
                    std::size_t mc_samples, std::size_t batch_size) {
  EvalOptions options;
  options.mc_samples = mc_samples;
  options.batch_size = batch_size;
  return evaluate(model, test, options);
}

std::vector<float> entropy_scores(const BuiltModel& model, const nn::Dataset& data,
                                  const EvalOptions& options) {
  PooledEvaluator evaluator(model, options,
                            batch_count(data.size(), options.batch_size));
  return entropy_scores_with(evaluator, data, options);
}

std::vector<float> entropy_scores(const BuiltModel& model, const nn::Dataset& data,
                                  std::size_t mc_samples, std::size_t batch_size) {
  EvalOptions options;
  options.mc_samples = mc_samples;
  options.batch_size = batch_size;
  return entropy_scores(model, data, options);
}

OodResult evaluate_ood(const BuiltModel& model, const nn::Dataset& in_dist,
                       const nn::Dataset& ood, const EvalOptions& options) {
  // One clone set serves both score passes.
  PooledEvaluator evaluator(model, options,
                            std::max(batch_count(in_dist.size(), options.batch_size),
                                     batch_count(ood.size(), options.batch_size)));
  const std::vector<float> id_scores = entropy_scores_with(evaluator, in_dist, options);
  // Salt the OOD batches so they do not reuse the in-distribution streams.
  EvalOptions ood_options = options;
  ood_options.seed = nn::mix_seed(options.seed, 0x00d);
  const std::vector<float> ood_scores = entropy_scores_with(evaluator, ood, ood_options);

  std::vector<float> all = id_scores;
  all.insert(all.end(), ood_scores.begin(), ood_scores.end());
  std::vector<bool> is_ood(id_scores.size(), false);
  is_ood.insert(is_ood.end(), ood_scores.size(), true);

  OodResult result;
  result.auroc = auroc(all, is_ood);
  result.detection_rate = detection_rate(id_scores, ood_scores);
  return result;
}

OodResult evaluate_ood(const BuiltModel& model, const nn::Dataset& in_dist,
                       const nn::Dataset& ood, std::size_t mc_samples,
                       std::size_t batch_size) {
  EvalOptions options;
  options.mc_samples = mc_samples;
  options.batch_size = batch_size;
  return evaluate_ood(model, in_dist, ood, options);
}

std::vector<CorruptionEval> evaluate_corruption(
    const BuiltModel& model, const nn::Dataset& images,
    const std::vector<data::CorruptionKind>& kinds,
    const std::vector<float>& severities, std::uint64_t corruption_seed,
    const EvalOptions& options) {
  PooledEvaluator evaluator(model, options,
                            batch_count(images.size(), options.batch_size));
  std::vector<CorruptionEval> sweep;
  sweep.reserve(kinds.size() * severities.size());
  for (data::CorruptionKind kind : kinds) {
    for (float severity : severities) {
      const nn::Dataset corrupted = data::standardize_per_sample(
          data::corrupt(images, kind, severity, corruption_seed));
      CorruptionEval point;
      point.kind = kind;
      point.severity = severity;
      point.result = evaluate_with(evaluator, corrupted, options);
      sweep.push_back(std::move(point));
    }
  }
  return sweep;
}

}  // namespace neuspin::core
