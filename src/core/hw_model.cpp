#include "core/hw_model.h"

#include <cmath>
#include <stdexcept>

#include "core/spindrop.h"

namespace neuspin::core {

AnalogReadout::AnalogReadout(const HwNoiseConfig& config)
    : config_(config), engine_(config.seed) {
  if (config.noise_fraction < 0.0f) {
    throw std::invalid_argument("AnalogReadout: noise_fraction must be non-negative");
  }
  if (config.quant_levels == 1) {
    throw std::invalid_argument("AnalogReadout: quant_levels must be 0 or >= 2");
  }
}

nn::Tensor AnalogReadout::forward(const nn::Tensor& input, bool training) {
  if (training || !config_.enabled) {
    return input;
  }
  // Auto-ranged full scale: the largest magnitude in this batch, matching
  // a SAR ADC whose reference tracks the layer's dynamic range.
  float full_scale = 0.0f;
  for (std::size_t i = 0; i < input.numel(); ++i) {
    full_scale = std::max(full_scale, std::abs(input[i]));
  }
  if (full_scale == 0.0f) {
    return input;
  }
  const float sigma = config_.noise_fraction * full_scale;
  const float lsb = config_.quant_levels >= 2
                        ? 2.0f * full_scale / static_cast<float>(config_.quant_levels)
                        : 0.0f;
  nn::Tensor out = input;
  std::normal_distribution<float> noise(0.0f, sigma);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    float v = out[i];
    if (sigma > 0.0f) {
      v += noise(engine_);
    }
    if (lsb > 0.0f) {
      v = std::round(v / lsb) * lsb;
    }
    out[i] = v;
  }
  return out;
}

nn::Tensor AnalogReadout::backward(const nn::Tensor& grad_output) {
  return grad_output;  // straight-through
}

std::size_t inject_weight_defects(nn::Sequential& net, float flip_rate,
                                  std::uint64_t seed) {
  if (flip_rate < 0.0f || flip_rate > 1.0f) {
    throw std::invalid_argument("inject_weight_defects: flip_rate must lie in [0,1]");
  }
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Tensor* latent = nullptr;
    if (auto* dense = dynamic_cast<nn::BinaryDense*>(&net.layer(i))) {
      latent = &dense->latent_weight();
    } else if (auto* conv = dynamic_cast<nn::BinaryConv2d*>(&net.layer(i))) {
      latent = &conv->latent_weight();
    }
    if (latent == nullptr) {
      continue;
    }
    for (std::size_t w = 0; w < latent->numel(); ++w) {
      if (u01(engine) < flip_rate) {
        (*latent)[w] = -(*latent)[w];
        ++flipped;
      }
    }
  }
  return flipped;
}

std::size_t perturb_weights(nn::Sequential& net, float rel_sigma, std::uint64_t seed,
                            bool include_norm_params) {
  if (rel_sigma < 0.0f) {
    throw std::invalid_argument("perturb_weights: rel_sigma must be non-negative");
  }
  if (rel_sigma == 0.0f) {
    return 0;
  }
  std::mt19937_64 engine(seed);
  std::normal_distribution<float> noise(0.0f, rel_sigma);
  std::size_t perturbed = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (!include_norm_params && !net.layer(i).state_tensors().empty()) {
      continue;  // normalization layers keep their digital registers intact
    }
    for (auto& param : net.layer(i).parameters()) {
      for (std::size_t w = 0; w < param.value->numel(); ++w) {
        (*param.value)[w] *= 1.0f + noise(engine);
        ++perturbed;
      }
    }
  }
  return perturbed;
}

TiledMlp::TiledMlp(nn::Sequential& net, const xbar::TileConfig& tile_config,
                   std::uint64_t seed)
    : engine_(seed ^ 0x7117), dropout_seed_(seed ^ 0xd407) {
  // Walk the canonical [BinaryDense -> BatchNorm -> Sign]* -> BinaryDense
  // layout, skipping dropout/readout decorations.
  std::size_t i = 0;
  while (i < net.size()) {
    auto* dense = dynamic_cast<nn::BinaryDense*>(&net.layer(i));
    if (dense == nullptr) {
      ++i;
      continue;
    }
    // Find the matching BatchNorm (if any) before the next BinaryDense.
    nn::BatchNorm* bn = nullptr;
    for (std::size_t j = i + 1; j < net.size(); ++j) {
      if (dynamic_cast<nn::BinaryDense*>(&net.layer(j)) != nullptr) {
        break;
      }
      if (auto* candidate = dynamic_cast<nn::BatchNorm*>(&net.layer(j))) {
        bn = candidate;
        break;
      }
    }

    FoldedLayer folded;
    const nn::Tensor weights = dense->binary_weight();
    const nn::Tensor scales = dense->scales();
    std::vector<float> w(weights.data().begin(), weights.data().end());
    std::vector<float> s(scales.data().begin(), scales.data().end());
    folded.tile = std::make_unique<xbar::DenseTile>(
        tile_config, dense->in_features(), dense->out_features(), w, s,
        seed + 131 * tiles_.size());
    folded.bias.assign(dense->bias().data().begin(), dense->bias().data().end());
    folded.hidden = bn != nullptr;
    if (bn != nullptr) {
      // Fold sign(gamma * (a - mean)/std + beta) into a threshold on the
      // pre-normalization activation a: theta = mean - beta * std / gamma.
      const std::size_t n = dense->out_features();
      folded.threshold.resize(n);
      folded.bn_sign.resize(n);
      for (std::size_t c = 0; c < n; ++c) {
        const float gamma = bn->gamma()[c];
        const float beta = bn->beta()[c];
        const float mean = bn->running_mean()[c];
        const float std_dev = std::sqrt(bn->running_var()[c] + 1e-5f);
        const float safe_gamma = std::abs(gamma) < 1e-6f
                                     ? (gamma < 0.0f ? -1e-6f : 1e-6f)
                                     : gamma;
        folded.threshold[c] = mean - beta * std_dev / safe_gamma;
        folded.bn_sign[c] = safe_gamma >= 0.0f ? 1.0f : -1.0f;
      }
    }
    tiles_.push_back(std::move(folded));
    ++i;
  }
  if (tiles_.empty()) {
    throw std::invalid_argument("TiledMlp: network contains no BinaryDense layers");
  }
}

void TiledMlp::inject_defects(const device::DefectRates& rates, std::uint64_t seed) {
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    tiles_[t].tile->inject_defects(rates, seed + 977 * t);
  }
}

nn::Tensor TiledMlp::forward(const nn::Tensor& input, energy::EnergyLedger* ledger) {
  return forward_spindrop(input, 0.0, ledger);
}

nn::Tensor TiledMlp::forward_spindrop(const nn::Tensor& input, double p,
                                      energy::EnergyLedger* ledger) {
  if (input.rank() != 2) {
    throw std::invalid_argument("TiledMlp: expected (batch x features) input");
  }
  const std::size_t batch = input.dim(0);
  const std::size_t classes = tiles_.back().tile->out_features();
  nn::Tensor logits({batch, classes});

  std::uniform_real_distribution<double> u01(0.0, 1.0);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<float> x(input.dim(1));
    for (std::size_t f = 0; f < x.size(); ++f) {
      x[f] = input.at(b, f);
    }
    std::vector<std::uint8_t> enabled(x.size(), 1);
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      FoldedLayer& layer = tiles_[t];
      const std::vector<float> sums =
          layer.tile->forward_gated(x, enabled, ledger, engine_);
      const std::size_t n = layer.tile->out_features();
      std::vector<float> a(n);
      for (std::size_t c = 0; c < n; ++c) {
        a[c] = sums[c] + layer.bias[c];
      }
      if (layer.hidden) {
        std::vector<float> h(n);
        std::vector<std::uint8_t> next_enabled(n, 1);
        for (std::size_t c = 0; c < n; ++c) {
          h[c] = (a[c] - layer.threshold[c]) >= 0.0f ? layer.bn_sign[c]
                                                     : -layer.bn_sign[c];
          if (p > 0.0) {
            // One stochastic MTJ dropout decision per neuron per pass.
            if (ledger != nullptr) {
              ledger->add(energy::Component::kRngDropoutCycle, 1);
            }
            if (u01(engine_) < p) {
              next_enabled[c] = 0;
            }
          }
        }
        x = std::move(h);
        enabled = std::move(next_enabled);
      } else {
        for (std::size_t c = 0; c < n; ++c) {
          logits.at(b, c) = a[c];
        }
      }
    }
  }
  return logits;
}

}  // namespace neuspin::core
