#include "core/hw_model.h"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/spindrop.h"
#include "core/thread_pool.h"

namespace neuspin::core {

AnalogReadout::AnalogReadout(const HwNoiseConfig& config)
    : config_(config), engine_(config.seed) {
  if (config.noise_fraction < 0.0f) {
    throw std::invalid_argument("AnalogReadout: noise_fraction must be non-negative");
  }
  if (config.quant_levels == 1) {
    throw std::invalid_argument("AnalogReadout: quant_levels must be 0 or >= 2");
  }
}

namespace {

/// Quantize-and-perturb one contiguous value range [begin, end) of `out`
/// against a full scale auto-ranged over that same range — the shared body
/// of the batch-shared and per-row readout paths.
void readout_range(nn::Tensor& out, std::size_t begin, std::size_t end,
                   const HwNoiseConfig& config, std::mt19937_64& engine) {
  float full_scale = 0.0f;
  for (std::size_t i = begin; i < end; ++i) {
    full_scale = std::max(full_scale, std::abs(out[i]));
  }
  if (full_scale == 0.0f) {
    return;
  }
  const float sigma = config.noise_fraction * full_scale;
  const float lsb = config.quant_levels >= 2
                        ? 2.0f * full_scale / static_cast<float>(config.quant_levels)
                        : 0.0f;
  std::normal_distribution<float> noise(0.0f, sigma);
  for (std::size_t i = begin; i < end; ++i) {
    float v = out[i];
    if (sigma > 0.0f) {
      v += noise(engine);
    }
    if (lsb > 0.0f) {
      v = std::round(v / lsb) * lsb;
    }
    out[i] = v;
  }
}

}  // namespace

nn::Tensor AnalogReadout::forward(const nn::Tensor& input, bool training) {
  if (training || !config_.enabled) {
    return input;
  }
  nn::Tensor out = input;
  if (!row_seeds_.empty()) {
    // Fused MC: every row is read out as if alone — per-row auto-ranged
    // full scale, per-row noise stream.
    const std::size_t batch = input.dim(0);
    if (batch != row_seeds_.size()) {
      throw std::invalid_argument("AnalogReadout: row-seed count does not match batch");
    }
    const std::size_t per_row = input.numel() / batch;
    for (std::size_t r = 0; r < batch; ++r) {
      engine_.seed(row_seeds_[r]);
      readout_range(out, r * per_row, (r + 1) * per_row, config_, engine_);
    }
    return out;
  }
  // Auto-ranged full scale: the largest magnitude in this batch, matching
  // a SAR ADC whose reference tracks the layer's dynamic range.
  readout_range(out, 0, out.numel(), config_, engine_);
  return out;
}

nn::Tensor AnalogReadout::backward(const nn::Tensor& grad_output) {
  return grad_output;  // straight-through
}

std::size_t inject_weight_defects(nn::Sequential& net, float flip_rate,
                                  std::uint64_t seed) {
  if (flip_rate < 0.0f || flip_rate > 1.0f) {
    throw std::invalid_argument("inject_weight_defects: flip_rate must lie in [0,1]");
  }
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Tensor* latent = nullptr;
    if (auto* dense = dynamic_cast<nn::BinaryDense*>(&net.layer(i))) {
      latent = &dense->latent_weight();
    } else if (auto* conv = dynamic_cast<nn::BinaryConv2d*>(&net.layer(i))) {
      latent = &conv->latent_weight();
    }
    if (latent == nullptr) {
      continue;
    }
    for (std::size_t w = 0; w < latent->numel(); ++w) {
      if (u01(engine) < flip_rate) {
        (*latent)[w] = -(*latent)[w];
        ++flipped;
      }
    }
  }
  return flipped;
}

std::size_t perturb_weights(nn::Sequential& net, float rel_sigma, std::uint64_t seed,
                            bool include_norm_params) {
  if (rel_sigma < 0.0f) {
    throw std::invalid_argument("perturb_weights: rel_sigma must be non-negative");
  }
  if (rel_sigma == 0.0f) {
    return 0;
  }
  std::mt19937_64 engine(seed);
  std::normal_distribution<float> noise(0.0f, rel_sigma);
  std::size_t perturbed = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (!include_norm_params && !net.layer(i).state_tensors().empty()) {
      continue;  // normalization layers keep their digital registers intact
    }
    for (auto& param : net.layer(i).parameters()) {
      for (std::size_t w = 0; w < param.value->numel(); ++w) {
        (*param.value)[w] *= 1.0f + noise(engine);
        ++perturbed;
      }
    }
  }
  return perturbed;
}

TiledMlp::TiledMlp(nn::Sequential& net, const xbar::TileConfig& tile_config,
                   std::uint64_t seed)
    : engine_(seed ^ 0x7117), dropout_seed_(seed ^ 0xd407) {
  // Walk the canonical [BinaryDense -> BatchNorm -> Sign]* -> BinaryDense
  // layout, skipping dropout/readout decorations.
  std::size_t i = 0;
  while (i < net.size()) {
    auto* dense = dynamic_cast<nn::BinaryDense*>(&net.layer(i));
    if (dense == nullptr) {
      ++i;
      continue;
    }
    // Find the matching BatchNorm (if any) before the next BinaryDense.
    nn::BatchNorm* bn = nullptr;
    for (std::size_t j = i + 1; j < net.size(); ++j) {
      if (dynamic_cast<nn::BinaryDense*>(&net.layer(j)) != nullptr) {
        break;
      }
      if (auto* candidate = dynamic_cast<nn::BatchNorm*>(&net.layer(j))) {
        bn = candidate;
        break;
      }
    }

    FoldedLayer folded;
    const nn::Tensor weights = dense->binary_weight();
    const nn::Tensor scales = dense->scales();
    std::vector<float> w(weights.data().begin(), weights.data().end());
    std::vector<float> s(scales.data().begin(), scales.data().end());
    folded.tile = std::make_unique<xbar::DenseTile>(
        tile_config, dense->in_features(), dense->out_features(), w, s,
        seed + 131 * tiles_.size());
    folded.bias.assign(dense->bias().data().begin(), dense->bias().data().end());
    folded.hidden = bn != nullptr;
    if (bn != nullptr) {
      // Fold sign(gamma * (a - mean)/std + beta) into a threshold on the
      // pre-normalization activation a: theta = mean - beta * std / gamma.
      const std::size_t n = dense->out_features();
      folded.threshold.resize(n);
      folded.bn_sign.resize(n);
      for (std::size_t c = 0; c < n; ++c) {
        const float gamma = bn->gamma()[c];
        const float beta = bn->beta()[c];
        const float mean = bn->running_mean()[c];
        const float std_dev = std::sqrt(bn->running_var()[c] + 1e-5f);
        const float safe_gamma = std::abs(gamma) < 1e-6f
                                     ? (gamma < 0.0f ? -1e-6f : 1e-6f)
                                     : gamma;
        folded.threshold[c] = mean - beta * std_dev / safe_gamma;
        folded.bn_sign[c] = safe_gamma >= 0.0f ? 1.0f : -1.0f;
      }
    }
    tiles_.push_back(std::move(folded));
    ++i;
  }
  if (tiles_.empty()) {
    throw std::invalid_argument("TiledMlp: network contains no BinaryDense layers");
  }
}

TiledMlp::TiledMlp(const TiledMlp& other)
    : engine_(other.engine_), dropout_seed_(other.dropout_seed_) {
  tiles_.reserve(other.tiles_.size());
  for (const FoldedLayer& layer : other.tiles_) {
    FoldedLayer copy;
    copy.tile = layer.tile->clone();
    copy.bias = layer.bias;
    copy.threshold = layer.threshold;
    copy.bn_sign = layer.bn_sign;
    copy.hidden = layer.hidden;
    tiles_.push_back(std::move(copy));
  }
}

std::size_t TiledMlp::out_features() const {
  return tiles_.back().tile->out_features();
}

void TiledMlp::inject_defects(const device::DefectRates& rates, std::uint64_t seed) {
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    tiles_[t].tile->inject_defects(rates, seed + 977 * t);
  }
}

nn::Tensor TiledMlp::forward(const nn::Tensor& input, energy::EnergyLedger* ledger) {
  return forward_spindrop(input, 0.0, ledger);
}

nn::Tensor TiledMlp::forward_spindrop(const nn::Tensor& input, double p,
                                      energy::EnergyLedger* ledger) {
  if (input.rank() != 2) {
    throw std::invalid_argument("TiledMlp: expected (batch x features) input");
  }
  const std::size_t batch = input.dim(0);
  const std::size_t classes = tiles_.back().tile->out_features();
  nn::Tensor logits({batch, classes});

  std::uniform_real_distribution<double> u01(0.0, 1.0);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<float> x(input.dim(1));
    for (std::size_t f = 0; f < x.size(); ++f) {
      x[f] = input.at(b, f);
    }
    std::vector<std::uint8_t> enabled(x.size(), 1);
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      FoldedLayer& layer = tiles_[t];
      const std::vector<float> sums =
          layer.tile->forward_gated(x, enabled, ledger, engine_);
      const std::size_t n = layer.tile->out_features();
      std::vector<float> a(n);
      for (std::size_t c = 0; c < n; ++c) {
        a[c] = sums[c] + layer.bias[c];
      }
      if (layer.hidden) {
        std::vector<float> h(n);
        std::vector<std::uint8_t> next_enabled(n, 1);
        for (std::size_t c = 0; c < n; ++c) {
          h[c] = (a[c] - layer.threshold[c]) >= 0.0f ? layer.bn_sign[c]
                                                     : -layer.bn_sign[c];
          if (p > 0.0) {
            // One stochastic MTJ dropout decision per neuron per pass.
            if (ledger != nullptr) {
              ledger->add(energy::Component::kRngDropoutCycle, 1);
            }
            if (u01(engine_) < p) {
              next_enabled[c] = 0;
            }
          }
        }
        x = std::move(h);
        enabled = std::move(next_enabled);
      } else {
        for (std::size_t c = 0; c < n; ++c) {
          logits.at(b, c) = a[c];
        }
      }
    }
  }
  return logits;
}

TiledMcEvaluator::TiledMcEvaluator(nn::Sequential& net,
                                   const xbar::TileConfig& tile_config,
                                   std::uint64_t tile_seed,
                                   const TiledEvalOptions& options)
    : options_(options),
      proto_(net.clone()),
      tile_config_(tile_config),
      tile_seed_(tile_seed),
      max_replicas_(resolve_worker_count(options.threads)) {
  if (options.mc_samples == 0) {
    throw std::invalid_argument("TiledMcEvaluator: need at least one MC sample");
  }
  replicas_.reserve(max_replicas_);
  // The first replica is built eagerly so a non-canonical net layout fails
  // here, not at the first predict; the rest are built on demand
  // (rebuilding from the same (weights, config, seed) is the tile-level
  // clone — every replica draws identical variability and defects).
  replicas_.emplace_back(proto_, tile_config_, tile_seed_);
}

Prediction TiledMcEvaluator::predict(const nn::Tensor& inputs,
                                     energy::EnergyLedger* ledger) {
  if (inputs.rank() != 2) {
    throw std::invalid_argument("TiledMcEvaluator: expected (batch x features) input");
  }
  const std::size_t batch = inputs.dim(0);
  if (batch == 0) {
    throw std::invalid_argument("TiledMcEvaluator: empty batch");
  }
  const std::size_t features = inputs.dim(1);
  const std::size_t samples = options_.mc_samples;
  const std::size_t classes = replicas_.front().out_features();

  // Per-pass logits assembled across samples; distinct tasks write
  // distinct rows, so no synchronization is needed on the tensors.
  std::vector<nn::Tensor> member_logits(samples, nn::Tensor({batch, classes}));

  const auto run_chunk = [&](TiledMlp& replica, std::size_t begin, std::size_t end,
                             energy::EnergyLedger* chunk_ledger) {
    nn::Tensor row({1, features});
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t f = 0; f < features; ++f) {
        row.at(0, f) = inputs.at(i, f);
      }
      const std::uint64_t sample_seed = nn::mix_seed(options_.seed, i);
      for (std::size_t t = 0; t < samples; ++t) {
        replica.reseed(nn::mix_seed(sample_seed, t));
        const nn::Tensor logits =
            replica.forward_spindrop(row, options_.dropout_p, chunk_ledger);
        for (std::size_t c = 0; c < classes; ++c) {
          member_logits[t].at(i, c) = logits.at(0, c);
        }
      }
    }
  };

  const std::size_t chunks = std::min(max_replicas_, batch);
  while (replicas_.size() < chunks) {
    // Grow by cloning the eagerly-built first replica: identical
    // programmed state (reseed() runs before every pass, so the engine
    // state at clone time is irrelevant) at a fraction of a rebuild's
    // cost.
    replicas_.push_back(replicas_.front().clone());
  }
  std::vector<energy::EnergyLedger> chunk_ledgers;
  if (ledger != nullptr) {
    chunk_ledgers.assign(chunks, energy::EnergyLedger(ledger->adc_bits()));
  }
  ThreadPool::shared().run_chunked(
      batch, chunks,
      [this, &run_chunk, &chunk_ledgers, ledger](std::size_t chunk,
                                                 std::size_t begin, std::size_t end) {
        run_chunk(replicas_[chunk], begin, end,
                  ledger != nullptr ? &chunk_ledgers[chunk] : nullptr);
      });
  if (ledger != nullptr) {
    for (const auto& chunk_ledger : chunk_ledgers) {
      *ledger += chunk_ledger;
    }
  }

  // Reduce through McPredictor::reduce so the tiled path shares the exact
  // pass-order reduction (and uncertainty math) of the behavioural path.
  std::vector<nn::Tensor> member_probs;
  member_probs.reserve(samples);
  for (auto& logits : member_logits) {
    member_probs.push_back(nn::softmax_rows(logits));
  }
  return McPredictor(samples).reduce(std::move(member_probs));
}

}  // namespace neuspin::core
