#include "core/hw_model.h"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/fidelity.h"
#include "core/spindrop.h"
#include "core/thread_pool.h"
#include "obs/trace.h"

namespace neuspin::core {

AnalogReadout::AnalogReadout(const HwNoiseConfig& config)
    : config_(config), engine_(config.seed) {
  if (config.noise_fraction < 0.0f) {
    throw std::invalid_argument("AnalogReadout: noise_fraction must be non-negative");
  }
  if (config.quant_levels == 1) {
    throw std::invalid_argument("AnalogReadout: quant_levels must be 0 or >= 2");
  }
}

namespace {

/// Quantize-and-perturb one contiguous value range [begin, end) of `out`
/// against a full scale auto-ranged over that same range — the shared body
/// of the batch-shared and per-row readout paths.
void readout_range(nn::Tensor& out, std::size_t begin, std::size_t end,
                   const HwNoiseConfig& config, std::mt19937_64& engine) {
  float full_scale = 0.0f;
  for (std::size_t i = begin; i < end; ++i) {
    full_scale = std::max(full_scale, std::abs(out[i]));
  }
  if (full_scale == 0.0f) {
    return;
  }
  const float sigma = config.noise_fraction * full_scale;
  const float lsb = config.quant_levels >= 2
                        ? 2.0f * full_scale / static_cast<float>(config.quant_levels)
                        : 0.0f;
  std::normal_distribution<float> noise(0.0f, sigma);
  for (std::size_t i = begin; i < end; ++i) {
    float v = out[i];
    if (sigma > 0.0f) {
      v += noise(engine);
    }
    if (lsb > 0.0f) {
      v = std::round(v / lsb) * lsb;
    }
    out[i] = v;
  }
}

}  // namespace

nn::Tensor AnalogReadout::forward(const nn::Tensor& input, bool training) {
  if (training || !config_.enabled) {
    return input;
  }
  nn::Tensor out = input;
  if (!row_seeds_.empty()) {
    // Fused MC: every row is read out as if alone — per-row auto-ranged
    // full scale, per-row noise stream.
    const std::size_t batch = input.dim(0);
    if (batch != row_seeds_.size()) {
      throw std::invalid_argument("AnalogReadout: row-seed count does not match batch");
    }
    const std::size_t per_row = input.numel() / batch;
    for (std::size_t r = 0; r < batch; ++r) {
      engine_.seed(row_seeds_[r]);
      readout_range(out, r * per_row, (r + 1) * per_row, config_, engine_);
    }
    return out;
  }
  // Auto-ranged full scale: the largest magnitude in this batch, matching
  // a SAR ADC whose reference tracks the layer's dynamic range.
  readout_range(out, 0, out.numel(), config_, engine_);
  return out;
}

nn::Tensor AnalogReadout::backward(const nn::Tensor& grad_output) {
  return grad_output;  // straight-through
}

std::size_t inject_weight_defects(nn::Sequential& net, float flip_rate,
                                  std::uint64_t seed) {
  if (flip_rate < 0.0f || flip_rate > 1.0f) {
    throw std::invalid_argument("inject_weight_defects: flip_rate must lie in [0,1]");
  }
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Tensor* latent = nullptr;
    if (auto* dense = dynamic_cast<nn::BinaryDense*>(&net.layer(i))) {
      latent = &dense->latent_weight();
    } else if (auto* conv = dynamic_cast<nn::BinaryConv2d*>(&net.layer(i))) {
      latent = &conv->latent_weight();
    }
    if (latent == nullptr) {
      continue;
    }
    for (std::size_t w = 0; w < latent->numel(); ++w) {
      if (u01(engine) < flip_rate) {
        (*latent)[w] = -(*latent)[w];
        ++flipped;
      }
    }
  }
  return flipped;
}

std::size_t perturb_weights(nn::Sequential& net, float rel_sigma, std::uint64_t seed,
                            bool include_norm_params) {
  if (rel_sigma < 0.0f) {
    throw std::invalid_argument("perturb_weights: rel_sigma must be non-negative");
  }
  if (rel_sigma == 0.0f) {
    return 0;
  }
  std::mt19937_64 engine(seed);
  std::normal_distribution<float> noise(0.0f, rel_sigma);
  std::size_t perturbed = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (!include_norm_params && !net.layer(i).state_tensors().empty()) {
      continue;  // normalization layers keep their digital registers intact
    }
    for (auto& param : net.layer(i).parameters()) {
      for (std::size_t w = 0; w < param.value->numel(); ++w) {
        (*param.value)[w] *= 1.0f + noise(engine);
        ++perturbed;
      }
    }
  }
  return perturbed;
}

namespace {

/// Fold sign(gamma * (a - mean)/std + beta) into a threshold on the
/// pre-normalization activation a: theta = mean - beta * std / gamma. The
/// shared fold of dense (per neuron) and conv (per channel) stages.
void fold_batch_norm(nn::BatchNorm& bn, std::size_t n, std::vector<float>& threshold,
                     std::vector<float>& bn_sign) {
  threshold.resize(n);
  bn_sign.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    const float gamma = bn.gamma()[c];
    const float beta = bn.beta()[c];
    const float mean = bn.running_mean()[c];
    const float std_dev = std::sqrt(bn.running_var()[c] + 1e-5f);
    const float safe_gamma = std::abs(gamma) < 1e-6f
                                 ? (gamma < 0.0f ? -1e-6f : 1e-6f)
                                 : gamma;
    threshold[c] = mean - beta * std_dev / safe_gamma;
    bn_sign[c] = safe_gamma >= 0.0f ? 1.0f : -1.0f;
  }
}

[[nodiscard]] bool is_binary_layer(nn::Layer& layer) {
  return dynamic_cast<nn::BinaryDense*>(&layer) != nullptr ||
         dynamic_cast<nn::BinaryConv2d*>(&layer) != nullptr;
}

}  // namespace

TiledMlp::TiledMlp(nn::Sequential& net, const xbar::TileConfig& tile_config,
                   std::uint64_t seed)
    : engine_(seed ^ 0x7117), dropout_seed_(seed ^ 0xd407) {
  // Walk the canonical
  //   [BinaryConv2d -> BN -> Sign -> (MaxPool2d)]*
  //   [BinaryDense -> BN -> Sign]* -> BinaryDense
  // layout, skipping dropout/readout/flatten decorations. Each binary
  // layer claims the decorations up to the next binary layer.
  std::size_t i = 0;
  std::size_t tile_index = 0;  // conv + dense, drives the per-tile seed
  const auto next_binary = [&net](std::size_t from) {
    while (from < net.size() && !is_binary_layer(net.layer(from))) {
      ++from;
    }
    return from;
  };
  while (i < net.size()) {
    if (auto* conv = dynamic_cast<nn::BinaryConv2d*>(&net.layer(i))) {
      const std::size_t stop = next_binary(i + 1);
      nn::BatchNorm* bn = nullptr;
      bool pool = false;
      for (std::size_t j = i + 1; j < stop; ++j) {
        if (bn == nullptr) {
          bn = dynamic_cast<nn::BatchNorm*>(&net.layer(j));
        }
        if (dynamic_cast<nn::MaxPool2d*>(&net.layer(j)) != nullptr) {
          pool = true;
        }
      }
      if (bn == nullptr) {
        throw std::invalid_argument(
            "TiledMlp: conv stage without a BatchNorm to fold is not supported");
      }
      ConvStage stage;
      const nn::Tensor weights = conv->binary_weight();
      const nn::Tensor scales = conv->channel_scales();
      std::vector<float> w(weights.data().begin(), weights.data().end());
      std::vector<float> s(scales.data().begin(), scales.data().end());
      stage.tile = std::make_unique<xbar::ConvTile>(
          tile_config, conv->in_channels(), conv->out_channels(), conv->kernel(),
          conv->padding(), w, s, seed + 131 * tile_index);
      stage.bias.assign(conv->bias().data().begin(), conv->bias().data().end());
      fold_batch_norm(*bn, conv->out_channels(), stage.threshold, stage.bn_sign);
      stage.pool = pool;
      conv_stages_.push_back(std::move(stage));
      ++tile_index;
      i = stop;
      continue;
    }
    auto* dense = dynamic_cast<nn::BinaryDense*>(&net.layer(i));
    if (dense == nullptr) {
      ++i;
      continue;
    }
    const std::size_t stop = next_binary(i + 1);
    nn::BatchNorm* bn = nullptr;
    for (std::size_t j = i + 1; j < stop && bn == nullptr; ++j) {
      bn = dynamic_cast<nn::BatchNorm*>(&net.layer(j));
    }

    FoldedLayer folded;
    const nn::Tensor weights = dense->binary_weight();
    const nn::Tensor scales = dense->scales();
    std::vector<float> w(weights.data().begin(), weights.data().end());
    std::vector<float> s(scales.data().begin(), scales.data().end());
    folded.tile = std::make_unique<xbar::DenseTile>(
        tile_config, dense->in_features(), dense->out_features(), w, s,
        seed + 131 * tile_index);
    folded.bias.assign(dense->bias().data().begin(), dense->bias().data().end());
    folded.hidden = bn != nullptr;
    if (bn != nullptr) {
      fold_batch_norm(*bn, dense->out_features(), folded.threshold, folded.bn_sign);
    }
    tiles_.push_back(std::move(folded));
    ++tile_index;
    i = stop;
  }
  if (tiles_.empty()) {
    throw std::invalid_argument("TiledMlp: network contains no BinaryDense layers");
  }
}

TiledMlp::TiledMlp(const TiledMlp& other)
    : engine_(other.engine_), dropout_seed_(other.dropout_seed_) {
  conv_stages_.reserve(other.conv_stages_.size());
  for (const ConvStage& stage : other.conv_stages_) {
    ConvStage copy;
    copy.tile = stage.tile->clone();
    copy.bias = stage.bias;
    copy.threshold = stage.threshold;
    copy.bn_sign = stage.bn_sign;
    copy.pool = stage.pool;
    conv_stages_.push_back(std::move(copy));
  }
  tiles_.reserve(other.tiles_.size());
  for (const FoldedLayer& layer : other.tiles_) {
    FoldedLayer copy;
    copy.tile = layer.tile->clone();
    copy.bias = layer.bias;
    copy.threshold = layer.threshold;
    copy.bn_sign = layer.bn_sign;
    copy.hidden = layer.hidden;
    tiles_.push_back(std::move(copy));
  }
}

xbar::DeltaStats TiledMlp::delta_stats() const {
  xbar::DeltaStats stats;
  for (const ConvStage& stage : conv_stages_) {
    stats += stage.tile->delta_stats();
  }
  for (const FoldedLayer& layer : tiles_) {
    stats += layer.tile->delta_stats();
  }
  return stats;
}

std::size_t TiledMlp::out_features() const {
  return tiles_.back().tile->out_features();
}

void TiledMlp::inject_defects(const device::DefectRates& rates, std::uint64_t seed) {
  for (std::size_t s = 0; s < conv_stages_.size(); ++s) {
    conv_stages_[s].tile->inject_defects(rates, seed + 977 * (tiles_.size() + s));
  }
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    tiles_[t].tile->inject_defects(rates, seed + 977 * t);
  }
}

void TiledMlp::inject_defects_at(std::size_t tile_index, const device::DefectRates& rates,
                                 std::uint64_t seed) {
  if (tile_index >= layer_count()) {
    throw std::out_of_range("TiledMlp::inject_defects_at: tile " +
                            std::to_string(tile_index) + " of " +
                            std::to_string(layer_count()));
  }
  if (tile_index < conv_stages_.size()) {
    conv_stages_[tile_index].tile->inject_defects(
        rates, seed + 977 * (tiles_.size() + tile_index));
  } else {
    const std::size_t t = tile_index - conv_stages_.size();
    tiles_[t].tile->inject_defects(rates, seed + 977 * t);
  }
}

void TiledMlp::apply_drift(double magnitude, std::uint64_t seed) {
  for (std::size_t s = 0; s < conv_stages_.size(); ++s) {
    conv_stages_[s].tile->tile().apply_drift(magnitude,
                                             seed + 977 * (tiles_.size() + s));
  }
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    tiles_[t].tile->apply_drift(magnitude, seed + 977 * t);
  }
}

xbar::HealthReport TiledMlp::probe_health(const xbar::ProbeConfig& config) const {
  xbar::HealthReport report;
  for (const ConvStage& stage : conv_stages_) {
    report.fold(xbar::probe_tile(stage.tile->tile(), config));
  }
  for (const FoldedLayer& layer : tiles_) {
    report.fold(xbar::probe_tile(*layer.tile, config));
  }
  return report;
}

xbar::HealSummary TiledMlp::heal(const xbar::ProbeConfig& config) {
  xbar::HealSummary summary;
  for (ConvStage& stage : conv_stages_) {
    summary.fold(xbar::heal_tile(stage.tile->tile(), config));
  }
  for (FoldedLayer& layer : tiles_) {
    summary.fold(xbar::heal_tile(*layer.tile, config));
  }
  return summary;
}

std::size_t TiledMlp::recalibrate() {
  std::size_t moved = 0;
  for (ConvStage& stage : conv_stages_) {
    moved += stage.tile->tile().recalibrate();
  }
  for (FoldedLayer& layer : tiles_) {
    moved += layer.tile->recalibrate();
  }
  return moved;
}

void TiledMlp::run_conv_stages(std::vector<float>& x,
                               std::vector<std::uint8_t>& enabled, double p,
                               energy::EnergyLedger* ledger) {
  const std::size_t channels = conv_stages_.front().tile->in_channels();
  if (channels == 0 || x.size() % channels != 0) {
    throw std::invalid_argument("TiledMlp: input features do not match conv channels");
  }
  const std::size_t pixels = x.size() / channels;
  const auto side =
      static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(pixels))));
  if (side * side != pixels) {
    throw std::invalid_argument(
        "TiledMlp: flat conv input must reshape to square feature maps, got " +
        std::to_string(x.size()) + " features over " + std::to_string(channels) +
        " channels");
  }
  nn::Tensor fm(nn::Shape{1, channels, side, side}, x);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::vector<std::uint8_t> ch_enabled(channels, 1);
  std::size_t stage_idx = 0;
  for (ConvStage& stage : conv_stages_) {
    // Per-tile evaluation span with the event engine's rows-skipped census
    // for this one call (delta of the tile's cumulative DeltaStats).
    obs::ScopedSpan tile_span(tracer_, "tile:conv" + std::to_string(stage_idx),
                              "xbar");
    const xbar::DeltaStats tile_before =
        tile_span.active() ? stage.tile->delta_stats() : xbar::DeltaStats{};
    nn::Tensor a = stage.tile->forward_gated(fm, ch_enabled, ledger, engine_);
    if (tile_span.active()) {
      const xbar::DeltaStats after = stage.tile->delta_stats();
      tile_span.arg("rows_total",
                    static_cast<double>(after.rows_total - tile_before.rows_total));
      tile_span.arg("rows_dirty",
                    static_cast<double>(after.rows_dirty - tile_before.rows_dirty));
      tile_span.arg("rows_skipped",
                    static_cast<double>((after.rows_total - tile_before.rows_total) -
                                        (after.rows_dirty - tile_before.rows_dirty)));
      tile_span.end();
    }
    ++stage_idx;
    const std::size_t oc = a.dim(1);
    const std::size_t oh = a.dim(2);
    const std::size_t ow = a.dim(3);
    // Bias, folded batch-norm threshold and sign activation, per channel.
    for (std::size_t c = 0; c < oc; ++c) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          const float v = a.at4(0, c, y, xx) + stage.bias[c];
          a.at4(0, c, y, xx) = (v - stage.threshold[c]) >= 0.0f ? stage.bn_sign[c]
                                                                : -stage.bn_sign[c];
        }
      }
    }
    if (stage.pool) {
      // Digital 2x2 max pooling of the ±1 activations at the periphery.
      const std::size_t ph = oh / 2;
      const std::size_t pw = ow / 2;
      nn::Tensor pooled({1, oc, ph, pw});
      for (std::size_t c = 0; c < oc; ++c) {
        for (std::size_t y = 0; y < ph; ++y) {
          for (std::size_t xx = 0; xx < pw; ++xx) {
            float best = a.at4(0, c, 2 * y, 2 * xx);
            for (std::size_t dy = 0; dy < 2; ++dy) {
              for (std::size_t dx = 0; dx < 2; ++dx) {
                best = std::max(best, a.at4(0, c, 2 * y + dy, 2 * xx + dx));
              }
            }
            pooled.at4(0, c, y, xx) = best;
          }
        }
      }
      a = std::move(pooled);
    }
    // Spatial-SpinDrop: one stochastic MTJ module per feature map; a
    // dropped map gates its whole row group in the next tile.
    ch_enabled.assign(oc, 1);
    if (p > 0.0) {
      for (std::size_t c = 0; c < oc; ++c) {
        if (ledger != nullptr) {
          ledger->add(energy::Component::kRngDropoutCycle, 1);
        }
        if (u01(engine_) < p) {
          ch_enabled[c] = 0;
        }
      }
    }
    fm = std::move(a);
  }
  // Flatten NCHW row-major (the Flatten layer's order); dropped feature
  // maps gate their flattened rows into the first dense tile.
  const std::size_t oc = fm.dim(1);
  const std::size_t per_channel = fm.dim(2) * fm.dim(3);
  x.assign(fm.data().begin(), fm.data().end());
  enabled.assign(x.size(), 1);
  for (std::size_t c = 0; c < oc; ++c) {
    if (!ch_enabled[c]) {
      std::fill(enabled.begin() + static_cast<std::ptrdiff_t>(c * per_channel),
                enabled.begin() + static_cast<std::ptrdiff_t>((c + 1) * per_channel),
                static_cast<std::uint8_t>(0));
    }
  }
}

nn::Tensor TiledMlp::forward(const nn::Tensor& input, energy::EnergyLedger* ledger) {
  return forward_spindrop(input, 0.0, ledger);
}

nn::Tensor TiledMlp::forward_spindrop(const nn::Tensor& input, double p,
                                      energy::EnergyLedger* ledger) {
  if (input.rank() != 2) {
    throw std::invalid_argument("TiledMlp: expected (batch x features) input");
  }
  const std::size_t batch = input.dim(0);
  const std::size_t classes = tiles_.back().tile->out_features();
  nn::Tensor logits({batch, classes});

  std::uniform_real_distribution<double> u01(0.0, 1.0);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<float> x(input.dim(1));
    for (std::size_t f = 0; f < x.size(); ++f) {
      x[f] = input.at(b, f);
    }
    std::vector<std::uint8_t> enabled(x.size(), 1);
    if (!conv_stages_.empty()) {
      run_conv_stages(x, enabled, p, ledger);
    }
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      FoldedLayer& layer = tiles_[t];
      obs::ScopedSpan tile_span(tracer_, "tile:dense" + std::to_string(t), "xbar");
      const xbar::DeltaStats tile_before =
          tile_span.active() ? layer.tile->delta_stats() : xbar::DeltaStats{};
      const std::vector<float> sums =
          layer.tile->forward_gated(x, enabled, ledger, engine_);
      if (tile_span.active()) {
        const xbar::DeltaStats after = layer.tile->delta_stats();
        tile_span.arg("rows_total",
                      static_cast<double>(after.rows_total - tile_before.rows_total));
        tile_span.arg("rows_dirty",
                      static_cast<double>(after.rows_dirty - tile_before.rows_dirty));
        tile_span.arg(
            "rows_skipped",
            static_cast<double>((after.rows_total - tile_before.rows_total) -
                                (after.rows_dirty - tile_before.rows_dirty)));
        tile_span.end();
      }
      const std::size_t n = layer.tile->out_features();
      std::vector<float> a(n);
      for (std::size_t c = 0; c < n; ++c) {
        a[c] = sums[c] + layer.bias[c];
      }
      if (layer.hidden) {
        std::vector<float> h(n);
        std::vector<std::uint8_t> next_enabled(n, 1);
        for (std::size_t c = 0; c < n; ++c) {
          h[c] = (a[c] - layer.threshold[c]) >= 0.0f ? layer.bn_sign[c]
                                                     : -layer.bn_sign[c];
          if (p > 0.0) {
            // One stochastic MTJ dropout decision per neuron per pass.
            if (ledger != nullptr) {
              ledger->add(energy::Component::kRngDropoutCycle, 1);
            }
            if (u01(engine_) < p) {
              next_enabled[c] = 0;
            }
          }
        }
        x = std::move(h);
        enabled = std::move(next_enabled);
      } else {
        for (std::size_t c = 0; c < n; ++c) {
          logits.at(b, c) = a[c];
        }
      }
    }
  }
  return logits;
}

TiledMcEvaluator::TiledMcEvaluator(nn::Sequential& net,
                                   const xbar::TileConfig& tile_config,
                                   std::uint64_t tile_seed,
                                   const TiledEvalOptions& options)
    : options_(options), max_replicas_(resolve_worker_count(options.threads)) {
  if (options.mc_samples == 0) {
    throw std::invalid_argument("TiledMcEvaluator: need at least one MC sample");
  }
  TiledBackendConfig backend;
  backend.tile = tile_config;
  backend.tile_seed = tile_seed;
  backend.mc_samples = options.mc_samples;
  backend.spindrop_p = options.dropout_p;
  // Chunk-level ledgers, no per-row attribution: forward() then threads a
  // caller ledger straight through every pass, which keeps the event
  // accumulation order of the pre-backend implementation.
  backend.measure_energy = false;
  replicas_.reserve(max_replicas_);
  // The first replica is built eagerly so a non-canonical net layout fails
  // here, not at the first predict; the rest are built on demand
  // (FidelityBackend::clone() preserves the programmed state — every
  // replica carries identical variability and defect draws).
  replicas_.push_back(std::make_unique<TiledBackend>(net, backend));
}

TiledMcEvaluator::~TiledMcEvaluator() = default;
TiledMcEvaluator::TiledMcEvaluator(TiledMcEvaluator&&) noexcept = default;
TiledMcEvaluator& TiledMcEvaluator::operator=(TiledMcEvaluator&&) noexcept = default;

xbar::DeltaStats TiledMcEvaluator::delta_stats() const {
  xbar::DeltaStats stats;
  for (const auto& replica : replicas_) {
    stats += replica->delta_stats();
  }
  return stats;
}

Prediction TiledMcEvaluator::predict(const nn::Tensor& inputs,
                                     energy::EnergyLedger* ledger) {
  if (inputs.rank() != 2) {
    throw std::invalid_argument("TiledMcEvaluator: expected (batch x features) input");
  }
  const std::size_t batch = inputs.dim(0);
  if (batch == 0) {
    throw std::invalid_argument("TiledMcEvaluator: empty batch");
  }
  const std::size_t features = inputs.dim(1);
  const std::size_t samples = options_.mc_samples;

  const std::size_t chunks = std::min(max_replicas_, batch);
  while (replicas_.size() < chunks) {
    // Grow by cloning the eagerly-built first replica: identical
    // programmed state (the backend reseeds before every pass, so the
    // engine state at clone time is irrelevant) at a fraction of a
    // rebuild's cost.
    replicas_.push_back(replicas_.front()->clone());
  }
  std::vector<energy::EnergyLedger> chunk_ledgers;
  if (ledger != nullptr) {
    chunk_ledgers.assign(chunks, energy::EnergyLedger(ledger->adc_bits()));
  }
  // Contiguous sample chunks, one backend replica each; chunk c answers
  // rows [begin, end) under their in-call request seeds.
  std::vector<std::vector<Prediction>> chunk_predictions(chunks);
  std::vector<std::size_t> chunk_begin(chunks, 0);
  ThreadPool::shared().run_chunked(
      batch, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        if (begin == end) {
          return;
        }
        const std::size_t span_rows = end - begin;
        nn::Tensor sub({span_rows, features});
        std::copy(inputs.data().begin() +
                      static_cast<std::ptrdiff_t>(begin * features),
                  inputs.data().begin() + static_cast<std::ptrdiff_t>(end * features),
                  sub.data().begin());
        std::vector<std::uint64_t> seeds(span_rows);
        for (std::size_t i = 0; i < span_rows; ++i) {
          seeds[i] = nn::mix_seed(options_.seed, begin + i);
        }
        BackendBatch answered = replicas_[chunk]->forward(
            sub, seeds, ledger != nullptr ? &chunk_ledgers[chunk] : nullptr);
        chunk_begin[chunk] = begin;
        chunk_predictions[chunk] = std::move(answered.predictions);
      });
  if (ledger != nullptr) {
    for (const auto& chunk_ledger : chunk_ledgers) {
      *ledger += chunk_ledger;
    }
  }

  // Reassemble the per-row member probabilities into batch tensors and
  // reduce once through McPredictor::reduce: every reduction op (pass-order
  // mean, entropy, mutual information) is row-local and element-wise, so
  // this produces bit for bit both the per-row reductions the backend
  // already computed and the whole-batch reduction of the pre-backend
  // implementation.
  const std::size_t classes =
      chunk_predictions.front().front().member_probs.front().dim(1);
  std::vector<nn::Tensor> member_probs(samples, nn::Tensor({batch, classes}));
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t r = 0; r < chunk_predictions[c].size(); ++r) {
      const Prediction& row = chunk_predictions[c][r];
      const std::size_t i = chunk_begin[c] + r;
      for (std::size_t t = 0; t < samples; ++t) {
        std::copy(row.member_probs[t].data().begin(),
                  row.member_probs[t].data().end(),
                  member_probs[t].data().begin() +
                      static_cast<std::ptrdiff_t>(i * classes));
      }
    }
  }
  return McPredictor(samples).reduce(std::move(member_probs));
}

}  // namespace neuspin::core
