#include "core/method.h"

namespace neuspin::core {

std::string method_name(Method m) {
  switch (m) {
    case Method::kDeterministic:
      return "Deterministic-BNN";
    case Method::kSpinDrop:
      return "SpinDrop";
    case Method::kSpatialSpinDrop:
      return "Spatial-SpinDrop";
    case Method::kSpinScaleDrop:
      return "SpinScaleDropout";
    case Method::kAffineDropout:
      return "InvNorm-AffineDropout";
    case Method::kSubsetVi:
      return "Bayesian-SubSet";
    case Method::kSpinBayes:
      return "SpinBayes";
    case Method::kTraditionalVi:
      return "Traditional-VI";
  }
  return "unknown";
}

const std::vector<Method>& table1_methods() {
  static const std::vector<Method> kRows = {
      Method::kSpinDrop, Method::kSpatialSpinDrop, Method::kSpinScaleDrop,
      Method::kSubsetVi, Method::kSpinBayes};
  return kRows;
}

}  // namespace neuspin::core
