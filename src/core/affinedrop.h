// Inverted Normalization with Affine Dropout (paper §III-A.4).
//
// Traditional batch norm normalizes first and then applies an optional
// affine transform. The inverted normalization layer flips the order: a
// learnable affine transform (weight w, bias b, treated like ordinary
// parameters) is applied FIRST, and the result is then normalized without
// any further affine stage — keeping the learning process stable under
// the stochastic transformations below.
//
// Affine Dropout adds stochasticity with two *scalar* Bernoulli masks per
// layer (vector-wise dropout, chosen over element-wise to minimize RNG
// count): when the weight mask fires, w is replaced by ones; when the bias
// mask fires, b is replaced by zeros. Multiple forward passes with fresh
// masks give the Monte-Carlo posterior approximation, and the stochastic
// affine stage acts as the self-healing mechanism under device faults.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <random>

#include "nn/layers.h"

namespace neuspin::core {

/// Configuration of one inverted-normalization / affine-dropout layer.
struct AffineDropConfig {
  std::size_t features = 0;   ///< channel count (axis 1)
  double dropout_p = 0.15;    ///< probability of each scalar mask firing
  float momentum = 0.1f;      ///< running-stat update rate
  float eps = 1e-5f;
  std::uint64_t seed = 1;

  void validate() const;
};

/// y = normalize(w (.) x + b); the affine part is stochastic.
class InvertedNormLayer : public nn::Layer {
 public:
  explicit InvertedNormLayer(const AffineDropConfig& config);

  nn::Tensor forward(const nn::Tensor& input, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::ParamRef> parameters() override;
  std::vector<nn::Tensor*> state_tensors() override {
    return {&running_mean_, &running_var_};
  }
  [[nodiscard]] std::string name() const override { return "InvertedNorm"; }
  [[nodiscard]] std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<InvertedNormLayer>(*this);
  }
  void reseed(std::uint64_t seed) override {
    engine_.seed(seed);
    row_seeds_.clear();
  }
  /// Row mode (fused MC): row r draws its two scalar affine-dropout masks
  /// from a stream seeded by row_seeds[r] and is normalized against the
  /// running statistics — bit for bit the batch-of-one evaluation pass
  /// (where self-healing is inactive, a single value carrying no usable
  /// batch statistics).
  void reseed_rows(std::span<const std::uint64_t> row_seeds) override {
    row_seeds_.assign(row_seeds.begin(), row_seeds.end());
  }
  void save_rng_state(std::ostream& out) const override { out << engine_ << '\n'; }
  void load_rng_state(std::istream& in) override { in >> engine_; }

  void enable_mc(bool on) { mc_mode_ = on; }
  /// Disable the stochastic masks entirely (ablation: inverted norm only).
  void enable_dropout(bool on) { dropout_enabled_ = on; }
  /// Self-healing mode: normalize evaluation batches with their own
  /// statistics instead of the training-time running statistics. When
  /// device faults shift the activation distribution, re-normalizing
  /// against the *observed* statistics re-centers the layer — the
  /// mechanism behind the paper's "self-healing BayNN". Requires
  /// evaluation batches of more than one sample.
  void enable_self_healing(bool on) { self_healing_ = on; }

  [[nodiscard]] nn::Tensor& weight() { return weight_; }
  [[nodiscard]] nn::Tensor& bias() { return bias_; }
  [[nodiscard]] bool last_weight_dropped() const { return weight_dropped_; }
  [[nodiscard]] bool last_bias_dropped() const { return bias_dropped_; }

 private:
  void resolve_geometry(const nn::Shape& shape, std::size_t& outer,
                        std::size_t& inner) const;

  AffineDropConfig config_;
  nn::Tensor weight_;  ///< per-feature affine weight, init 1
  nn::Tensor bias_;    ///< per-feature affine bias, init 0
  nn::Tensor weight_grad_;
  nn::Tensor bias_grad_;
  nn::Tensor running_mean_;
  nn::Tensor running_var_;
  std::mt19937_64 engine_;
  bool mc_mode_ = false;
  bool dropout_enabled_ = true;
  bool self_healing_ = false;
  std::vector<std::uint64_t> row_seeds_;  ///< non-empty = row mode
  bool weight_dropped_ = false;
  bool bias_dropped_ = false;
  // Caches for backward.
  nn::Tensor input_cache_;
  nn::Tensor affine_cache_;      ///< w x + b (post-dropout affine output)
  nn::Tensor normalized_cache_;
  nn::Tensor batch_std_;
  nn::Shape input_shape_;
};

}  // namespace neuspin::core
