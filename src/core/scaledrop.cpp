#include "core/scaledrop.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuspin::core {

double adaptive_scale_dropout_p(std::size_t layer_param_count, double p_min,
                                double p_max) {
  if (layer_param_count == 0) {
    throw std::invalid_argument("adaptive_scale_dropout_p: empty layer");
  }
  if (p_min <= 0.0 || p_max >= 1.0 || p_min > p_max) {
    throw std::invalid_argument("adaptive_scale_dropout_p: need 0 < p_min <= p_max < 1");
  }
  const double lo = std::log10(1e3);
  const double hi = std::log10(1e6);
  const double x = std::clamp(std::log10(static_cast<double>(layer_param_count)), lo, hi);
  return p_min + (p_max - p_min) * (x - lo) / (hi - lo);
}

void ScaleDropConfig::validate() const {
  if (channels == 0) {
    throw std::invalid_argument("ScaleDropConfig: channels must be positive");
  }
  if (dropout_p < 0.0 || dropout_p >= 1.0) {
    throw std::invalid_argument("ScaleDropConfig: dropout_p must lie in [0,1)");
  }
  if (hw_p_sigma < 0.0) {
    throw std::invalid_argument("ScaleDropConfig: hw_p_sigma must be non-negative");
  }
}

ScaleDropLayer::ScaleDropLayer(const ScaleDropConfig& config,
                               energy::EnergyLedger* ledger)
    : config_(config),
      realized_p_(config.dropout_p),
      scale_({config.channels}, 1.0f),
      scale_grad_({config.channels}),
      engine_(config.seed),
      ledger_(ledger) {
  config_.validate();
  if (config_.hw_p_sigma > 0.0) {
    // The physical module's probability is Gaussian around the target
    // (manufacturing + in-field variation), clamped to a valid range.
    std::normal_distribution<double> dist(config_.dropout_p, config_.hw_p_sigma);
    realized_p_ = std::clamp(dist(engine_), 0.001, 0.999);
  }
}

void ScaleDropLayer::check_shape(const nn::Shape& shape) const {
  if (shape.size() < 2 || shape[1] != config_.channels) {
    throw std::invalid_argument("ScaleDropLayer: expected channel axis of size " +
                                std::to_string(config_.channels));
  }
}

nn::Tensor ScaleDropLayer::forward(const nn::Tensor& input, bool training) {
  check_shape(input.shape());
  input_cache_ = input;
  const bool stochastic = training || mc_mode_;
  last_dropped_ = false;
  // Row mode is the fused-MC inference replay; training keeps the paper's
  // one-decision-per-pass procedure (per (step, shard) under the sharded
  // trainer) so backward sees the layer-wide decision it caches.
  if (stochastic && !training && !row_seeds_.empty()) {
    // Fused MC: each row replays the batch-of-one decision under its own
    // stream — drop to the neutral scale, or apply the learned vector.
    const std::size_t batch = input.dim(0);
    if (batch != row_seeds_.size()) {
      throw std::invalid_argument("ScaleDropLayer: row-seed count does not match batch");
    }
    const std::size_t channels = config_.channels;
    const std::size_t inner = input.numel() / batch / channels;
    nn::Tensor out = input;
    for (std::size_t r = 0; r < batch; ++r) {
      engine_.seed(row_seeds_[r]);
      if (ledger_ != nullptr) {
        ledger_->add(energy::Component::kRngDropoutCycle, 1);
      }
      std::bernoulli_distribution drop(realized_p_);
      if (drop(engine_)) {
        continue;  // scale modulated to the neutral vector for this row
      }
      if (ledger_ != nullptr) {
        ledger_->add(energy::Component::kSramReadWord, channels);
        ledger_->add(energy::Component::kDigitalMult, channels);
      }
      for (std::size_t c = 0; c < channels; ++c) {
        const float s = scale_[c];
        for (std::size_t i = 0; i < inner; ++i) {
          out[(r * channels + c) * inner + i] *= s;
        }
      }
    }
    return out;
  }
  if (stochastic) {
    if (ledger_ != nullptr) {
      ledger_->add(energy::Component::kRngDropoutCycle, 1);
    }
    std::bernoulli_distribution drop(realized_p_);
    last_dropped_ = drop(engine_);
  }
  nn::Tensor out = input;
  if (last_dropped_) {
    return out;  // scale modulated to the neutral vector: out = x * 1
  }
  const std::size_t batch = input.dim(0);
  const std::size_t channels = config_.channels;
  const std::size_t inner = input.numel() / batch / channels;
  if (ledger_ != nullptr) {
    // Scale vector fetched from the neighbouring SRAM once per pass.
    ledger_->add(energy::Component::kSramReadWord, channels);
    ledger_->add(energy::Component::kDigitalMult, channels);
  }
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float s = scale_[c];
      for (std::size_t i = 0; i < inner; ++i) {
        out[(b * channels + c) * inner + i] *= s;
      }
    }
  }
  return out;
}

nn::Tensor ScaleDropLayer::backward(const nn::Tensor& grad_output) {
  nn::Tensor grad = grad_output;
  if (last_dropped_) {
    return grad;  // identity pass-through; no scale gradient this step
  }
  const std::size_t batch = grad.dim(0);
  const std::size_t channels = config_.channels;
  const std::size_t inner = grad.numel() / batch / channels;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < inner; ++i) {
        const std::size_t idx = (b * channels + c) * inner + i;
        acc += grad_output[idx] * input_cache_[idx];
        grad[idx] *= scale_[c];
      }
      scale_grad_[c] += acc;
    }
  }
  return grad;
}

std::vector<nn::ParamRef> ScaleDropLayer::parameters() {
  return {{&scale_, &scale_grad_}};
}

}  // namespace neuspin::core
