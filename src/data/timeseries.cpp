#include "data/timeseries.h"

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace neuspin::data {

SeriesDataset make_series(const SeriesConfig& config, std::uint64_t seed) {
  if (config.length <= config.window + 1) {
    throw std::invalid_argument("make_series: length must exceed window + 1");
  }
  std::mt19937_64 engine(seed);
  std::normal_distribution<float> noise(0.0f, config.noise);

  std::vector<float> series(config.length);
  for (std::size_t t = 0; t < config.length; ++t) {
    const float ft = static_cast<float>(t);
    series[t] = 0.6f * std::sin(2.0f * 3.14159265f * ft / config.period_a) +
                0.3f * std::sin(2.0f * 3.14159265f * ft / config.period_b) +
                config.trend * ft + noise(engine);
  }

  const std::size_t n = config.length - config.window;
  SeriesDataset data;
  data.inputs = nn::Tensor({n, config.window, 1});
  data.targets = nn::Tensor({n, 1});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w = 0; w < config.window; ++w) {
      data.inputs[(i * config.window + w)] = series[i + w];
    }
    data.targets[i] = series[i + config.window];
  }
  return data;
}

float rmse(const nn::Tensor& prediction, const nn::Tensor& target) {
  if (prediction.shape() != target.shape()) {
    throw std::invalid_argument("rmse: shape mismatch");
  }
  float acc = 0.0f;
  for (std::size_t i = 0; i < prediction.numel(); ++i) {
    const float d = prediction[i] - target[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<float>(prediction.numel()));
}

}  // namespace neuspin::data
