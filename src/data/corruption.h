// Input-corruption suite for robustness experiments (paper §IV takeaway 2:
// "Improvement in Inference Accuracy for Corrupted Data").
//
// Each corruption takes an NCHW image dataset and a severity in [0, 1];
// severity 0 is the identity. Severities map to physically meaningful
// ranges (noise sigma, blur passes, rotation angle) so sweeps are
// comparable across corruption kinds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"

namespace neuspin::data {

/// Kinds of input corruption.
enum class CorruptionKind : std::uint8_t {
  kGaussianNoise,   ///< additive pixel noise, sigma = 0.5 * severity
  kSaltPepper,      ///< pixel flip probability = 0.3 * severity
  kBlur,            ///< repeated 3x3 box blur, passes = round(3 * severity)
  kRotation,        ///< bilinear rotation by 45deg * severity
};

[[nodiscard]] std::string corruption_name(CorruptionKind kind);

/// All corruption kinds, for sweeps.
[[nodiscard]] const std::vector<CorruptionKind>& all_corruptions();

/// Apply a corruption at the given severity. Inputs must be NCHW.
[[nodiscard]] nn::Dataset corrupt(const nn::Dataset& images, CorruptionKind kind,
                                  float severity, std::uint64_t seed);

}  // namespace neuspin::data
