// Synthetic time-series generator for the LSTM forecasting experiment
// (paper §III-A.4's RMSE claim). The signal is a sum of sinusoids with a
// slow trend and observation noise — a stand-in for the wearable sensor
// streams the paper's IoT motivation describes.
#pragma once

#include <cstdint>

#include "nn/tensor.h"

namespace neuspin::data {

/// Windowed sequence-regression dataset: predict the next value from the
/// previous `window` values.
struct SeriesDataset {
  nn::Tensor inputs;   ///< (N x window x 1)
  nn::Tensor targets;  ///< (N x 1)

  [[nodiscard]] std::size_t size() const { return targets.dim(0); }
};

/// Generation knobs.
struct SeriesConfig {
  std::size_t length = 1200;  ///< raw series length before windowing
  std::size_t window = 16;    ///< history length fed to the model
  float period_a = 23.0f;     ///< first sinusoid period (samples)
  float period_b = 7.0f;      ///< second sinusoid period
  float trend = 0.0005f;      ///< linear drift per sample
  float noise = 0.05f;        ///< observation noise sigma
};

/// Build the windowed dataset. Values are scaled to roughly [-1, 1].
[[nodiscard]] SeriesDataset make_series(const SeriesConfig& config, std::uint64_t seed);

/// Root-mean-square error between two (N x 1) tensors.
[[nodiscard]] float rmse(const nn::Tensor& prediction, const nn::Tensor& target);

}  // namespace neuspin::data
