#include "data/clusters.h"

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace neuspin::data {

nn::Dataset make_gaussian_clusters(const ClusterConfig& config, std::uint64_t seed) {
  if (config.classes == 0 || config.dimensions == 0 || config.samples_per_class == 0) {
    throw std::invalid_argument("make_gaussian_clusters: counts must be positive");
  }
  std::mt19937_64 engine(seed);
  std::normal_distribution<float> normal(0.0f, 1.0f);

  // Class centers: uniform directions on the hypersphere, fixed radius.
  std::vector<std::vector<float>> centers(config.classes,
                                          std::vector<float>(config.dimensions));
  for (auto& center : centers) {
    float norm = 0.0f;
    for (auto& c : center) {
      c = normal(engine);
      norm += c * c;
    }
    norm = std::sqrt(norm) + 1e-9f;
    for (auto& c : center) {
      c = c / norm * config.center_spread;
    }
  }

  const std::size_t n = config.classes * config.samples_per_class;
  nn::Dataset data;
  data.inputs = nn::Tensor({n, config.dimensions});
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = i % config.classes;  // class-interleaved
    data.labels[i] = cls;
    for (std::size_t d = 0; d < config.dimensions; ++d) {
      data.inputs.at(i, d) = centers[cls][d] + config.cluster_sigma * normal(engine);
    }
  }
  return data;
}

nn::Dataset make_two_moons(std::size_t samples_per_class, float noise,
                           std::uint64_t seed) {
  if (samples_per_class == 0) {
    throw std::invalid_argument("make_two_moons: samples_per_class must be positive");
  }
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  std::normal_distribution<float> jitter(0.0f, noise);

  const std::size_t n = 2 * samples_per_class;
  nn::Dataset data;
  data.inputs = nn::Tensor({n, 2});
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = i % 2;
    const float t = u01(engine) * 3.14159265f;
    float x;
    float y;
    if (cls == 0) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0f - std::cos(t);
      y = 0.5f - std::sin(t);
    }
    data.inputs.at(i, 0) = x + jitter(engine);
    data.inputs.at(i, 1) = y + jitter(engine);
    data.labels[i] = cls;
  }
  return data;
}

}  // namespace neuspin::data
