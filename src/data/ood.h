// Out-of-distribution suites (paper §IV takeaway 1: "Effective Detection
// of Out-of-Distribution Data", and §III-A.4's uniform-noise / random-
// rotation OOD experiments).
//
// Three suites mirror the paper's evaluation protocol:
//   * uniform noise  — inputs carry no class structure at all
//   * random rotation — in-distribution content, heavily rotated (90-180deg)
//   * disjoint patterns — a different synthetic "dataset" (textures) in the
//     same input space, the analogue of evaluating MNIST-trained models on
//     FashionMNIST
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"

namespace neuspin::data {

/// Kind of OOD suite.
enum class OodKind : std::uint8_t {
  kUniformNoise,
  kRandomRotation,
  kDisjointPatterns,
};

[[nodiscard]] std::string ood_name(OodKind kind);
[[nodiscard]] const std::vector<OodKind>& all_ood_kinds();

/// Build an OOD set of `count` samples shaped like `reference` inputs
/// (NCHW). Labels are meaningless for OOD data and set to 0.
[[nodiscard]] nn::Dataset make_ood(const nn::Dataset& reference, OodKind kind,
                                   std::size_t count, std::uint64_t seed);

}  // namespace neuspin::data
