#include "data/corruption.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace neuspin::data {

std::string corruption_name(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kGaussianNoise:
      return "gaussian_noise";
    case CorruptionKind::kSaltPepper:
      return "salt_pepper";
    case CorruptionKind::kBlur:
      return "blur";
    case CorruptionKind::kRotation:
      return "rotation";
  }
  return "unknown";
}

const std::vector<CorruptionKind>& all_corruptions() {
  static const std::vector<CorruptionKind> kAll = {
      CorruptionKind::kGaussianNoise, CorruptionKind::kSaltPepper,
      CorruptionKind::kBlur, CorruptionKind::kRotation};
  return kAll;
}

namespace {

void apply_gaussian_noise(nn::Tensor& images, float severity, std::mt19937_64& engine) {
  std::normal_distribution<float> noise(0.0f, 0.5f * severity);
  for (std::size_t i = 0; i < images.numel(); ++i) {
    images[i] = std::clamp(images[i] + noise(engine), 0.0f, 1.0f);
  }
}

void apply_salt_pepper(nn::Tensor& images, float severity, std::mt19937_64& engine) {
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  const float p = 0.3f * severity;
  for (std::size_t i = 0; i < images.numel(); ++i) {
    const float u = u01(engine);
    if (u < p * 0.5f) {
      images[i] = 0.0f;
    } else if (u < p) {
      images[i] = 1.0f;
    }
  }
}

void apply_blur(nn::Tensor& images, float severity) {
  const int passes = static_cast<int>(std::round(3.0f * severity));
  const std::size_t n = images.dim(0);
  const std::size_t c = images.dim(1);
  const std::size_t h = images.dim(2);
  const std::size_t w = images.dim(3);
  for (int pass = 0; pass < passes; ++pass) {
    nn::Tensor source = images;
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t ch = 0; ch < c; ++ch) {
        for (std::size_t y = 0; y < h; ++y) {
          for (std::size_t x = 0; x < w; ++x) {
            float acc = 0.0f;
            int count = 0;
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                const int yy = static_cast<int>(y) + dy;
                const int xx = static_cast<int>(x) + dx;
                if (yy < 0 || xx < 0 || yy >= static_cast<int>(h) ||
                    xx >= static_cast<int>(w)) {
                  continue;
                }
                acc += source.at4(b, ch, static_cast<std::size_t>(yy),
                                  static_cast<std::size_t>(xx));
                ++count;
              }
            }
            images.at4(b, ch, y, x) = acc / static_cast<float>(count);
          }
        }
      }
    }
  }
}

void apply_rotation(nn::Tensor& images, float degrees) {
  const std::size_t n = images.dim(0);
  const std::size_t c = images.dim(1);
  const std::size_t h = images.dim(2);
  const std::size_t w = images.dim(3);
  const float angle = degrees * 3.14159265f / 180.0f;
  const float cos_a = std::cos(angle);
  const float sin_a = std::sin(angle);
  const float cy = static_cast<float>(h) / 2.0f - 0.5f;
  const float cx = static_cast<float>(w) / 2.0f - 0.5f;

  nn::Tensor source = images;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          // Inverse rotation with bilinear sampling.
          const float oy = static_cast<float>(y) - cy;
          const float ox = static_cast<float>(x) - cx;
          const float sy = cos_a * oy - sin_a * ox + cy;
          const float sx = sin_a * oy + cos_a * ox + cx;
          const int y0 = static_cast<int>(std::floor(sy));
          const int x0 = static_cast<int>(std::floor(sx));
          const float fy = sy - static_cast<float>(y0);
          const float fx = sx - static_cast<float>(x0);
          auto sample = [&](int yy, int xx) -> float {
            if (yy < 0 || xx < 0 || yy >= static_cast<int>(h) ||
                xx >= static_cast<int>(w)) {
              return 0.0f;
            }
            return source.at4(b, ch, static_cast<std::size_t>(yy),
                              static_cast<std::size_t>(xx));
          };
          const float v = (1.0f - fy) * ((1.0f - fx) * sample(y0, x0) +
                                         fx * sample(y0, x0 + 1)) +
                          fy * ((1.0f - fx) * sample(y0 + 1, x0) +
                                fx * sample(y0 + 1, x0 + 1));
          images.at4(b, ch, y, x) = v;
        }
      }
    }
  }
}

}  // namespace

nn::Dataset corrupt(const nn::Dataset& images, CorruptionKind kind, float severity,
                    std::uint64_t seed) {
  if (images.inputs.rank() != 4) {
    throw std::invalid_argument("corrupt: expected NCHW images");
  }
  if (severity < 0.0f || severity > 1.0f) {
    throw std::invalid_argument("corrupt: severity must lie in [0,1]");
  }
  nn::Dataset out;
  out.inputs = images.inputs;
  out.labels = images.labels;
  if (severity == 0.0f) {
    return out;
  }
  std::mt19937_64 engine(seed);
  switch (kind) {
    case CorruptionKind::kGaussianNoise:
      apply_gaussian_noise(out.inputs, severity, engine);
      break;
    case CorruptionKind::kSaltPepper:
      apply_salt_pepper(out.inputs, severity, engine);
      break;
    case CorruptionKind::kBlur:
      apply_blur(out.inputs, severity);
      break;
    case CorruptionKind::kRotation:
      apply_rotation(out.inputs, 45.0f * severity);
      break;
  }
  return out;
}

}  // namespace neuspin::data
