// Procedural stroke-digit dataset.
//
// The paper evaluates on MNIST-class image benchmarks, which are not
// available offline; this generator is the documented substitution
// (DESIGN.md §2). Each of the 10 classes is defined by a fixed set of line
// segments on a 16x16 canvas (a stylized digit). Samples are rendered with
// random affine jitter (translation, rotation, scale), stroke thickness and
// pixel noise, so the task has genuine intra-class variation: linear models
// plateau well below small CNNs/MLPs, mirroring the difficulty ordering of
// the paper's benchmarks.
#pragma once

#include <cstdint>

#include "nn/model.h"
#include "nn/tensor.h"

namespace neuspin::data {

/// Canvas side of the generated images.
inline constexpr std::size_t kStrokeImageSize = 16;
/// Number of digit classes.
inline constexpr std::size_t kStrokeClassCount = 10;

/// Generation knobs.
/// Defaults are calibrated so the Table-I binary CNN lands in the paper's
/// accuracy band (~90-92%): a task that is clearly learnable but not
/// saturated, like the benchmarks the paper evaluates on.
struct StrokeConfig {
  std::size_t samples_per_class = 200;
  float max_translation = 2.0f;   ///< pixels
  float max_rotation_deg = 18.0f; ///< degrees
  float min_scale = 0.82f;
  float max_scale = 1.12f;
  float stroke_sigma = 0.65f;     ///< Gaussian pen radius
  float pixel_noise = 0.10f;      ///< additive Gaussian noise sigma
};

/// Generate a dataset of rendered digits with shape (N x 1 x 16 x 16),
/// pixel values roughly in [0, 1]. Samples are class-interleaved so any
/// prefix is class-balanced.
[[nodiscard]] nn::Dataset make_stroke_digits(const StrokeConfig& config,
                                             std::uint64_t seed);

/// Flattened variant with shape (N x 256) for MLP models.
[[nodiscard]] nn::Dataset make_stroke_digits_flat(const StrokeConfig& config,
                                                  std::uint64_t seed);

/// Flatten an NCHW image dataset to (N x C*H*W) in place.
[[nodiscard]] nn::Dataset flatten_dataset(const nn::Dataset& images);

/// Per-sample instance standardization: each sample is shifted/scaled to
/// zero mean and unit variance. This is the input-conditioning stage of
/// the deployed pipeline (cheap enough for edge preprocessing) and is
/// what keeps predictive entropy informative on out-of-distribution
/// inputs for binary networks.
[[nodiscard]] nn::Dataset standardize_per_sample(const nn::Dataset& data);

}  // namespace neuspin::data
