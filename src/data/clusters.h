// Low-dimensional synthetic classification tasks: Gaussian mixtures (used
// for the wearable-vitals example and the 100-class SpinBayes experiment)
// and the classic two-moons shape.
#pragma once

#include <cstdint>

#include "nn/model.h"
#include "nn/tensor.h"

namespace neuspin::data {

/// Gaussian-mixture generation knobs.
struct ClusterConfig {
  std::size_t classes = 4;
  std::size_t dimensions = 8;
  std::size_t samples_per_class = 100;
  float center_spread = 4.0f;   ///< radius of the hypersphere centers live on
  float cluster_sigma = 0.8f;   ///< within-class standard deviation
};

/// Generate `classes` Gaussian blobs with centers sampled uniformly on a
/// hypersphere of radius `center_spread`. Samples are class-interleaved.
/// Inputs have shape (N x dimensions).
[[nodiscard]] nn::Dataset make_gaussian_clusters(const ClusterConfig& config,
                                                 std::uint64_t seed);

/// Classic two-moons binary task in 2D with additive Gaussian noise.
[[nodiscard]] nn::Dataset make_two_moons(std::size_t samples_per_class, float noise,
                                         std::uint64_t seed);

}  // namespace neuspin::data
