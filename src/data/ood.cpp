#include "data/ood.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "data/corruption.h"

namespace neuspin::data {

std::string ood_name(OodKind kind) {
  switch (kind) {
    case OodKind::kUniformNoise:
      return "uniform_noise";
    case OodKind::kRandomRotation:
      return "random_rotation";
    case OodKind::kDisjointPatterns:
      return "disjoint_patterns";
  }
  return "unknown";
}

const std::vector<OodKind>& all_ood_kinds() {
  static const std::vector<OodKind> kAll = {
      OodKind::kUniformNoise, OodKind::kRandomRotation, OodKind::kDisjointPatterns};
  return kAll;
}

namespace {

nn::Dataset make_uniform_noise(const nn::Shape& shape, std::size_t count,
                               std::uint64_t seed) {
  nn::Shape out_shape = shape;
  out_shape[0] = count;
  std::mt19937_64 engine(seed);
  nn::Dataset out;
  out.inputs = nn::Tensor::uniform(out_shape, 0.0f, 1.0f, engine);
  out.labels.assign(count, 0);
  return out;
}

/// Procedural texture patches: checkerboards, stripes and radial rings at
/// random phase/frequency — clearly structured, clearly not digits.
nn::Dataset make_patterns(const nn::Shape& shape, std::size_t count,
                          std::uint64_t seed) {
  nn::Shape out_shape = shape;
  out_shape[0] = count;
  nn::Dataset out;
  out.inputs = nn::Tensor(out_shape);
  out.labels.assign(count, 0);

  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  const std::size_t c = out_shape[1];
  const std::size_t h = out_shape[2];
  const std::size_t w = out_shape[3];
  for (std::size_t i = 0; i < count; ++i) {
    const int family = static_cast<int>(u01(engine) * 3.0f);
    const float freq = 0.3f + u01(engine) * 0.8f;
    const float phase = u01(engine) * 6.28f;
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          float v = 0.0f;
          const float fy = static_cast<float>(y);
          const float fx = static_cast<float>(x);
          switch (family) {
            case 0:  // checkerboard
              v = (std::sin(freq * fy + phase) * std::sin(freq * fx + phase)) > 0.0f
                      ? 1.0f
                      : 0.0f;
              break;
            case 1:  // diagonal stripes
              v = 0.5f + 0.5f * std::sin(freq * (fy + fx) + phase);
              break;
            default: {  // radial rings
              const float cy = static_cast<float>(h) / 2.0f;
              const float cx = static_cast<float>(w) / 2.0f;
              const float r = std::hypot(fy - cy, fx - cx);
              v = 0.5f + 0.5f * std::sin(freq * r * 2.0f + phase);
              break;
            }
          }
          out.inputs.at4(i, ch, y, x) = v;
        }
      }
    }
  }
  return out;
}

}  // namespace

nn::Dataset make_ood(const nn::Dataset& reference, OodKind kind, std::size_t count,
                     std::uint64_t seed) {
  if (reference.inputs.rank() != 4) {
    throw std::invalid_argument("make_ood: expected NCHW reference dataset");
  }
  if (count == 0 || count > reference.size()) {
    throw std::invalid_argument("make_ood: count must lie in [1, reference size]");
  }
  switch (kind) {
    case OodKind::kUniformNoise:
      return make_uniform_noise(reference.inputs.shape(), count, seed);
    case OodKind::kRandomRotation: {
      // Heavy rotation (90..180 deg) of real in-distribution content.
      auto [subset, labels] = reference.batch(0, count);
      nn::Dataset base{std::move(subset), std::move(labels)};
      std::mt19937_64 engine(seed);
      std::uniform_real_distribution<float> deg(90.0f, 180.0f);
      // corrupt() maps severity 1.0 -> 45deg, so rotate 2-4 times.
      nn::Dataset rotated = base;
      const int passes = 2 + static_cast<int>(deg(engine) / 90.0f);
      for (int p = 0; p < passes; ++p) {
        rotated = corrupt(rotated, CorruptionKind::kRotation, 1.0f, seed + p);
      }
      rotated.labels.assign(count, 0);
      return rotated;
    }
    case OodKind::kDisjointPatterns:
      return make_patterns(reference.inputs.shape(), count, seed);
  }
  throw std::logic_error("make_ood: unhandled kind");
}

}  // namespace neuspin::data
