#include "data/strokes.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>
#include <vector>

namespace neuspin::data {

namespace {

/// A line segment in normalized canvas coordinates ([0,1]^2, y down).
struct Segment {
  float x0, y0, x1, y1;
};

/// Stylized digit skeletons. Coordinates follow a 7-segment-like frame
/// with a few diagonals; tuned so classes are distinct but share strokes
/// (8 contains 0's loop, 7 shares 1's vertical, etc.) — the overlap is what
/// makes the task non-trivial.
const std::vector<Segment>& digit_segments(std::size_t digit) {
  static const std::array<std::vector<Segment>, kStrokeClassCount> kDigits = {{
      // 0: rounded rectangle
      {{0.25f, 0.15f, 0.75f, 0.15f}, {0.75f, 0.15f, 0.75f, 0.85f},
       {0.75f, 0.85f, 0.25f, 0.85f}, {0.25f, 0.85f, 0.25f, 0.15f}},
      // 1: vertical bar with flag
      {{0.55f, 0.10f, 0.55f, 0.90f}, {0.40f, 0.25f, 0.55f, 0.10f}},
      // 2: top bar, right upper, middle, left lower, bottom bar
      {{0.25f, 0.20f, 0.75f, 0.20f}, {0.75f, 0.20f, 0.75f, 0.50f},
       {0.75f, 0.50f, 0.25f, 0.50f}, {0.25f, 0.50f, 0.25f, 0.85f},
       {0.25f, 0.85f, 0.75f, 0.85f}},
      // 3: top, middle, bottom bars with right spine
      {{0.25f, 0.15f, 0.75f, 0.15f}, {0.30f, 0.50f, 0.75f, 0.50f},
       {0.25f, 0.85f, 0.75f, 0.85f}, {0.75f, 0.15f, 0.75f, 0.85f}},
      // 4: left upper, middle, right full
      {{0.30f, 0.10f, 0.30f, 0.55f}, {0.30f, 0.55f, 0.78f, 0.55f},
       {0.65f, 0.10f, 0.65f, 0.90f}},
      // 5: top bar, left upper, middle, right lower, bottom bar
      {{0.75f, 0.15f, 0.25f, 0.15f}, {0.25f, 0.15f, 0.25f, 0.50f},
       {0.25f, 0.50f, 0.75f, 0.50f}, {0.75f, 0.50f, 0.75f, 0.85f},
       {0.75f, 0.85f, 0.25f, 0.85f}},
      // 6: like 5 plus left lower spine
      {{0.72f, 0.15f, 0.28f, 0.15f}, {0.28f, 0.15f, 0.28f, 0.85f},
       {0.28f, 0.85f, 0.72f, 0.85f}, {0.72f, 0.85f, 0.72f, 0.50f},
       {0.72f, 0.50f, 0.28f, 0.50f}},
      // 7: top bar and diagonal
      {{0.22f, 0.15f, 0.78f, 0.15f}, {0.78f, 0.15f, 0.42f, 0.90f}},
      // 8: full rectangle plus waist
      {{0.25f, 0.15f, 0.75f, 0.15f}, {0.75f, 0.15f, 0.75f, 0.85f},
       {0.75f, 0.85f, 0.25f, 0.85f}, {0.25f, 0.85f, 0.25f, 0.15f},
       {0.25f, 0.50f, 0.75f, 0.50f}},
      // 9: like 8 without lower-left spine
      {{0.72f, 0.50f, 0.28f, 0.50f}, {0.28f, 0.50f, 0.28f, 0.15f},
       {0.28f, 0.15f, 0.72f, 0.15f}, {0.72f, 0.15f, 0.72f, 0.85f},
       {0.72f, 0.85f, 0.35f, 0.85f}},
  }};
  return kDigits[digit];
}

/// Distance from point p to segment s, all in canvas pixels.
float point_segment_distance(float px, float py, const Segment& s, float size) {
  const float x0 = s.x0 * size;
  const float y0 = s.y0 * size;
  const float x1 = s.x1 * size;
  const float y1 = s.y1 * size;
  const float dx = x1 - x0;
  const float dy = y1 - y0;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.0f ? ((px - x0) * dx + (py - y0) * dy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = x0 + t * dx;
  const float cy = y0 + t * dy;
  return std::hypot(px - cx, py - cy);
}

}  // namespace

nn::Dataset make_stroke_digits(const StrokeConfig& config, std::uint64_t seed) {
  const std::size_t n = config.samples_per_class * kStrokeClassCount;
  const std::size_t size = kStrokeImageSize;
  nn::Dataset data;
  data.inputs = nn::Tensor({n, 1, size, size});
  data.labels.resize(n);

  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  std::normal_distribution<float> noise(0.0f, config.pixel_noise);

  const float center = static_cast<float>(size) / 2.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t digit = i % kStrokeClassCount;  // class-interleaved
    data.labels[i] = digit;

    // Per-sample affine jitter.
    const float angle = (2.0f * u01(engine) - 1.0f) * config.max_rotation_deg *
                        3.14159265f / 180.0f;
    const float scale =
        config.min_scale + u01(engine) * (config.max_scale - config.min_scale);
    const float tx = (2.0f * u01(engine) - 1.0f) * config.max_translation;
    const float ty = (2.0f * u01(engine) - 1.0f) * config.max_translation;
    const float cos_a = std::cos(angle);
    const float sin_a = std::sin(angle);

    const auto& segments = digit_segments(digit);
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        // Inverse-map the output pixel into the digit frame.
        const float ox = static_cast<float>(x) - center - tx;
        const float oy = static_cast<float>(y) - center - ty;
        const float rx = (cos_a * ox + sin_a * oy) / scale + center;
        const float ry = (-sin_a * ox + cos_a * oy) / scale + center;

        float min_dist = 1e9f;
        for (const auto& s : segments) {
          min_dist = std::min(min_dist,
                              point_segment_distance(rx, ry, s, static_cast<float>(size)));
        }
        // Gaussian pen profile plus pixel noise, clamped to [0, 1].
        const float ink =
            std::exp(-min_dist * min_dist / (2.0f * config.stroke_sigma *
                                             config.stroke_sigma));
        const float v = std::clamp(ink + noise(engine), 0.0f, 1.0f);
        data.inputs.at4(i, 0, y, x) = v;
      }
    }
  }
  return data;
}

nn::Dataset flatten_dataset(const nn::Dataset& images) {
  nn::Dataset flat;
  const std::size_t n = images.size();
  flat.inputs = images.inputs.reshaped({n, images.inputs.numel() / n});
  flat.labels = images.labels;
  return flat;
}

nn::Dataset make_stroke_digits_flat(const StrokeConfig& config, std::uint64_t seed) {
  return flatten_dataset(make_stroke_digits(config, seed));
}

nn::Dataset standardize_per_sample(const nn::Dataset& data) {
  nn::Dataset out = data;
  const std::size_t per_sample = out.inputs.numel() / out.size();
  for (std::size_t i = 0; i < out.size(); ++i) {
    float mean = 0.0f;
    for (std::size_t p = 0; p < per_sample; ++p) {
      mean += out.inputs[i * per_sample + p];
    }
    mean /= static_cast<float>(per_sample);
    float var = 0.0f;
    for (std::size_t p = 0; p < per_sample; ++p) {
      const float d = out.inputs[i * per_sample + p] - mean;
      var += d * d;
    }
    const float inv_std =
        1.0f / (std::sqrt(var / static_cast<float>(per_sample)) + 1e-5f);
    for (std::size_t p = 0; p < per_sample; ++p) {
      out.inputs[i * per_sample + p] = (out.inputs[i * per_sample + p] - mean) * inv_std;
    }
  }
  return out;
}

}  // namespace neuspin::data
