// Per-request span tracing with Chrome trace-event export.
//
// A span is one named interval on one track: [begin_us, end_us] plus
// numeric/string attributes. The serving runtime emits spans covering a
// request's life (enqueue -> batch-form -> backend forward per fidelity
// rung -> policy -> reply), the trainer emits per-shard fwd/bwd/reduce
// spans, and the tiled hardware path emits per-tile evaluation spans
// carrying the event engine's rows-skipped census — so "where did this
// slow request spend its time?" is finally answerable.
//
// Tracks: worker-thread spans record under the calling thread's id;
// per-request spans record under a synthetic per-request track
// (kRequestTrackBase + request id), so the spans of one request nest
// cleanly even when its batch companions interleave on the worker.
//
// Export is Chrome trace-event JSON ("X" complete events) — load the
// file at ui.perfetto.dev or chrome://tracing.
//
// Overhead is opt-in twice over: a disabled tracer (the default) reduces
// every instrumentation site to one pointer/bool check, and an enabled
// one samples per-request spans 1-in-N (TraceConfig::sample_every).
// Determinism contract: tracing reads clocks, never RNG streams — the
// serving tests pin that predictions are bitwise identical with tracing
// on and off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace neuspin::obs {

struct TraceConfig {
  bool enabled = false;
  /// Per-request spans are recorded for request ids divisible by this
  /// (1 = every request). Batch-, rung- and tile-level spans are recorded
  /// whenever the tracer is enabled — they amortize over the batch.
  std::uint64_t sample_every = 1;
  /// Hard cap on retained spans; beyond it spans are dropped (counted,
  /// never blocking). ~160 bytes/span -> the default caps at ~80 MB.
  std::size_t max_spans = 1u << 19;
};

/// One completed span.
struct SpanRecord {
  std::string name;
  std::string category;
  double begin_us = 0.0;
  double end_us = 0.0;
  std::uint64_t track = 0;  ///< thread hash or synthetic request track
  std::vector<std::pair<std::string, double>> args;
  std::vector<std::pair<std::string, std::string>> string_args;
};

/// Thread-safe span collector. Timestamps are microseconds on the
/// steady clock, relative to the tracer's construction.
class Tracer {
 public:
  /// Per-request spans land on track kRequestTrackBase + request_id,
  /// far above any thread-hash track.
  static constexpr std::uint64_t kRequestTrackBase = 1u << 20;

  explicit Tracer(const TraceConfig& config = {});

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  /// Should this request's per-request spans be recorded?
  [[nodiscard]] bool sampled(std::uint64_t request_id) const {
    return config_.enabled && request_id % config_.sample_every == 0;
  }
  [[nodiscard]] const TraceConfig& config() const { return config_; }

  /// Microseconds since tracer construction.
  [[nodiscard]] double now_us() const;
  /// Convert an externally captured steady-clock time point into this
  /// tracer's microsecond domain (e.g. a request's enqueue stamp).
  [[nodiscard]] double to_us(std::chrono::steady_clock::time_point tp) const;

  /// Record one completed span. `track` 0 means "the calling thread".
  /// No-op when disabled or past max_spans (drops are counted).
  void record(SpanRecord span);

  /// Track id of the calling thread (stable per thread).
  [[nodiscard]] static std::uint64_t thread_track();

  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Copy of every retained span (tests/analysis).
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  void clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}, "X" complete
  /// events; ts/dur in microseconds). Loadable in Perfetto.
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Write chrome_trace_json() to `path`; throws std::runtime_error when
  /// the file cannot be written.
  void write_chrome_trace(const std::string& path) const;

 private:
  TraceConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII span: captures begin at construction, records at destruction (or
/// an explicit end()). Inactive when constructed with a null/disabled
/// tracer — every method is then a no-op, so call sites need no guards.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string name, std::string category,
             std::uint64_t track = 0);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ~ScopedSpan() { end(); }

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }
  void arg(std::string key, double value);
  void arg(std::string key, std::string value);
  /// Complete the span now (idempotent).
  void end();

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord span_;
};

}  // namespace neuspin::obs
