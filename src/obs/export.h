// Metric exposition: Prometheus text format, JSON snapshots, and a
// periodic reporter hook.
//
// Both renderers work off Registry::snapshot(), so they can run on any
// thread while recording continues. Histograms render their quantiles
// (p50/p90/p99/p999) plus count/sum/mean; the Prometheus form also emits
// the cumulative non-empty buckets so server-side quantile math works.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace neuspin::obs {

/// Prometheus text exposition format (# TYPE lines, `_bucket{le=...}`
/// cumulative histogram series). Metric names are sanitized to
/// [a-zA-Z0-9_:] (dots become underscores).
[[nodiscard]] std::string render_prometheus(const Registry& registry);

/// One JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, mean, min, max, p50, p90, p99,
/// p999}}}.
[[nodiscard]] std::string render_json(const Registry& registry);

/// Background thread invoking `sink(registry)` every `interval` until
/// stopped (or destroyed). The hook a server loop hangs its periodic
/// stats log / push-gateway export on.
class PeriodicReporter {
 public:
  using Sink = std::function<void(const Registry&)>;

  PeriodicReporter(const Registry& registry, std::chrono::milliseconds interval,
                   Sink sink);
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stop the reporting thread (idempotent; joins).
  void stop();

 private:
  const Registry& registry_;
  std::chrono::milliseconds interval_;
  Sink sink_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace neuspin::obs
