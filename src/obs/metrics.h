// Process-wide metrics: counters, gauges and log-bucketed HDR-style
// latency histograms behind one thread-safe registry.
//
// Every performance-bearing subsystem used to report through its own
// ad-hoc struct (serve::RuntimeStats' 1024-entry latency ring,
// train's EpochStats, xbar::DeltaStats, energy::EnergyLedger); nothing
// could be merged across threads or queried from one place. This layer
// gives them a common substrate:
//
//  * Counter — monotonically increasing uint64, lock-free inc().
//  * Gauge   — last-written double (queue depths, occupancy), lock-free.
//  * Histogram — a FIXED log-bucketed layout (linear sub-buckets inside
//    each power of two, the HdrHistogram idea): recording is one relaxed
//    fetch_add on the owning bucket, so the hot path never takes a lock
//    and never sorts; merging two histograms is an exact element-wise
//    add (concurrent recorders and per-worker histograms fold together
//    without approximation error); any quantile (p50/p90/p99/p999) reads
//    off the cumulative bucket counts with relative error bounded by the
//    sub-bucket width (1/kSubBuckets ~ 3.1%). Windowed quantiles come
//    from snapshot deltas: snapshot now, snapshot later, subtract.
//  * Registry — names -> metrics, created on first use. Lookup takes a
//    mutex; callers cache the returned reference (addresses are stable
//    for the registry's lifetime), so steady-state recording is lock-free.
//
// Determinism contract: metrics observe, never influence. Nothing in
// this header touches an RNG stream or a model result.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace neuspin::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, occupancy, totals that
/// accumulate fractional quantities like picojoules).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// A consistent point-in-time copy of one histogram (or the difference of
/// two copies — a window). Quantiles and means are computed here, off the
/// hot path.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< smallest recorded value (0 when empty)
  double max = 0.0;  ///< largest recorded value (0 when empty)

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Value at quantile q in [0, 1]: linear interpolation inside the
  /// bucket holding the rank, clamped to [min, max] so an estimate never
  /// leaves the observed range. 0 when the snapshot is empty. Relative
  /// error vs. the exact order statistic is bounded by the sub-bucket
  /// width (1/32) for values >= 1.
  [[nodiscard]] double quantile(double q) const;

  /// Turn this snapshot into the WINDOW between `earlier` and itself:
  /// bucket counts, count and sum subtract exactly (merges are exact, so
  /// so are their inverses); min stays 0 and max keeps the later
  /// snapshot's value (a conservative clamp — the true window extrema are
  /// not recoverable from bucket counts).
  HistogramSnapshot& operator-=(const HistogramSnapshot& earlier);
};

/// Log-bucketed HDR-style histogram with a fixed bucket layout.
///
/// Layout: bucket 0 holds values in [0, 1); each power-of-two octave
/// [2^e, 2^(e+1)) for e in [0, kOctaves) is split into kSubBuckets linear
/// sub-buckets; one overflow bucket catches everything >= 2^kOctaves.
/// With the default unit (microseconds) the layout spans sub-microsecond
/// to ~12.7 days at <= 3.125% relative error — no configuration, so any
/// two Histograms merge exactly.
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 32;  ///< rel. error <= 1/32
  static constexpr std::size_t kOctaves = 40;     ///< covers [1, 2^40)
  static constexpr std::size_t kBuckets = 1 + kOctaves * kSubBuckets + 1;

  /// Record one value. Lock-free: one relaxed fetch_add on the owning
  /// bucket (plus count/sum/extrema updates). Negative and NaN values
  /// clamp to 0.
  void record(double value) { record_n(value, 1); }
  /// Record `n` occurrences of `value` in one update.
  void record_n(double value, std::uint64_t n);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Convenience: all-time quantile (see HistogramSnapshot::quantile).
  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

  /// Fold `other`'s counts into this histogram — an EXACT element-wise
  /// add, the merge primitive for per-worker histograms.
  void merge(const Histogram& other);

  /// Point-in-time copy (buckets loaded relaxed; concurrent recording
  /// makes the copy approximate by the in-flight updates only).
  [[nodiscard]] HistogramSnapshot snapshot() const;

  void reset();

  /// Index of the bucket owning `value` (exposed for tests/exposition).
  [[nodiscard]] static std::size_t bucket_index(double value);
  /// Inclusive lower bound of bucket `index`.
  [[nodiscard]] static double bucket_lower(std::size_t index);
  /// Exclusive upper bound of bucket `index` (== lower for the overflow
  /// bucket, which is unbounded above).
  [[nodiscard]] static double bucket_upper(std::size_t index);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;

 public:
  Histogram();
};

/// Thread-safe name -> metric registry. Metrics are created on first use
/// and live for the registry's lifetime at a stable address, so callers
/// look a metric up once, cache the reference, and record lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Read-only lookups for exposition/tests: nullptr when the name was
  /// never registered (they never create).
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Point-in-time copy of every metric, sorted by name.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Process-wide default registry (subsystems without a natural owner).
  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace neuspin::obs
