#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <thread>

namespace neuspin::obs {

namespace {

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest-ish double formatting that stays valid JSON (no inf/nan).
std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

Tracer::Tracer(const TraceConfig& config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  if (config_.sample_every == 0) {
    config_.sample_every = 1;
  }
}

double Tracer::now_us() const { return to_us(std::chrono::steady_clock::now()); }

double Tracer::to_us(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

std::uint64_t Tracer::thread_track() {
  // Stable per-thread hash, folded into a small-ish number for readable
  // Perfetto track names (collisions merely share a track).
  const std::uint64_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h % Tracer::kRequestTrackBase;
}

void Tracer::record(SpanRecord span) {
  if (!config_.enabled) {
    return;
  }
  if (span.track == 0) {
    span.track = thread_track();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= config_.max_spans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(span));
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = this->spans();
  std::string out = "{\"traceEvents\":[";
  // Process-name metadata event so Perfetto labels the track group.
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"neuspin\"}}";
  for (const SpanRecord& span : spans) {
    out += ",{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(span.track);
    out += ",\"name\":\"" + json_escape(span.name) + "\"";
    out += ",\"cat\":\"" + json_escape(span.category) + "\"";
    out += ",\"ts\":" + json_number(span.begin_us);
    out += ",\"dur\":" + json_number(std::max(0.0, span.end_us - span.begin_us));
    if (!span.args.empty() || !span.string_args.empty()) {
      out += ",\"args\":{";
      bool first = true;
      for (const auto& [key, value] : span.args) {
        if (!first) {
          out += ",";
        }
        first = false;
        out += "\"";
        out += json_escape(key);
        out += "\":";
        out += json_number(value);
      }
      for (const auto& [key, value] : span.string_args) {
        if (!first) {
          out += ",";
        }
        first = false;
        out += "\"";
        out += json_escape(key);
        out += "\":\"";
        out += json_escape(value);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("Tracer: cannot open trace file " + path);
  }
  file << chrome_trace_json();
  if (!file) {
    throw std::runtime_error("Tracer: failed writing trace file " + path);
  }
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name, std::string category,
                       std::uint64_t track)
    : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
  if (tracer_ != nullptr) {
    span_.name = std::move(name);
    span_.category = std::move(category);
    span_.track = track;
    span_.begin_us = tracer_->now_us();
  }
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : tracer_(other.tracer_), span_(std::move(other.span_)) {
  other.tracer_ = nullptr;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    span_ = std::move(other.span_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void ScopedSpan::arg(std::string key, double value) {
  if (tracer_ != nullptr) {
    span_.args.emplace_back(std::move(key), value);
  }
}

void ScopedSpan::arg(std::string key, std::string value) {
  if (tracer_ != nullptr) {
    span_.string_args.emplace_back(std::move(key), std::move(value));
  }
}

void ScopedSpan::end() {
  if (tracer_ != nullptr) {
    span_.end_us = tracer_->now_us();
    tracer_->record(std::move(span_));
    tracer_ = nullptr;
  }
}

}  // namespace neuspin::obs
