#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace neuspin::obs {

namespace {

/// Relaxed CAS fold; used for the extrema (atomic<double> has no
/// fetch_min/fetch_max).
void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) { atomic_add(value_, delta); }

Histogram::Histogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

std::size_t Histogram::bucket_index(double value) {
  if (!(value >= 1.0)) {  // negatives, NaN and [0, 1) share bucket 0
    return 0;
  }
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  const std::size_t octave = static_cast<std::size_t>(exp - 1);
  if (octave >= kOctaves) {
    return kBuckets - 1;  // overflow
  }
  // mantissa * 2 is value / 2^octave in [1, 2): linear sub-bucket inside
  // the octave.
  auto sub = static_cast<std::size_t>((mantissa * 2.0 - 1.0) *
                                      static_cast<double>(kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + octave * kSubBuckets + sub;
}

double Histogram::bucket_lower(std::size_t index) {
  if (index == 0) {
    return 0.0;
  }
  if (index >= kBuckets - 1) {
    return std::ldexp(1.0, static_cast<int>(kOctaves));
  }
  const std::size_t octave = (index - 1) / kSubBuckets;
  const std::size_t sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / static_cast<double>(kSubBuckets),
                    static_cast<int>(octave));
}

double Histogram::bucket_upper(std::size_t index) {
  if (index == 0) {
    return 1.0;
  }
  if (index >= kBuckets - 1) {
    return bucket_lower(index);  // unbounded above; degenerate for interpolation
  }
  const std::size_t octave = (index - 1) / kSubBuckets;
  const std::size_t sub = (index - 1) % kSubBuckets;
  return sub + 1 == kSubBuckets
             ? std::ldexp(1.0, static_cast<int>(octave) + 1)
             : std::ldexp(1.0 + static_cast<double>(sub + 1) /
                                    static_cast<double>(kSubBuckets),
                          static_cast<int>(octave));
}

void Histogram::record_n(double value, std::uint64_t n) {
  if (n == 0) {
    return;
  }
  if (!(value >= 0.0)) {
    value = 0.0;
  }
  buckets_[bucket_index(value)].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add(sum_, value * static_cast<double>(n));
  atomic_min(min_, value);
  atomic_max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  const std::uint64_t n = other.count_.load(std::memory_order_relaxed);
  if (n != 0) {
    count_.fetch_add(n, std::memory_order_relaxed);
    atomic_add(sum_, other.sum_.load(std::memory_order_relaxed));
    atomic_min(min_, other.min_.load(std::memory_order_relaxed));
    atomic_max(max_, other.max_.load(std::memory_order_relaxed));
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBuckets);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.buckets[i];
  }
  // Derive the count from the bucket copy itself so quantiles are always
  // self-consistent, even mid-recording.
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (total > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) > rank) {
      const double position = rank - static_cast<double>(cumulative);
      const double fraction = (position + 0.5) / static_cast<double>(in_bucket);
      const double lower = Histogram::bucket_lower(i);
      const double upper = Histogram::bucket_upper(i);
      const double value = lower + (upper - lower) * fraction;
      return std::clamp(value, min, max);
    }
    cumulative += in_bucket;
  }
  return max;  // numeric slack: the rank fell off the cumulative end
}

HistogramSnapshot& HistogramSnapshot::operator-=(const HistogramSnapshot& earlier) {
  for (std::size_t i = 0; i < buckets.size() && i < earlier.buckets.size(); ++i) {
    buckets[i] -= std::min(buckets[i], earlier.buckets[i]);
  }
  sum = std::max(0.0, sum - earlier.sum);
  min = 0.0;  // true window extrema are not recoverable from counts
  // Recompute the window count from the subtracted buckets so quantiles
  // stay self-consistent.
  std::uint64_t total = 0;
  for (const std::uint64_t n : buckets) {
    total += n;
  }
  count = total;
  return *this;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->snapshot());
  }
  return snap;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace neuspin::obs
