#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>

namespace neuspin::obs {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != ':') {
      c = '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string fmt(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

const std::pair<const char*, double> kQuantiles[] = {
    {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};

}  // namespace

std::string render_prometheus(const Registry& registry) {
  const Registry::Snapshot snap = registry.snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + fmt(value) + "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) {
        continue;  // the fixed layout has ~1.3k buckets; emit occupied ones
      }
      cumulative += hist.buckets[i];
      out += n + "_bucket{le=\"" + fmt(Histogram::bucket_upper(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += n + "_sum " + fmt(hist.sum) + "\n";
    out += n + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

std::string render_json(const Registry& registry) {
  const Registry::Snapshot snap = registry.snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + fmt(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":{";
    out += "\"count\":" + std::to_string(hist.count);
    out += ",\"sum\":" + fmt(hist.sum);
    out += ",\"mean\":" + fmt(hist.mean());
    out += ",\"min\":" + fmt(hist.min);
    out += ",\"max\":" + fmt(hist.max);
    for (const auto& [label, q] : kQuantiles) {
      out += ",\"" + std::string(label) + "\":" + fmt(hist.quantile(q));
    }
    out += "}";
  }
  out += "}}";
  return out;
}

PeriodicReporter::PeriodicReporter(const Registry& registry,
                                   std::chrono::milliseconds interval, Sink sink)
    : registry_(registry), interval_(interval), sink_(std::move(sink)) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (wake_.wait_for(lock, interval_, [this] { return stopped_; })) {
        return;
      }
      lock.unlock();
      sink_(registry_);
      lock.lock();
    }
  });
}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace neuspin::obs
