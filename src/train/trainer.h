// Data-parallel training engine.
//
// train::Trainer owns the supervised classification loop that historically
// lived in nn::train_classifier, and adds a data-parallel path: every
// minibatch is split into `TrainerConfig::shards` deterministic contiguous
// shards, one deep model clone per shard runs forward+backward on its rows
// through the blocked GEMM kernels, and the shard gradients are reduced
// into the primary model's ParamRefs in fixed ascending-shard order before
// a single Adam step.
//
// Determinism contract (mirrors core::predict_fused_batch): trained
// parameters are a pure function of (model, data, TrainerConfig numeric
// fields) — `workers` only schedules shard tasks onto the shared
// core::ThreadPool and NEVER changes a single bit of the result, for any
// worker count including 1 and counts beyond the hardware. The knobs that
// DO define the numerics are, exactly:
//
//  * shards — the gradient decomposition of each minibatch. shards == 1 is
//    the serial contract: the step runs in-place on the primary model and
//    replays the historical nn::train_classifier loop bit for bit (same
//    engine advancement, same accumulation order). shards == S > 1 splits
//    each minibatch into S contiguous shards; per-sample stochastic masks
//    (nn::Dropout, core::SpinDropLayer) are keyed to the sample's global
//    row index via Layer::reseed_rows, so they do not depend on the shard
//    grid, while per-pass draws (scale dropout, variational samples, the
//    two affine-dropout masks) and batch-normalization statistics are
//    keyed to (step, shard) — ghost-batch semantics, like shrinking the
//    statistics batch. Changing S changes the result the same way changing
//    batch_size does; changing `workers` changes nothing.
//  * batch_size, seeds, lr schedule, label smoothing, grad_clip,
//    weight_decay, regularizer — shared by both paths.
//
// Why the reduction is a sum of shard partials: the blocked GEMM kernels
// accumulate each gradient element's k-terms in ascending-k order, so a
// shard's weight gradient is the ascending-row chain over its own rows
// computed from zero. Folding those partials primary += shard_s in
// ascending s is a fixed association for a fixed shard grid — which is why
// the grid may depend only on (rows, shards), never on worker scheduling.
//
// Non-learnable state (batch-norm running statistics) is folded back as a
// shard-AVERAGED movement in the same ascending order: primary_state +=
// (clone_state - state_at_step_start) / shards — exactly one EMA update
// per minibatch built from the mean of the shard statistics, so the
// running stats move at the serial loop's rate and stay in the shard
// statistics' convex hull for any shard count (a raw delta sum would turn
// the prior's coefficient negative once shards * momentum > 1).
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "nn/model.h"
#include "nn/optim.h"

namespace neuspin::obs {
class Registry;  // obs/metrics.h
class Tracer;    // obs/trace.h
}  // namespace neuspin::obs

namespace neuspin::train {

/// Knobs of the data-parallel training loop. The subset that exists on
/// nn::TrainConfig keeps its defaults so the compatibility wrapper is a
/// field-for-field copy.
struct TrainerConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  float lr = 0.01f;
  float lr_decay = 0.5f;  ///< multiplied in every `lr_decay_period`
  std::size_t lr_decay_period = 5;
  std::uint64_t shuffle_seed = 7;
  /// Base seed of the sharded path's per-row mask streams and per-shard
  /// module streams (unused by the serial path, which advances the layers'
  /// own engines exactly like the historical loop did).
  std::uint64_t stream_seed = 0x6e757370'74726eull;
  bool verbose = false;
  /// Label smoothing of the cross-entropy target (0 disables).
  float label_smoothing = 0.0f;
  /// Global-norm gradient clipping applied after the shard reduction and
  /// the regularizer, before the optimizer step (0 disables).
  float grad_clip = 0.0f;
  /// Decoupled (AdamW-style) weight decay applied by the optimizer step,
  /// not through the gradients (0 disables).
  float weight_decay = 0.0f;
  /// Gradient shards per minibatch — the numeric-semantics knob (see file
  /// comment). 1 = exact serial loop. Capped per minibatch at its row
  /// count (a ragged tail batch with fewer rows than shards splits into
  /// fewer shards — still a pure function of the data and config).
  std::size_t shards = 1;
  /// Worker threads the shard tasks are scheduled on (0 = one per hardware
  /// thread). Execution only: results are bitwise identical for ANY value.
  std::size_t workers = 0;
  /// Extra loss hook evaluated once per step on the PRIMARY model
  /// (regularizers: KL, scale reg). Returns the additional loss value;
  /// gradients must be accumulated into the primary parameters' own grad
  /// tensors by the hook. Serial path: invoked between loss and backward
  /// (the historical order). Sharded path: invoked after the shard
  /// reduction, so it sees the complete data gradient.
  std::function<float()> regularizer;
  /// Optional span tracer (not owned; may be null): the sharded path then
  /// emits per-shard fwd/bwd spans and a per-step reduce span, the serial
  /// path a per-step span. Observability only — spans read clocks, never
  /// RNG streams, so attaching a tracer cannot change a trained bit.
  obs::Tracer* tracer = nullptr;
  /// Optional metrics registry (not owned; may be null): records the
  /// train.steps / train.examples counters, the train.step_us histogram
  /// and per-epoch train.epoch.loss / train.epoch.accuracy gauges.
  obs::Registry* metrics = nullptr;
};

/// Per-epoch observer: (epoch index, stats of that epoch).
using EpochCallback = std::function<void(std::size_t, const nn::EpochStats&)>;

/// Data-parallel classification trainer (softmax cross-entropy + Adam).
///
/// The trainer trains the caller's model in place. Shard clones (sharded
/// path only) are created lazily on the first sharded step — every layer
/// must implement Layer::clone() for shards > 1, the same requirement the
/// parallel evaluators impose. Optimizer state (Adam moments) lives for
/// the Trainer's lifetime, so consecutive fit() calls continue training.
class Trainer {
 public:
  Trainer(nn::Sequential& model, TrainerConfig config);

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// Run the configured number of epochs over `train`; returns per-epoch
  /// statistics (loss/accuracy plus wall-clock seconds and examples/sec).
  std::vector<nn::EpochStats> fit(const nn::Dataset& train);

  /// Observer invoked after every epoch (after the stats are final).
  void set_epoch_callback(EpochCallback callback) { callback_ = std::move(callback); }

  /// Snapshot the COMPLETE training state to `path`: model parameters and
  /// persistent state, optimizer moments and step count, every RNG stream
  /// (shuffle engine, the layers' own engines and counter streams), and
  /// the epoch/step cursor with the partially accumulated epoch stats.
  /// A run killed at any step boundary and resumed from this snapshot
  /// (restore() + fit()) produces final weights, optimizer moments and
  /// epoch statistics bitwise identical to the uninterrupted run — for
  /// the serial AND the sharded path, at any worker count.
  /// Throws nn::CheckpointError on I/O failure.
  void save(const std::string& path) const;

  /// Restore a snapshot written by save(). All-or-nothing: throws
  /// nn::CheckpointError (typed: truncated / shape mismatch / config
  /// fingerprint mismatch) with the trainer and model untouched. The
  /// numeric TrainerConfig fields must match the saving trainer's — they
  /// define the trained bits, so resuming under different ones would
  /// silently break the bitwise contract.
  void restore(const std::string& path);

  /// Cooperative preemption: `check` is polled after every optimizer step;
  /// when it returns true, fit() returns early at that step boundary with
  /// preempted() == true, leaving the trainer in a save()-able state.
  void set_preemption_check(std::function<bool()> check) {
    preempt_check_ = std::move(check);
  }
  /// Whether the last fit() returned early because of the preemption check.
  [[nodiscard]] bool preempted() const { return preempted_; }
  /// Next epoch to run (equals config().epochs once training completed).
  [[nodiscard]] std::size_t cursor_epoch() const { return cursor_epoch_; }
  /// Completed steps of the epoch the cursor points into.
  [[nodiscard]] std::size_t cursor_step() const { return step_in_epoch_; }

  [[nodiscard]] const TrainerConfig& config() const { return config_; }

 private:
  /// Outcome of one minibatch step, before averaging over the epoch.
  struct StepStats {
    float loss = 0.0f;
    std::size_t correct = 0;
  };

  /// Shard count of a minibatch with `rows` rows.
  [[nodiscard]] std::size_t shard_count(std::size_t rows) const;
  /// Lazily create the shard clones and their cached param/state views.
  void ensure_clones(std::size_t count);

  /// The historical serial step, in place on the primary model.
  StepStats step_serial(const nn::Dataset& train, std::span<const std::size_t> order,
                        std::size_t begin, std::size_t end);
  /// The data-parallel step: shard fan-out, ascending-shard reduction,
  /// regularizer, clip, optimizer step.
  StepStats step_sharded(const nn::Dataset& train, std::span<const std::size_t> order,
                         std::size_t begin, std::size_t end, std::uint64_t step_seed);

  nn::Sequential& model_;
  TrainerConfig config_;
  nn::Adam optimizer_;
  EpochCallback callback_;

  // Resumable-training cursor. The shuffle engine and the sample order are
  // members (not fit() locals) so they can be checkpointed — the order is
  // CUMULATIVE state (each epoch shuffles the previous epoch's
  // permutation). `epoch_start_engine_` / `epoch_start_order_` hold both
  // as of the top of the cursor epoch, BEFORE that epoch's shuffle:
  // re-shuffling from them on resume regenerates the epoch's order and
  // leaves engine and order exactly where the uninterrupted run's would be.
  std::mt19937_64 shuffle_engine_;
  std::string epoch_start_engine_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> epoch_start_order_;
  std::size_t cursor_epoch_ = 0;
  std::size_t step_in_epoch_ = 0;
  float partial_loss_ = 0.0f;        ///< epoch loss accumulated so far
  std::size_t partial_correct_ = 0;  ///< epoch hits accumulated so far
  std::function<bool()> preempt_check_;
  bool preempted_ = false;

  // Primary views (cached once; layer storage is heap-stable).
  std::vector<nn::ParamRef> params_;
  std::vector<nn::Tensor*> state_;

  // Sharded-path replicas and their cached views, index == shard slot.
  std::vector<nn::Sequential> clones_;
  std::vector<std::vector<nn::ParamRef>> clone_params_;
  std::vector<std::vector<nn::Tensor*>> clone_state_;
  std::vector<nn::Tensor> prior_state_;  ///< primary state at step start
};

}  // namespace neuspin::train
