#include "train/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "core/thread_pool.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neuspin::train {

namespace {

using Clock = std::chrono::steady_clock;

/// Salt that keeps per-shard module streams disjoint from the per-row mask
/// streams (rows are salted with their index, which is always < 2^63).
constexpr std::uint64_t kShardSalt = 0x8000000000000000ull;

}  // namespace

Trainer::Trainer(nn::Sequential& model, TrainerConfig config)
    : model_(model),
      config_(std::move(config)),
      optimizer_(model.parameters(), config_.lr, 0.9f, 0.999f, 1e-8f,
                 config_.weight_decay),
      params_(model.parameters()),
      state_(model.state_tensors()) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument("train::Trainer: batch_size must be at least 1");
  }
}

std::size_t Trainer::shard_count(std::size_t rows) const {
  return std::min(std::max<std::size_t>(config_.shards, 1), rows);
}

void Trainer::ensure_clones(std::size_t count) {
  while (clones_.size() < count) {
    // Sequential moves on vector growth keep the heap-allocated layers (and
    // therefore the cached ParamRef / state pointers) stable.
    clones_.push_back(model_.clone());
    clone_params_.push_back(clones_.back().parameters());
    clone_state_.push_back(clones_.back().state_tensors());
  }
}

Trainer::StepStats Trainer::step_serial(const nn::Dataset& train,
                                        std::span<const std::size_t> order,
                                        std::size_t begin, std::size_t end) {
  // The historical nn::train_classifier step, statement for statement: the
  // serial contract is bitwise equality with the pre-Trainer loop.
  auto [inputs, labels] = train.batch(order, begin, end);
  obs::ScopedSpan span(config_.tracer, "train:step", "train");
  span.arg("rows", static_cast<double>(end - begin));
  nn::Tensor logits = model_.forward(inputs, /*training=*/true);
  nn::LossResult loss =
      nn::softmax_cross_entropy(logits, labels, config_.label_smoothing);
  if (config_.regularizer) {
    loss.value += config_.regularizer();
  }
  (void)model_.backward(loss.grad);
  if (config_.grad_clip > 0.0f) {
    (void)nn::clip_grad_norm(params_, config_.grad_clip);
  }
  optimizer_.step();

  StepStats stats;
  stats.loss = loss.value;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (nn::argmax_row(logits, i) == labels[i]) {
      ++stats.correct;
    }
  }
  return stats;
}

Trainer::StepStats Trainer::step_sharded(const nn::Dataset& train,
                                         std::span<const std::size_t> order,
                                         std::size_t begin, std::size_t end,
                                         std::uint64_t step_seed) {
  const std::size_t rows = end - begin;
  const std::size_t shards = shard_count(rows);
  ensure_clones(shards);

  // Snapshot the primary's persistent state (batch-norm running stats) so
  // every shard starts from it and the fold-back below can apply each
  // shard's movement exactly once.
  prior_state_.resize(state_.size());
  for (std::size_t t = 0; t < state_.size(); ++t) {
    prior_state_[t] = *state_[t];
  }

  // Per-sample mask streams keyed to the row's index within the minibatch
  // — a global coordinate shared by every shard grid, so per-sample masks
  // never depend on how the batch was split.
  std::vector<std::uint64_t> row_seeds(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    row_seeds[r] = nn::mix_seed(step_seed, r);
  }

  // Contiguous ceil-balanced shard boundaries: a pure function of
  // (rows, shards).
  std::vector<std::size_t> bounds(shards + 1, 0);
  const std::size_t q = rows / shards;
  const std::size_t rem = rows % shards;
  for (std::size_t s = 0; s < shards; ++s) {
    bounds[s + 1] = bounds[s] + q + (s < rem ? 1 : 0);
  }

  std::vector<StepStats> partial(shards);
  auto run_shard = [&](std::size_t s) {
    nn::Sequential& clone = clones_[s];
    std::vector<nn::ParamRef>& cp = clone_params_[s];
    std::vector<nn::Tensor*>& cs = clone_state_[s];
    for (std::size_t k = 0; k < cp.size(); ++k) {
      *cp[k].value = *params_[k].value;
      cp[k].grad->fill(0.0f);
    }
    for (std::size_t t = 0; t < cs.size(); ++t) {
      *cs[t] = prior_state_[t];
    }
    // Per-pass module streams keyed to (step, shard); then row mode keys
    // the per-sample streams to the global row indices of this shard.
    clone.reseed(nn::mix_seed(step_seed, kShardSalt + s));
    clone.reseed_rows(
        std::span<const std::uint64_t>(row_seeds).subspan(bounds[s],
                                                          bounds[s + 1] - bounds[s]));

    auto [inputs, labels] =
        train.batch(order, begin + bounds[s], begin + bounds[s + 1]);
    // Per-shard fwd/bwd spans land on the pool thread's track.
    obs::ScopedSpan fwd_span(config_.tracer, "shard:fwd", "train");
    fwd_span.arg("shard", static_cast<double>(s));
    fwd_span.arg("rows", static_cast<double>(bounds[s + 1] - bounds[s]));
    nn::Tensor logits = clone.forward(inputs, /*training=*/true);
    fwd_span.end();
    // Normalize by the FULL minibatch row count: shard losses/gradients are
    // partial terms of the whole-minibatch mean.
    nn::LossResult loss =
        nn::softmax_cross_entropy(logits, labels, config_.label_smoothing, rows);
    obs::ScopedSpan bwd_span(config_.tracer, "shard:bwd", "train");
    bwd_span.arg("shard", static_cast<double>(s));
    (void)clone.backward(loss.grad);
    bwd_span.end();

    partial[s].loss = loss.value;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (nn::argmax_row(logits, i) == labels[i]) {
        ++partial[s].correct;
      }
    }
  };

  // `workers` picks how many pool threads the shard tasks spread over; the
  // shard -> clone binding and the reduction below are shard-indexed, so
  // the schedule cannot influence the numbers.
  core::ThreadPool::shared().run_chunked(
      shards, core::resolve_worker_count(config_.workers),
      [&run_shard](std::size_t /*chunk*/, std::size_t s_begin, std::size_t s_end) {
        for (std::size_t s = s_begin; s < s_end; ++s) {
          run_shard(s);
        }
      });

  // Fixed ascending-shard reduction into the primary ParamRefs.
  obs::ScopedSpan reduce_span(config_.tracer, "shard:reduce", "train");
  reduce_span.arg("shards", static_cast<double>(shards));
  StepStats stats;
  const float inv_shards = 1.0f / static_cast<float>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t k = 0; k < params_.size(); ++k) {
      *params_[k].grad += *clone_params_[s][k].grad;
    }
    for (std::size_t t = 0; t < state_.size(); ++t) {
      nn::Tensor& primary = *state_[t];
      const nn::Tensor& updated = *clone_state_[s][t];
      const nn::Tensor& prior = prior_state_[t];
      // Shard-AVERAGED EMA movement: summing raw deltas would scale the
      // prior's coefficient to (1 - shards * momentum), negative (and a
      // negative running variance -> NaN eval) once shards * momentum
      // exceeds 1. Averaging applies exactly one EMA step built from the
      // mean of the shard statistics, matching the serial update rate and
      // staying in the shard statistics' convex hull for any shard count.
      for (std::size_t i = 0; i < primary.numel(); ++i) {
        primary[i] += (updated[i] - prior[i]) * inv_shards;
      }
    }
    stats.loss += partial[s].loss;
    stats.correct += partial[s].correct;
  }
  reduce_span.end();

  if (config_.regularizer) {
    stats.loss += config_.regularizer();
  }
  if (config_.grad_clip > 0.0f) {
    (void)nn::clip_grad_norm(params_, config_.grad_clip);
  }
  optimizer_.step();
  return stats;
}

std::vector<nn::EpochStats> Trainer::fit(const nn::Dataset& train) {
  if (train.size() == 0) {
    throw std::invalid_argument("train::Trainer: empty dataset");
  }
  // Establish the loop's preconditions without touching any RNG engine:
  // an empty row-seed set returns every stochastic layer to shared-stream
  // mode (a prior fused-MC eval leaves row mode sticky, which a training
  // forward would otherwise reject or silently replay), and stale
  // gradients a caller accumulated outside the loop are dropped. Both are
  // no-ops on a fresh model, so the serial path stays bitwise-legacy.
  model_.reseed_rows(std::span<const std::uint64_t>());
  model_.zero_grad();
  std::mt19937_64 shuffle_engine(config_.shuffle_seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  // Optional observability: instruments resolved once so the per-step
  // recording is one relaxed atomic op (a null registry costs a pointer
  // check per step).
  obs::Counter* ctr_steps = nullptr;
  obs::Counter* ctr_examples = nullptr;
  obs::Histogram* hist_step_us = nullptr;
  if (config_.metrics != nullptr) {
    ctr_steps = &config_.metrics->counter("train.steps");
    ctr_examples = &config_.metrics->counter("train.examples");
    hist_step_us = &config_.metrics->histogram("train.step_us");
  }

  std::vector<nn::EpochStats> history;
  history.reserve(config_.epochs);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    optimizer_.set_lr(config_.lr *
                      std::pow(config_.lr_decay,
                               static_cast<float>(epoch / std::max<std::size_t>(
                                                              config_.lr_decay_period, 1))));
    std::shuffle(order.begin(), order.end(), shuffle_engine);
    const std::uint64_t epoch_seed = nn::mix_seed(config_.stream_seed, epoch);

    const auto t0 = Clock::now();
    nn::EpochStats stats;
    std::size_t correct = 0;
    std::size_t steps = 0;
    for (std::size_t begin = 0; begin < train.size(); begin += config_.batch_size) {
      const std::size_t end = std::min(begin + config_.batch_size, train.size());
      const auto step_t0 = Clock::now();
      StepStats step;
      if (shard_count(end - begin) <= 1) {
        step = step_serial(train, order, begin, end);
      } else {
        step = step_sharded(train, order, begin, end, nn::mix_seed(epoch_seed, steps));
      }
      if (ctr_steps != nullptr) {
        ctr_steps->inc();
        ctr_examples->inc(end - begin);
        hist_step_us->record(
            std::chrono::duration<double, std::micro>(Clock::now() - step_t0)
                .count());
      }
      stats.train_loss += step.loss;
      correct += step.correct;
      ++steps;
    }
    stats.train_loss /= static_cast<float>(std::max<std::size_t>(steps, 1));
    stats.train_accuracy =
        static_cast<float>(correct) / static_cast<float>(train.size());
    stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    stats.examples_per_sec =
        stats.seconds > 0.0 ? static_cast<double>(train.size()) / stats.seconds : 0.0;
    history.push_back(stats);
    if (config_.metrics != nullptr) {
      config_.metrics->gauge("train.epoch.loss").set(stats.train_loss);
      config_.metrics->gauge("train.epoch.accuracy").set(stats.train_accuracy);
    }
    if (config_.verbose) {
      std::printf("epoch %zu: loss=%.4f acc=%.4f (%.2fs, %.0f ex/s)\n", epoch,
                  stats.train_loss, static_cast<double>(stats.train_accuracy),
                  stats.seconds, stats.examples_per_sec);
    }
    if (callback_) {
      callback_(epoch, stats);
    }
  }
  return history;
}

}  // namespace neuspin::train
