#include "train/trainer.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/thread_pool.h"
#include "nn/checkpoint.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neuspin::train {

namespace {

using Clock = std::chrono::steady_clock;

/// Salt that keeps per-shard module streams disjoint from the per-row mask
/// streams (rows are salted with their index, which is always < 2^63).
constexpr std::uint64_t kShardSalt = 0x8000000000000000ull;

/// Magic of the trainer's full-training-state checkpoint ("NSPTRN1" — a
/// superset of the NSP1 model checkpoint, built on the same primitives).
constexpr std::uint64_t kTrainerMagic = 0x314e525450534eull;

/// Engine states and RNG blobs are text; anything past this is corruption,
/// not a plausible mt19937_64 dump (312 words * <=20 digits ≈ 7 KiB, the
/// model blob scales with stochastic layer count).
constexpr std::uint64_t kMaxRngBlobBytes = 1ull << 24;

std::uint64_t float_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float bits_float(std::uint64_t v) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(v));
}

std::string dump_engine(const std::mt19937_64& engine) {
  std::ostringstream os;
  os << engine;
  return os.str();
}

/// One numeric config field of the checkpoint fingerprint: the saved value
/// must equal the restoring trainer's, else the trained bits would diverge.
void check_fingerprint(std::uint64_t saved, std::uint64_t current,
                       const char* field) {
  if (saved != current) {
    throw nn::CheckpointError(
        nn::CheckpointFault::kBadHeader,
        std::string("trainer checkpoint was written under a different '") + field +
            "' (" + std::to_string(saved) + " saved, " + std::to_string(current) +
            " configured) — resuming would break the bitwise contract");
  }
}

}  // namespace

Trainer::Trainer(nn::Sequential& model, TrainerConfig config)
    : model_(model),
      config_(std::move(config)),
      optimizer_(model.parameters(), config_.lr, 0.9f, 0.999f, 1e-8f,
                 config_.weight_decay),
      params_(model.parameters()),
      state_(model.state_tensors()),
      shuffle_engine_(config_.shuffle_seed),
      epoch_start_engine_(dump_engine(shuffle_engine_)) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument("train::Trainer: batch_size must be at least 1");
  }
}

std::size_t Trainer::shard_count(std::size_t rows) const {
  return std::min(std::max<std::size_t>(config_.shards, 1), rows);
}

void Trainer::ensure_clones(std::size_t count) {
  while (clones_.size() < count) {
    // Sequential moves on vector growth keep the heap-allocated layers (and
    // therefore the cached ParamRef / state pointers) stable.
    clones_.push_back(model_.clone());
    clone_params_.push_back(clones_.back().parameters());
    clone_state_.push_back(clones_.back().state_tensors());
  }
}

Trainer::StepStats Trainer::step_serial(const nn::Dataset& train,
                                        std::span<const std::size_t> order,
                                        std::size_t begin, std::size_t end) {
  // The historical nn::train_classifier step, statement for statement: the
  // serial contract is bitwise equality with the pre-Trainer loop.
  auto [inputs, labels] = train.batch(order, begin, end);
  obs::ScopedSpan span(config_.tracer, "train:step", "train");
  span.arg("rows", static_cast<double>(end - begin));
  nn::Tensor logits = model_.forward(inputs, /*training=*/true);
  nn::LossResult loss =
      nn::softmax_cross_entropy(logits, labels, config_.label_smoothing);
  if (config_.regularizer) {
    loss.value += config_.regularizer();
  }
  (void)model_.backward(loss.grad);
  if (config_.grad_clip > 0.0f) {
    (void)nn::clip_grad_norm(params_, config_.grad_clip);
  }
  optimizer_.step();

  StepStats stats;
  stats.loss = loss.value;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (nn::argmax_row(logits, i) == labels[i]) {
      ++stats.correct;
    }
  }
  return stats;
}

Trainer::StepStats Trainer::step_sharded(const nn::Dataset& train,
                                         std::span<const std::size_t> order,
                                         std::size_t begin, std::size_t end,
                                         std::uint64_t step_seed) {
  const std::size_t rows = end - begin;
  const std::size_t shards = shard_count(rows);
  ensure_clones(shards);

  // Snapshot the primary's persistent state (batch-norm running stats) so
  // every shard starts from it and the fold-back below can apply each
  // shard's movement exactly once.
  prior_state_.resize(state_.size());
  for (std::size_t t = 0; t < state_.size(); ++t) {
    prior_state_[t] = *state_[t];
  }

  // Per-sample mask streams keyed to the row's index within the minibatch
  // — a global coordinate shared by every shard grid, so per-sample masks
  // never depend on how the batch was split.
  std::vector<std::uint64_t> row_seeds(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    row_seeds[r] = nn::mix_seed(step_seed, r);
  }

  // Contiguous ceil-balanced shard boundaries: a pure function of
  // (rows, shards).
  std::vector<std::size_t> bounds(shards + 1, 0);
  const std::size_t q = rows / shards;
  const std::size_t rem = rows % shards;
  for (std::size_t s = 0; s < shards; ++s) {
    bounds[s + 1] = bounds[s] + q + (s < rem ? 1 : 0);
  }

  std::vector<StepStats> partial(shards);
  auto run_shard = [&](std::size_t s) {
    nn::Sequential& clone = clones_[s];
    std::vector<nn::ParamRef>& cp = clone_params_[s];
    std::vector<nn::Tensor*>& cs = clone_state_[s];
    for (std::size_t k = 0; k < cp.size(); ++k) {
      *cp[k].value = *params_[k].value;
      cp[k].grad->fill(0.0f);
    }
    for (std::size_t t = 0; t < cs.size(); ++t) {
      *cs[t] = prior_state_[t];
    }
    // Per-pass module streams keyed to (step, shard); then row mode keys
    // the per-sample streams to the global row indices of this shard.
    clone.reseed(nn::mix_seed(step_seed, kShardSalt + s));
    clone.reseed_rows(
        std::span<const std::uint64_t>(row_seeds).subspan(bounds[s],
                                                          bounds[s + 1] - bounds[s]));

    auto [inputs, labels] =
        train.batch(order, begin + bounds[s], begin + bounds[s + 1]);
    // Per-shard fwd/bwd spans land on the pool thread's track.
    obs::ScopedSpan fwd_span(config_.tracer, "shard:fwd", "train");
    fwd_span.arg("shard", static_cast<double>(s));
    fwd_span.arg("rows", static_cast<double>(bounds[s + 1] - bounds[s]));
    nn::Tensor logits = clone.forward(inputs, /*training=*/true);
    fwd_span.end();
    // Normalize by the FULL minibatch row count: shard losses/gradients are
    // partial terms of the whole-minibatch mean.
    nn::LossResult loss =
        nn::softmax_cross_entropy(logits, labels, config_.label_smoothing, rows);
    obs::ScopedSpan bwd_span(config_.tracer, "shard:bwd", "train");
    bwd_span.arg("shard", static_cast<double>(s));
    (void)clone.backward(loss.grad);
    bwd_span.end();

    partial[s].loss = loss.value;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (nn::argmax_row(logits, i) == labels[i]) {
        ++partial[s].correct;
      }
    }
  };

  // `workers` picks how many pool threads the shard tasks spread over; the
  // shard -> clone binding and the reduction below are shard-indexed, so
  // the schedule cannot influence the numbers.
  core::ThreadPool::shared().run_chunked(
      shards, core::resolve_worker_count(config_.workers),
      [&run_shard](std::size_t /*chunk*/, std::size_t s_begin, std::size_t s_end) {
        for (std::size_t s = s_begin; s < s_end; ++s) {
          run_shard(s);
        }
      });

  // Fixed ascending-shard reduction into the primary ParamRefs.
  obs::ScopedSpan reduce_span(config_.tracer, "shard:reduce", "train");
  reduce_span.arg("shards", static_cast<double>(shards));
  StepStats stats;
  const float inv_shards = 1.0f / static_cast<float>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t k = 0; k < params_.size(); ++k) {
      *params_[k].grad += *clone_params_[s][k].grad;
    }
    for (std::size_t t = 0; t < state_.size(); ++t) {
      nn::Tensor& primary = *state_[t];
      const nn::Tensor& updated = *clone_state_[s][t];
      const nn::Tensor& prior = prior_state_[t];
      // Shard-AVERAGED EMA movement: summing raw deltas would scale the
      // prior's coefficient to (1 - shards * momentum), negative (and a
      // negative running variance -> NaN eval) once shards * momentum
      // exceeds 1. Averaging applies exactly one EMA step built from the
      // mean of the shard statistics, matching the serial update rate and
      // staying in the shard statistics' convex hull for any shard count.
      for (std::size_t i = 0; i < primary.numel(); ++i) {
        primary[i] += (updated[i] - prior[i]) * inv_shards;
      }
    }
    stats.loss += partial[s].loss;
    stats.correct += partial[s].correct;
  }
  reduce_span.end();

  if (config_.regularizer) {
    stats.loss += config_.regularizer();
  }
  if (config_.grad_clip > 0.0f) {
    (void)nn::clip_grad_norm(params_, config_.grad_clip);
  }
  optimizer_.step();
  return stats;
}

std::vector<nn::EpochStats> Trainer::fit(const nn::Dataset& train) {
  if (train.size() == 0) {
    throw std::invalid_argument("train::Trainer: empty dataset");
  }
  // Establish the loop's preconditions without touching any RNG engine:
  // an empty row-seed set returns every stochastic layer to shared-stream
  // mode (a prior fused-MC eval leaves row mode sticky, which a training
  // forward would otherwise reject or silently replay), and stale
  // gradients a caller accumulated outside the loop are dropped. Both are
  // no-ops on a fresh model, so the serial path stays bitwise-legacy.
  model_.reseed_rows(std::span<const std::uint64_t>());
  model_.zero_grad();
  preempted_ = false;
  if (cursor_epoch_ >= config_.epochs) {
    // The previous fit() ran to completion (or this is the first): start a
    // fresh pass with a freshly seeded shuffle stream — the historical
    // consecutive-fit semantics. A preempted or restored cursor is left
    // alone so this fit continues the interrupted run instead.
    cursor_epoch_ = 0;
    step_in_epoch_ = 0;
    partial_loss_ = 0.0f;
    partial_correct_ = 0;
    shuffle_engine_.seed(config_.shuffle_seed);
    epoch_start_engine_ = dump_engine(shuffle_engine_);
    order_.clear();
  }
  if (order_.empty()) {
    order_.resize(train.size());
    std::iota(order_.begin(), order_.end(), 0);
  } else if (order_.size() != train.size()) {
    throw std::invalid_argument(
        "train::Trainer::fit: resuming an interrupted run with a dataset of "
        "different size");
  }

  // Optional observability: instruments resolved once so the per-step
  // recording is one relaxed atomic op (a null registry costs a pointer
  // check per step).
  obs::Counter* ctr_steps = nullptr;
  obs::Counter* ctr_examples = nullptr;
  obs::Histogram* hist_step_us = nullptr;
  if (config_.metrics != nullptr) {
    ctr_steps = &config_.metrics->counter("train.steps");
    ctr_examples = &config_.metrics->counter("train.examples");
    hist_step_us = &config_.metrics->histogram("train.step_us");
  }

  std::vector<nn::EpochStats> history;
  history.reserve(config_.epochs - cursor_epoch_);
  for (std::size_t epoch = cursor_epoch_; epoch < config_.epochs; ++epoch) {
    optimizer_.set_lr(config_.lr *
                      std::pow(config_.lr_decay,
                               static_cast<float>(epoch / std::max<std::size_t>(
                                                              config_.lr_decay_period, 1))));
    // Snapshot the pre-shuffle engine/order, then shuffle: a resumed run
    // restores the snapshot and replays this shuffle, so engine and order
    // land exactly where the uninterrupted run's would.
    epoch_start_engine_ = dump_engine(shuffle_engine_);
    epoch_start_order_ = order_;
    std::shuffle(order_.begin(), order_.end(), shuffle_engine_);
    const std::uint64_t epoch_seed = nn::mix_seed(config_.stream_seed, epoch);

    const auto t0 = Clock::now();
    nn::EpochStats stats;
    // Resume mid-epoch: fold in the interrupted run's partial accumulators
    // and start the step counter where it left off — step seeds are
    // mix_seed(epoch_seed, steps), so the counter must stay aligned.
    stats.train_loss = partial_loss_;
    std::size_t correct = partial_correct_;
    std::size_t steps = step_in_epoch_;
    for (std::size_t begin = step_in_epoch_ * config_.batch_size;
         begin < train.size(); begin += config_.batch_size) {
      const std::size_t end = std::min(begin + config_.batch_size, train.size());
      const auto step_t0 = Clock::now();
      StepStats step;
      if (shard_count(end - begin) <= 1) {
        step = step_serial(train, order_, begin, end);
      } else {
        step = step_sharded(train, order_, begin, end, nn::mix_seed(epoch_seed, steps));
      }
      if (ctr_steps != nullptr) {
        ctr_steps->inc();
        ctr_examples->inc(end - begin);
        hist_step_us->record(
            std::chrono::duration<double, std::micro>(Clock::now() - step_t0)
                .count());
      }
      stats.train_loss += step.loss;
      correct += step.correct;
      ++steps;
      // Every optimizer step is a valid checkpoint boundary: keep the
      // cursor and partial accumulators current, then honor a pending
      // preemption — the caller save()s and a later restore()+fit()
      // continues from exactly this boundary.
      step_in_epoch_ = steps;
      partial_loss_ = stats.train_loss;
      partial_correct_ = correct;
      if (preempt_check_ && preempt_check_()) {
        cursor_epoch_ = epoch;
        preempted_ = true;
        return history;
      }
    }
    cursor_epoch_ = epoch + 1;
    step_in_epoch_ = 0;
    partial_loss_ = 0.0f;
    partial_correct_ = 0;
    stats.train_loss /= static_cast<float>(std::max<std::size_t>(steps, 1));
    stats.train_accuracy =
        static_cast<float>(correct) / static_cast<float>(train.size());
    stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    stats.examples_per_sec =
        stats.seconds > 0.0 ? static_cast<double>(train.size()) / stats.seconds : 0.0;
    history.push_back(stats);
    if (config_.metrics != nullptr) {
      config_.metrics->gauge("train.epoch.loss").set(stats.train_loss);
      config_.metrics->gauge("train.epoch.accuracy").set(stats.train_accuracy);
    }
    if (config_.verbose) {
      std::printf("epoch %zu: loss=%.4f acc=%.4f (%.2fs, %.0f ex/s)\n", epoch,
                  stats.train_loss, static_cast<double>(stats.train_accuracy),
                  stats.seconds, stats.examples_per_sec);
    }
    if (callback_) {
      callback_(epoch, stats);
    }
  }
  return history;
}

void Trainer::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw nn::CheckpointError(nn::CheckpointFault::kIo,
                              "cannot open " + path + " for writing");
  }
  nn::write_u64(out, kTrainerMagic);
  // Config fingerprint: the numeric fields that define the trained bits.
  nn::write_u64(out, config_.epochs);
  nn::write_u64(out, config_.batch_size);
  nn::write_u64(out, config_.lr_decay_period);
  nn::write_u64(out, config_.shards);
  nn::write_u64(out, config_.shuffle_seed);
  nn::write_u64(out, config_.stream_seed);
  nn::write_u64(out, float_bits(config_.lr));
  nn::write_u64(out, float_bits(config_.lr_decay));
  nn::write_u64(out, float_bits(config_.label_smoothing));
  nn::write_u64(out, float_bits(config_.grad_clip));
  nn::write_u64(out, float_bits(config_.weight_decay));
  // Epoch/step cursor and the partially accumulated epoch statistics.
  nn::write_u64(out, cursor_epoch_);
  nn::write_u64(out, step_in_epoch_);
  nn::write_u64(out, float_bits(partial_loss_));
  nn::write_u64(out, partial_correct_);
  // Shuffle stream: pre-shuffle engine state and order of the cursor epoch.
  nn::write_string(out, epoch_start_engine_);
  nn::write_u64(out, epoch_start_order_.size());
  for (const std::size_t idx : epoch_start_order_) {
    nn::write_u64(out, idx);
  }
  // Every layer's own RNG streams (the serial path advances them in place).
  std::ostringstream rng;
  model_.save_rng_state(rng);
  nn::write_string(out, rng.str());
  // Model tensors and optimizer state.
  nn::write_u64(out, params_.size());
  for (const auto& p : params_) {
    nn::write_tensor(out, *p.value);
  }
  nn::write_u64(out, state_.size());
  for (const nn::Tensor* t : state_) {
    nn::write_tensor(out, *t);
  }
  nn::write_u64(out, optimizer_.step_count());
  for (const nn::Tensor& m : optimizer_.first_moments()) {
    nn::write_tensor(out, m);
  }
  for (const nn::Tensor& v : optimizer_.second_moments()) {
    nn::write_tensor(out, v);
  }
  if (!out) {
    throw nn::CheckpointError(nn::CheckpointFault::kIo, "write failed for " + path);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("train.checkpoint.saves").inc();
  }
}

void Trainer::restore(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw nn::CheckpointError(nn::CheckpointFault::kIo, "cannot open " + path);
  }
  if (nn::read_u64(in, "trainer checkpoint magic") != kTrainerMagic) {
    throw nn::CheckpointError(nn::CheckpointFault::kBadMagic,
                              path + " is not a trainer checkpoint");
  }
  check_fingerprint(nn::read_u64(in, "epochs"), config_.epochs, "epochs");
  check_fingerprint(nn::read_u64(in, "batch_size"), config_.batch_size, "batch_size");
  check_fingerprint(nn::read_u64(in, "lr_decay_period"), config_.lr_decay_period,
                    "lr_decay_period");
  check_fingerprint(nn::read_u64(in, "shards"), config_.shards, "shards");
  check_fingerprint(nn::read_u64(in, "shuffle_seed"), config_.shuffle_seed,
                    "shuffle_seed");
  check_fingerprint(nn::read_u64(in, "stream_seed"), config_.stream_seed,
                    "stream_seed");
  check_fingerprint(nn::read_u64(in, "lr"), float_bits(config_.lr), "lr");
  check_fingerprint(nn::read_u64(in, "lr_decay"), float_bits(config_.lr_decay),
                    "lr_decay");
  check_fingerprint(nn::read_u64(in, "label_smoothing"),
                    float_bits(config_.label_smoothing), "label_smoothing");
  check_fingerprint(nn::read_u64(in, "grad_clip"), float_bits(config_.grad_clip),
                    "grad_clip");
  check_fingerprint(nn::read_u64(in, "weight_decay"),
                    float_bits(config_.weight_decay), "weight_decay");

  // Stage EVERYTHING before committing anything: a fault below must leave
  // the trainer and model exactly as they were.
  const std::uint64_t cursor_epoch = nn::read_u64(in, "cursor epoch");
  const std::uint64_t step_in_epoch = nn::read_u64(in, "cursor step");
  const float partial_loss = bits_float(nn::read_u64(in, "partial loss"));
  const std::uint64_t partial_correct = nn::read_u64(in, "partial correct");
  const std::string engine_state =
      nn::read_string(in, kMaxRngBlobBytes, "shuffle engine state");
  const std::uint64_t order_len = nn::read_u64(in, "order length");
  if (order_len > (1ull << 40)) {
    throw nn::CheckpointError(nn::CheckpointFault::kBadHeader,
                              "implausible order length " + std::to_string(order_len));
  }
  std::vector<std::size_t> order(order_len);
  for (std::uint64_t i = 0; i < order_len; ++i) {
    order[i] = static_cast<std::size_t>(nn::read_u64(in, "order entry"));
  }
  const std::string rng_blob =
      nn::read_string(in, kMaxRngBlobBytes, "model rng state");
  const std::uint64_t param_count = nn::read_u64(in, "parameter count");
  if (param_count != params_.size()) {
    throw nn::CheckpointError(nn::CheckpointFault::kCountMismatch,
                              path + " holds " + std::to_string(param_count) +
                                  " parameters, model expects " +
                                  std::to_string(params_.size()));
  }
  std::vector<nn::Tensor> staged_params;
  staged_params.reserve(params_.size());
  for (std::size_t k = 0; k < params_.size(); ++k) {
    nn::Tensor scratch(params_[k].value->shape());
    nn::read_tensor(in, scratch, "parameter " + std::to_string(k));
    staged_params.push_back(std::move(scratch));
  }
  const std::uint64_t state_count = nn::read_u64(in, "state tensor count");
  if (state_count != state_.size()) {
    throw nn::CheckpointError(nn::CheckpointFault::kCountMismatch,
                              path + " holds " + std::to_string(state_count) +
                                  " state tensors, model expects " +
                                  std::to_string(state_.size()));
  }
  std::vector<nn::Tensor> staged_state;
  staged_state.reserve(state_.size());
  for (std::size_t t = 0; t < state_.size(); ++t) {
    nn::Tensor scratch(state_[t]->shape());
    nn::read_tensor(in, scratch, "state tensor " + std::to_string(t));
    staged_state.push_back(std::move(scratch));
  }
  const std::uint64_t adam_t = nn::read_u64(in, "optimizer step count");
  std::vector<nn::Tensor> staged_m;
  staged_m.reserve(params_.size());
  for (std::size_t k = 0; k < params_.size(); ++k) {
    nn::Tensor scratch(optimizer_.first_moments()[k].shape());
    nn::read_tensor(in, scratch, "first moment " + std::to_string(k));
    staged_m.push_back(std::move(scratch));
  }
  std::vector<nn::Tensor> staged_v;
  staged_v.reserve(params_.size());
  for (std::size_t k = 0; k < params_.size(); ++k) {
    nn::Tensor scratch(optimizer_.second_moments()[k].shape());
    nn::read_tensor(in, scratch, "second moment " + std::to_string(k));
    staged_v.push_back(std::move(scratch));
  }

  // Parse both RNG blobs against scratch targets before touching the real
  // ones: a corrupt blob throws here with nothing modified.
  std::mt19937_64 engine;
  {
    std::istringstream es(engine_state);
    es >> engine;
    if (es.fail()) {
      throw nn::CheckpointError(nn::CheckpointFault::kTruncated,
                                "shuffle engine state is corrupt");
    }
  }
  {
    nn::Sequential probe = model_.clone();
    std::istringstream rs(rng_blob);
    probe.load_rng_state(rs);
    if (rs.fail()) {
      throw nn::CheckpointError(nn::CheckpointFault::kTruncated,
                                "model RNG state blob is corrupt");
    }
  }

  // Commit.
  for (std::size_t k = 0; k < params_.size(); ++k) {
    *params_[k].value = staged_params[k];
    params_[k].grad->fill(0.0f);
    optimizer_.first_moments()[k] = std::move(staged_m[k]);
    optimizer_.second_moments()[k] = std::move(staged_v[k]);
  }
  for (std::size_t t = 0; t < state_.size(); ++t) {
    *state_[t] = staged_state[t];
  }
  optimizer_.set_step_count(static_cast<std::size_t>(adam_t));
  {
    std::istringstream rs(rng_blob);
    model_.load_rng_state(rs);
  }
  shuffle_engine_ = engine;
  epoch_start_engine_ = engine_state;
  order_ = order;
  epoch_start_order_ = std::move(order);
  cursor_epoch_ = static_cast<std::size_t>(cursor_epoch);
  step_in_epoch_ = static_cast<std::size_t>(step_in_epoch);
  partial_loss_ = partial_loss;
  partial_correct_ = static_cast<std::size_t>(partial_correct);
  preempted_ = false;
  if (config_.metrics != nullptr) {
    config_.metrics->counter("train.checkpoint.restores").inc();
  }
}

}  // namespace neuspin::train
