// Reproduces the SpinDrop claims (C1, paper §III-A.1):
//   * "up to 100% detection of out-of-distribution data"
//   * "an improvement in accuracy of ~2%" over the deterministic BNN
//   * "up to 15% for corrupted data"
//
// Protocol: train the binary CNN once deterministically and once with
// SpinDrop; evaluate clean accuracy, a corruption severity sweep, and the
// three OOD suites using predictive-entropy detection.
#include <cstdio>

#include "bench_util.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/corruption.h"
#include "data/ood.h"
#include "data/strokes.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_claims_spindrop",
                "C1 — SpinDrop: accuracy, corrupted data, OOD detection");

  data::StrokeConfig sc;
  sc.samples_per_class = 120;
  const nn::Dataset train = data::standardize_per_sample(data::make_stroke_digits(sc, 31));
  sc.samples_per_class = 40;
  const nn::Dataset test_raw = data::make_stroke_digits(sc, 32);
  const nn::Dataset test = data::standardize_per_sample(test_raw);

  auto build_and_fit = [&](core::Method method) {
    core::ModelConfig mc;
    mc.method = method;
    mc.dropout_p = 0.1;
    mc.hw.enabled = true;
    mc.hw.quant_levels = 256;
    mc.hw.noise_fraction = 0.01f;
    core::BuiltModel model = method == core::Method::kDeterministic
                                 ? core::make_binary_cnn(mc)
                                 : core::make_binary_cnn(mc);
    core::FitConfig fc;
    fc.epochs = 7;
    (void)core::fit(model, train, fc);
    return model;
  };

  core::BuiltModel deterministic = build_and_fit(core::Method::kDeterministic);
  core::BuiltModel spindrop = build_and_fit(core::Method::kSpinDrop);

  const std::size_t mc_passes = 20;
  const auto det_clean = core::evaluate(deterministic, test, 1);
  const auto spin_clean = core::evaluate(spindrop, test, mc_passes);
  std::printf("Clean accuracy: deterministic %.2f%%, SpinDrop %.2f%% "
              "(delta %+.2f pts; paper: ~+2%%)\n",
              100.0f * det_clean.accuracy, 100.0f * spin_clean.accuracy,
              100.0f * (spin_clean.accuracy - det_clean.accuracy));
  std::printf("Calibration:    deterministic ECE %.3f NLL %.3f | SpinDrop ECE %.3f "
              "NLL %.3f\n\n",
              det_clean.ece, det_clean.nll, spin_clean.ece, spin_clean.nll);

  // --- Corruption severity sweep (paper: "up to 15% for corrupted data") ---
  std::printf("%-16s %8s | %12s %12s %8s\n", "corruption", "severity", "det[%]",
              "spindrop[%]", "delta");
  float best_delta = 0.0f;
  for (data::CorruptionKind kind : data::all_corruptions()) {
    for (float severity : {0.4f, 0.7f, 1.0f}) {
      const nn::Dataset corrupted =
          data::standardize_per_sample(data::corrupt(test_raw, kind, severity, 5));
      const float det_acc = core::evaluate(deterministic, corrupted, 1).accuracy;
      const float spin_acc = core::evaluate(spindrop, corrupted, mc_passes).accuracy;
      const float delta = 100.0f * (spin_acc - det_acc);
      best_delta = std::max(best_delta, delta);
      std::printf("%-16s %8.1f | %12.2f %12.2f %+8.2f\n",
                  data::corruption_name(kind).c_str(), severity, 100.0f * det_acc,
                  100.0f * spin_acc, delta);
    }
  }
  std::printf("Best corrupted-data gain: %+.2f pts (paper: up to +15%%)\n\n",
              best_delta);

  // --- OOD detection (paper: "up to 100% detection") ---
  std::printf("%-20s %10s %12s\n", "ood suite", "AUROC", "detect@95");
  for (data::OodKind kind : data::all_ood_kinds()) {
    const nn::Dataset ood =
        data::standardize_per_sample(data::make_ood(test_raw, kind, 200, 6));
    const auto result = core::evaluate_ood(spindrop, test, ood, mc_passes);
    std::printf("%-20s %10.3f %11.1f%%\n", data::ood_name(kind).c_str(), result.auroc,
                100.0f * result.detection_rate);
  }
  std::printf("(paper: up to 100%% OOD detection)\n");
  return 0;
}
