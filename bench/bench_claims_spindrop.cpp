// Reproduces the SpinDrop claims (C1, paper §III-A.1):
//   * "up to 100% detection of out-of-distribution data"
//   * "an improvement in accuracy of ~2%" over the deterministic BNN
//   * "up to 15% for corrupted data"
//
// Protocol: train the binary CNN once deterministically and once with
// SpinDrop; evaluate clean accuracy, a corruption severity sweep, and the
// three OOD suites using predictive-entropy detection.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/corruption.h"
#include "data/ood.h"
#include "data/strokes.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_claims_spindrop",
                "C1 — SpinDrop: accuracy, corrupted data, OOD detection");

  data::StrokeConfig sc;
  sc.samples_per_class = 120;
  const nn::Dataset train = data::standardize_per_sample(data::make_stroke_digits(sc, 31));
  sc.samples_per_class = 40;
  const nn::Dataset test_raw = data::make_stroke_digits(sc, 32);
  const nn::Dataset test = data::standardize_per_sample(test_raw);

  auto build_and_fit = [&](core::Method method) {
    core::ModelConfig mc;
    mc.method = method;
    mc.dropout_p = 0.1;
    mc.hw.enabled = true;
    mc.hw.quant_levels = 256;
    mc.hw.noise_fraction = 0.01f;
    core::BuiltModel model = core::make_binary_cnn(mc);
    core::FitConfig fc;
    fc.epochs = 7;
    (void)core::fit(model, train, fc);
    return model;
  };

  core::BuiltModel deterministic = build_and_fit(core::Method::kDeterministic);
  core::BuiltModel spindrop = build_and_fit(core::Method::kSpinDrop);

  const std::size_t mc_passes = 20;
  const auto det_clean = core::evaluate(deterministic, test, 1);
  const auto spin_clean = core::evaluate(spindrop, test, mc_passes);
  std::printf("Clean accuracy: deterministic %.2f%%, SpinDrop %.2f%% "
              "(delta %+.2f pts; paper: ~+2%%)\n",
              100.0f * det_clean.accuracy, 100.0f * spin_clean.accuracy,
              100.0f * (spin_clean.accuracy - det_clean.accuracy));
  std::printf("Calibration:    deterministic ECE %.3f NLL %.3f | SpinDrop ECE %.3f "
              "NLL %.3f\n\n",
              det_clean.ece, det_clean.nll, spin_clean.ece, spin_clean.nll);

  // --- MC throughput: the T stochastic passes fan out over the worker
  //     pool; serial and pooled runs produce identical numbers (the
  //     reproducibility contract of core::evaluate), only faster.
  {
    core::EvalOptions serial_opts;
    serial_opts.mc_samples = 2 * mc_passes;
    serial_opts.threads = 1;
    core::EvalOptions pooled_opts = serial_opts;
    pooled_opts.threads = 0;  // one worker per hardware thread
    const auto time_eval = [&](const core::EvalOptions& opts) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)core::evaluate(spindrop, test, opts);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    const double t_serial = time_eval(serial_opts);
    const double t_pooled = time_eval(pooled_opts);
    // Workers are capped at the MC sample count; report what actually ran.
    const std::size_t workers =
        std::min<std::size_t>(std::thread::hardware_concurrency(),
                              pooled_opts.mc_samples);
    std::printf("MC eval wall-clock (T=%zu): serial %.2fs | pooled/%zu workers %.2fs "
                "| speedup %.2fx\n\n",
                serial_opts.mc_samples, t_serial, workers, t_pooled,
                t_serial / t_pooled);
  }

  // --- Corruption severity sweep (paper: "up to 15% for corrupted data") ---
  std::printf("%-16s %8s | %12s %12s %8s\n", "corruption", "severity", "det[%]",
              "spindrop[%]", "delta");
  const std::vector<float> severities = {0.4f, 0.7f, 1.0f};
  // Both sweeps must share one corruption seed: identical corrupted data
  // and identical (kind, severity) ordering keep the rows zip-able.
  const std::uint64_t corruption_seed = 5;
  core::EvalOptions det_opts;
  det_opts.mc_samples = 1;
  core::EvalOptions spin_opts;
  spin_opts.mc_samples = mc_passes;
  const auto det_sweep =
      core::evaluate_corruption(deterministic, test_raw, data::all_corruptions(),
                                severities, corruption_seed, det_opts);
  const auto spin_sweep =
      core::evaluate_corruption(spindrop, test_raw, data::all_corruptions(),
                                severities, corruption_seed, spin_opts);
  float best_delta = 0.0f;
  for (std::size_t i = 0; i < det_sweep.size(); ++i) {
    const float det_acc = det_sweep[i].result.accuracy;
    const float spin_acc = spin_sweep[i].result.accuracy;
    const float delta = 100.0f * (spin_acc - det_acc);
    best_delta = std::max(best_delta, delta);
    std::printf("%-16s %8.1f | %12.2f %12.2f %+8.2f\n",
                data::corruption_name(det_sweep[i].kind).c_str(),
                det_sweep[i].severity, 100.0f * det_acc, 100.0f * spin_acc, delta);
  }
  std::printf("Best corrupted-data gain: %+.2f pts (paper: up to +15%%)\n\n",
              best_delta);

  // --- OOD detection (paper: "up to 100% detection") ---
  std::printf("%-20s %10s %12s\n", "ood suite", "AUROC", "detect@95");
  for (data::OodKind kind : data::all_ood_kinds()) {
    const nn::Dataset ood =
        data::standardize_per_sample(data::make_ood(test_raw, kind, 200, 6));
    const auto result = core::evaluate_ood(spindrop, test, ood, mc_passes);
    std::printf("%-20s %10.3f %11.1f%%\n", data::ood_name(kind).c_str(), result.auroc,
                100.0f * result.detection_rate);
  }
  std::printf("(paper: up to 100%% OOD detection)\n");
  return 0;
}
