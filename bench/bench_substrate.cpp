// P1 — substrate microbenchmarks (google-benchmark): device physics, RNG
// throughput, crossbar MAC, ADC and tile forward passes. These support all
// table/figure reproductions by showing the simulator itself is fast
// enough for the Monte-Carlo protocols.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "device/rng.h"
#include "device/switching.h"
#include "xbar/adc.h"
#include "xbar/crossbar.h"
#include "xbar/tile.h"

namespace {

using namespace neuspin;

void BM_SwitchingProbability(benchmark::State& state) {
  const device::SwitchingModel model{device::MtjParams{}};
  double current = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.switching_probability(current, 2.0));
    current = current < 100.0 ? current + 1.0 : 10.0;
  }
}
BENCHMARK(BM_SwitchingProbability);

void BM_CurrentForProbability(benchmark::State& state) {
  const device::SwitchingModel model{device::MtjParams{}};
  double p = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.current_for_probability(p, 2.0));
    p = p < 0.9 ? p + 0.05 : 0.1;
  }
}
BENCHMARK(BM_CurrentForProbability);

void BM_SpinRngBit(benchmark::State& state) {
  device::SpinRng rng(device::SpinRngConfig{}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_bit());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SpinRngBit);

void BM_CrossbarMac(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  xbar::CrossbarConfig config;
  config.rows = rows;
  config.cols = 128;
  xbar::Crossbar xb(config);
  std::vector<float> weights(rows * 128, 1.0f);
  xb.program_binary(weights);
  std::vector<device::Volt> v(rows, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xb.mac(v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows) * 128);
}
BENCHMARK(BM_CrossbarMac)->Arg(32)->Arg(128);

void BM_AdcQuantize(benchmark::State& state) {
  const xbar::Adc adc(8, 100.0);
  double i = -99.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc.quantize(i));
    i = i < 99.0 ? i + 0.37 : -99.0;
  }
}
BENCHMARK(BM_AdcQuantize);

void BM_TileForward(benchmark::State& state) {
  const std::size_t in = 256;
  const std::size_t out = 128;
  std::mt19937_64 engine(1);
  std::vector<float> weights(in * out);
  for (auto& w : weights) {
    w = (engine() & 1) ? 1.0f : -1.0f;
  }
  std::vector<float> scales(out, 1.0f);
  xbar::TileConfig config;
  xbar::DenseTile tile(config, in, out, weights, scales, 2);
  std::vector<float> input(in, 1.0f);
  std::mt19937_64 fwd(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile.forward(input, nullptr, fwd));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(in) * static_cast<int64_t>(out));
}
BENCHMARK(BM_TileForward);

}  // namespace

BENCHMARK_MAIN();
