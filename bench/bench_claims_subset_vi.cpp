// Reproduces the Bayesian Sub-Set Parameter Inference claims (C5, paper
// §III-B.1):
//   * "up to 70x lower power consumption" vs traditional per-weight VI
//   * "158.7x lower storage memory requirements"
//   * "comparable accuracy to full-precision models while estimating
//     uncertainty efficiently"
//   * "increase in negative log-likelihood under dataset shifts"
#include <cstdio>

#include "bench_util.h"
#include "core/census.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/corruption.h"
#include "data/strokes.h"
#include "nn/layers.h"
#include "nn/model.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_claims_subset_vi",
                "C5 — Bayesian Sub-Set Parameter Inference power/memory/accuracy");

  // ---------- power & memory census vs traditional VI ----------
  const core::ArchSpec arch = core::small_cnn_arch();
  core::CensusConfig config;
  config.mc_passes = 20;
  const auto& params = energy::default_energy_params();

  const auto subset = core::inference_census(arch, core::Method::kSubsetVi, config);
  const auto traditional =
      core::inference_census(arch, core::Method::kTraditionalVi, config);
  std::printf("Inference energy: traditional per-weight VI %.3f uJ vs sub-set VI "
              "%.3f uJ -> %.1fx lower (paper: 70x)\n",
              energy::to_microjoule(traditional.total_energy(params)),
              energy::to_microjoule(subset.total_energy(params)),
              traditional.total_energy(params) / subset.total_energy(params));

  const auto fp_subset = core::storage_census(arch, core::Method::kSubsetVi, config);
  const auto fp_traditional =
      core::storage_census(arch, core::Method::kTraditionalVi, config);
  std::printf("Storage: traditional %.2f KiB vs sub-set %.2f KiB -> %.1fx lower "
              "(paper: 158.7x)\n",
              fp_traditional.total_kib(), fp_subset.total_kib(),
              static_cast<double>(fp_traditional.total_bits()) /
                  static_cast<double>(fp_subset.total_bits()));
  std::printf("  traditional: %s\n  sub-set:     %s\n\n", fp_traditional.report().c_str(),
              fp_subset.report().c_str());

  // ---------- accuracy: binary sub-set VI vs full-precision point net ----------
  data::StrokeConfig sc;
  sc.samples_per_class = 120;
  const nn::Dataset train_img = data::make_stroke_digits(sc, 71);
  sc.samples_per_class = 40;
  const nn::Dataset test_img = data::make_stroke_digits(sc, 72);
  const nn::Dataset train = data::flatten_dataset(train_img);
  const nn::Dataset test = data::flatten_dataset(test_img);

  // Full-precision reference MLP (Dense+ReLU), trained the same way.
  std::mt19937_64 engine(73);
  nn::Sequential fp32;
  fp32.emplace<nn::Dense>(256, 128, engine);
  fp32.emplace<nn::BatchNorm>(128);
  fp32.emplace<nn::ReLU>();
  fp32.emplace<nn::Dense>(128, 128, engine);
  fp32.emplace<nn::BatchNorm>(128);
  fp32.emplace<nn::ReLU>();
  fp32.emplace<nn::Dense>(128, 10, engine);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.lr = 0.01f;
  (void)nn::train_classifier(fp32, train, tc);
  const float fp32_acc = nn::evaluate_accuracy(fp32, test);

  core::ModelConfig mc;
  mc.method = core::Method::kSubsetVi;
  core::BuiltModel subset_model = core::make_binary_mlp(mc, 256, {128, 128}, 10);
  core::FitConfig fc;
  fc.epochs = 6;
  fc.kl_weight = 1e-4f;
  (void)core::fit(subset_model, train, fc);
  const auto subset_eval = core::evaluate(subset_model, test, 20);

  std::printf("Accuracy: full-precision MLP %.2f%% vs binary sub-set VI %.2f%% "
              "(paper: comparable)\n",
              100.0f * fp32_acc, 100.0f * subset_eval.accuracy);
  std::printf("Sub-set VI calibration: NLL %.3f, ECE %.3f, Brier %.3f\n\n",
              subset_eval.nll, subset_eval.ece, subset_eval.brier);

  // ---------- NLL increase under dataset shift ----------
  std::printf("%-16s %8s %10s %10s\n", "shift", "severity", "acc[%]", "NLL");
  for (float severity : {0.0f, 0.4f, 0.8f}) {
    const nn::Dataset shifted_img =
        data::corrupt(test_img, data::CorruptionKind::kGaussianNoise, severity, 74);
    const nn::Dataset shifted = data::flatten_dataset(shifted_img);
    const auto ev = core::evaluate(subset_model, shifted, 20);
    std::printf("%-16s %8.1f %10.2f %10.3f\n", "gaussian_noise", severity,
                100.0f * ev.accuracy, ev.nll);
  }
  std::printf("(paper: NLL increases under dataset shift — uncertainty grows as "
              "inputs leave the training distribution)\n");
  return 0;
}
