// Reproduces Fig. 3: the SpinBayes layer architecture — N crossbars, a
// spintronic one-hot Arbiter, adder-accumulator and averaging block.
//
// Regenerated quantitative content:
//   * uniformity of the Arbiter's one-hot selection (the mechanism that
//     makes in-memory posterior sampling unbiased),
//   * sampling cost: arbiter bits per pass vs on-the-fly Gaussian
//     sampling (traditional VI), the comparison motivating the topology,
//   * the averaging block producing Monte-Carlo mean and variance.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/census.h"
#include "core/spinbayes.h"
#include "energy/accountant.h"
#include "xbar/periphery.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_fig3_spinbayes_arch",
                "Fig. 3 — SpinBayes N-crossbar layer with spintronic Arbiter");

  // --- Arbiter selection uniformity across N ---
  std::printf("Arbiter one-hot selection histogram (10000 draws):\n");
  for (std::size_t n : {4u, 8u, 16u}) {
    core::SpinArbiter arbiter(n, 77);
    std::vector<std::size_t> counts(n, 0);
    for (int i = 0; i < 10000; ++i) {
      ++counts[arbiter.select()];
    }
    std::printf("  N=%-3zu bits/draw=%zu  counts:", n, arbiter.bits_per_draw());
    for (std::size_t c : counts) {
      std::printf(" %zu", c);
    }
    std::printf("\n");
  }

  // --- Sampling cost: select-a-crossbar vs sample-every-parameter ---
  const core::ArchSpec arch = core::small_cnn_arch();
  core::CensusConfig config;
  config.mc_passes = 20;
  const auto& params = energy::default_energy_params();
  std::printf("\nStochastic sampling cost per forward pass (whole network):\n");
  std::printf("  %-28s %12s %14s\n", "scheme", "RNG bits", "energy[pJ]");
  for (auto method : {core::Method::kSpinBayes, core::Method::kSubsetVi,
                      core::Method::kTraditionalVi}) {
    const auto bits = core::rng_bits_per_pass(arch, method, config);
    std::printf("  %-28s %12llu %14.1f\n", core::method_name(method).c_str(),
                static_cast<unsigned long long>(bits),
                static_cast<double>(bits) * params.rng_dropout_cycle);
  }
  std::printf("  -> SpinBayes turns Monte-Carlo sampling into a crossbar *select*: "
              "latency independent of parameter count.\n");

  // --- Averaging block (Fig. 3 right): MC mean + variance ---
  energy::EnergyLedger ledger;
  xbar::AveragingBlock averager(4, &ledger);
  core::SpinArbiter arbiter(8, 99);
  std::vector<std::vector<double>> instance_logits;
  for (int n = 0; n < 8; ++n) {
    instance_logits.push_back(
        {1.0 + 0.05 * n, 0.5 - 0.03 * n, -0.2 + 0.02 * n, -1.0});
  }
  for (std::size_t pass = 0; pass < config.mc_passes; ++pass) {
    averager.add_sample(instance_logits[arbiter.select()]);
  }
  const auto mean = averager.mean();
  const auto var = averager.variance();
  std::printf("\nAveraging block over T=%zu passes: mean=[%.3f %.3f %.3f %.3f], "
              "var=[%.4f %.4f %.4f %.4f]\n",
              config.mc_passes, mean[0], mean[1], mean[2], mean[3], var[0], var[1],
              var[2], var[3]);
  std::printf("Averaging-block digital energy: %.2f pJ\n", ledger.total_energy());

  // --- Storage cost of the in-memory approximation ---
  std::printf("\nStorage: %s\n",
              core::storage_census(arch, core::Method::kSpinBayes, config)
                  .report()
                  .c_str());
  return 0;
}
