// Reproduces the SpinScaleDrop claims (C3, paper §III-A.3):
//   * "up to 1% improvement in predictive performance"
//   * "more than 100x energy savings compared to existing methods"
//   * the layer-dependent adaptive dropout probability
//   * robustness of uncertainty under the Gaussian-distributed hardware
//     dropout probability (the spintronic module's variation model).
#include <cstdio>

#include "bench_util.h"
#include "core/census.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "core/scaledrop.h"
#include "data/ood.h"
#include "data/strokes.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_claims_scaledrop",
                "C3 — SpinScaleDrop accuracy & energy vs SpinDrop");

  data::StrokeConfig sc;
  sc.samples_per_class = 120;
  const nn::Dataset train = data::standardize_per_sample(data::make_stroke_digits(sc, 41));
  sc.samples_per_class = 40;
  const nn::Dataset test_raw = data::make_stroke_digits(sc, 42);
  const nn::Dataset test = data::standardize_per_sample(test_raw);

  // --- adaptive probability rule ---
  std::printf("Adaptive layer-dependent dropout probability:\n");
  for (std::size_t n : {72u, 1152u, 16384u, 262144u, 1048576u}) {
    std::printf("  layer with %8zu params -> p = %.3f\n", n,
                core::adaptive_scale_dropout_p(n));
  }

  // --- accuracy: deterministic vs scale-dropout (ideal and hw-variant) ---
  auto fit_model = [&](core::Method method, double hw_variation) {
    core::ModelConfig mc;
    mc.method = method;
    mc.hw_variation = hw_variation;
    mc.hw.enabled = true;
    mc.hw.quant_levels = 256;
    mc.hw.noise_fraction = 0.01f;
    core::BuiltModel model = core::make_binary_cnn(mc);
    core::FitConfig fc;
    fc.epochs = 7;
    fc.scale_lambda = 1e-2f;
    (void)core::fit(model, train, fc);
    return model;
  };

  core::BuiltModel deterministic = fit_model(core::Method::kDeterministic, 0.0);
  core::BuiltModel scaledrop = fit_model(core::Method::kSpinScaleDrop, 0.0);
  core::BuiltModel scaledrop_hw = fit_model(core::Method::kSpinScaleDrop, 1.0);

  const auto det = core::evaluate(deterministic, test, 1);
  const auto ideal = core::evaluate(scaledrop, test, 20);
  const auto hw = core::evaluate(scaledrop_hw, test, 20);
  std::printf("\nAccuracy: deterministic %.2f%% | ScaleDrop %.2f%% (%+.2f pts; paper: "
              "up to +1%%) | ScaleDrop w/ module variation %.2f%%\n",
              100.0f * det.accuracy, 100.0f * ideal.accuracy,
              100.0f * (ideal.accuracy - det.accuracy), 100.0f * hw.accuracy);
  std::printf("NLL: %.3f | %.3f | %.3f   ECE: %.3f | %.3f | %.3f\n", det.nll, ideal.nll,
              hw.nll, det.ece, ideal.ece, hw.ece);

  // --- OOD with the hardware-variant module ---
  const nn::Dataset ood = data::standardize_per_sample(
      data::make_ood(test_raw, data::OodKind::kUniformNoise, 200, 7));
  const auto ood_result = core::evaluate_ood(scaledrop_hw, test, ood, 20);
  std::printf("OOD (uniform noise) with Gaussian-fitted hardware p: AUROC %.3f, "
              "detect@95 %.1f%%\n",
              ood_result.auroc, 100.0f * ood_result.detection_rate);

  // --- energy: the >100x claim against the per-neuron dropout design ---
  const core::ArchSpec arch = core::small_cnn_arch();
  core::CensusConfig config;
  config.mc_passes = 20;
  const auto& params = energy::default_energy_params();
  const auto spin = core::inference_census(arch, core::Method::kSpinDrop, config);
  const auto scale = core::inference_census(arch, core::Method::kSpinScaleDrop, config);
  const double rng_ratio =
      spin.component_energy(energy::Component::kRngDropoutCycle, params) /
      scale.component_energy(energy::Component::kRngDropoutCycle, params);
  std::printf("\nDropout-machinery energy reduction vs SpinDrop: %.0fx "
              "(paper: >100x)\n",
              rng_ratio);
  std::printf("Total energy: %.3f uJ vs %.3f uJ (%.1fx)\n",
              energy::to_microjoule(spin.total_energy(params)),
              energy::to_microjoule(scale.total_energy(params)),
              spin.total_energy(params) / scale.total_energy(params));
  return 0;
}
