// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdio>
#include <string>

namespace neuspin::bench {

/// Print a banner naming the reproduced paper artifact.
inline void banner(const std::string& experiment, const std::string& paper_artifact) {
  std::printf("\n==============================================================\n");
  std::printf("NeuSpin reproduction | %s\n", experiment.c_str());
  std::printf("Paper artifact: %s\n", paper_artifact.c_str());
  std::printf("==============================================================\n");
}

}  // namespace neuspin::bench
