// Reproduces Fig. 2: the Scale-Dropout inference architecture — analog
// SOT-MRAM crossbar, sense-amplifier read-out, scale memory (SRAM), a
// single spintronic scale-dropout module per layer, and digital periphery.
//
// The quantitative content regenerated here is the per-component energy
// breakdown of one Bayesian inference (T=20) on that architecture, side by
// side with the per-neuron SpinDrop architecture it replaces, showing
// where the >100x dropout-path saving comes from.
#include <cstdio>

#include "bench_util.h"
#include "core/census.h"
#include "energy/accountant.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_fig2_scaledrop_arch",
                "Fig. 2 — Scale-Dropout inference architecture breakdown");

  const core::ArchSpec arch = core::small_cnn_arch();
  core::CensusConfig config;
  config.mc_passes = 20;

  const auto spindrop = core::inference_census(arch, core::Method::kSpinDrop, config);
  const auto scaledrop =
      core::inference_census(arch, core::Method::kSpinScaleDrop, config);
  const auto& params = energy::default_energy_params();

  std::printf("Per-inference component breakdown (T=%zu MC passes):\n\n",
              config.mc_passes);
  std::printf("--- SpinDrop architecture (per-neuron dropout, full ADC) ---\n%s\n",
              spindrop.report(params).c_str());
  std::printf("--- Scale-Dropout architecture (Fig. 2: SA read-out, scale SRAM, one "
              "module/layer) ---\n%s\n",
              scaledrop.report(params).c_str());

  const double rng_spin =
      spindrop.component_energy(energy::Component::kRngDropoutCycle, params);
  const double rng_scale =
      scaledrop.component_energy(energy::Component::kRngDropoutCycle, params);
  const double total_ratio =
      spindrop.total_energy(params) / scaledrop.total_energy(params);
  std::printf("Dropout-path (RNG) energy:   SpinDrop %.1f pJ vs Scale-Dropout %.1f pJ "
              "-> %.1fx reduction\n",
              rng_spin, rng_scale, rng_spin / rng_scale);
  std::printf("Total inference energy:      %.3f uJ vs %.3f uJ -> %.1fx reduction\n",
              energy::to_microjoule(spindrop.total_energy(params)),
              energy::to_microjoule(scaledrop.total_energy(params)), total_ratio);
  std::printf("(paper: \"more than 100x energy savings compared to existing methods\" "
              "for the dropout machinery)\n");

  // Module census of the Fig. 2 architecture.
  std::printf("\nDropout modules: SpinDrop %zu vs Scale-Dropout %zu (one per layer)\n",
              core::dropout_module_count(arch, core::Method::kSpinDrop),
              core::dropout_module_count(arch, core::Method::kSpinScaleDrop));

  // Sampling latency: one dropout decision per layer happens off the
  // critical path; per-neuron generation serializes against the read.
  std::printf("Stochastic bits per pass: SpinDrop %llu vs Scale-Dropout %llu\n",
              static_cast<unsigned long long>(
                  core::rng_bits_per_pass(arch, core::Method::kSpinDrop, config)),
              static_cast<unsigned long long>(core::rng_bits_per_pass(
                  arch, core::Method::kSpinScaleDrop, config)));
  return 0;
}
