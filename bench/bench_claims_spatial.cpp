// Reproduces the Spatial-SpinDrop claims (C2, paper §III-A.2):
//   * "reduction in the number of dropout modules per network by 9x"
//   * "energy consumption by 94.11x" (dropout machinery)
//   * "2.94x more energy efficient than the SpinDrop concept" (overall)
// plus the mapping-strategy generalization the method needs (Fig. 1).
#include <cstdio>

#include "bench_util.h"
#include "core/census.h"
#include "energy/accountant.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_claims_spatial",
                "C2 — Spatial-SpinDrop vs SpinDrop module & energy reduction");

  const core::ArchSpec arch = core::small_cnn_arch();
  core::CensusConfig config;
  config.mc_passes = 20;
  const auto& params = energy::default_energy_params();

  const std::size_t modules_spin = core::dropout_module_count(arch, core::Method::kSpinDrop);
  const std::size_t modules_spatial =
      core::dropout_module_count(arch, core::Method::kSpatialSpinDrop);
  std::printf("Dropout modules: SpinDrop %zu vs Spatial-SpinDrop %zu -> %.1fx fewer "
              "(paper: 9x)\n",
              modules_spin, modules_spatial,
              static_cast<double>(modules_spin) / static_cast<double>(modules_spatial));

  const auto spin = core::inference_census(arch, core::Method::kSpinDrop, config);
  const auto spatial =
      core::inference_census(arch, core::Method::kSpatialSpinDrop, config);

  const double rng_spin =
      spin.component_energy(energy::Component::kRngDropoutCycle, params);
  const double rng_spatial =
      spatial.component_energy(energy::Component::kRngDropoutCycle, params);
  std::printf("Dropout-path energy: %.1f pJ vs %.1f pJ -> %.1fx reduction "
              "(paper: 94.11x)\n",
              rng_spin, rng_spatial, rng_spin / rng_spatial);

  const double total_spin = spin.total_energy(params);
  const double total_spatial = spatial.total_energy(params);
  std::printf("Total inference energy: %.3f uJ vs %.3f uJ -> %.2fx reduction "
              "(paper: 2.94x)\n",
              energy::to_microjoule(total_spin), energy::to_microjoule(total_spatial),
              total_spin / total_spatial);

  // Per-layer module detail: where the 9x comes from. Dropping a feature
  // map of layer L gates rows of layer L+1's crossbar: per-neuron SpinDrop
  // needs one module per word-line pair (K*K*Cin of them for a conv
  // consumer), Spatial-SpinDrop one per input channel — a K^2 = 9x module
  // reduction for 3x3 kernels, which is exactly the paper's figure.
  std::printf("\n%-10s %10s %14s %22s\n", "layer", "neurons", "feature maps",
              "wordline modules s/sp");
  for (std::size_t i = 0; i + 1 < arch.layers.size(); ++i) {
    const auto& consumer = arch.layers[i + 1];
    const auto& producer = arch.layers[i];
    if (!producer.hidden) {
      continue;
    }
    const std::size_t spin_modules = consumer.mvm_rows();
    const std::size_t spatial_modules =
        consumer.kind == core::LayerSpec::Kind::kConv ? consumer.in_channels
                                                      : 1;
    std::printf("%-10zu %10zu %14zu %12zu / %-6zu (%.0fx)\n", i, producer.neurons(),
                producer.feature_maps(), spin_modules, spatial_modules,
                static_cast<double>(spin_modules) /
                    static_cast<double>(spatial_modules));
  }
  std::printf("\nStochastic bits per pass: %llu vs %llu\n",
              static_cast<unsigned long long>(
                  core::rng_bits_per_pass(arch, core::Method::kSpinDrop, config)),
              static_cast<unsigned long long>(core::rng_bits_per_pass(
                  arch, core::Method::kSpatialSpinDrop, config)));
  return 0;
}
