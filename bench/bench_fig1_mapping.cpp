// Reproduces Fig. 1: the two crossbar mapping strategies for
// MC-SpatialDropout and what each implies for the dropout module.
//
// The paper's figure is architectural; the quantitative content we
// regenerate is the census of both strategies over a sweep of conv
// geometries: crossbar count/shape, word-line activity, ADC conversions,
// dropout-module count and — the Fig. 1 point — the per-module fan-out a
// dropout decision must drive (K*K scattered row groups under strategy 1
// vs one broadcast line under strategy 2).
#include <cstdio>

#include "bench_util.h"
#include "energy/accountant.h"
#include "xbar/mapping.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_fig1_mapping",
                "Fig. 1 — Spatial-SpinDrop crossbar mapping strategy 1 vs 2");

  struct Geometry {
    std::size_t cin, cout, k, out;
  };
  const Geometry sweep[] = {
      {8, 16, 3, 16}, {16, 32, 3, 14}, {32, 64, 3, 14},
      {16, 32, 5, 14}, {32, 64, 5, 7}, {64, 64, 3, 7},
  };

  std::printf("%-18s %-26s %8s %12s %10s %8s %10s %10s\n", "geometry", "strategy",
              "xbars", "shape", "WL/pixel", "ADC/px", "modules", "fanout");
  for (const Geometry& g : sweep) {
    xbar::ConvGeometry geom;
    geom.in_channels = g.cin;
    geom.out_channels = g.cout;
    geom.kernel = g.k;
    geom.output_height = g.out;
    geom.output_width = g.out;
    char label[64];
    std::snprintf(label, sizeof(label), "%zux%zu k%zu (%zux%zu)", g.cin, g.cout, g.k,
                  g.out, g.out);
    for (auto strategy : {xbar::MappingStrategy::kUnfoldedColumns,
                          xbar::MappingStrategy::kKernelPosition}) {
      const xbar::MappingCensus c = xbar::census(geom, strategy);
      char shape[32];
      std::snprintf(shape, sizeof(shape), "%zux%zu", c.crossbar_rows, c.crossbar_cols);
      std::printf("%-18s %-26s %8zu %12s %10zu %8zu %10zu %10zu\n", label,
                  xbar::mapping_name(strategy).c_str(), c.crossbar_count, shape,
                  c.wordline_acts_per_pixel, c.adc_per_pixel, c.dropout_modules,
                  c.dropout_fanout);
    }
  }

  std::printf(
      "\nFig. 1 takeaway reproduced: both strategies store the same synapse count\n"
      "and need the same number of Spatial-SpinDrop modules (one per input map),\n"
      "but strategy 1 makes each module drive K*K scattered row groups while\n"
      "strategy 2 reduces the fan-out to a single broadcast line — the dropout\n"
      "module must therefore be generalizable to the mapping, as the paper argues.\n");
  return 0;
}
