// Training-engine bench: serial vs. pooled data-parallel epochs.
//
// Sweeps worker counts and batch sizes over the two trained backbones of
// the Table-I benches (the binary MLP and the small binary CNN), timing
// whole epochs through train::Trainer. "serial" is the shards=1 legacy
// path (bitwise the historical nn::train_classifier loop); each pooled row
// sets shards = workers so the minibatch fans out one shard per worker.
// Shard results are reduced in fixed ascending-shard order, so every
// pooled row's numbers are bitwise invariant to the worker count — the
// speedup is free of result drift (tests/train_test.cpp pins it).
//
//   ./build/bench/bench_train [--smoke]
//
// --smoke runs one tiny epoch per configuration — the CI leg that catches
// trainer-path build/runtime regressions without timing anything useful.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/models.h"
#include "data/strokes.h"
#include "nn/model.h"
#include "train/trainer.h"

namespace {

using namespace neuspin;

bool g_smoke = false;

struct Workload {
  const char* label;
  core::BuiltModel model;
  nn::Dataset data;
};

/// Best examples/sec over `epochs` measured epochs (first epoch dropped as
/// warm-up when more than one is run).
double epochs_per_config(core::BuiltModel& model, const nn::Dataset& data,
                         std::size_t batch, std::size_t shards, std::size_t workers,
                         double* best_seconds) {
  model.enable_mc(false);
  train::TrainerConfig config;
  config.epochs = g_smoke ? 1 : 3;
  config.batch_size = batch;
  config.lr = 0.01f;
  config.shards = shards;
  config.workers = workers;
  train::Trainer trainer(model.net, config);
  const auto history = trainer.fit(data);
  double best = 0.0;
  double secs = 0.0;
  const std::size_t first = history.size() > 1 ? 1 : 0;
  for (std::size_t e = first; e < history.size(); ++e) {
    if (history[e].examples_per_sec > best) {
      best = history[e].examples_per_sec;
      secs = history[e].seconds;
    }
  }
  if (best_seconds != nullptr) {
    *best_seconds = secs;
  }
  return best;
}

void bench_workload(Workload& workload, const std::vector<std::size_t>& worker_counts,
                    const std::vector<std::size_t>& batches) {
  std::printf("\n%s  (%zu samples, %zu parameters)\n", workload.label,
              workload.data.size(), workload.model.net.parameter_count());
  std::printf("  %-8s %-16s %12s %12s %9s\n", "batch", "config", "epoch secs",
              "examples/s", "speedup");
  for (std::size_t batch : batches) {
    double serial_secs = 0.0;
    core::BuiltModel serial_model = workload.model.clone();
    const double serial_rate = epochs_per_config(serial_model, workload.data, batch,
                                                 /*shards=*/1, /*workers=*/1,
                                                 &serial_secs);
    std::printf("  %-8zu %-16s %12.3f %12.0f %8.2fx\n", batch, "serial", serial_secs,
                serial_rate, 1.0);
    for (std::size_t workers : worker_counts) {
      double secs = 0.0;
      core::BuiltModel pooled = workload.model.clone();
      const double rate = epochs_per_config(pooled, workload.data, batch,
                                            /*shards=*/workers, workers, &secs);
      std::printf("  %-8zu shards=workers=%-2zu %10.3f %12.0f %8.2fx\n", batch,
                  workers, secs, rate, serial_rate > 0.0 ? rate / serial_rate : 0.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    }
  }
  bench::banner("bench_train: serial vs. data-parallel training epochs",
                "training engine (src/train/) — ROADMAP 'serial minibatches' item");
  std::printf("hardware threads: %u\n",
              std::max(1u, std::thread::hardware_concurrency()));

  const std::vector<std::size_t> worker_counts =
      g_smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};
  const std::vector<std::size_t> batches =
      g_smoke ? std::vector<std::size_t>{32} : std::vector<std::size_t>{32, 128};

  data::StrokeConfig mlp_strokes;
  mlp_strokes.samples_per_class = g_smoke ? 25 : 200;  // 10 digit classes
  data::StrokeConfig cnn_strokes;
  cnn_strokes.samples_per_class = g_smoke ? 6 : 50;

  core::ModelConfig mlp_config;
  mlp_config.method = core::Method::kSpinDrop;
  mlp_config.seed = 42;
  Workload mlp{"MLP 256-128-128-10 (SpinDrop)",
               core::make_binary_mlp(mlp_config, 256, {128, 128}, 10),
               data::make_stroke_digits_flat(mlp_strokes, /*seed=*/7)};
  bench_workload(mlp, worker_counts, batches);

  core::ModelConfig cnn_config;
  cnn_config.method = core::Method::kSpinDrop;
  cnn_config.seed = 43;
  Workload cnn{"small CNN 1x16x16 conv8-conv16-fc64-10 (SpinDrop)",
               core::make_binary_cnn(cnn_config),
               data::make_stroke_digits(cnn_strokes, /*seed=*/11)};
  bench_workload(cnn, worker_counts, batches);

  std::printf("\ndone\n");
  return 0;
}
