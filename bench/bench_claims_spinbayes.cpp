// Reproduces the SpinBayes claims (C6, paper §III-B.2):
//   * classification with "up to 100 classes"
//   * "improvements in classification accuracy of up to 1.14%" vs the
//     deterministic baseline
//   * "can detect up to 100% samples from several OOD datasets"
//   * post-training quantization onto multi-level MTJ cells.
#include <cstdio>

#include "bench_util.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/clusters.h"
#include "data/ood.h"
#include "data/strokes.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_claims_spinbayes",
                "C6 — SpinBayes accuracy, 100-class task, OOD detection");

  // ---------- stroke digits: SpinBayes vs deterministic ----------
  data::StrokeConfig sc;
  sc.samples_per_class = 120;
  const nn::Dataset train = data::standardize_per_sample(data::make_stroke_digits(sc, 81));
  sc.samples_per_class = 40;
  const nn::Dataset test_raw = data::make_stroke_digits(sc, 82);
  const nn::Dataset test = data::standardize_per_sample(test_raw);

  core::ModelConfig det_cfg;
  det_cfg.method = core::Method::kDeterministic;
  core::BuiltModel deterministic = core::make_binary_cnn(det_cfg);
  core::FitConfig fc;
  fc.epochs = 7;
  (void)core::fit(deterministic, train, fc);
  const float det_acc = core::evaluate(deterministic, test, 1).accuracy;

  core::ModelConfig sb_cfg;
  sb_cfg.method = core::Method::kSpinBayes;
  core::BuiltModel spinbayes = core::make_binary_cnn(sb_cfg);
  fc.kl_weight = 1e-4f;
  (void)core::fit(spinbayes, train, fc);
  core::SpinBayesConfig conversion;
  conversion.instances = 8;
  conversion.quant_levels = 8;  // 8-level multi-value MTJ cell
  core::convert_to_spinbayes(spinbayes, conversion);
  const auto sb_eval = core::evaluate(spinbayes, test, 20);

  std::printf("Stroke digits: deterministic %.2f%% vs SpinBayes %.2f%% "
              "(%+.2f pts; paper: up to +1.14%%)\n",
              100.0f * det_acc, 100.0f * sb_eval.accuracy,
              100.0f * (sb_eval.accuracy - det_acc));
  std::printf("SpinBayes calibration: NLL %.3f ECE %.3f\n\n", sb_eval.nll, sb_eval.ece);

  // ---------- OOD suites ----------
  std::printf("%-20s %10s %12s\n", "ood suite", "AUROC", "detect@95");
  for (data::OodKind kind : data::all_ood_kinds()) {
    const nn::Dataset ood =
        data::standardize_per_sample(data::make_ood(test_raw, kind, 200, 83));
    const auto result = core::evaluate_ood(spinbayes, test, ood, 20);
    std::printf("%-20s %10.3f %11.1f%%\n", data::ood_name(kind).c_str(), result.auroc,
                100.0f * result.detection_rate);
  }
  std::printf("(paper: detects up to 100%% of several OOD datasets)\n\n");

  // ---------- 100-class task (paper: "up to 100 classes") ----------
  data::ClusterConfig cc;
  cc.classes = 100;
  cc.dimensions = 32;
  cc.samples_per_class = 40;
  cc.center_spread = 6.0f;
  cc.cluster_sigma = 1.0f;
  // Centers are derived from the seed, so draw one class-interleaved set
  // and split it: any prefix is class-balanced (data_test.cpp asserts it).
  cc.samples_per_class = 50;
  const nn::Dataset all100 = data::make_gaussian_clusters(cc, 84);
  nn::Dataset train_split;
  nn::Dataset test_split;
  {
    auto [head_in, head_lbl] = all100.batch(0, 4000);
    train_split = {std::move(head_in), std::move(head_lbl)};
    auto [tail_in, tail_lbl] = all100.batch(4000, all100.size());
    test_split = {std::move(tail_in), std::move(tail_lbl)};
  }

  core::ModelConfig cfg100;
  cfg100.method = core::Method::kSpinBayes;
  core::BuiltModel model100 = core::make_binary_mlp(cfg100, 32, {256}, 100);
  core::FitConfig fc100;
  fc100.epochs = 12;
  fc100.lr = 0.01f;
  (void)core::fit(model100, train_split, fc100);
  core::convert_to_spinbayes(model100, conversion);
  const auto eval100 = core::evaluate(model100, test_split, 20);
  std::printf("100-class Gaussian-cluster task: SpinBayes accuracy %.2f%% "
              "(chance = 1%%), NLL %.3f\n",
              100.0f * eval100.accuracy, eval100.nll);
  return 0;
}
