// Reproduces the Inverted-Normalization + Affine-Dropout claims (C4,
// paper §III-A.4):
//   * "improvement in inference accuracy by up to 55.62%" under device
//     faults (the self-healing property),
//   * "RMSE score is reduced by up to 46.7%" for LSTM time-series
//     prediction under variation,
//   * OOD detection of "55.03% (uniform noise) and 78.95% (rotation)".
#include <cstdio>

#include "bench_util.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/ood.h"
#include "data/strokes.h"
#include "data/timeseries.h"
#include "nn/lstm.h"
#include "nn/optim.h"

namespace {

using namespace neuspin;

/// Train an LSTM regressor (Lstm -> norm -> Dense(1)) on the synthetic
/// series; `affine` picks the inverted-norm/affine-dropout stage.
struct Regressor {
  nn::Sequential net;
  core::InvertedNormLayer* inv = nullptr;
};

Regressor make_regressor(bool affine, std::uint64_t seed) {
  Regressor r;
  std::mt19937_64 engine(seed);
  r.net.emplace<nn::Lstm>(1, 16, engine);
  if (affine) {
    core::AffineDropConfig ac;
    ac.features = 16;
    ac.dropout_p = 0.15;
    ac.seed = seed + 5;
    r.inv = &r.net.emplace<core::InvertedNormLayer>(ac);
  } else {
    r.net.emplace<nn::BatchNorm>(16);
  }
  r.net.emplace<nn::Dense>(16, 1, engine);
  return r;
}

void train_regressor(Regressor& r, const data::SeriesDataset& data,
                     std::size_t epochs) {
  nn::Adam optimizer(r.net.parameters(), 0.005f);
  const std::size_t batch = 32;
  const std::size_t n = data.size();
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    for (std::size_t begin = 0; begin + batch <= n; begin += batch) {
      nn::Tensor x({batch, data.inputs.dim(1), 1});
      nn::Tensor y({batch, 1});
      for (std::size_t i = 0; i < batch; ++i) {
        for (std::size_t t = 0; t < data.inputs.dim(1); ++t) {
          x[(i * data.inputs.dim(1) + t)] =
              data.inputs[((begin + i) * data.inputs.dim(1) + t)];
        }
        y[i] = data.targets[begin + i];
      }
      const nn::Tensor pred = r.net.forward(x, true);
      const nn::LossResult loss = nn::mean_squared_error(pred, y);
      (void)r.net.backward(loss.grad);
      optimizer.step();
    }
  }
}

/// RMSE over the dataset; `mc_passes > 1` averages stochastic passes
/// (affine dropout in MC mode).
float regressor_rmse(Regressor& r, const data::SeriesDataset& data,
                     std::size_t mc_passes) {
  nn::Tensor mean_pred({data.size(), 1});
  for (std::size_t pass = 0; pass < mc_passes; ++pass) {
    nn::Tensor x = data.inputs;
    const nn::Tensor pred = r.net.forward(x, false);
    mean_pred += pred;
  }
  mean_pred *= 1.0f / static_cast<float>(mc_passes);
  return data::rmse(mean_pred, data.targets);
}

}  // namespace

int main() {
  bench::banner("bench_claims_affine",
                "C4 — InvNorm+AffineDropout: self-healing, LSTM RMSE, OOD");

  // ---------- classification under injected binary-weight faults ----------
  data::StrokeConfig sc;
  sc.samples_per_class = 120;
  const nn::Dataset train_img = data::make_stroke_digits(sc, 51);
  const nn::Dataset train = data::standardize_per_sample(train_img);
  sc.samples_per_class = 40;
  const nn::Dataset test_img = data::make_stroke_digits(sc, 52);
  const nn::Dataset test = data::standardize_per_sample(test_img);

  auto fit_one = [&](core::Method method) {
    core::ModelConfig mc;
    mc.method = method;
    mc.dropout_p = 0.15;
    core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);
    core::FitConfig fc;
    fc.epochs = 6;
    (void)core::fit(model, data::flatten_dataset(train), fc);
    return model;
  };
  core::BuiltModel plain = fit_one(core::Method::kDeterministic);
  core::BuiltModel affine = fit_one(core::Method::kAffineDropout);
  for (auto* inv : affine.inv_norm_layers) {
    inv->enable_self_healing(true);  // re-normalize against observed stats
  }
  const nn::Dataset flat_test = data::flatten_dataset(test);

  std::printf("%-12s | %14s %16s %8s   (mean of 5 fault draws)\n", "fault rate",
              "plain-BN[%]", "affine-drop[%]", "delta");
  float best_delta = 0.0f;
  const int fault_draws = 5;
  for (float rate : {0.0f, 0.05f, 0.10f, 0.20f}) {
    float acc_plain = 0.0f;
    float acc_affine = 0.0f;
    for (int d = 0; d < fault_draws; ++d) {
      const std::uint64_t fault_seed = 777 + d;
      if (rate > 0.0f) {
        // Sign flips are involutions: re-injecting with the same seed
        // restores the trained weights, so one trained model serves every
        // (rate, draw) cell of the sweep.
        (void)core::inject_weight_defects(plain.net, rate, fault_seed);
        (void)core::inject_weight_defects(affine.net, rate, fault_seed);
      }
      acc_plain += core::evaluate(plain, flat_test, 1).accuracy / fault_draws;
      acc_affine += core::evaluate(affine, flat_test, 20).accuracy / fault_draws;
      if (rate > 0.0f) {
        (void)core::inject_weight_defects(plain.net, rate, fault_seed);
        (void)core::inject_weight_defects(affine.net, rate, fault_seed);
      }
      if (rate == 0.0f) {
        break;  // no fault randomness to average over
      }
    }
    if (rate == 0.0f) {
      acc_plain *= fault_draws;
      acc_affine *= fault_draws;
    }
    const float delta = 100.0f * (acc_affine - acc_plain);
    best_delta = std::max(best_delta, delta);
    std::printf("%-12.2f | %14.2f %16.2f %+8.2f\n", rate, 100.0f * acc_plain,
                100.0f * acc_affine, delta);
  }
  std::printf("Best self-healing gain under faults: %+.2f pts "
              "(paper: up to +55.62%%)\n\n",
              best_delta);

  // ---------- LSTM time-series RMSE under device variation ----------
  const data::SeriesConfig series_cfg;
  const data::SeriesDataset series = data::make_series(series_cfg, 61);

  Regressor plain_reg = make_regressor(false, 62);
  Regressor affine_reg = make_regressor(true, 62);
  train_regressor(plain_reg, series, 15);
  train_regressor(affine_reg, series, 15);
  const float clean_plain = regressor_rmse(plain_reg, series, 1);
  affine_reg.inv->enable_mc(true);
  const float clean_affine = regressor_rmse(affine_reg, series, 20);

  // Average the faulty evaluation over several independent variation
  // draws: a single draw is dominated by luck at this model size. Only
  // NVM-resident parameters are perturbed (norm registers are digital).
  float faulty_plain = 0.0f;
  float faulty_affine = 0.0f;
  const int draws = 5;
  for (int d = 0; d < draws; ++d) {
    Regressor plain_faulty = make_regressor(false, 62);
    Regressor affine_faulty = make_regressor(true, 62);
    train_regressor(plain_faulty, series, 15);
    train_regressor(affine_faulty, series, 15);
    affine_faulty.inv->enable_mc(true);
    (void)core::perturb_weights(plain_faulty.net, 0.15f, 63 + d);
    (void)core::perturb_weights(affine_faulty.net, 0.15f, 63 + d);
    faulty_plain += regressor_rmse(plain_faulty, series, 1) / draws;
    faulty_affine += regressor_rmse(affine_faulty, series, 20) / draws;
  }
  std::printf("LSTM forecasting RMSE (synthetic wearable series):\n");
  std::printf("  clean:             plain-BN %.4f | affine-drop %.4f -> %.1f%% RMSE "
              "reduction\n",
              clean_plain, clean_affine,
              100.0f * (clean_plain - clean_affine) / clean_plain);
  std::printf("  15%% weight noise (mean of %d draws): plain-BN %.4f | affine-drop "
              "%.4f -> %.1f%% RMSE reduction (paper: up to 46.7%%)\n\n",
              draws, faulty_plain, faulty_affine,
              100.0f * (faulty_plain - faulty_affine) / faulty_plain);

  // ---------- OOD detection: uniform noise & rotation ----------
  core::ModelConfig mc;
  mc.method = core::Method::kAffineDropout;
  mc.dropout_p = 0.15;
  core::BuiltModel model = core::make_binary_cnn(mc);
  core::FitConfig fc;
  fc.epochs = 7;
  (void)core::fit(model, train, fc);
  for (auto kind : {data::OodKind::kUniformNoise, data::OodKind::kRandomRotation}) {
    const nn::Dataset ood =
        data::standardize_per_sample(data::make_ood(test_img, kind, 200, 64));
    const auto result = core::evaluate_ood(model, test, ood, 20);
    std::printf("OOD %-18s AUROC %.3f detect@95 %5.1f%%  (paper: %s)\n",
                data::ood_name(kind).c_str(), result.auroc,
                100.0f * result.detection_rate,
                kind == data::OodKind::kUniformNoise ? "55.03%" : "78.95%");
  }
  return 0;
}
