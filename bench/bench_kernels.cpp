// Kernel-layer bench: blocked GEMM GFLOP/s vs. the seed's naive triple
// loop across the shapes the reproduction actually runs (single-request
// passes, fused T x B stacks, backward products), direct vs. im2col
// convolution on the small-CNN layer shapes, plus end-to-end fused vs.
// unfused Monte-Carlo throughput on the serving model.
//
// Plain main (like bench_table1): runnable without google-benchmark.
//
//   ./build/bench/bench_kernels [--smoke]
//
// --smoke runs one iteration per shape — a fast CI leg that catches
// kernel-path build/runtime regressions without timing anything useful.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "bench_util.h"
#include "core/bayesian.h"
#include "core/models.h"
#include "data/strokes.h"
#include "nn/binarize.h"
#include "nn/bitpack.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/simd.h"
#include "nn/tensor.h"

namespace {

using namespace neuspin;
using Clock = std::chrono::steady_clock;

/// --smoke: single iteration per shape, no repeat calibration.
bool g_smoke = false;

/// The seed repository's matmul: i-p-j triple loop through bounds-checked
/// at() accessors, no blocking. Kept verbatim as the bench baseline.
nn::Tensor seed_matmul(const nn::Tensor& a, const nn::Tensor& b) {
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  nn::Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a.at(i, p);
      if (av == 0.0f) {
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += av * b.at(p, j);
      }
    }
  }
  return c;
}

/// Seed matmul_transposed: strict dot products through at().
nn::Tensor seed_matmul_transposed(const nn::Tensor& a, const nn::Tensor& b) {
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(0);
  nn::Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc += a.at(i, p) * b.at(j, p);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

/// Best-of-N wall time (seconds) of `fn`, with enough inner repeats that a
/// single timing spans at least ~2ms.
template <typename Fn>
double best_seconds(const Fn& fn, std::size_t repeats) {
  // Warm-up + calibration.
  const auto t0 = Clock::now();
  fn();
  const double once = std::chrono::duration<double>(Clock::now() - t0).count();
  if (g_smoke) {
    return once > 0.0 ? once : 1e-9;
  }
  const std::size_t inner =
      once > 0.0 ? static_cast<std::size_t>(2e-3 / once) + 1 : 1;
  double best = 1e100;
  for (std::size_t r = 0; r < repeats; ++r) {
    const auto begin = Clock::now();
    for (std::size_t i = 0; i < inner; ++i) {
      fn();
    }
    const double s =
        std::chrono::duration<double>(Clock::now() - begin).count() /
        static_cast<double>(inner);
    best = std::min(best, s);
  }
  return best;
}

struct GemmShape {
  const char* label;
  std::size_t m, k, n;
};

void bench_gemm() {
  // Paper-relevant shapes: the serving MLP's hidden layers at request
  // granularity (m=1), dynamic batches (m=16), fused T x B stacks
  // (m=128), the CNN's folded dense layer, and the backward-sized
  // products of training.
  const std::vector<GemmShape> shapes = {
      {"request  1x256x128", 1, 256, 128},
      {"batch   16x256x128", 16, 256, 128},
      {"fused  128x256x128", 128, 256, 128},
      {"hidden 128x128x128", 128, 128, 128},
      {"logits 128x128x10", 128, 128, 10},
      {"cnn-fc 128x256x64", 128, 256, 64},
      {"train  256x512x256", 256, 512, 256},
  };
  std::printf("\nGEMM (matmul): blocked kernel vs. seed triple loop\n");
  std::printf("%-20s %12s %12s %9s\n", "shape", "seed GF/s", "blocked GF/s",
              "speedup");
  std::mt19937_64 engine(1);
  for (const GemmShape& s : shapes) {
    const nn::Tensor a = nn::Tensor::randn({s.m, s.k}, 1.0f, engine);
    const nn::Tensor b = nn::Tensor::randn({s.k, s.n}, 1.0f, engine);
    const double flops = 2.0 * static_cast<double>(s.m * s.k * s.n);
    const double t_seed = best_seconds([&] { (void)seed_matmul(a, b); }, 5);
    const double t_new = best_seconds([&] { (void)nn::matmul(a, b); }, 5);
    std::printf("%-20s %12.2f %12.2f %8.2fx\n", s.label, flops / t_seed * 1e-9,
                flops / t_new * 1e-9, t_seed / t_new);
  }

  std::printf("\nGEMM (matmul_transposed): 8-lane dot kernel vs. seed loop\n");
  std::printf("%-20s %12s %12s %9s\n", "shape", "seed GF/s", "blocked GF/s",
              "speedup");
  for (const GemmShape& s : shapes) {
    const nn::Tensor a = nn::Tensor::randn({s.m, s.k}, 1.0f, engine);
    const nn::Tensor bt = nn::Tensor::randn({s.n, s.k}, 1.0f, engine);
    const double flops = 2.0 * static_cast<double>(s.m * s.k * s.n);
    const double t_seed =
        best_seconds([&] { (void)seed_matmul_transposed(a, bt); }, 5);
    const double t_new = best_seconds([&] { (void)nn::matmul_transposed(a, bt); }, 5);
    std::printf("%-20s %12.2f %12.2f %8.2fx\n", s.label, flops / t_seed * 1e-9,
                flops / t_new * 1e-9, t_seed / t_new);
  }
}

struct ConvShape {
  const char* label;
  std::size_t batch, in_ch, out_ch, kernel, padding, h, w;
};

/// Direct per-element loop vs. im2col + blocked GEMM on the paper's
/// small-CNN layer geometries (core::make_binary_cnn), for both the
/// full-precision and the binary convolution. Outputs are bitwise
/// identical between the two algorithms (pinned by layers_test); only the
/// throughput differs.
void bench_conv() {
  const std::vector<ConvShape> shapes = {
      {"conv1  16x1x16x16->8", 16, 1, 8, 3, 1, 16, 16},
      {"conv2  16x8x8x8->16", 16, 8, 16, 3, 1, 8, 8},
      {"conv1 128x1x16x16->8", 128, 1, 8, 3, 1, 16, 16},
      {"conv2 128x8x8x8->16", 128, 8, 16, 3, 1, 8, 8},
  };
  std::mt19937_64 engine(2);

  std::printf("\nConv2d forward: direct loop vs. im2col + blocked GEMM\n");
  std::printf("%-22s %12s %12s %9s\n", "shape", "direct GF/s", "im2col GF/s",
              "speedup");
  for (const ConvShape& s : shapes) {
    nn::Conv2d direct(s.in_ch, s.out_ch, s.kernel, s.padding, engine);
    direct.set_algo(nn::Conv2d::Algo::kDirect);
    std::mt19937_64 engine2(7);
    nn::Conv2d lowered(s.in_ch, s.out_ch, s.kernel, s.padding, engine2);
    const nn::Tensor x =
        nn::Tensor::randn({s.batch, s.in_ch, s.h, s.w}, 1.0f, engine);
    const std::size_t oh = s.h + 2 * s.padding - s.kernel + 1;
    const std::size_t ow = s.w + 2 * s.padding - s.kernel + 1;
    const double flops = 2.0 * static_cast<double>(s.batch * s.out_ch * oh * ow *
                                                   s.in_ch * s.kernel * s.kernel);
    const double t_direct =
        best_seconds([&] { (void)direct.forward(x, false); }, 5);
    const double t_lowered =
        best_seconds([&] { (void)lowered.forward(x, false); }, 5);
    std::printf("%-22s %12.2f %12.2f %8.2fx\n", s.label, flops / t_direct * 1e-9,
                flops / t_lowered * 1e-9, t_direct / t_lowered);
  }

  std::printf("\nBinaryConv2d forward: direct loop vs. im2col + blocked GEMM\n");
  std::printf("%-22s %12s %12s %9s\n", "shape", "direct GF/s", "im2col GF/s",
              "speedup");
  for (const ConvShape& s : shapes) {
    nn::BinaryConv2d direct(s.in_ch, s.out_ch, s.kernel, s.padding, engine);
    direct.set_algo(nn::Conv2d::Algo::kDirect);
    std::mt19937_64 engine2(7);
    nn::BinaryConv2d lowered(s.in_ch, s.out_ch, s.kernel, s.padding, engine2);
    nn::Tensor x = nn::Tensor::randn({s.batch, s.in_ch, s.h, s.w}, 1.0f, engine);
    x = nn::sign_of(x);  // the binary layers see sign activations
    const std::size_t oh = s.h + 2 * s.padding - s.kernel + 1;
    const std::size_t ow = s.w + 2 * s.padding - s.kernel + 1;
    const double flops = 2.0 * static_cast<double>(s.batch * s.out_ch * oh * ow *
                                                   s.in_ch * s.kernel * s.kernel);
    const double t_direct =
        best_seconds([&] { (void)direct.forward(x, false); }, 5);
    const double t_lowered =
        best_seconds([&] { (void)lowered.forward(x, false); }, 5);
    std::printf("%-22s %12.2f %12.2f %8.2fx\n", s.label, flops / t_direct * 1e-9,
                flops / t_lowered * 1e-9, t_direct / t_lowered);
  }
}

/// Binary-layer inference: the bit-packed XNOR/popcount GEMM vs. the
/// float-materialized product, on Table-I dense shapes with sign (±1)
/// activations. Three columns:
///   remat  — sign(W)/alpha recomputed every forward (the pre-packing
///            inference path);
///   float  — cached sign(W)/alpha, float GEMM (BinaryAlgo::kFloat);
///   bgemm  — packed weights + XNOR/popcount kernel (BinaryAlgo::kAuto).
/// All three produce bitwise identical outputs (pinned by bitpack_test);
/// GIOP/s counts 2*m*k*n signed ops.
void bench_binary_dense() {
  const std::vector<GemmShape> shapes = {
      {"request  1x256x128", 1, 256, 128},
      {"batch   16x256x128", 16, 256, 128},
      {"fused  128x256x128", 128, 256, 128},
      {"hidden 128x128x128", 128, 128, 128},
      {"logits 128x128x10", 128, 128, 10},
      {"cnn-fc 128x256x64", 128, 256, 64},
  };
  std::printf("\nBinaryDense inference (±1 activations): float-materialized vs\n"
              "bit-packed XNOR/popcount GEMM (outputs bitwise identical)\n");
  std::printf("%-20s %11s %11s %11s %9s %9s\n", "shape", "remat GI/s",
              "float GI/s", "bgemm GI/s", "vs remat", "vs float");
  std::mt19937_64 engine(3);
  for (const GemmShape& s : shapes) {
    nn::BinaryDense layer(s.k, s.n, engine);
    nn::Tensor x = nn::sign_of(nn::Tensor::randn({s.m, s.k}, 1.0f, engine));
    const double iops = 2.0 * static_cast<double>(s.m * s.k * s.n);

    // Pre-packing path: rebuild sign(W) and alpha per call, float GEMM.
    const double t_remat = best_seconds(
        [&] {
          const nn::Tensor bw = layer.binary_weight();
          const nn::Tensor alpha = layer.scales();
          nn::Tensor out = nn::matmul(x, bw);
          for (std::size_t i = 0; i < s.m; ++i) {
            for (std::size_t j = 0; j < s.n; ++j) {
              out.at(i, j) = out.at(i, j) * alpha[j] + layer.bias()[j];
            }
          }
        },
        9);

    layer.set_binary_algo(nn::BinaryAlgo::kFloat);
    const double t_float =
        best_seconds([&] { (void)layer.forward(x, false); }, 9);
    layer.set_binary_algo(nn::BinaryAlgo::kAuto);
    const double t_bgemm =
        best_seconds([&] { (void)layer.forward(x, false); }, 9);

    std::printf("%-20s %11.2f %11.2f %11.2f %8.2fx %8.2fx\n", s.label,
                iops / t_remat * 1e-9, iops / t_float * 1e-9,
                iops / t_bgemm * 1e-9, t_remat / t_bgemm, t_float / t_bgemm);
  }
}

/// BinaryConv2d inference on the small-CNN geometries: im2col + float GEMM
/// vs. im2col + bgemm (the patches sign-pack once per batch). conv1's K is
/// only 9 taps (one ragged lane) — below the kAuto packing floor precisely
/// because it measures slower packed, so the bgemm column forces
/// kBitpacked to keep timing the packed kernel; conv2 runs at K=72.
void bench_binary_conv() {
  const std::vector<ConvShape> shapes = {
      {"conv1  16x1x16x16->8", 16, 1, 8, 3, 1, 16, 16},
      {"conv2  16x8x8x8->16", 16, 8, 16, 3, 1, 8, 8},
      {"conv1 128x1x16x16->8", 128, 1, 8, 3, 1, 16, 16},
      {"conv2 128x8x8x8->16", 128, 8, 16, 3, 1, 8, 8},
  };
  std::printf("\nBinaryConv2d inference (±1 activations): im2col float GEMM vs\n"
              "im2col bgemm (outputs bitwise identical)\n");
  std::printf("%-22s %11s %11s %9s\n", "shape", "float GI/s", "bgemm GI/s",
              "speedup");
  std::mt19937_64 engine(4);
  for (const ConvShape& s : shapes) {
    nn::BinaryConv2d layer(s.in_ch, s.out_ch, s.kernel, s.padding, engine);
    nn::Tensor x = nn::sign_of(
        nn::Tensor::randn({s.batch, s.in_ch, s.h, s.w}, 1.0f, engine));
    const std::size_t oh = s.h + 2 * s.padding - s.kernel + 1;
    const std::size_t ow = s.w + 2 * s.padding - s.kernel + 1;
    const double iops = 2.0 * static_cast<double>(s.batch * s.out_ch * oh * ow *
                                                  s.in_ch * s.kernel * s.kernel);
    layer.set_binary_algo(nn::BinaryAlgo::kFloat);
    const double t_float =
        best_seconds([&] { (void)layer.forward(x, false); }, 9);
    layer.set_binary_algo(nn::BinaryAlgo::kBitpacked);
    const double t_bgemm =
        best_seconds([&] { (void)layer.forward(x, false); }, 9);
    std::printf("%-22s %11.2f %11.2f %8.2fx\n", s.label, iops / t_float * 1e-9,
                iops / t_bgemm * 1e-9, t_float / t_bgemm);
  }
}

/// Float GEMM through the dispatched tier vs. forced scalar — the runtime
/// dispatch win on this host (bitwise identical results; bitpack_test pins
/// it).
void bench_dispatch() {
  std::printf("\nFloat GEMM: scalar tier vs. dispatched tier (%s)\n",
              nn::simd::tier_name(nn::simd::active_tier()));
  std::printf("%-20s %12s %12s %9s\n", "shape", "scalar GF/s", "dispatch GF/s",
              "speedup");
  const std::vector<GemmShape> shapes = {
      {"fused  128x256x128", 128, 256, 128},
      {"train  256x512x256", 256, 512, 256},
  };
  std::mt19937_64 engine(5);
  for (const GemmShape& s : shapes) {
    const nn::Tensor a = nn::Tensor::randn({s.m, s.k}, 1.0f, engine);
    const nn::Tensor b = nn::Tensor::randn({s.k, s.n}, 1.0f, engine);
    const double flops = 2.0 * static_cast<double>(s.m * s.k * s.n);
    double t_scalar = 0.0;
    {
      nn::simd::ScopedTier tier(nn::simd::Tier::kScalar);
      t_scalar = best_seconds([&] { (void)nn::matmul(a, b); }, 5);
    }
    const double t_active = best_seconds([&] { (void)nn::matmul(a, b); }, 5);
    std::printf("%-20s %12.2f %12.2f %8.2fx\n", s.label,
                flops / t_scalar * 1e-9, flops / t_active * 1e-9,
                t_scalar / t_active);
  }
}

void bench_fused_mc() {
  data::StrokeConfig sc;
  sc.samples_per_class = 4;
  const nn::Dataset data =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 3));

  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  mc.dropout_p = 0.15;
  const core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);

  std::printf("\nFused vs. unfused Monte-Carlo forward (T passes x B requests,\n"
              "predictions bitwise identical)\n");
  std::printf("%4s %4s %14s %14s %9s\n", "B", "T", "unfused req/s",
              "fused req/s", "speedup");
  for (const auto& [batch, samples] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 8}, {8, 8}, {16, 8}, {16, 20}, {32, 8}}) {
    const nn::Tensor inputs = data.batch(0, batch).first;
    std::vector<std::uint64_t> seeds(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      seeds[b] = nn::mix_seed(0xbe4c4, b);
    }

    core::BuiltModel unfused = model.clone();
    unfused.enable_mc(true);
    const core::McPredictor::SeededForward forward =
        [&unfused](const nn::Tensor& x, std::uint64_t pass_seed) {
          unfused.reseed_stochastic(pass_seed);
          return unfused.stochastic_logits(x);
        };
    const double t_unfused = best_seconds(
        [&] {
          for (std::size_t b = 0; b < batch; ++b) {
            nn::Tensor row({1, inputs.dim(1)});
            for (std::size_t f = 0; f < inputs.dim(1); ++f) {
              row.at(0, f) = inputs.at(b, f);
            }
            (void)core::McPredictor(samples, seeds[b]).predict(row, forward);
          }
        },
        3);

    core::BuiltModel fused = model.clone();
    fused.enable_mc(true);
    const double t_fused = best_seconds(
        [&] { (void)core::predict_fused_batch(fused, inputs, seeds, samples); }, 3);

    const double bd = static_cast<double>(batch);
    std::printf("%4zu %4zu %14.0f %14.0f %8.2fx\n", batch, samples,
                bd / t_unfused, bd / t_fused, t_unfused / t_fused);
  }

  // Pool-partitioned fused stacks: team of N clones splitting one large
  // (B*T x F) stacked forward over the shared pool. On a single-core host
  // this measures the partition overhead (results stay bitwise equal); on
  // multi-core hosts throughput scales with the team.
  std::printf("\nPool-partitioned fused forward (B=32, T=20, team splits the\n"
              "640-row stack; bitwise identical for any team size)\n");
  std::printf("%6s %14s\n", "team", "req/s");
  const std::size_t batch = 32;
  const std::size_t samples = 20;
  const nn::Tensor inputs = data.batch(0, batch).first;
  std::vector<std::uint64_t> seeds(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    seeds[b] = nn::mix_seed(0xbe4c5, b);
  }
  for (const std::size_t team_size : {1, 2, 4}) {
    std::vector<core::BuiltModel> team;
    for (std::size_t w = 0; w < team_size; ++w) {
      team.push_back(model.clone());
      team.back().enable_mc(true);
    }
    const double t = best_seconds(
        [&] {
          (void)core::predict_fused_batch(std::span<core::BuiltModel>(team),
                                          inputs, seeds, samples);
        },
        3);
    std::printf("%6zu %14.0f\n", team_size, static_cast<double>(batch) / t);
  }
}

/// The consecutive-duplicate inference cache on the fused MC stack: the
/// first binary layer of each fused forward sees every request row T times
/// in a row and computes it once when the cache is on.
void bench_patch_cache() {
  data::StrokeConfig sc;
  sc.samples_per_class = 4;
  const nn::Dataset data =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 3));
  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  const core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);

  std::printf("\nFused MC forward with the patch/row cache off vs. on\n"
              "(predictions bitwise identical)\n");
  std::printf("%4s %4s %14s %14s %9s\n", "B", "T", "off req/s", "on req/s",
              "speedup");
  for (const auto& [batch, samples] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {8, 8}, {16, 20}, {32, 20}}) {
    const nn::Tensor inputs = data.batch(0, batch).first;
    std::vector<std::uint64_t> seeds(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      seeds[b] = nn::mix_seed(0xbe4c6, b);
    }
    core::BuiltModel off_model = model.clone();
    off_model.enable_mc(true);
    nn::set_patch_cache_enabled(false);
    const double t_off = best_seconds(
        [&] { (void)core::predict_fused_batch(off_model, inputs, seeds, samples); },
        3);
    core::BuiltModel on_model = model.clone();
    on_model.enable_mc(true);
    nn::set_patch_cache_enabled(true);
    const double t_on = best_seconds(
        [&] { (void)core::predict_fused_batch(on_model, inputs, seeds, samples); },
        3);
    const double bd = static_cast<double>(batch);
    std::printf("%4zu %4zu %14.0f %14.0f %8.2fx\n", batch, samples, bd / t_off,
                bd / t_on, t_off / t_on);
  }
}

/// --digest: print FNV fingerprints of fixed-seed evaluations and exit.
/// CI runs this twice — once dispatched, once under NEUSPIN_SIMD=scalar —
/// and diffs the output, proving the tiers bitwise identical end to end.
/// The output deliberately omits the tier name.
int run_digest() {
  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 2024;
  core::BuiltModel mlp = core::make_binary_mlp(mc, 16, {32, 16}, 4);
  mlp.enable_mc(true);
  std::mt19937_64 engine(97);
  const nn::Tensor inputs = nn::Tensor::randn({3, 16}, 1.0f, engine);
  const std::vector<std::uint64_t> seeds = {101, 202, 303};
  const auto preds = core::predict_fused_batch(mlp, inputs, seeds, 7);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    std::printf("mlp[%zu] %016llx\n", i,
                static_cast<unsigned long long>(
                    nn::tensor_fingerprint(preds[i].mean_probs)));
  }

  core::ModelConfig cc;
  cc.method = core::Method::kSpinDrop;
  cc.seed = 7;
  core::BuiltModel cnn = core::make_binary_cnn(cc);
  cnn.enable_mc(true);
  const nn::Tensor images = nn::Tensor::randn({4, 1, 16, 16}, 1.0f, engine);
  cnn.reseed_stochastic(42);
  std::printf("cnn %016llx\n", static_cast<unsigned long long>(
                                   nn::tensor_fingerprint(
                                       cnn.stochastic_logits(images))));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool digest = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strcmp(argv[i], "--digest") == 0) {
      digest = true;
    }
  }
  if (digest) {
    return run_digest();
  }
  bench::banner("bench_kernels",
                g_smoke ? "smoke mode: one iteration per shape"
                        : "blocked GEMM GFLOP/s, binary XNOR/popcount kernels, "
                          "conv direct-vs-im2col and fused MC throughput");
  std::printf("\nSIMD dispatch tier: %s\n",
              nn::simd::tier_name(nn::simd::active_tier()));
  bench_gemm();
  bench_dispatch();
  bench_binary_dense();
  bench_conv();
  bench_binary_conv();
  bench_fused_mc();
  bench_patch_cache();
  return 0;
}
