// Serving-runtime throughput/latency bench: sustained requests/sec and
// p50/p99 end-to-end latency vs. worker count, for both fidelity backends,
// plus an open-loop Poisson arrival sweep that exposes the latency knee.
//
// Plain main (like bench_table1): runnable without google-benchmark.
//
//   ./build/bench/bench_serve [--smoke] [--trace FILE] [--chaos SEED]
//
// The behavioural backend is the production path and must show throughput
// scaling with workers (the ISSUE-2 acceptance criterion); the tiled
// electrical backend is ~3 orders of magnitude slower per pass and is
// measured at a smaller request count.
//
// Closed loop vs. open loop: the closed loop keeps a fixed in-flight
// window, so offered load self-throttles to capacity and latencies stay
// flat — it measures throughput. The open loop submits on a seeded
// Poisson schedule regardless of completions, the way independent clients
// actually arrive; as the offered rate approaches capacity the queue (and
// p99) grows without bound — the knee the rolling latency windows and
// admission control exist for.
//
// --smoke shrinks every sweep to a few requests: a CI-speed run that only
// checks the bench still drives the runtime end to end.
//
// --chaos SEED runs the fault-tolerance leg INSTEAD of the default sweeps:
// a closed loop under the seeded crash/stall plan (serve/fault.h) with
// supervision on, reporting throughput-under-faults vs. the fault-free
// anchor, the zero-requests-lost account, and the crash-recovery latency
// (crash -> re-queue -> backend re-clone -> retried answer, end to end).
// The schedule is a pure function of (SEED, forward ticket): same seed,
// same crashes — a failing chaos run replays exactly.
//
// --defect-sweep runs the self-healing leg INSTEAD of the default sweeps:
// the tiled electrical backend served under progressively heavier seeded
// defect bursts (serve/fault.h defect band), once with the health monitor
// off and once with canary probing + spare-line healing on
// (serve::HealthConfig). Reports accuracy retention vs. the fault-free
// anchor and req/s per defect rate — the acceptance evidence that healing
// holds accuracy where the unmonitored substrate visibly degrades.
//
// --trace FILE additionally runs the tracing-overhead leg's traced pass
// with sample_every=1 and writes its Chrome trace-event JSON to FILE
// (load at https://ui.perfetto.dev; validate with tools/check_trace.py).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/ood.h"
#include "data/strokes.h"
#include "obs/metrics.h"
#include "serve/runtime.h"

namespace {

using namespace neuspin;

bool g_smoke = false;

double percentile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) {
    return 0.0;
  }
  std::sort(sorted_values.begin(), sorted_values.end());
  const double rank = q * static_cast<double>(sorted_values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

struct RunResult {
  double requests_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  double energy_uj_per_req = 0.0;
  double escalation_rate = 0.0;  ///< cascade backend only
  double skip_ratio = 0.0;       ///< event-engine rows skipped (tiled rungs)
};

std::vector<std::vector<float>> dataset_rows(const nn::Dataset& data) {
  std::vector<std::vector<float>> rows;
  rows.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const nn::Tensor x = data.batch(i, i + 1).first;
    rows.emplace_back(x.data().begin(), x.data().end());
  }
  return rows;
}

RunResult run_load(const core::BuiltModel& model, serve::RuntimeConfig config,
                   const std::vector<std::vector<float>>& rows,
                   std::size_t requests, const char* trace_path = nullptr) {
  serve::Runtime runtime(model, config);

  // Closed loop with a bounded in-flight window: latencies then measure
  // steady-state queue + compute time, not the depth of a pre-submitted
  // backlog.
  constexpr std::size_t kWindow = 64;
  std::deque<std::future<serve::ServedPrediction>> in_flight;
  std::vector<double> latencies;
  latencies.reserve(requests);
  double energy_pj = 0.0;
  const auto harvest = [&](std::future<serve::ServedPrediction> f) {
    const serve::ServedPrediction p = f.get();
    latencies.push_back(p.total_latency_us);
    energy_pj += p.energy_pj;
  };
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    in_flight.push_back(runtime.submit(rows[i % rows.size()]));
    if (in_flight.size() >= kWindow) {
      harvest(std::move(in_flight.front()));
      in_flight.pop_front();
    }
  }
  while (!in_flight.empty()) {
    harvest(std::move(in_flight.front()));
    in_flight.pop_front();
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - begin).count();

  RunResult result;
  result.requests_per_sec = static_cast<double>(requests) / seconds;
  result.p50_us = percentile(latencies, 0.50);
  result.p99_us = percentile(latencies, 0.99);
  result.mean_batch = runtime.stats().mean_batch_size;
  result.energy_uj_per_req =
      energy_pj * 1e-6 / static_cast<double>(requests);
  result.escalation_rate = static_cast<double>(runtime.stats().escalated) /
                           static_cast<double>(requests);
  result.skip_ratio = runtime.delta_stats().skip_ratio();
  if (trace_path != nullptr) {
    runtime.tracer().write_chrome_trace(trace_path);
    std::printf("trace: %llu spans (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(runtime.tracer().span_count()),
                static_cast<unsigned long long>(runtime.tracer().dropped()),
                trace_path);
  }
  return result;
}

struct OpenLoopResult {
  double offered_per_sec = 0.0;
  double achieved_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t shed = 0;
};

/// Open-loop run: submissions follow a seeded Poisson process of rate
/// `rate_per_sec` — exponential inter-arrival gaps, submitted on schedule
/// whether or not earlier requests completed. Shed submissions (admission
/// control) count separately; latencies cover served requests only.
OpenLoopResult run_open_loop(const core::BuiltModel& model,
                             serve::RuntimeConfig config, const nn::Dataset& data,
                             std::size_t requests, double rate_per_sec,
                             std::uint64_t seed) {
  serve::Runtime runtime(model, config);
  std::vector<std::vector<float>> rows;
  rows.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const nn::Tensor x = data.batch(i, i + 1).first;
    rows.emplace_back(x.data().begin(), x.data().end());
  }

  std::mt19937_64 engine(seed);
  std::exponential_distribution<double> gap(rate_per_sec);
  std::vector<std::future<serve::ServedPrediction>> futures;
  futures.reserve(requests);
  const auto begin = std::chrono::steady_clock::now();
  auto next_arrival = begin;
  for (std::size_t i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(next_arrival);
    futures.push_back(runtime.submit(rows[i % rows.size()]));
    next_arrival += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap(engine)));
  }

  OpenLoopResult result;
  std::vector<double> latencies;
  latencies.reserve(requests);
  for (auto& f : futures) {
    try {
      latencies.push_back(f.get().total_latency_us);
    } catch (const serve::OverloadError&) {
      ++result.shed;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - begin).count();
  result.offered_per_sec = rate_per_sec;
  result.achieved_per_sec = static_cast<double>(latencies.size()) / seconds;
  result.p50_us = percentile(latencies, 0.50);
  result.p99_us = percentile(std::move(latencies), 0.99);
  return result;
}

/// Sweep offered Poisson rates around the measured closed-loop capacity:
/// below the knee latency sits at the batching linger; past it the queue
/// (open loop: no back-pressure) grows for the whole run and p99 explodes
/// — with admission control shedding instead once the bound is hit.
void sweep_open_loop(const core::BuiltModel& model, const nn::Dataset& data,
                     double capacity_per_sec, std::size_t requests) {
  std::printf(
      "\nopen loop (Poisson arrivals, seeded): offered rate vs. latency knee\n"
      "(closed-loop capacity ~%.0f req/s; max_queue_depth=256)\n",
      capacity_per_sec);
  std::printf("%10s %12s %12s %12s %12s %8s\n", "load", "offered/s", "served/s",
              "p50 (us)", "p99 (us)", "shed");
  for (const double fraction : {0.3, 0.6, 0.8, 0.95, 1.2}) {
    serve::RuntimeConfig config;
    config.workers = 1;
    config.mc_samples = 8;
    config.batcher.max_batch = 16;
    config.batcher.max_linger = std::chrono::microseconds(100);
    config.max_queue_depth = 256;  // shed instead of queueing unboundedly
    const OpenLoopResult r =
        run_open_loop(model, config, data, requests,
                      std::max(1.0, fraction * capacity_per_sec), /*seed=*/17);
    std::printf("%9.0f%% %12.0f %12.0f %12.0f %12.0f %8llu\n", fraction * 100.0,
                r.offered_per_sec, r.achieved_per_sec, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.shed));
  }
}

/// Returns the measured req/s at the first worker count (the open-loop
/// sweep's capacity anchor).
double sweep_backend(const core::BuiltModel& model, const nn::Dataset& data,
                     serve::Backend backend, std::size_t mc_samples,
                     std::size_t requests,
                     const std::vector<std::size_t>& worker_counts) {
  std::printf("\n%s backend (closed loop): T=%zu MC passes, %zu requests\n",
              serve::backend_name(backend).c_str(), mc_samples, requests);
  std::printf("%8s %12s %12s %12s %11s %14s\n", "workers", "req/s", "p50 (us)",
              "p99 (us)", "avg batch", "energy/req uJ");
  double first_rate = 0.0;
  for (std::size_t workers : worker_counts) {
    serve::RuntimeConfig config;
    config.backend = backend;
    config.workers = workers;
    config.mc_samples = mc_samples;
    config.spindrop_p = backend == serve::Backend::kTiled ? 0.15 : 0.0;
    config.batcher.max_batch = 16;
    config.batcher.max_linger = std::chrono::microseconds(100);
    const RunResult r = run_load(model, config, dataset_rows(data), requests);
    if (first_rate == 0.0) {
      first_rate = r.requests_per_sec;
    }
    std::printf("%8zu %12.0f %12.0f %12.0f %11.1f %14.3f\n", workers,
                r.requests_per_sec, r.p50_us, r.p99_us, r.mean_batch,
                r.energy_uj_per_req);
  }
  return first_rate;
}

/// Cascade sweep (ROADMAP item 2 / ISSUE-6 acceptance): an OOD-mixed
/// workload — in-distribution stroke digits with a slice of uniform-noise
/// requests shuffled in — served three ways:
///   * tiled/full        pure electrical, event engine off (the baseline
///                       every pass re-simulates from scratch)
///   * tiled/event       pure electrical, delta evaluation on — the
///                       tile-eval speedup on sparse-delta MC inputs
///   * cascade           behavioural rung answers everything, escalates to
///                       the tiled rung past the calibrated entropy gate
/// The entropy threshold is calibrated on in-distribution validation
/// entropies (90th percentile via serve::should_escalate), so ~10% of ID
/// traffic escalates; OOD requests carry high predictive entropy and
/// escalate at a much higher rate — uncertain inputs get electrical-
/// fidelity answers while the bulk of the stream stays on the cheap rung.
void sweep_cascade(const core::BuiltModel& model, const nn::Dataset& data) {
  const std::size_t requests = g_smoke ? 12 : 192;
  const std::size_t tiled_requests = g_smoke ? 6 : 48;
  constexpr std::size_t kMc = 4;
  constexpr double kDropP = 0.15;

  // OOD-mixed request stream: every 8th payload is uniform noise,
  // standardized exactly like the in-distribution digits.
  const std::size_t ood_count = data.size() / 8 + 1;
  data::StrokeConfig sc;
  sc.samples_per_class = ood_count / 10 + 1;  // reference must cover `count`
  const nn::Dataset ood_images = data::make_ood(
      data::make_stroke_digits(sc, 3), data::OodKind::kUniformNoise, ood_count, 99);
  const nn::Dataset ood = data::standardize_per_sample(nn::Dataset{
      ood_images.inputs.reshaped({ood_images.size(), 256}), ood_images.labels});
  std::vector<std::vector<float>> rows = dataset_rows(data);
  const std::vector<std::vector<float>> noise = dataset_rows(ood);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    rows[(i * 8 + 3) % rows.size()] = noise[i];
  }

  // Calibrate the escalation gate on clean validation entropies: the
  // 90th percentile, checked against the gate the backend actually uses.
  std::vector<double> entropies;
  {
    serve::RuntimeConfig config;
    config.workers = 1;
    config.mc_samples = kMc;
    serve::Runtime runtime(model, config);
    std::vector<std::future<serve::ServedPrediction>> futures;
    const std::size_t calib = std::min<std::size_t>(data.size(), g_smoke ? 16 : 64);
    for (std::size_t i = 0; i < calib; ++i) {
      const nn::Tensor x = data.batch(i, i + 1).first;
      futures.push_back(
          runtime.submit(std::vector<float>(x.data().begin(), x.data().end())));
    }
    for (auto& f : futures) {
      entropies.push_back(f.get().entropy);
    }
  }
  std::sort(entropies.begin(), entropies.end());
  serve::CascadeConfig cascade;
  cascade.entropy_threshold = percentile(entropies, 0.90);
  std::size_t calib_escalated = 0;
  for (const double e : entropies) {
    calib_escalated += serve::should_escalate(cascade, e, 1.0) ? 1 : 0;
  }
  std::printf(
      "\ncascade backend (OOD-mixed workload, 1 in 8 requests uniform noise)\n"
      "entropy gate calibrated at %.3f nats (90th pct of %zu ID entropies; "
      "%.0f%% of ID calibration traffic escalates)\n",
      cascade.entropy_threshold, entropies.size(),
      100.0 * static_cast<double>(calib_escalated) /
          static_cast<double>(entropies.size()));

  const auto tiled_config = [&](xbar::EvalMode mode) {
    serve::RuntimeConfig config;
    config.backend = serve::Backend::kTiled;
    config.workers = 1;
    config.mc_samples = kMc;
    config.spindrop_p = kDropP;
    config.tile.eval_mode = mode;
    config.batcher.max_batch = 16;
    config.batcher.max_linger = std::chrono::microseconds(100);
    return config;
  };
  const RunResult full =
      run_load(model, tiled_config(xbar::EvalMode::kFull), rows, tiled_requests);
  const RunResult event =
      run_load(model, tiled_config(xbar::EvalMode::kEventDriven), rows, tiled_requests);

  serve::RuntimeConfig config = tiled_config(xbar::EvalMode::kEventDriven);
  config.backend = serve::Backend::kCascade;
  config.cascade = cascade;
  const RunResult casc = run_load(model, config, rows, requests);

  std::printf("%14s %12s %12s %12s %12s %10s\n", "config", "req/s", "p50 (us)",
              "p99 (us)", "escalated", "skipped");
  const auto print_row = [](const char* name, const RunResult& r) {
    std::printf("%14s %12.0f %12.0f %12.0f %11.1f%% %9.1f%%\n", name,
                r.requests_per_sec, r.p50_us, r.p99_us, 100.0 * r.escalation_rate,
                100.0 * r.skip_ratio);
  };
  print_row("tiled/full", full);
  print_row("tiled/event", event);
  print_row("cascade", casc);
  std::printf("tile-eval speedup (event vs full): %.2fx; cascade vs tiled/event: "
              "%.1fx req/s at %.1f%% escalation\n",
              event.requests_per_sec / full.requests_per_sec,
              casc.requests_per_sec / event.requests_per_sec,
              100.0 * casc.escalation_rate);
}

/// Observability-overhead leg (ISSUE-7 acceptance: <3% regression with
/// tracing + metrics on): the behavioural closed loop run twice — tracing
/// off (metrics alone, always on) vs. tracing on at sample_every=1, the
/// most expensive setting (every request records 4 spans + the per-batch /
/// per-rung spans). Best-of-3 each side to keep scheduler noise out of a
/// percent-level comparison. When `trace_path` is set the traced pass
/// also exports its Chrome trace-event JSON.
void sweep_tracing_overhead(const core::BuiltModel& model,
                            const nn::Dataset& data, const char* trace_path) {
  const std::size_t requests = g_smoke ? 32 : 1024;
  const std::size_t reps = g_smoke ? 1 : 3;
  const auto make_config = [](bool traced) {
    serve::RuntimeConfig config;
    config.workers = 1;
    config.mc_samples = 8;
    config.batcher.max_batch = 16;
    config.batcher.max_linger = std::chrono::microseconds(100);
    config.trace.enabled = traced;
    config.trace.sample_every = 1;
    return config;
  };
  const std::vector<std::vector<float>> rows = dataset_rows(data);
  const auto best_rate = [&](bool traced, const char* path) {
    double best = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      // Export only from the last traced rep so FILE holds a full run.
      const char* p = (traced && rep + 1 == reps) ? path : nullptr;
      best = std::max(best,
                      run_load(model, make_config(traced), rows, requests, p)
                          .requests_per_sec);
    }
    return best;
  };
  const double off = best_rate(false, nullptr);
  const double on = best_rate(true, trace_path);
  std::printf(
      "\ntracing overhead (behavioural, 1 worker, %zu requests, best of %zu):\n"
      "  tracing off: %8.0f req/s   (metrics registry always on)\n"
      "  tracing on:  %8.0f req/s   (sample_every=1, 4 spans/request)\n"
      "  overhead: %.2f%% (acceptance: < 3%%)\n",
      requests, reps, off, on, 100.0 * (1.0 - on / off));
}

/// Stats-primitive micro-bench: the pre-PR-7 latency-window implementation
/// (a mutex-guarded 512-entry ring whose every percentile read sorts a
/// copy) vs. the obs::Histogram that replaced it (lock-free relaxed
/// fetch_add record; reads snapshot 1282 buckets). Reported per-op so the
/// BENCH_pr7.json histogram-vs-ring numbers come straight off this table.
void bench_stats_primitives() {
  const std::size_t records = g_smoke ? 20'000 : 2'000'000;
  const std::size_t reads = g_smoke ? 200 : 20'000;
  std::mt19937_64 engine(42);
  std::lognormal_distribution<double> latency(6.0, 1.0);
  std::vector<double> samples(records);
  for (double& s : samples) {
    s = latency(engine);
  }

  using Clock = std::chrono::steady_clock;
  const auto ns_per = [](Clock::time_point t0, Clock::time_point t1,
                         std::size_t ops) {
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(ops);
  };

  // The removed implementation, statement for statement: bounded ring under
  // the stats mutex, percentile = lock + copy + sort of the window.
  double ring_record_ns = 0.0;
  double ring_read_ns = 0.0;
  double ring_p50 = 0.0;
  {
    constexpr std::size_t kWindow = 512;
    std::mutex mutex;
    std::vector<double> ring;
    ring.reserve(kWindow);
    std::size_t next = 0;
    const auto r0 = Clock::now();
    for (const double s : samples) {
      std::lock_guard<std::mutex> lock(mutex);
      if (ring.size() < kWindow) {
        ring.push_back(s);
      } else {
        ring[next] = s;
        next = (next + 1) % kWindow;
      }
    }
    const auto r1 = Clock::now();
    for (std::size_t i = 0; i < reads; ++i) {
      std::lock_guard<std::mutex> lock(mutex);
      std::vector<double> sorted(ring);
      std::sort(sorted.begin(), sorted.end());
      ring_p50 += sorted[sorted.size() / 2];
    }
    const auto r2 = Clock::now();
    ring_record_ns = ns_per(r0, r1, records);
    ring_read_ns = ns_per(r1, r2, reads);
  }

  double hist_record_ns = 0.0;
  double hist_read_ns = 0.0;
  double hist_p50 = 0.0;
  {
    obs::Histogram hist;
    const auto h0 = Clock::now();
    for (const double s : samples) {
      hist.record(s);
    }
    const auto h1 = Clock::now();
    for (std::size_t i = 0; i < reads; ++i) {
      hist_p50 += hist.quantile(0.50);
    }
    const auto h2 = Clock::now();
    hist_record_ns = ns_per(h0, h1, records);
    hist_read_ns = ns_per(h1, h2, reads);
  }

  std::printf(
      "\nstats primitives: mutex ring (512, sorted-copy read) vs. obs::Histogram\n"
      "(%zu records, %zu p50 reads; ring p50 %.0f us ~ histogram p50 %.0f us)\n",
      records, reads, ring_p50 / static_cast<double>(reads),
      hist_p50 / static_cast<double>(reads));
  std::printf("%12s %14s %14s\n", "", "record (ns)", "p50 read (ns)");
  std::printf("%12s %14.1f %14.1f\n", "ring", ring_record_ns, ring_read_ns);
  std::printf("%12s %14.1f %14.1f\n", "histogram", hist_record_ns, hist_read_ns);
  std::printf("record speedup: %.1fx, read speedup: %.1fx (histogram also "
              "covers the full history, not a 512-sample window)\n",
              ring_record_ns / hist_record_ns, ring_read_ns / hist_read_ns);
}

/// Fault-tolerance leg (--chaos SEED): the behavioural closed loop run
/// fault-free and again under a seeded crash/stall plan with supervision
/// on. Reports throughput under faults, the zero-requests-lost account
/// (completed + typed failures == submitted, completed bits are the
/// fault-free bits by the request-seed contract pinned in
/// tests/robustness_test.cpp), and recovery latency measured on the
/// deterministic crash-retry path.
void sweep_chaos(const core::BuiltModel& model, const nn::Dataset& data,
                 std::uint64_t seed) {
  const std::size_t requests = g_smoke ? 48 : 512;
  const std::vector<std::vector<float>> rows = dataset_rows(data);
  const auto base_config = [] {
    serve::RuntimeConfig config;
    config.workers = 2;
    config.mc_samples = 4;
    config.batcher.max_batch = 8;
    config.batcher.max_linger = std::chrono::microseconds(100);
    return config;
  };

  // Fault-free anchor on the identical workload.
  const RunResult clean = run_load(model, base_config(), rows, requests);

  serve::RuntimeConfig chaos = base_config();
  chaos.fault.enabled = true;
  chaos.fault.seed = seed;
  // Smoke runs draw an order of magnitude fewer forward tickets; scale the
  // per-ticket rates up so the CI leg still exercises the recovery paths.
  chaos.fault.crash_p = g_smoke ? 0.25 : 0.05;
  chaos.fault.stall_p = g_smoke ? 0.15 : 0.05;
  chaos.fault.stall = std::chrono::microseconds(2000);
  chaos.supervision.enabled = true;
  chaos.supervision.heartbeat = std::chrono::microseconds(1000);
  chaos.supervision.stall_timeout = std::chrono::microseconds(100000);

  std::uint64_t completed = 0;
  std::uint64_t failed_typed = 0;
  std::vector<double> latencies;
  latencies.reserve(requests);
  double chaos_rps = 0.0;
  serve::RuntimeStats stats;
  std::uint64_t crashes = 0;
  std::uint64_t stall_faults = 0;
  {
    serve::Runtime runtime(model, chaos);
    constexpr std::size_t kWindow = 64;
    std::deque<std::future<serve::ServedPrediction>> in_flight;
    const auto harvest = [&](std::future<serve::ServedPrediction> f) {
      // A request whose first attempt AND its one retry both drew crash
      // tickets fails typed — counted, never lost, never silent.
      try {
        latencies.push_back(f.get().total_latency_us);
        ++completed;
      } catch (const std::exception&) {
        ++failed_typed;
      }
    };
    const auto begin = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      in_flight.push_back(runtime.submit(rows[i % rows.size()]));
      if (in_flight.size() >= kWindow) {
        harvest(std::move(in_flight.front()));
        in_flight.pop_front();
      }
    }
    while (!in_flight.empty()) {
      harvest(std::move(in_flight.front()));
      in_flight.pop_front();
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - begin)
                               .count();
    chaos_rps = static_cast<double>(requests) / seconds;
    stats = runtime.stats();
    crashes = runtime.metrics().counter("serve.fault.crashes").value();
    stall_faults = runtime.metrics().counter("serve.fault.stalls").value();
  }

  // Recovery latency: the deterministic crash-retry path end to end —
  // forward ticket 0 crashes, the batch re-queues, the worker re-clones
  // its backend, the retry answers. Anchor: the same single request on a
  // fault-free runtime.
  const auto single_request_us = [&](bool crash_first) {
    serve::RuntimeConfig config = base_config();
    config.workers = 1;
    if (crash_first) {
      config.fault.enabled = true;
      config.fault.seed = seed;
      config.fault.crash_p = 1.0;
      config.fault.stop_after = 1;  // only ticket 0 crashes
    }
    serve::Runtime runtime(model, config);
    const auto begin = std::chrono::steady_clock::now();
    (void)runtime.predict(rows.front());
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - begin)
        .count();
  };
  const double clean_one_us = single_request_us(false);
  const double recovery_us = single_request_us(true);

  std::printf(
      "\nchaos leg (seed %llu): crash_p=%.2f stall_p=%.2f (stall %.1fms), "
      "supervision on, %zu requests\n",
      static_cast<unsigned long long>(seed), chaos.fault.crash_p,
      chaos.fault.stall_p,
      std::chrono::duration<double, std::milli>(chaos.fault.stall).count(),
      requests);
  std::printf("%14s %12s %12s %12s\n", "config", "req/s", "p50 (us)",
              "p99 (us)");
  std::printf("%14s %12.0f %12.0f %12.0f\n", "fault-free",
              clean.requests_per_sec, clean.p50_us, clean.p99_us);
  std::printf("%14s %12.0f %12.0f %12.0f\n", "under faults", chaos_rps,
              percentile(latencies, 0.50), percentile(latencies, 0.99));
  std::printf(
      "faults: %llu crashes, %llu stalls; %llu requests re-queued, %llu "
      "worker restarts, %llu stall rescues\n",
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(stall_faults),
      static_cast<unsigned long long>(stats.requeued),
      static_cast<unsigned long long>(stats.worker_restarts),
      static_cast<unsigned long long>(stats.worker_stalls));
  std::printf(
      "account: %zu submitted = %llu completed + %llu failed typed "
      "(zero lost%s)\n",
      requests, static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed_typed),
      completed + failed_typed == requests ? "" : " — ACCOUNT MISMATCH");
  std::printf(
      "recovery latency (crash -> re-queue -> re-clone -> retried answer): "
      "%.0f us (fault-free single request: %.0f us)\n",
      recovery_us, clean_one_us);
  std::printf("throughput under faults: %.1f%% of fault-free\n",
              100.0 * chaos_rps / clean.requests_per_sec);
  if (completed + failed_typed != requests) {
    std::exit(1);  // the CI leg must fail loudly on a lost request
  }
}

/// Self-healing leg (--defect-sweep): the tiled electrical backend served
/// under progressive defect accumulation — seeded bursts land on ~every
/// 4th batch, each drawing per-cell defect probabilities from the sweep's
/// rate — measured with the health monitor OFF (damage compounds
/// unnoticed) and ON (canary probe after every batch, quarantined lines
/// remapped onto spares, exhausted tiles chip-swapped via the re-clone
/// path). Accuracy is labeled-request argmax vs. the stroke-digit labels;
/// retention is relative to the fault-free anchor on the identical
/// workload and substrate.
void sweep_defects(const nn::Dataset& data) {
  // A small TRAINED MLP: retention is only meaningful above chance, and
  // the small substrate keeps the electrical sweep fast; the contract
  // under test is accuracy retention, not worker scaling.
  data::StrokeConfig sc;
  sc.samples_per_class = g_smoke ? 30 : 120;
  const nn::Dataset train =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 11));
  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  core::BuiltModel model = core::make_binary_mlp(mc, 256, {32, 16}, 10);
  core::FitConfig fc;
  fc.epochs = g_smoke ? 3 : 6;
  (void)core::fit(model, train, fc);

  const std::size_t requests = g_smoke ? 24 : 96;
  const std::vector<double> rates =
      g_smoke ? std::vector<double>{0.0, 0.002, 0.01}
              : std::vector<double>{0.0, 0.001, 0.002, 0.005, 0.01};
  const std::vector<std::vector<float>> rows = dataset_rows(data);

  struct Arm {
    double rate = 0.0;
    bool healing = false;
    double accuracy = 0.0;
    double rps = 0.0;
    std::uint64_t probes = 0;
    std::uint64_t heals = 0;
    std::uint64_t restarts = 0;
    std::uint64_t remapped = 0;
    std::uint64_t exhausted = 0;
  };
  std::vector<Arm> arms;

  for (const bool healing : {false, true}) {
    for (const double rate : rates) {
      if (rate == 0.0 && healing) {
        continue;  // one fault-free anchor arm is enough
      }
      serve::RuntimeConfig config;
      config.backend = serve::Backend::kTiled;
      config.workers = 1;
      config.mc_samples = 2;
      config.batcher.max_batch = 4;
      config.tile.crossbar.spare_rows = 8;
      config.tile.crossbar.spare_cols = 8;
      if (rate > 0.0) {
        config.fault.enabled = true;
        config.fault.seed = 17;
        config.fault.defect_p = 0.25;  // a burst on ~every 4th batch
        config.fault.defect_rates.stuck_at_p = rate;
        config.fault.defect_rates.stuck_at_ap = rate;
        config.fault.defect_rates.open = rate / 2.0;
      }
      if (healing) {
        config.health.enabled = true;
        config.health.probe_every = 1;  // canary after every batch
      }

      Arm arm;
      arm.rate = rate;
      arm.healing = healing;
      std::size_t settled = 0;
      {
        serve::Runtime runtime(model, config);
        std::vector<std::future<serve::ServedPrediction>> futures;
        futures.reserve(requests);
        const auto begin = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < requests; ++i) {
          futures.push_back(runtime.submit(rows[i % rows.size()]));
        }
        std::size_t correct = 0;
        for (std::size_t i = 0; i < requests; ++i) {
          try {
            const serve::ServedPrediction p = futures[i].get();
            const std::size_t predicted = static_cast<std::size_t>(
                std::max_element(p.probs.begin(), p.probs.end()) -
                p.probs.begin());
            correct += predicted == data.labels[i % data.size()] ? 1 : 0;
            ++settled;
          } catch (const std::exception&) {
            ++settled;  // typed failure: accounted, scored as a miss
          }
        }
        const double seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - begin)
                                   .count();
        arm.accuracy = static_cast<double>(correct) /
                       static_cast<double>(requests);
        arm.rps = static_cast<double>(requests) / seconds;
        runtime.shutdown();  // join workers: the last probe trails the load
        const serve::RuntimeStats stats = runtime.stats();
        arm.probes = stats.health_probes;
        arm.heals = stats.heals;
        arm.restarts = stats.worker_restarts;
        arm.remapped = runtime.metrics().counter("xbar.remap.rows").value() +
                       runtime.metrics().counter("xbar.remap.cols").value();
        arm.exhausted =
            runtime.metrics().counter("xbar.remap.exhausted").value();
      }
      if (settled != requests) {
        std::printf("defect sweep: %zu of %zu futures settled — LOST "
                    "REQUESTS\n",
                    settled, requests);
        std::exit(1);  // the CI leg must fail loudly on a lost request
      }
      arms.push_back(arm);
    }
  }

  const double anchor = arms.front().accuracy;  // the rate-0 arm
  std::printf(
      "\ndefect sweep: tiled backend, %zu labeled requests per arm, seeded "
      "bursts on ~every 4th batch (defect_p=0.25), spares 8+8 per crossbar\n",
      requests);
  std::printf("%10s %10s %10s %12s %8s %7s %7s %7s %9s\n", "rate", "healing",
              "accuracy", "retention", "req/s", "heals", "remaps", "swaps",
              "exhausted");
  for (const Arm& arm : arms) {
    std::printf("%10.4f %10s %9.1f%% %11.1f%% %8.0f %7llu %7llu %7llu %9llu\n",
                arm.rate, arm.rate == 0.0 ? "n/a" : (arm.healing ? "on" : "off"),
                100.0 * arm.accuracy,
                anchor > 0.0 ? 100.0 * arm.accuracy / anchor : 0.0, arm.rps,
                static_cast<unsigned long long>(arm.heals),
                static_cast<unsigned long long>(arm.remapped),
                static_cast<unsigned long long>(arm.restarts),
                static_cast<unsigned long long>(arm.exhausted));
  }
  std::printf(
      "\nNote: with healing OFF the bursts compound unnoticed across the "
      "run; with healing ON every burst is detected within one probe "
      "cadence, quarantined lines are remapped onto spares (the healed tile "
      "serves the fresh tile's exact bits — pinned in tests/health_test.cpp) "
      "and exhausted substrates are re-cloned. Only requests inside a "
      "detection window can differ from the fault-free run.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  bool chaos = false;
  bool defect_sweep = false;
  std::uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = true;
      chaos_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--defect-sweep") == 0) {
      defect_sweep = true;
    }
  }
  bench::banner("bench_serve",
                g_smoke ? "smoke mode: minimal request counts"
                        : "serving runtime: closed-loop req/s vs. workers and "
                          "open-loop Poisson latency knee");

  data::StrokeConfig sc;
  sc.samples_per_class = 10;  // 100 distinct request payloads
  const nn::Dataset data =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 3));

  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  mc.dropout_p = 0.15;
  const core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);

  if (chaos) {
    sweep_chaos(model, data, chaos_seed);
    return 0;
  }

  if (defect_sweep) {
    sweep_defects(data);
    return 0;
  }

  // Sweep 1..max(4, hardware) workers in powers of two. On machines with
  // fewer cores the larger counts run oversubscribed — throughput then
  // plateaus instead of scaling, but results stay bitwise identical.
  const std::size_t hw = std::max<std::size_t>(
      4, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_counts = {1};
  for (std::size_t w = 2; w <= hw; w *= 2) {
    worker_counts.push_back(w);
  }
  if (g_smoke) {
    worker_counts = {1};
  }
  const std::size_t behavioral_requests = g_smoke ? 32 : 1024;

  const double capacity = sweep_backend(model, data, serve::Backend::kBehavioral,
                                        /*mc_samples=*/8, behavioral_requests,
                                        worker_counts);

  sweep_open_loop(model, data, capacity, g_smoke ? 32 : 2048);

  std::vector<std::size_t> tiled_counts;
  for (std::size_t w : worker_counts) {
    if (w <= 4) {
      tiled_counts.push_back(w);
    }
  }
  sweep_backend(model, data, serve::Backend::kTiled, /*mc_samples=*/4,
                g_smoke ? 8 : 48, tiled_counts);

  sweep_cascade(model, data);

  sweep_tracing_overhead(model, data, trace_path);

  bench_stats_primitives();

  std::printf("\nNote: predictions are bitwise identical across every row of\n"
              "these sweeps — worker count, batching, arrival process and\n"
              "tracing change only latency.\n");
  return 0;
}
